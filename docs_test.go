package sistream

// The documentation gates of the public surface, run in CI (see
// .github/workflows): every exported identifier of the root package must
// carry a doc comment, and the prose documents must not contain dead
// intra-repository links.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsExportedSymbolsCommented fails on any exported identifier of
// the root package that has neither its own doc comment nor a
// documenting comment on its enclosing declaration group. This is the
// grep gate behind the promise that the façade is fully documented.
func TestDocsExportedSymbolsCommented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["sistream"]
	if !ok {
		t.Fatalf("root package not found (got %v)", pkgs)
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, p.Filename+":"+name)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report(d.Pos(), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Fatalf("exported identifiers without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}

// mdLink matches markdown links and images; the capture is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsNoDeadLinks checks every intra-repository link of the root
// markdown documents (README.md, DESIGN.md, ...) points at a file or
// directory that exists. External links (scheme-qualified) and pure
// anchors are not checked.
func TestDocsNoDeadLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown documents found at the repository root")
	}
	var dead []string
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix; anchors themselves are not resolved.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				dead = append(dead, doc+" -> "+m[1])
			}
		}
	}
	if len(dead) > 0 {
		t.Fatalf("dead intra-repository links:\n  %s", strings.Join(dead, "\n  "))
	}
}
