package metrics

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which may be negative for corrections, although counters
// are conventionally monotone).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Meter measures the rate of events over a wall-clock interval:
// call Start, Inc/Add during the run, then Rate or Stop.
type Meter struct {
	count   Counter
	started time.Time
	stopped time.Time
}

// Start begins (or restarts) the measurement interval.
func (m *Meter) Start() {
	m.count.Reset()
	m.started = time.Now()
	m.stopped = time.Time{}
}

// Inc records one event.
func (m *Meter) Inc() { m.count.Inc() }

// Add records delta events.
func (m *Meter) Add(delta int64) { m.count.Add(delta) }

// Count returns the number of events recorded so far.
func (m *Meter) Count() int64 { return m.count.Load() }

// Stop freezes the interval end used by Rate.
func (m *Meter) Stop() { m.stopped = time.Now() }

// Elapsed returns the measured interval length.
func (m *Meter) Elapsed() time.Duration {
	end := m.stopped
	if end.IsZero() {
		end = time.Now()
	}
	return end.Sub(m.started)
}

// Rate returns events per second over the measured interval.
func (m *Meter) Rate() float64 {
	e := m.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(m.count.Load()) / e
}
