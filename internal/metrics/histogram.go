// Package metrics provides the lightweight measurement primitives used by
// the benchmark harness: a log-bucketed latency histogram with quantile
// estimation, atomic counters, and interval throughput meters.
//
// Everything here is allocation-free on the hot path and safe for
// concurrent use, so recording a sample costs a handful of atomic adds —
// cheap enough to leave enabled during the throughput runs that reproduce
// the paper's Figure 4.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histogram layout: one block per power-of-two range of nanoseconds,
// each split into subBuckets linear sub-buckets. This mirrors the classic
// HDR histogram trick and keeps relative quantile error below
// 1/subBuckets (~1.6%).
const (
	subBuckets = 64
	// Block 0 covers values [0, 64); blocks 1..57 cover top-bit exponents
	// 6..62, enough for the full non-negative int64 range (max top bit 62).
	numBuckets = 58 * subBuckets
)

// Histogram records int64 samples (by convention, nanoseconds) and reports
// approximate quantiles. The zero value is ready to use. All methods are
// safe for concurrent use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so that 0 means "unset"
}

// bucketIndex maps a sample to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of top bit, >= 6 here
	shift := exp - 6         // bring the 6 bits after the top bit down
	sub := int((u >> uint(shift)) & (subBuckets - 1))
	idx := (exp-5)*subBuckets + sub
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx (inverse of
// bucketIndex, used to reconstruct quantiles).
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	block := idx/subBuckets + 5
	sub := idx % subBuckets
	base := uint64(1) << uint(block)
	step := uint64(1) << uint(block-6)
	return int64(base | uint64(sub)*step)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if cur != 0 && -v <= cur || h.min.CompareAndSwap(cur, -v) {
			break
		}
	}
}

// RecordSince is shorthand for Record(time.Since(start).Nanoseconds()).
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(time.Since(start).Nanoseconds())
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the arithmetic mean of samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	v := h.min.Load()
	if v == 0 {
		return 0
	}
	return -v
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1).
// The result is the lower bound of the bucket containing the quantile,
// so relative error is bounded by the sub-bucket resolution.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max.Load()
}

// Snapshot returns a consistent-enough copy for reporting. Concurrent
// recording during Snapshot may skew counts by in-flight samples, which is
// acceptable for benchmark reporting.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(0)
}

// Summary is a point-in-time digest of a Histogram, with durations in
// nanoseconds.
type Summary struct {
	Count         int64
	Mean          float64
	Min, P50, P95 int64
	P99, Max      int64
}

// String formats the summary with human-friendly durations.
func (s Summary) String() string {
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, time.Duration(int64(s.Mean)), d(s.P50), d(s.P95), d(s.P99), d(s.Max))
}
