package metrics

import (
	"math"
	"sync/atomic"
)

// DefaultEWMAAlpha is the sample weight an EWMA with a zero Alpha uses:
// each new observation contributes a quarter of the average, so the
// average settles within ~2% of a level shift after 16 samples — fast
// enough for the adaptive spine controller to track load changes, smooth
// enough to ignore single-sample noise.
const DefaultEWMAAlpha = 0.25

// EWMA is an exponentially weighted moving average of float64 samples,
// safe for concurrent use: the current average is kept as IEEE-754 bits in
// one atomic word, updated by CAS, so recording a sample is lock-free and
// allocation-free. The zero value is ready to use (DefaultEWMAAlpha).
//
// The first sample seeds the average directly. An average of exactly 0.0
// is indistinguishable from "no samples yet" (the next sample re-seeds);
// the intended inputs — latencies, batch sizes, queue occupancies offset
// by their minimum of interest — are strictly positive, where this never
// triggers.
type EWMA struct {
	bits atomic.Uint64

	// Alpha is the weight of each new sample in (0, 1]; 0 selects
	// DefaultEWMAAlpha. Set it before the first Observe and leave it —
	// it is read unsynchronized on the hot path.
	Alpha float64
}

// NewEWMA creates an EWMA with the given sample weight (0 selects
// DefaultEWMAAlpha).
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// Observe folds one sample into the average.
func (e *EWMA) Observe(v float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = DefaultEWMAAlpha
	}
	for {
		cur := e.bits.Load()
		next := v
		if cur != 0 {
			next = (1-a)*math.Float64frombits(cur) + a*v
		}
		if e.bits.CompareAndSwap(cur, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average (0 when no sample was observed).
func (e *EWMA) Value() float64 {
	return math.Float64frombits(e.bits.Load())
}

// Reset clears the average back to the unseeded state.
func (e *EWMA) Reset() { e.bits.Store(0) }
