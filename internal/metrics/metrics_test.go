package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketIndex(v)) must be <= v, and the next bucket's low
	// must be > v: i.e. the mapping is a proper partition.
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		lo := bucketLow(idx)
		if lo > v {
			t.Fatalf("v=%d: bucketLow(%d)=%d > v", v, idx, lo)
		}
		if idx+1 < numBuckets {
			next := bucketLow(idx + 1)
			if next <= v && bucketIndex(next) == idx {
				t.Fatalf("v=%d: partition broken at idx %d", v, idx)
			}
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lo := bucketLow(i)
		if lo < prev {
			t.Fatalf("bucketLow not monotone at %d: %d < %d", i, lo, prev)
		}
		prev = lo
	}
}

func TestPropertyBucketContains(t *testing.T) {
	f := func(raw uint64) bool {
		v := int64(raw >> 1) // keep non-negative
		idx := bucketIndex(v)
		return bucketLow(idx) <= v && bucketIndex(bucketLow(idx)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 20 {
		t.Fatalf("p50 = %d, want 20", got)
	}
	if got := h.Quantile(1.0); got < 40 {
		t.Fatalf("p100 = %d, want >= 40", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative samples should clamp to zero")
	}
}

// TestQuantilesAgainstExact feeds random samples and checks that histogram
// quantiles land within the sub-bucket relative error of exact order
// statistics.
func TestQuantilesAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]int64, 50000)
	for i := range samples {
		v := int64(rng.ExpFloat64() * 1e6)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := float64(got-exact) / float64(exact)
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("q=%g: histogram %d vs exact %d (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(123)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestSnapshotAndString(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("load = %d", c.Load())
	}
	if prev := c.Reset(); prev != 5 || c.Load() != 0 {
		t.Fatalf("reset returned %d, left %d", prev, c.Load())
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Start()
	m.Add(100)
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	if m.Count() != 100 {
		t.Fatalf("count = %d", m.Count())
	}
	r := m.Rate()
	if r <= 0 || r > 100/0.015 {
		t.Fatalf("rate = %g, implausible for 100 events over >=20ms", r)
	}
	if m.Elapsed() < 20*time.Millisecond {
		t.Fatalf("elapsed = %v", m.Elapsed())
	}
}

func TestEWMASeedAndConverge(t *testing.T) {
	var e EWMA
	if e.Value() != 0 {
		t.Fatalf("unseeded value = %g", e.Value())
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first sample must seed the average, got %g", e.Value())
	}
	// A level shift converges geometrically: after k samples the residual
	// is (1-alpha)^k of the shift.
	for i := 0; i < 32; i++ {
		e.Observe(200)
	}
	if v := e.Value(); v < 199 || v > 200 {
		t.Fatalf("EWMA did not converge to the new level: %g", v)
	}
	e.Reset()
	if e.Value() != 0 {
		t.Fatal("reset did not clear the average")
	}
	e.Observe(7)
	if e.Value() != 7 {
		t.Fatalf("re-seed after reset failed: %g", e.Value())
	}
}

func TestEWMAAlpha(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(0.5) // seeds (non-zero)
	e.Observe(1.5)
	if v := e.Value(); v != 1.0 {
		t.Fatalf("alpha=0.5: want 1.0, got %g", v)
	}
}

func TestEWMAConcurrent(t *testing.T) {
	var e EWMA
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Observe(50)
			}
		}()
	}
	wg.Wait()
	// All samples equal: the average must be exactly their value
	// regardless of interleaving.
	if v := e.Value(); v != 50 {
		t.Fatalf("concurrent constant samples: want 50, got %g", v)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Record(i % 1_000_000)
			i += 997
		}
	})
}
