// Package mvcc implements the multi-versioned state representation of the
// paper's Section 4.1: each key of a transactional table maps to an MVCC
// object holding an array of version slots. A slot is the classic MVCC
// triple <[cts, dts], value> — the commit timestamp and deletion
// timestamp delimit the version's lifetime. A UsedSlots bit vector tracks
// free slots, and garbage collection runs on demand: only when a writer
// needs a slot and none is free are versions that no active transaction
// can see (dts <= OldestActiveVersion) reclaimed.
//
// The paper manages UsedSlots with a single 64-bit word, implicitly
// capping each key at 64 live versions. That cap is unsound on a machine
// where a reader goroutine can hold its snapshot pin across scheduler
// quanta while a hot key is updated at full speed (hundreds of commits
// can land within one pin hold). This implementation therefore extends
// the bit vector to multiple words and grows the version array on demand
// — the GC rule is unchanged, so the array shrinks back to steady state
// as soon as the pinning snapshot finishes. Long-pinned snapshots trade
// memory (version bloat) for writer progress, the same trade Postgres
// makes.
//
// Concurrency follows the read-copy-update discipline rather than the
// paper's read-write latches: the slot array lives in an immutable
// versionSet published through an atomic pointer. Readers load the
// pointer and scan without any synchronization — a snapshot read NEVER
// contends with the commit apply path, however hot the key. Writers
// (Install, GC) are serialized by the group-commit pipeline per table
// anyway; they clone the set, mutate the clone, and publish it with one
// atomic store. The clone cost is a few cache lines for typical slot
// counts and buys wait-free reads.
package mvcc

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Timestamp is a logical commit timestamp drawn from the global atomic
// counter in the transaction context. Timestamp 0 is reserved: as a CTS it
// marks "never committed" (unused slot) and as a DTS it marks "still
// alive".
type Timestamp = uint64

// Infinity is a read timestamp greater than any commit timestamp; reading
// at Infinity returns the latest committed version (used by the locking
// and optimistic protocols, which do not read from snapshots).
const Infinity Timestamp = ^uint64(0)

// DefaultSlots is the initial version-array capacity. Arrays grow on
// demand (doubling) when garbage collection cannot reclaim a slot.
const DefaultSlots = 8

// header is the [cts, dts] pair of one version slot.
type header struct {
	cts Timestamp
	dts Timestamp
}

// versionSet is one immutable generation of an object's version array.
// Once published via Object.snap it is never mutated; writers clone it,
// update the clone, and publish the clone. Values are likewise immutable:
// a slot reuse writes a fresh byte slice, never the old backing array.
type versionSet struct {
	// used is the UsedSlots bit vector: bit i set = slot i occupied.
	used    []uint64
	headers []header
	values  [][]byte
	// latest is the CTS of the newest committed version (0 if none);
	// the First-Committer-Wins check reads it without scanning slots.
	latest Timestamp
}

// Object is the per-key version container. All methods are safe for
// concurrent use; reads are wait-free (one atomic pointer load), writes
// serialize on a short mutex.
type Object struct {
	mu   sync.Mutex // writers only: Install, InstallRecovered, GC
	snap atomic.Pointer[versionSet]
}

// NewObject creates an object with initial capacity for slots versions
// (0 selects DefaultSlots; values are clamped to at least 1).
func NewObject(slots int) *Object {
	if slots == 0 {
		slots = DefaultSlots
	}
	if slots < 1 {
		slots = 1
	}
	o := &Object{}
	o.snap.Store(&versionSet{
		used:    make([]uint64, (slots+63)/64),
		headers: make([]header, slots),
		values:  make([][]byte, slots),
	})
	return o
}

// clone copies the set's slot bookkeeping for mutation. Values are
// aliased (immutable); the slices themselves are fresh.
func (s *versionSet) clone() *versionSet {
	n := &versionSet{
		used:    make([]uint64, len(s.used)),
		headers: make([]header, len(s.headers)),
		values:  make([][]byte, len(s.values)),
		latest:  s.latest,
	}
	copy(n.used, s.used)
	copy(n.headers, s.headers)
	copy(n.values, s.values)
	return n
}

// eachUsed calls fn for every occupied slot index; fn returns false to
// stop.
func (s *versionSet) eachUsed(fn func(i int) bool) {
	for w, word := range s.used {
		for ; word != 0; word &= word - 1 {
			i := w*64 + bits.TrailingZeros64(word)
			if i >= len(s.headers) {
				return
			}
			if !fn(i) {
				return
			}
		}
	}
}

func (s *versionSet) setUsed(i int)   { s.used[i/64] |= 1 << uint(i%64) }
func (s *versionSet) clearUsed(i int) { s.used[i/64] &^= 1 << uint(i%64) }

// Read returns the version visible at read timestamp rts: the version
// with the greatest cts satisfying cts <= rts and (dts == 0 or dts > rts).
// ok is false when no version is visible (the key did not exist, or was
// deleted, in that snapshot). The returned slice is owned by the object
// and must not be modified. Read takes no locks: it scans the immutable
// set current at its single atomic load.
func (o *Object) Read(rts Timestamp) (value []byte, ok bool) {
	s := o.snap.Load()
	best := -1
	var bestCTS Timestamp
	s.eachUsed(func(i int) bool {
		h := s.headers[i]
		if h.cts <= rts && (h.dts == 0 || h.dts > rts) && h.cts >= bestCTS {
			best, bestCTS = i, h.cts
		}
		return true
	})
	if best < 0 {
		return nil, false
	}
	return s.values[best], true
}

// LatestCTS returns the commit timestamp of the newest version, whether
// alive or deleted; the SI protocol's First-Committer-Wins rule compares
// it against the writer's snapshot.
func (o *Object) LatestCTS() Timestamp {
	return o.snap.Load().latest
}

// Install makes a new version visible: the currently live version (if
// any) gets dts = cts, and unless the write is a deletion a new slot
// <[cts, 0], value> is populated. oldestActive drives on-demand garbage
// collection when the array is full; if nothing is reclaimable the array
// grows, so Install never fails for capacity reasons. The value is
// copied. Concurrent readers observe either the previous or the new
// generation, atomically.
//
// Install must only be called by a committing transaction holding the
// group commit latch, with cts greater than every previously installed
// cts for this object.
func (o *Object) Install(cts Timestamp, value []byte, delete bool, oldestActive Timestamp) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.snap.Load()
	if cts <= cur.latest {
		return fmt.Errorf("mvcc: non-monotonic install: cts %d <= latest %d", cts, cur.latest)
	}
	next := cur.clone()
	// Terminate the currently live version.
	next.eachUsed(func(i int) bool {
		if next.headers[i].dts == 0 {
			next.headers[i].dts = cts
			return false
		}
		return true
	})
	next.latest = cts
	// A deletion installs no new version: the terminated predecessor
	// alone makes the key invisible to snapshots at or after cts.
	if !delete {
		slot := next.allocSlot(oldestActive)
		next.headers[slot] = header{cts: cts, dts: 0}
		next.values[slot] = append([]byte(nil), value...)
		next.setUsed(slot)
	}
	o.snap.Store(next)
	return nil
}

// InstallRecovered seeds the object with one committed version during
// recovery, bypassing the monotonicity bookkeeping of live commits.
func (o *Object) InstallRecovered(cts Timestamp, value []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	next := o.snap.Load().clone()
	next.headers[0] = header{cts: cts, dts: 0}
	next.values[0] = append([]byte(nil), value...)
	next.setUsed(0)
	if cts > next.latest {
		next.latest = cts
	}
	o.snap.Store(next)
}

// allocSlot finds a free slot in the (mutable, unpublished) clone,
// garbage-collecting or growing when needed.
func (s *versionSet) allocSlot(oldestActive Timestamp) int {
	if i := s.freeSlot(); i >= 0 {
		return i
	}
	// On-demand GC: reclaim versions dead before the oldest active
	// snapshot (dts != 0 and dts <= oldestActive).
	reclaimed := -1
	s.eachUsed(func(i int) bool {
		h := s.headers[i]
		if h.dts != 0 && h.dts <= oldestActive {
			s.clearUsed(i)
			s.values[i] = nil
			if reclaimed < 0 {
				reclaimed = i
			}
		}
		return true
	})
	if reclaimed >= 0 {
		return reclaimed
	}
	// Nothing reclaimable: grow the array (see package comment).
	old := len(s.headers)
	newLen := old * 2
	grown := make([]header, newLen)
	copy(grown, s.headers)
	s.headers = grown
	grownV := make([][]byte, newLen)
	copy(grownV, s.values)
	s.values = grownV
	for len(s.used)*64 < newLen {
		s.used = append(s.used, 0)
	}
	return old
}

// freeSlot returns the lowest unoccupied slot index, or -1 when full.
func (s *versionSet) freeSlot() int {
	for w, word := range s.used {
		free := ^word
		if free == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(free)
		if i < len(s.headers) {
			return i
		}
	}
	return -1
}

// LiveVersions returns the number of occupied slots; used by tests and
// the slot-size ablation.
func (o *Object) LiveVersions() int {
	n := 0
	o.snap.Load().eachUsed(func(int) bool { n++; return true })
	return n
}

// Capacity returns the current version-array length.
func (o *Object) Capacity() int {
	return len(o.snap.Load().headers)
}

// GC reclaims all versions invisible at oldestActive and reports how many
// slots were freed. The table wrapper exposes this for explicit
// housekeeping; the normal path garbage-collects lazily inside Install.
func (o *Object) GC(oldestActive Timestamp) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.snap.Load()
	n := 0
	cur.eachUsed(func(i int) bool {
		h := cur.headers[i]
		if h.dts != 0 && h.dts <= oldestActive {
			n++
		}
		return true
	})
	if n == 0 {
		return 0
	}
	next := cur.clone()
	next.eachUsed(func(i int) bool {
		h := next.headers[i]
		if h.dts != 0 && h.dts <= oldestActive {
			next.clearUsed(i)
			next.values[i] = nil
		}
		return true
	})
	o.snap.Store(next)
	return n
}
