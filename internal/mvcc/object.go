// Package mvcc implements the multi-versioned state representation of the
// paper's Section 4.1: each key of a transactional table maps to an MVCC
// object holding an array of version slots. A slot is the classic MVCC
// triple <[cts, dts], value> — the commit timestamp and deletion
// timestamp delimit the version's lifetime. Garbage collection runs on
// demand: only when a writer needs a slot and none can be reclaimed do
// versions that no active transaction can see (dts <= OldestActiveVersion)
// get dropped; if nothing is reclaimable the array grows, so long-pinned
// snapshots trade memory for writer progress (the paper's single 64-bit
// UsedSlots word caps a key at 64 live versions, which is unsound when a
// reader can hold its pin across scheduler quanta — see the growth rule).
//
// Concurrency is read-copy-update with an append-in-place fast path.
// Because commit timestamps are handed out monotonically per object (the
// group-commit pipeline serializes installers), versions are stored in
// ascending cts order and a new version is an APPEND: the writer fills
// the next free slot and then publishes it with one atomic store of the
// element count. Terminating the predecessor mutates only its atomic dts
// word. Readers load the count, scan backward without any locks, and can
// never observe a torn slot: the slot's contents happen-before the count
// that exposes it. The array is cloned only when it is full (reclaim or
// grow) — the steady-state install allocates nothing but the value copy,
// where the original RCU design cloned the whole slot array on every
// install.
//
// A reader between the predecessor's termination and the count publish
// could in principle see "deleted" at rts >= cts — but no snapshot reader
// can hold rts >= cts before the commit publishes LastCTS (which happens
// after all installs), S2PL readers are excluded by the row lock, and
// BOCC's unsynchronized Infinity-readers already tolerate torn commits by
// construction (their validation aborts them — see bocc.go).
package mvcc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Timestamp is a logical commit timestamp drawn from the global atomic
// counter in the transaction context. Timestamp 0 is reserved: as a CTS it
// marks "never committed" (unused slot) and as a DTS it marks "still
// alive".
type Timestamp = uint64

// Infinity is a read timestamp greater than any commit timestamp; reading
// at Infinity returns the latest committed version (used by the locking
// and optimistic protocols, which do not read from snapshots).
const Infinity Timestamp = ^uint64(0)

// DefaultSlots is the initial version-array capacity. Arrays grow on
// demand (doubling) when garbage collection cannot reclaim a slot.
const DefaultSlots = 8

// slot is one version: the [cts, dts] header plus its value. cts and the
// value are written before the slot is published (via versionSet.n) and
// immutable afterwards; dts is atomic because termination mutates it in
// place while lock-free readers scan.
type slot struct {
	cts Timestamp
	dts atomic.Uint64
	val []byte
}

// versionSet is one generation of an object's version array: slots[0:n)
// hold versions in ascending cts order. The array itself is fixed-size;
// appends publish a new n, and only reclaim/growth replaces the set.
type versionSet struct {
	slots []slot
	n     atomic.Int64
}

// Object is the per-key version container. All methods are safe for
// concurrent use; reads are wait-free (atomic loads only), writers
// serialize on a short mutex.
type Object struct {
	mu     sync.Mutex // writers only: Install, InstallRecovered, GC
	snap   atomic.Pointer[versionSet]
	latest atomic.Uint64 // newest installed cts, deletions included
}

func newVersionSet(slots int) *versionSet {
	return &versionSet{slots: make([]slot, slots)}
}

// NewObject creates an object with initial capacity for slots versions
// (0 selects DefaultSlots; values are clamped to at least 1).
func NewObject(slots int) *Object {
	if slots == 0 {
		slots = DefaultSlots
	}
	if slots < 1 {
		slots = 1
	}
	o := &Object{}
	o.snap.Store(newVersionSet(slots))
	return o
}

// Read returns the version visible at read timestamp rts: the version
// with the greatest cts satisfying cts <= rts and (dts == 0 or dts > rts).
// ok is false when no version is visible (the key did not exist, or was
// deleted, in that snapshot). The returned slice is owned by the object
// and must not be modified. Read takes no locks.
//
// The backward scan is exact: versions ascend by cts, so the first slot
// from the top with cts <= rts is the only candidate — every older
// version was terminated at or before that slot's cts (dts chains), hence
// is invisible at rts too.
func (o *Object) Read(rts Timestamp) (value []byte, ok bool) {
	s := o.snap.Load()
	for i := int(s.n.Load()) - 1; i >= 0; i-- {
		sl := &s.slots[i]
		if sl.cts > rts {
			continue
		}
		if dts := sl.dts.Load(); dts == 0 || dts > rts {
			return sl.val, true
		}
		return nil, false
	}
	return nil, false
}

// LatestCTS returns the commit timestamp of the newest version, whether
// alive or deleted; the SI protocol's First-Committer-Wins rule compares
// it against the writer's snapshot.
func (o *Object) LatestCTS() Timestamp {
	return o.latest.Load()
}

// Install makes a new version visible: the currently live version (if
// any) gets dts = cts, and unless the write is a deletion a new slot
// <[cts, 0], value> is appended. oldestActive drives on-demand garbage
// collection when the array is full; if nothing is reclaimable the array
// grows, so Install never fails for capacity reasons. Install takes
// OWNERSHIP of value: the caller must not modify it afterwards (commit
// paths hand over their private write-set copies, so the hot path pays
// no extra copy). Concurrent readers observe the old or the new version
// count, never a torn slot.
//
// Install must only be called by a committing transaction holding the
// group commit latch, with cts greater than every previously installed
// cts for this object.
func (o *Object) Install(cts Timestamp, value []byte, delete bool, oldestActive Timestamp) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cts <= o.latest.Load() {
		return fmt.Errorf("mvcc: non-monotonic install: cts %d <= latest %d", cts, o.latest.Load())
	}
	cur := o.snap.Load()
	n := int(cur.n.Load())
	// Terminate the currently live version — by cts order it can only be
	// the newest slot.
	if n > 0 {
		if sl := &cur.slots[n-1]; sl.dts.Load() == 0 {
			sl.dts.Store(cts)
		}
	}
	o.latest.Store(cts)
	// A deletion installs no new version: the terminated predecessor
	// alone makes the key invisible to snapshots at or after cts.
	if !delete {
		next := cur
		if n == len(cur.slots) {
			next = cur.reclaimOrGrow(oldestActive)
			n = int(next.n.Load())
		}
		sl := &next.slots[n]
		sl.cts = cts
		sl.dts.Store(0)
		sl.val = value
		next.n.Store(int64(n + 1)) // publish: slot contents happen-before this
		if next != cur {
			o.snap.Store(next)
		}
	}
	return nil
}

// InstallRecovered seeds the object with one committed version during
// recovery, bypassing the monotonicity bookkeeping of live commits.
func (o *Object) InstallRecovered(cts Timestamp, value []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.snap.Load()
	sl := &cur.slots[0]
	sl.cts = cts
	sl.dts.Store(0)
	sl.val = append([]byte(nil), value...)
	if cur.n.Load() < 1 {
		cur.n.Store(1)
	}
	if cts > o.latest.Load() {
		o.latest.Store(cts)
	}
}

// reclaimOrGrow builds the successor of a full set: dead versions
// (dts <= oldestActive) are dropped; if none are, the array doubles.
// The caller publishes the result after appending into it.
func (s *versionSet) reclaimOrGrow(oldestActive Timestamp) *versionSet {
	n := int(s.n.Load())
	live := 0
	for i := 0; i < n; i++ {
		if dts := s.slots[i].dts.Load(); dts == 0 || dts > oldestActive {
			live++
		}
	}
	size := len(s.slots)
	if live == size {
		// Nothing reclaimable: grow (see package comment).
		size *= 2
	}
	next := newVersionSet(size)
	j := 0
	for i := 0; i < n; i++ {
		sl := &s.slots[i]
		dts := sl.dts.Load()
		if dts != 0 && dts <= oldestActive {
			continue
		}
		nsl := &next.slots[j]
		nsl.cts = sl.cts
		nsl.dts.Store(dts)
		nsl.val = sl.val
		j++
	}
	next.n.Store(int64(j))
	return next
}

// LiveVersions returns the number of occupied slots (reclaimable ones
// included); used by tests and the slot-size ablation.
func (o *Object) LiveVersions() int {
	return int(o.snap.Load().n.Load())
}

// Capacity returns the current version-array length.
func (o *Object) Capacity() int {
	return len(o.snap.Load().slots)
}

// GC reclaims all versions invisible at oldestActive and reports how many
// slots were freed. The table wrapper exposes this for explicit
// housekeeping; the normal path garbage-collects lazily inside Install.
func (o *Object) GC(oldestActive Timestamp) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	cur := o.snap.Load()
	n := int(cur.n.Load())
	dead := 0
	for i := 0; i < n; i++ {
		if dts := cur.slots[i].dts.Load(); dts != 0 && dts <= oldestActive {
			dead++
		}
	}
	if dead == 0 {
		return 0
	}
	next := newVersionSet(len(cur.slots))
	j := 0
	for i := 0; i < n; i++ {
		sl := &cur.slots[i]
		dts := sl.dts.Load()
		if dts != 0 && dts <= oldestActive {
			continue
		}
		nsl := &next.slots[j]
		nsl.cts = sl.cts
		nsl.dts.Store(dts)
		nsl.val = sl.val
		j++
	}
	next.n.Store(int64(j))
	o.snap.Store(next)
	return dead
}
