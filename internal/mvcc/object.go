// Package mvcc implements the multi-versioned state representation of the
// paper's Section 4.1: each key of a transactional table maps to an MVCC
// object holding an array of version slots. A slot is the classic MVCC
// triple <[cts, dts], value> — the commit timestamp and deletion
// timestamp delimit the version's lifetime. A UsedSlots bit vector tracks
// free slots, and garbage collection runs on demand: only when a writer
// needs a slot and none is free are versions that no active transaction
// can see (dts <= OldestActiveVersion) reclaimed.
//
// The paper manages UsedSlots with a single 64-bit word, implicitly
// capping each key at 64 live versions. That cap is unsound on a machine
// where a reader goroutine can hold its snapshot pin across scheduler
// quanta while a hot key is updated at full speed (hundreds of commits
// can land within one pin hold). This implementation therefore extends
// the bit vector to multiple words and grows the version array on demand
// — the GC rule is unchanged, so the array shrinks back to steady state
// as soon as the pinning snapshot finishes. Long-pinned snapshots trade
// memory (version bloat) for writer progress, the same trade Postgres
// makes.
package mvcc

import (
	"fmt"
	"math/bits"
	"sync"
)

// Timestamp is a logical commit timestamp drawn from the global atomic
// counter in the transaction context. Timestamp 0 is reserved: as a CTS it
// marks "never committed" (unused slot) and as a DTS it marks "still
// alive".
type Timestamp = uint64

// Infinity is a read timestamp greater than any commit timestamp; reading
// at Infinity returns the latest committed version (used by the locking
// and optimistic protocols, which do not read from snapshots).
const Infinity Timestamp = ^uint64(0)

// DefaultSlots is the initial version-array capacity. Arrays grow on
// demand (doubling) when garbage collection cannot reclaim a slot.
const DefaultSlots = 8

// header is the [cts, dts] pair of one version slot.
type header struct {
	cts Timestamp
	dts Timestamp
}

// Object is the per-key version container. All methods are safe for
// concurrent use; a short read-write latch synchronizes slot access,
// mirroring the paper's "lightweight locking strategy with read-write
// locks (latches)" for MVCC blocks.
type Object struct {
	mu sync.RWMutex
	// used is the UsedSlots bit vector: bit i set = slot i occupied.
	used    []uint64
	headers []header
	values  [][]byte
	// latest is the CTS of the newest committed version (0 if none);
	// the First-Committer-Wins check reads it without scanning slots.
	latest Timestamp
}

// NewObject creates an object with initial capacity for slots versions
// (0 selects DefaultSlots; values are clamped to at least 1).
func NewObject(slots int) *Object {
	if slots == 0 {
		slots = DefaultSlots
	}
	if slots < 1 {
		slots = 1
	}
	return &Object{
		used:    make([]uint64, (slots+63)/64),
		headers: make([]header, slots),
		values:  make([][]byte, slots),
	}
}

// eachUsed calls fn for every occupied slot index; fn returns false to
// stop. Caller holds o.mu (read or write).
func (o *Object) eachUsed(fn func(i int) bool) {
	for w, word := range o.used {
		for ; word != 0; word &= word - 1 {
			i := w*64 + bits.TrailingZeros64(word)
			if i >= len(o.headers) {
				return
			}
			if !fn(i) {
				return
			}
		}
	}
}

func (o *Object) setUsed(i int)   { o.used[i/64] |= 1 << uint(i%64) }
func (o *Object) clearUsed(i int) { o.used[i/64] &^= 1 << uint(i%64) }

// Read returns the version visible at read timestamp rts: the version
// with the greatest cts satisfying cts <= rts and (dts == 0 or dts > rts).
// ok is false when no version is visible (the key did not exist, or was
// deleted, in that snapshot). The returned slice is owned by the object
// and must not be modified.
func (o *Object) Read(rts Timestamp) (value []byte, ok bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	best := -1
	var bestCTS Timestamp
	o.eachUsed(func(i int) bool {
		h := o.headers[i]
		if h.cts <= rts && (h.dts == 0 || h.dts > rts) && h.cts >= bestCTS {
			best, bestCTS = i, h.cts
		}
		return true
	})
	if best < 0 {
		return nil, false
	}
	return o.values[best], true
}

// LatestCTS returns the commit timestamp of the newest version, whether
// alive or deleted; the SI protocol's First-Committer-Wins rule compares
// it against the writer's snapshot.
func (o *Object) LatestCTS() Timestamp {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.latest
}

// Install makes a new version visible: the currently live version (if
// any) gets dts = cts, and unless the write is a deletion a new slot
// <[cts, 0], value> is populated. oldestActive drives on-demand garbage
// collection when the array is full; if nothing is reclaimable the array
// grows, so Install never fails for capacity reasons. The value is
// copied.
//
// Install must only be called by a committing transaction holding the
// group commit latch, with cts greater than every previously installed
// cts for this object.
func (o *Object) Install(cts Timestamp, value []byte, delete bool, oldestActive Timestamp) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if cts <= o.latest {
		return fmt.Errorf("mvcc: non-monotonic install: cts %d <= latest %d", cts, o.latest)
	}
	// Terminate the currently live version.
	o.eachUsed(func(i int) bool {
		if o.headers[i].dts == 0 {
			o.headers[i].dts = cts
			return false
		}
		return true
	})
	o.latest = cts
	if delete {
		// A deletion installs no new version: the terminated predecessor
		// makes the key invisible to snapshots at or after cts.
		return nil
	}
	slot := o.allocSlot(oldestActive)
	o.headers[slot] = header{cts: cts, dts: 0}
	o.values[slot] = append(o.values[slot][:0], value...)
	o.setUsed(slot)
	return nil
}

// InstallRecovered seeds the object with one committed version during
// recovery, bypassing the monotonicity bookkeeping of live commits.
func (o *Object) InstallRecovered(cts Timestamp, value []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.headers[0] = header{cts: cts, dts: 0}
	o.values[0] = append([]byte(nil), value...)
	o.setUsed(0)
	if cts > o.latest {
		o.latest = cts
	}
}

// allocSlot finds a free slot, garbage-collecting or growing when needed.
// Caller holds o.mu.
func (o *Object) allocSlot(oldestActive Timestamp) int {
	if i := o.freeSlot(); i >= 0 {
		return i
	}
	// On-demand GC: reclaim versions dead before the oldest active
	// snapshot (dts != 0 and dts <= oldestActive).
	reclaimed := -1
	o.eachUsed(func(i int) bool {
		h := o.headers[i]
		if h.dts != 0 && h.dts <= oldestActive {
			o.clearUsed(i)
			o.values[i] = nil
			if reclaimed < 0 {
				reclaimed = i
			}
		}
		return true
	})
	if reclaimed >= 0 {
		return reclaimed
	}
	// Nothing reclaimable: grow the array (see package comment).
	old := len(o.headers)
	newLen := old * 2
	grown := make([]header, newLen)
	copy(grown, o.headers)
	o.headers = grown
	grownV := make([][]byte, newLen)
	copy(grownV, o.values)
	o.values = grownV
	for len(o.used)*64 < newLen {
		o.used = append(o.used, 0)
	}
	return old
}

// freeSlot returns the lowest unoccupied slot index, or -1 when full.
// Caller holds o.mu.
func (o *Object) freeSlot() int {
	for w, word := range o.used {
		free := ^word
		if free == 0 {
			continue
		}
		i := w*64 + bits.TrailingZeros64(free)
		if i < len(o.headers) {
			return i
		}
	}
	return -1
}

// LiveVersions returns the number of occupied slots; used by tests and
// the slot-size ablation.
func (o *Object) LiveVersions() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	o.eachUsed(func(int) bool { n++; return true })
	return n
}

// Capacity returns the current version-array length.
func (o *Object) Capacity() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.headers)
}

// GC reclaims all versions invisible at oldestActive and reports how many
// slots were freed. The table wrapper exposes this for explicit
// housekeeping; the normal path garbage-collects lazily inside Install.
func (o *Object) GC(oldestActive Timestamp) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	o.eachUsed(func(i int) bool {
		h := o.headers[i]
		if h.dts != 0 && h.dts <= oldestActive {
			o.clearUsed(i)
			o.values[i] = nil
			n++
		}
		return true
	})
	return n
}
