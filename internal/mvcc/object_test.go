package mvcc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyObjectInvisible(t *testing.T) {
	o := NewObject(4)
	if _, ok := o.Read(100); ok {
		t.Fatal("empty object returned a version")
	}
	if o.LatestCTS() != 0 {
		t.Fatal("latest CTS of empty object must be 0")
	}
}

func TestVisibilityWindow(t *testing.T) {
	o := NewObject(4)
	if err := o.Install(10, []byte("v10"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Install(20, []byte("v20"), false, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rts  Timestamp
		want string
		ok   bool
	}{
		{5, "", false},    // before first commit
		{10, "v10", true}, // exactly at cts: visible
		{15, "v10", true},
		{19, "v10", true},
		{20, "v20", true}, // superseded at 20
		{100, "v20", true},
	}
	for _, c := range cases {
		v, ok := o.Read(c.rts)
		if ok != c.ok || (ok && string(v) != c.want) {
			t.Errorf("Read(%d) = %q,%v; want %q,%v", c.rts, v, ok, c.want, c.ok)
		}
	}
	if o.LatestCTS() != 20 {
		t.Fatalf("latest = %d", o.LatestCTS())
	}
}

func TestDeleteTerminatesVisibility(t *testing.T) {
	o := NewObject(4)
	if err := o.Install(10, []byte("v"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Install(30, nil, true, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := o.Read(20); !ok || string(v) != "v" {
		t.Fatal("pre-delete snapshot must still see the value")
	}
	if _, ok := o.Read(30); ok {
		t.Fatal("snapshot at deletion timestamp must not see the value")
	}
	if o.LatestCTS() != 30 {
		t.Fatalf("deletion must advance latest CTS, got %d", o.LatestCTS())
	}
	// Re-insert after deletion.
	if err := o.Install(40, []byte("v2"), false, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := o.Read(45); !ok || string(v) != "v2" {
		t.Fatal("re-insert after delete failed")
	}
	if _, ok := o.Read(35); ok {
		t.Fatal("gap between delete and re-insert must be invisible")
	}
}

func TestNonMonotonicInstallRejected(t *testing.T) {
	o := NewObject(4)
	if err := o.Install(10, []byte("a"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Install(10, []byte("b"), false, 0); err == nil {
		t.Fatal("equal cts must be rejected")
	}
	if err := o.Install(5, []byte("b"), false, 0); err == nil {
		t.Fatal("lower cts must be rejected")
	}
}

func TestGCOnDemand(t *testing.T) {
	o := NewObject(2)
	if err := o.Install(1, []byte("a"), false, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Install(2, []byte("b"), false, 0); err != nil {
		t.Fatal(err)
	}
	// Array full. Next install with oldestActive=2 can reclaim version 1
	// (dts=2 <= 2).
	if err := o.Install(3, []byte("c"), false, 2); err != nil {
		t.Fatal(err)
	}
	if o.Capacity() != 2 {
		t.Fatalf("GC should have avoided growth, capacity = %d", o.Capacity())
	}
	if _, ok := o.Read(1); ok {
		t.Fatal("reclaimed version still readable")
	}
	if v, ok := o.Read(10); !ok || string(v) != "c" {
		t.Fatal("latest version lost")
	}
}

func TestGrowthWhenNothingReclaimable(t *testing.T) {
	o := NewObject(2)
	// oldestActive=0 pins everything.
	for cts := Timestamp(1); cts <= 5; cts++ {
		if err := o.Install(cts, []byte{byte(cts)}, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if o.Capacity() < 5 {
		t.Fatalf("array should have grown, capacity = %d", o.Capacity())
	}
	// Every historical snapshot still readable.
	for rts := Timestamp(1); rts <= 5; rts++ {
		v, ok := o.Read(rts)
		if !ok || v[0] != byte(rts) {
			t.Fatalf("snapshot %d lost: %v %v", rts, v, ok)
		}
	}
}

func TestGrowthBeyondOneBitVectorWord(t *testing.T) {
	// More than 64 pinned versions must be supported: the multi-word
	// UsedSlots vector grows with the array (see package comment).
	o := NewObject(4)
	const n = 200
	for cts := Timestamp(1); cts <= n; cts++ {
		if err := o.Install(cts, []byte{byte(cts)}, false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if o.LiveVersions() != n {
		t.Fatalf("live versions = %d, want %d", o.LiveVersions(), n)
	}
	for rts := Timestamp(1); rts <= n; rts += 17 {
		v, ok := o.Read(rts)
		if !ok || v[0] != byte(rts) {
			t.Fatalf("snapshot %d lost", rts)
		}
	}
	// Once the pin lifts, GC reclaims everything but the live version
	// and the array stops growing.
	if got := o.GC(n); got != n-1 {
		t.Fatalf("GC reclaimed %d, want %d", got, n-1)
	}
	if o.LiveVersions() != 1 {
		t.Fatalf("live after GC = %d", o.LiveVersions())
	}
}

func TestExplicitGC(t *testing.T) {
	o := NewObject(8)
	for cts := Timestamp(1); cts <= 5; cts++ {
		if err := o.Install(cts, []byte("v"), false, 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := o.GC(3); n != 2 { // versions with dts 2 and 3
		t.Fatalf("GC(3) reclaimed %d, want 2", n)
	}
	if n := o.GC(3); n != 0 {
		t.Fatalf("second GC reclaimed %d", n)
	}
	if o.LiveVersions() != 3 {
		t.Fatalf("live versions = %d", o.LiveVersions())
	}
	if v, ok := o.Read(Infinity); !ok || string(v) != "v" {
		t.Fatal("live version lost by GC")
	}
}

// TestInstallTakesOwnership documents the Install aliasing contract: the
// object adopts the caller's buffer (no defensive copy on the hot path),
// so the commit paths hand over their private write-set copies and the
// caller must not touch the buffer afterwards.
func TestInstallTakesOwnership(t *testing.T) {
	o := NewObject(4)
	buf := []byte("orig")
	if err := o.Install(1, buf, false, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Read(1); &v[0] != &buf[0] {
		t.Fatal("Install copied the value; expected ownership transfer")
	}
}

func TestInstallRecovered(t *testing.T) {
	o := NewObject(4)
	o.InstallRecovered(7, []byte("r"))
	if v, ok := o.Read(7); !ok || string(v) != "r" {
		t.Fatal("recovered version not visible")
	}
	if _, ok := o.Read(6); ok {
		t.Fatal("recovered version visible too early")
	}
	if o.LatestCTS() != 7 {
		t.Fatalf("latest = %d", o.LatestCTS())
	}
	if err := o.Install(8, []byte("n"), false, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Read(Infinity); string(v) != "n" {
		t.Fatal("post-recovery install broken")
	}
}

func TestSlotClamping(t *testing.T) {
	if NewObject(0).Capacity() != DefaultSlots {
		t.Fatal("0 should select DefaultSlots")
	}
	if NewObject(-3).Capacity() != 1 {
		t.Fatal("negative should clamp to 1")
	}
	if NewObject(1000).Capacity() != 1000 {
		t.Fatal("large initial capacity should be honored")
	}
}

// TestPropertyVisibility builds a random committed history and checks the
// fundamental snapshot-isolation invariant on the object level: a read at
// rts sees exactly the version whose [cts, dts) interval contains rts.
func TestPropertyVisibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := NewObject(4)
		type event struct {
			cts    Timestamp
			val    string
			delete bool
		}
		var history []event
		cts := Timestamp(0)
		for i := 0; i < 30; i++ {
			cts += Timestamp(rng.Intn(5) + 1)
			ev := event{cts: cts, val: fmt.Sprintf("v%d", cts), delete: rng.Intn(4) == 0}
			// oldestActive = 0 pins everything so every snapshot stays checkable.
			var err error
			if ev.delete {
				err = o.Install(cts, nil, true, 0)
			} else {
				err = o.Install(cts, []byte(ev.val), false, 0)
			}
			if err != nil {
				return false
			}
			history = append(history, ev)
		}
		// Reference model: replay history for arbitrary rts.
		for probe := 0; probe < 50; probe++ {
			rts := Timestamp(rng.Intn(int(cts) + 3))
			var want string
			var visible bool
			for _, ev := range history {
				if ev.cts <= rts {
					if ev.delete {
						visible = false
					} else {
						visible, want = true, ev.val
					}
				}
			}
			v, ok := o.Read(rts)
			if ok != visible || (ok && string(v) != want) {
				t.Logf("rts=%d: got %q,%v want %q,%v", rts, v, ok, want, visible)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersDuringInstalls hammers an object with concurrent
// snapshot reads while versions are installed, asserting that each reader
// observes internally consistent values (value matches the snapshot).
func TestConcurrentReadersDuringInstalls(t *testing.T) {
	o := NewObject(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				latest := o.LatestCTS()
				if v, ok := o.Read(latest); ok {
					// Value encodes its cts; it must be <= our snapshot.
					var cts Timestamp
					fmt.Sscanf(string(v), "v%d", &cts)
					if cts > latest {
						t.Errorf("read from the future: %q at rts %d", v, latest)
						return
					}
				}
			}
		}()
	}
	for cts := Timestamp(1); cts <= 3000; cts++ {
		// oldestActive tracks closely so GC constantly runs.
		old := Timestamp(0)
		if cts > 4 {
			old = cts - 4
		}
		if err := o.Install(cts, []byte(fmt.Sprintf("v%d", cts)), false, old); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkObjectRead(b *testing.B) {
	o := NewObject(8)
	for cts := Timestamp(1); cts <= 8; cts++ {
		if err := o.Install(cts, []byte("value-of-20-bytes!!"), false, cts-1); err != nil {
			b.Fatal(err)
		}
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.Read(5)
		}
	})
}

func BenchmarkObjectInstall(b *testing.B) {
	o := NewObject(8)
	val := []byte("value-of-20-bytes!!")
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		cts := Timestamp(i)
		old := Timestamp(0)
		if cts > 2 {
			old = cts - 2
		}
		if err := o.Install(cts, val, false, old); err != nil {
			b.Fatal(err)
		}
	}
}
