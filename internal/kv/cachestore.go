package kv

import (
	"container/list"
	"sync"
)

// DefaultCacheEntries is the cache tier's entry capacity when the spec
// gives none ("cache" instead of "cache(256)").
const DefaultCacheEntries = 256

// Cache is a chainable key-level read-through/write-behind tier over an
// inner store — the generalization of the LSM block cache to a store
// adapter: reads fill the cache from the inner store, writes stage in
// the cache and reach the inner store on eviction, on Scan, and — in
// one atomic inner Apply — at every durability point. That last rule is
// what keeps group-commit semantics intact over a cache tier: an
// Apply(sync=true) returns only after every write-behind entry staged
// so far, plus the batch itself, is durable below. Batches applied with
// sync=false stay write-behind, so a chain like cache+mem defers inner
// writes until eviction or scan.
//
// The cache owns the inner store: closing the Cache flushes the dirty
// set and closes the inner store.
type Cache struct {
	inner Store

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	cap     int
	dirty   int // entries with unflushed writes
	closed  bool

	hits, misses, evictions, dirtyFlushed int64
}

// cacheEntry is one resident key. A dirty entry is a write the inner
// store has not seen yet; del marks a staged delete (val nil). Clean
// deletes are never kept — once a delete is flushed the entry leaves
// the cache (no negative caching of flushed state).
type cacheEntry struct {
	key   string
	val   []byte
	del   bool
	dirty bool
}

// NewCache wraps inner in a cache tier holding up to capEntries keys.
// A capEntries < 1 falls back to DefaultCacheEntries.
func NewCache(inner Store, capEntries int) *Cache {
	if capEntries < 1 {
		capEntries = DefaultCacheEntries
	}
	return &Cache{
		inner:   inner,
		entries: make(map[string]*list.Element, capEntries),
		lru:     list.New(),
		cap:     capEntries,
	}
}

// Capabilities derive entirely from the inner store: the flush-at-sync
// rule means the tier weakens no durability property, and it adds none.
func (c *Cache) Capabilities() Capabilities { return CapabilitiesOf(c.inner) }

// CacheStats is a point-in-time snapshot of the tier's counters.
type CacheStats struct {
	Hits, Misses int64 // Get lookups served from / past the cache
	Evictions    int64 // entries dropped for capacity
	DirtyFlushed int64 // write-behind ops pushed to the inner store
	Resident     int   // keys currently cached
	Dirty        int   // resident keys with unflushed writes
}

// Stats returns the tier's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		DirtyFlushed: c.dirtyFlushed,
		Resident:     len(c.entries),
		Dirty:        c.dirty,
	}
}

// Get serves from the cache when resident (a staged delete is a
// resident "not found"), otherwise reads through the inner store and
// caches the result.
func (c *Cache) Get(key []byte) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, ErrClosed
	}
	if el, ok := c.entries[string(key)]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		if e.del {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	c.misses++
	val, found, err := c.inner.Get(key)
	if err != nil || !found {
		return nil, false, err
	}
	c.insertLocked(string(key), val, false, false)
	if err := c.evictLocked(); err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Put stages the write in the cache; the inner store sees it at the
// next durability point, scan, or eviction.
func (c *Cache) Put(key, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.insertLocked(string(key), cloneBytes(value), false, true)
	return c.evictLocked()
}

// Delete stages a delete (see Put).
func (c *Cache) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.insertLocked(string(key), nil, true, true)
	return c.evictLocked()
}

// Apply stages the batch. With sync=false the ops stay write-behind;
// with sync=true the whole dirty set — the batch included — is pushed
// to the inner store in one synchronous inner Apply, preserving the
// caller's durability point.
func (c *Cache) Apply(b *Batch, sync bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	for _, op := range b.Ops() {
		// Keys are copied (the group-commit path reuses its key arena
		// across batches); Owned values are immutable and retained by
		// reference, matching the in-memory store.
		if op.Kind == OpDelete {
			c.insertLocked(string(op.Key), nil, true, true)
		} else {
			c.insertLocked(string(op.Key), op.Value, false, true)
		}
	}
	if sync {
		if err := c.flushLocked(true); err != nil {
			return err
		}
	}
	return c.evictLocked()
}

// Scan flushes the write-behind set (non-durably) and scans the inner
// store, which then holds every staged write.
func (c *Cache) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if err := c.flushLocked(false); err != nil {
		c.mu.Unlock()
		return err
	}
	if err := c.evictLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	// The inner scan runs outside the tier lock so resident reads keep
	// serving; writes racing the scan are unordered with it either way.
	return c.inner.Scan(start, end, fn)
}

// Sync flushes the write-behind set and syncs the inner store.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.flushLocked(true); err != nil {
		return err
	}
	return c.evictLocked()
}

// Close flushes the write-behind set and closes the inner store.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	flushErr := c.flushLocked(false)
	c.closed = true
	c.entries = nil
	c.lru = nil
	if err := c.inner.Close(); err != nil {
		return err
	}
	return flushErr
}

// insertLocked upserts a resident entry at the MRU position.
func (c *Cache) insertLocked(key string, val []byte, del, dirty bool) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if dirty && !e.dirty {
			c.dirty++
		} else if !dirty && e.dirty {
			// A clean read-through fill never overwrites staged state; the
			// only clean insert path is a Get miss, which cannot race a
			// resident dirty entry under the lock.
			dirty = true
		}
		e.val, e.del, e.dirty = val, del, dirty
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, val: val, del: del, dirty: dirty}
	c.entries[key] = c.lru.PushFront(e)
	if dirty {
		c.dirty++
	}
}

// evictLocked drops LRU entries past capacity, writing dirty victims
// back to the inner store (non-durably) first.
func (c *Cache) evictLocked() error {
	for len(c.entries) > c.cap {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		if e.dirty {
			var b Batch
			if e.del {
				b.DeleteOwned([]byte(e.key))
			} else {
				b.PutOwned([]byte(e.key), e.val)
			}
			if err := c.inner.Apply(&b, false); err != nil {
				return err
			}
			c.dirty--
			c.dirtyFlushed++
		}
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.evictions++
	}
	return nil
}

// flushLocked pushes the whole write-behind set to the inner store in
// one atomic Apply (synchronous when sync is true: that Apply is the
// caller's durability point). Flushed puts stay resident and clean;
// flushed deletes leave the cache.
func (c *Cache) flushLocked(sync bool) error {
	if c.dirty == 0 {
		if sync {
			return c.inner.Sync()
		}
		return nil
	}
	b := NewBatch(c.dirty)
	flushed := make([]*list.Element, 0, c.dirty)
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if !e.dirty {
			continue
		}
		// Fresh key bytes per flush (the entry's string key backs the
		// map); values are immutable once staged, so handing them over
		// by reference is safe.
		if e.del {
			b.DeleteOwned([]byte(e.key))
		} else {
			b.PutOwned([]byte(e.key), e.val)
		}
		flushed = append(flushed, el)
	}
	if err := c.inner.Apply(b, sync); err != nil {
		return err
	}
	c.dirtyFlushed += int64(len(flushed))
	for _, el := range flushed {
		e := el.Value.(*cacheEntry)
		if e.del {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		} else {
			e.dirty = false
		}
	}
	c.dirty = 0
	return nil
}
