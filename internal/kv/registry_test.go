package kv_test

import (
	"strings"
	"testing"

	"sistream/internal/kv"
	_ "sistream/internal/lsm" // registers the "lsm" driver
)

func TestSpecParsingErrors(t *testing.T) {
	for _, spec := range []string{
		"",               // empty
		"  ",             // blank
		"+mem",           // empty layer
		"mem+",           // empty layer
		"nosuch",         // unknown driver
		"cache",          // wrapper as terminal
		"fault",          // wrapper as terminal
		"mem+mem",        // terminal wrapping
		"mem+cache+mem",  // terminal in wrapper position
		"cache(4",        // unclosed argument
		"mem(x)",         // mem takes no arg
		"fault(x)+mem",   // fault takes no arg
		"cache(0)+mem",   // zero capacity
		"cache(-1)+mem",  // negative capacity
		"cache(abc)+mem", // non-numeric capacity
		"(4)+mem",        // missing driver name
	} {
		if _, err := kv.Open(spec, kv.OpenOptions{}); err == nil {
			t.Errorf("Open(%q) unexpectedly succeeded", spec)
		}
	}
	// SpecCaps must reject the structural errors without opening anything.
	if _, err := kv.SpecCaps("cache"); err == nil {
		t.Error("SpecCaps accepted a wrapper-terminated spec")
	}
	if _, err := kv.SpecCaps("nosuch"); err == nil {
		t.Error("SpecCaps accepted an unknown driver")
	}
	// lsm without any directory fails at Open time, not parse time.
	if _, err := kv.SpecCaps("lsm"); err != nil {
		t.Errorf("SpecCaps(lsm) = %v, want nil", err)
	}
	if _, err := kv.Open("lsm", kv.OpenOptions{}); err == nil {
		t.Error("Open(lsm) without a directory unexpectedly succeeded")
	}
}

func TestSpecCapabilities(t *testing.T) {
	cases := []struct {
		spec string
		want kv.Capabilities
	}{
		{"mem", kv.Capabilities{}},
		{"lsm", kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}},
		{"cache(8)+mem", kv.Capabilities{}},
		{"cache(8)+lsm", kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}},
		{"fault+mem", kv.Capabilities{Durable: true, SupportsSync: true}},
		{"fault+lsm", kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}},
		{"cache(8)+fault+mem", kv.Capabilities{Durable: true, SupportsSync: true}},
	}
	for _, c := range cases {
		got, err := kv.SpecCaps(c.spec)
		if err != nil {
			t.Fatalf("SpecCaps(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("SpecCaps(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	// The composed caps must match what the opened chain itself reports.
	st, err := kv.Open("cache(8)+fault+mem", kv.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Capabilities(); got != (kv.Capabilities{Durable: true, SupportsSync: true}) {
		t.Errorf("opened caps = %+v", got)
	}
	if got := kv.CapabilitiesOf(st); got != st.Capabilities() {
		t.Errorf("CapabilitiesOf disagrees with OpenedStore: %+v", got)
	}
}

func TestCapabilitiesOfDefaults(t *testing.T) {
	if got := kv.CapabilitiesOf(kv.NewMem()); got != (kv.Capabilities{}) {
		t.Errorf("mem caps = %+v, want zero", got)
	}
	// An unknown store keeps the pre-registry pass-through behavior.
	unknown := struct{ kv.Store }{kv.NewMem()}
	want := kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}
	if got := kv.CapabilitiesOf(unknown); got != want {
		t.Errorf("unknown-store caps = %+v, want %+v", got, want)
	}
}

func TestOpenChainLayers(t *testing.T) {
	st, err := kv.Open("cache(4)+fault+mem", kv.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Spec() != "cache(4)+fault+mem" {
		t.Errorf("Spec() = %q", st.Spec())
	}
	layers := st.Layers()
	if len(layers) != 3 {
		t.Fatalf("Layers() = %d stores, want 3", len(layers))
	}
	if _, ok := layers[0].(*kv.Cache); !ok {
		t.Errorf("outermost layer is %T, want *kv.Cache", layers[0])
	}
	if st.CacheLayer() == nil {
		t.Error("CacheLayer() = nil")
	}
	if st.FaultLayer() == nil {
		t.Error("FaultLayer() = nil")
	}
	if st.FindLayer(func(s kv.Store) bool { _, ok := s.(*kv.Mem); return ok }) == nil {
		t.Error("FindLayer found no *kv.Mem terminal")
	}
	// A plain spec has no cache or fault layer to find.
	plain, err := kv.Open("mem", kv.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.CacheLayer() != nil || plain.FaultLayer() != nil {
		t.Error("mem chain reports cache/fault layers")
	}
}

func TestOpenLSMSpecForms(t *testing.T) {
	// Inline dir and OpenOptions.Dir must both work.
	inline, err := kv.Open("lsm:"+t.TempDir(), kv.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inline.Close(); err != nil {
		t.Fatal(err)
	}
	viaOpt, err := kv.Open("lsm", kv.OpenOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := viaOpt.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDriversListed(t *testing.T) {
	names := strings.Join(kv.Drivers(), ",")
	for _, want := range []string{"mem", "lsm", "cache", "fault"} {
		if !strings.Contains(names, want) {
			t.Errorf("Drivers() = %s, missing %q", names, want)
		}
	}
}
