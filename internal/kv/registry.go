package kv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file implements the backend adapter registry behind the paper's
// Section 4.1 design decision that "any existing backend structure with a
// key-value mapping can be used" as the base table. Backends register
// themselves by name (the LSM store self-registers as "lsm"; this package
// registers "mem", "fault" and "cache"), declare capability flags, and
// are resolved purely by spec string — a chain of adapters from the
// outermost wrapper to the terminal store:
//
//	mem                    volatile in-memory store
//	lsm:<dir>              persistent LSM store rooted at <dir>
//	lsm                    ... rooted at OpenOptions.Dir
//	cache(256)+lsm:<dir>   256-entry read-through/write-behind cache tier
//	                       over the LSM store
//	fault+mem              fault-injection wrapper over the memory store
//
// Layers are separated by '+', outermost first; every layer but the last
// must be a wrapper (Driver.Wrapper), and the last must be a terminal
// store. A layer's argument is written either as name(arg) or name:arg.

// Capabilities are the per-driver capability flags a backend declares at
// registration. The flags of a chained spec compose outward: each
// wrapper derives its flags from the layer it wraps (Driver.Caps).
type Capabilities struct {
	// Durable: data covered by a successful durability point (an Apply
	// with sync=true, or Sync) survives a process crash — for the fault
	// wrapper, a simulated one.
	Durable bool
	// Persistent: the backend is rooted in a data directory (its spec
	// takes a path argument, or OpenOptions.Dir supplies one).
	Persistent bool
	// SupportsSync: Apply(sync=true) and Sync are real durability points.
	// The group-commit leader consults this flag: a backend without it
	// (the memory store) never gets a sync point requested — the commit
	// path skips the fsync honestly instead of asking for one the
	// backend would silently ignore.
	SupportsSync bool
}

// Capable is implemented by stores that declare their capability flags.
// Wrappers derive theirs from the wrapped store, so CapabilitiesOf on
// the outermost store of a hand-built chain reports the chain's flags.
type Capable interface {
	Capabilities() Capabilities
}

// CapabilitiesOf returns the store's declared capability flags. Stores
// that do not implement Capable get the conservative default — durable,
// persistent, sync-supporting — so an unknown third-party store keeps
// the pre-registry behavior of having sync requests passed through.
func CapabilitiesOf(s Store) Capabilities {
	if c, ok := s.(Capable); ok {
		return c.Capabilities()
	}
	return Capabilities{Durable: true, Persistent: true, SupportsSync: true}
}

// Driver is one registered backend adapter.
type Driver struct {
	// Open instantiates the store. arg is the layer's spec argument
	// ("lsm:/data" passes "/data", "cache(256)" passes "256", "" when
	// absent); opt carries chain-wide defaults such as the data
	// directory. Wrapper drivers receive the already-opened next store
	// in the chain as inner and own it from then on (their Close must
	// close it); terminal drivers receive nil.
	Open func(arg string, opt OpenOptions, inner Store) (Store, error)
	// Wrapper marks chainable drivers that require an inner store.
	Wrapper bool
	// Caps derives the driver's capability flags. Terminal drivers are
	// called with the zero Capabilities; wrappers with the flags of the
	// chain they wrap.
	Caps func(inner Capabilities) Capabilities
}

var (
	driverMu sync.RWMutex
	drivers  = make(map[string]Driver)
)

// Register makes a backend adapter available to Open under name. It
// panics on a duplicate or invalid registration — registrations happen
// in package init functions, where a conflict is a programming error.
func Register(name string, d Driver) {
	driverMu.Lock()
	defer driverMu.Unlock()
	if name == "" || strings.ContainsAny(name, "+():") {
		panic(fmt.Sprintf("kv: invalid driver name %q", name))
	}
	if d.Open == nil || d.Caps == nil {
		panic(fmt.Sprintf("kv: driver %q missing Open or Caps", name))
	}
	if _, dup := drivers[name]; dup {
		panic(fmt.Sprintf("kv: driver %q registered twice", name))
	}
	drivers[name] = d
}

// Drivers returns the registered backend names, sorted.
func Drivers() []string {
	driverMu.RLock()
	defer driverMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for name := range drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func lookup(name string) (Driver, bool) {
	driverMu.RLock()
	defer driverMu.RUnlock()
	d, ok := drivers[name]
	return d, ok
}

// specLayer is one parsed layer of a chain spec.
type specLayer struct {
	name string
	arg  string
}

// parseSpec splits a chain spec into layers, outermost first. It checks
// syntax only; driver existence and wrapper/terminal positions are
// checked by resolveSpec.
func parseSpec(spec string) ([]specLayer, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("kv: empty backend spec")
	}
	parts := strings.Split(spec, "+")
	layers := make([]specLayer, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		var l specLayer
		switch {
		case part == "":
			return nil, fmt.Errorf("kv: empty layer in backend spec %q", spec)
		case strings.Contains(part, "("):
			open := strings.Index(part, "(")
			if !strings.HasSuffix(part, ")") {
				return nil, fmt.Errorf("kv: unclosed argument in backend spec layer %q", part)
			}
			l.name = part[:open]
			l.arg = part[open+1 : len(part)-1]
		case strings.Contains(part, ":"):
			colon := strings.Index(part, ":")
			l.name = part[:colon]
			l.arg = part[colon+1:]
		default:
			l.name = part
		}
		if l.name == "" {
			return nil, fmt.Errorf("kv: missing driver name in backend spec layer %q", part)
		}
		layers = append(layers, l)
	}
	return layers, nil
}

// resolveSpec parses the spec and looks up every layer's driver,
// validating wrapper/terminal positions.
func resolveSpec(spec string) ([]specLayer, []Driver, error) {
	layers, err := parseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	ds := make([]Driver, len(layers))
	for i, l := range layers {
		d, ok := lookup(l.name)
		if !ok {
			return nil, nil, fmt.Errorf("kv: unknown backend driver %q in spec %q (registered: %s)",
				l.name, spec, strings.Join(Drivers(), ", "))
		}
		terminal := i == len(layers)-1
		if terminal && d.Wrapper {
			return nil, nil, fmt.Errorf("kv: backend spec %q ends in wrapper %q (a chain needs a terminal store, e.g. %q)",
				spec, l.name, spec+"+mem")
		}
		if !terminal && !d.Wrapper {
			return nil, nil, fmt.Errorf("kv: terminal store %q cannot wrap %q in spec %q", l.name, layers[i+1].name, spec)
		}
		ds[i] = d
	}
	return layers, ds, nil
}

// SpecCaps validates a backend spec against the registry — every layer's
// driver exists, wrappers wrap and the chain ends in a terminal store —
// and returns the chain's composed capability flags without opening
// anything.
func SpecCaps(spec string) (Capabilities, error) {
	_, ds, err := resolveSpec(spec)
	if err != nil {
		return Capabilities{}, err
	}
	var caps Capabilities
	for i := len(ds) - 1; i >= 0; i-- {
		caps = ds[i].Caps(caps)
	}
	return caps, nil
}

// OpenOptions carries chain-wide defaults for Open.
type OpenOptions struct {
	// Dir is the default data directory for persistent layers whose spec
	// carries no explicit path argument ("lsm" instead of "lsm:<dir>").
	Dir string
}

// OpenedStore is the store resolved from a backend spec: the outermost
// store of the chain, its composed capability flags, and access to the
// individual layers for callers that read per-tier counters (the cache
// tier's hit/miss statistics, the fault wrapper's scripting surface).
type OpenedStore struct {
	Store
	spec   string
	caps   Capabilities
	layers []Store
}

// Spec returns the spec string the store was opened from.
func (o *OpenedStore) Spec() string { return o.spec }

// Capabilities returns the chain's composed capability flags.
func (o *OpenedStore) Capabilities() Capabilities { return o.caps }

// Layers returns the chain's stores, outermost first. Closing the
// OpenedStore closes the whole chain (each wrapper owns its inner
// store); the layers are exposed for reading statistics and scripting
// faults, not for lifecycle management.
func (o *OpenedStore) Layers() []Store { return append([]Store(nil), o.layers...) }

// Open resolves a backend spec through the adapter registry and opens
// the chain, innermost store first. On error nothing stays open.
func Open(spec string, opt OpenOptions) (*OpenedStore, error) {
	layers, ds, err := resolveSpec(spec)
	if err != nil {
		return nil, err
	}
	var (
		inner  Store
		caps   Capabilities
		opened = make([]Store, len(layers))
	)
	for i := len(layers) - 1; i >= 0; i-- {
		s, err := ds[i].Open(layers[i].arg, opt, inner)
		if err != nil {
			if inner != nil {
				// The failed layer never took ownership of the chain
				// built so far; closing the innermost opened store
				// cascades through the wrappers above it.
				_ = inner.Close()
			}
			return nil, fmt.Errorf("kv: open %q layer %q: %w", spec, layers[i].name, err)
		}
		inner = s
		opened[i] = s
		caps = ds[i].Caps(caps)
	}
	return &OpenedStore{Store: inner, spec: spec, caps: caps, layers: opened}, nil
}

// FindLayer returns the first layer of the chain (outermost first) that
// satisfies the probe, or nil. It is how callers reach a tier's extra
// surface through the Store interface — the cache tier's counters, the
// fault wrapper's scripting methods:
//
//	if c, ok := kv.FindLayer(st, func(s kv.Store) bool { _, ok := s.(*kv.Cache); return ok }).(*kv.Cache); ok { ... }
//
// Prefer the typed helpers CacheLayer and FaultLayer for those two.
func (o *OpenedStore) FindLayer(probe func(Store) bool) Store {
	for _, s := range o.layers {
		if probe(s) {
			return s
		}
	}
	return nil
}

// CacheLayer returns the chain's outermost cache tier, or nil.
func (o *OpenedStore) CacheLayer() *Cache {
	for _, s := range o.layers {
		if c, ok := s.(*Cache); ok {
			return c
		}
	}
	return nil
}

// FaultLayer returns the chain's outermost fault wrapper, or nil.
func (o *OpenedStore) FaultLayer() *Fault {
	for _, s := range o.layers {
		if f, ok := s.(*Fault); ok {
			return f
		}
	}
	return nil
}

// The drivers this package ships: the terminal memory store and the two
// chainable wrappers. The LSM store registers itself as "lsm" from
// internal/lsm (import it — directly or transitively — to use lsm
// specs).
func init() {
	Register("mem", Driver{
		Open: func(arg string, _ OpenOptions, _ Store) (Store, error) {
			if arg != "" {
				return nil, fmt.Errorf("mem driver takes no argument (got %q)", arg)
			}
			return NewMem(), nil
		},
		Caps: func(Capabilities) Capabilities { return Capabilities{} },
	})
	Register("fault", Driver{
		Wrapper: true,
		Open: func(arg string, _ OpenOptions, inner Store) (Store, error) {
			if arg != "" {
				return nil, fmt.Errorf("fault driver takes no argument (got %q)", arg)
			}
			return NewFault(inner), nil
		},
		Caps: func(inner Capabilities) Capabilities {
			// The wrapper's durable image + volatile overlay make
			// durability points meaningful over ANY inner store — that is
			// the point of the simulation: crashes are simulated too, so
			// "survives a (simulated) crash" holds even over mem.
			return Capabilities{Durable: true, Persistent: inner.Persistent, SupportsSync: true}
		},
	})
	Register("cache", Driver{
		Wrapper: true,
		Open: func(arg string, _ OpenOptions, inner Store) (Store, error) {
			capacity := DefaultCacheEntries
			if arg != "" {
				n, err := parsePositiveInt(arg)
				if err != nil {
					return nil, fmt.Errorf("cache driver wants a positive entry capacity, got %q", arg)
				}
				capacity = n
			}
			return NewCache(inner, capacity), nil
		},
		// Read-through/write-behind is flushed at every durability point,
		// so the tier changes no capability of the chain below it.
		Caps: func(inner Capabilities) Capabilities { return inner },
	})
}

// parsePositiveInt parses a strictly positive decimal integer without
// pulling in strconv's error wrapping for a nicer message upstream.
func parsePositiveInt(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a number")
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, fmt.Errorf("out of range")
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("zero")
	}
	return n, nil
}
