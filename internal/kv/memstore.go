package kv

import (
	"bytes"
	"sort"
	"sync"
)

// memShards splits the key space to reduce mutex contention between the
// continuous writer and concurrent ad-hoc readers. Must be a power of two.
const memShards = 16

// Mem is an in-memory Store backed by sharded hash maps. It is volatile:
// Sync is a no-op and nothing survives Close. It serves unit tests and the
// memory-vs-LSM backend ablation (experiment A4 in DESIGN.md).
type Mem struct {
	shards [memShards]memShard
	closed sync.RWMutex // write-locked only by Close
	dead   bool
}

type memShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// Capabilities: the memory store is volatile — nothing survives the
// process, there is no data directory, and a sync request has nothing
// to sync (Apply's sync flag and Sync are no-ops). Declaring
// SupportsSync false lets the group-commit leader skip the sync point
// instead of requesting one the store would ignore.
func (s *Mem) Capabilities() Capabilities {
	return Capabilities{}
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	s := &Mem{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func shardFor(key []byte) int {
	// FNV-1a, inlined to avoid interface allocations on the hot path.
	var h uint32 = 2166136261
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return int(h & (memShards - 1))
}

func (s *Mem) check() error {
	if s.dead {
		return ErrClosed
	}
	return nil
}

// Get implements Store.
func (s *Mem) Get(key []byte) ([]byte, bool, error) {
	s.closed.RLock()
	defer s.closed.RUnlock()
	if err := s.check(); err != nil {
		return nil, false, err
	}
	sh := &s.shards[shardFor(key)]
	sh.mu.RLock()
	v, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	return v, ok, nil
}

// Put implements Store.
func (s *Mem) Put(key, value []byte) error {
	s.closed.RLock()
	defer s.closed.RUnlock()
	if err := s.check(); err != nil {
		return err
	}
	sh := &s.shards[shardFor(key)]
	sh.mu.Lock()
	sh.m[string(key)] = cloneBytes(value)
	sh.mu.Unlock()
	return nil
}

// Delete implements Store.
func (s *Mem) Delete(key []byte) error {
	s.closed.RLock()
	defer s.closed.RUnlock()
	if err := s.check(); err != nil {
		return err
	}
	sh := &s.shards[shardFor(key)]
	sh.mu.Lock()
	delete(sh.m, string(key))
	sh.mu.Unlock()
	return nil
}

// applyScratch recycles the per-shard grouping buffers of Apply so the
// write hot path does not regrow 16 op slices on every batch.
var applyScratch = sync.Pool{New: func() any { return new([memShards][]Op) }}

// Apply implements Store. The batch is applied under per-shard locks in
// shard order, so concurrent readers of a single key never observe a torn
// batch for that key; cross-key atomicity for readers is provided a level
// up by the MVCC table, which is the component responsible for isolation.
func (s *Mem) Apply(b *Batch, _ bool) error {
	s.closed.RLock()
	defer s.closed.RUnlock()
	if err := s.check(); err != nil {
		return err
	}
	// Group ops per shard to take each lock once.
	perShard := applyScratch.Get().(*[memShards][]Op)
	for _, op := range b.Ops() {
		i := shardFor(op.Key)
		perShard[i] = append(perShard[i], op)
	}
	for i := range perShard {
		if len(perShard[i]) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, op := range perShard[i] {
			if op.Kind == OpPut {
				sh.m[string(op.Key)] = op.Value
			} else {
				delete(sh.m, string(op.Key))
			}
		}
		sh.mu.Unlock()
	}
	for i := range perShard {
		// Drop the op references (they pin key/value buffers) but keep
		// the grown backing arrays for the next batch.
		clear(perShard[i])
		perShard[i] = perShard[i][:0]
	}
	applyScratch.Put(perShard)
	return nil
}

// Scan implements Store. It snapshots the matching keys under shard read
// locks, sorts them, and then yields; mutations concurrent with Scan may
// or may not be observed, which matches the interface contract for a
// non-transactional base table.
func (s *Mem) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	s.closed.RLock()
	if err := s.check(); err != nil {
		s.closed.RUnlock()
		return err
	}
	type pair struct {
		k string
		v []byte
	}
	var pairs []pair
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if start != nil && k < string(start) {
				continue
			}
			if end != nil && k >= string(end) {
				continue
			}
			pairs = append(pairs, pair{k, v})
		}
		sh.mu.RUnlock()
	}
	s.closed.RUnlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for _, p := range pairs {
		if !fn([]byte(p.k), p.v) {
			break
		}
	}
	return nil
}

// Sync implements Store; the memory store has nothing to flush.
func (s *Mem) Sync() error {
	s.closed.RLock()
	defer s.closed.RUnlock()
	return s.check()
}

// Close implements Store.
func (s *Mem) Close() error {
	s.closed.Lock()
	defer s.closed.Unlock()
	if s.dead {
		return ErrClosed
	}
	s.dead = true
	for i := range s.shards {
		s.shards[i].m = nil
	}
	return nil
}

// compile-time interface check
var _ Store = (*Mem)(nil)

// CompareKeys orders keys byte-lexicographically; exported for reuse by
// other packages that must agree with Store's scan order.
func CompareKeys(a, b []byte) int { return bytes.Compare(a, b) }
