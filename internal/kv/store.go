// Package kv defines the key-value base-table abstraction underneath
// transactional states, mirroring the paper's Section 4.1 design decision
// that "any existing backend structure with a key-value mapping can be
// used" as the base table. The transactional table wrapper in
// internal/txn persists committed versions through this interface; the two
// implementations shipped with the repository are the in-memory Store in
// this package and the persistent LSM store in internal/lsm (the
// stand-in for RocksDB, which the paper's evaluation used).
package kv

import "errors"

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kv: store is closed")

// Store is an ordered key-value map with batched, optionally synchronous
// (durable) writes. Implementations must be safe for concurrent use.
//
// Keys and values passed in are never aliased after the call returns;
// implementations copy what they retain. Values handed out by Get/Scan
// must not be modified by callers.
type Store interface {
	// Get returns the value stored under key, with found reporting
	// whether the key exists.
	Get(key []byte) (value []byte, found bool, err error)

	// Put stores value under key, replacing any existing value.
	Put(key, value []byte) error

	// Delete removes key. Deleting a missing key is not an error.
	Delete(key []byte) error

	// Apply atomically applies all operations in the batch. If sync is
	// true, the batch is durable when Apply returns (for persistent
	// stores this means an fsync'd log record — the paper's evaluation
	// runs its base table with the sync option enabled to "guarantee
	// failure atomicity").
	Apply(b *Batch, sync bool) error

	// Scan calls fn for every key-value pair with start <= key < end in
	// ascending key order. A nil start means the beginning; a nil end
	// means the end. Scanning stops early when fn returns false.
	Scan(start, end []byte, fn func(key, value []byte) bool) error

	// Sync flushes all previously written data to stable storage.
	Sync() error

	// Close releases resources. Operations after Close return ErrClosed.
	Close() error
}

// Len returns the number of live keys in a store by scanning it; it is a
// testing/diagnostic helper, not a hot-path operation.
func Len(s Store) (int, error) {
	n := 0
	err := s.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}
