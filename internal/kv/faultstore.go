package kv

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation on a Fault store after a
// simulated crash (scripted via CrashAtApply/TearApplyAt or triggered
// directly with Crash). Reopen yields a fresh handle over the surviving
// durable image.
var ErrCrashed = errors.New("kv: store crashed (simulated)")

// ErrTornBatch is returned by the Apply that a TearApplyAt script tears:
// only a prefix of the batch's operations reached the durable image and
// the store has crashed. It models a device that persists batches
// sub-atomically — exactly the failure the WAL-record CRC framing of a
// real log exists to mask.
var ErrTornBatch = errors.New("kv: torn batch (simulated)")

// faultVal is one overlay entry: a buffered put, or a buffered delete
// (del set, val nil).
type faultVal struct {
	val []byte
	del bool
}

// FaultStats counts the durability traffic a Fault store has seen. All
// counters are cumulative for the handle (Reopen starts from zero).
type FaultStats struct {
	// Applies counts Apply calls (failed and torn ones included).
	Applies uint64
	// SyncPoints counts durability points: Apply calls with sync=true
	// plus explicit Sync calls.
	SyncPoints uint64
	// SyncFailures counts durability points that returned the scripted
	// sticky sync error.
	SyncFailures uint64
	// InjectedApplyFailures counts Apply calls failed by FailApplyAt.
	InjectedApplyFailures uint64
	// FirstSyncFailure is the wall-clock time of the first scripted sync
	// failure (zero if none happened yet). sibench -faults uses it to
	// measure time-to-fail-stop.
	FirstSyncFailure time.Time
}

// Fault wraps a Store with programmable fault injection and crash
// simulation, usable against both the in-memory store and the LSM store.
//
// The wrapper splits state into a durable image (the inner store) and a
// volatile overlay (writes not yet covered by a successful durability
// point). Writes applied with sync=false land in the overlay only; a
// successful Apply with sync=true or Sync flushes the overlay plus the
// new batch into the inner store and syncs it. Reads merge the overlay
// over the durable image, so fault-free operation is indistinguishable
// from the wrapped store. A simulated crash drops the overlay — exactly
// the writes an OS page cache would lose — and Reopen hands back a fresh
// store over the durable image alone.
//
// Fault points are scripted before (or during) a run:
//
//   - FailApplyAt(n, err): the nth Apply fails with err, persisting
//     nothing of that batch.
//   - FailSyncAt(n, err): the nth durability point and every later one
//     fail with err (sticky, the fsyncgate shape: once a sync fails the
//     page cache's state is unknowable, so the device never reports
//     success again). The failing batch stays in the volatile overlay.
//   - TearApplyAt(n, keep): the nth Apply persists only its first keep
//     operations durably, then the store crashes (ErrTornBatch).
//   - CrashAtApply(n): the nth Apply crashes the store before persisting
//     anything of that batch (ErrCrashed).
//   - SetLatency(d): every Apply stalls d before doing anything,
//     modeling a slow device (the stall holds the store's mutex, so it
//     backpressures concurrent readers like a saturated device queue).
//
// All methods are safe for concurrent use. A Fault store is a testing
// and benchmarking tool; its Scan materializes the merged view and is
// not meant for hot paths.
type Fault struct {
	mu      sync.Mutex
	inner   Store
	overlay map[string]faultVal

	crashed bool
	closed  bool

	applies    uint64
	syncPoints uint64
	stats      FaultStats

	failApplyAt uint64
	applyErr    error
	failSyncAt  uint64
	syncErr     error
	tearAt      uint64
	tearKeep    int
	crashAt     uint64
	latency     time.Duration
}

// NewFault wraps inner in a fault-injection store. The inner store is the
// durable image; it must not be used directly while the wrapper is live.
func NewFault(inner Store) *Fault {
	return &Fault{inner: inner, overlay: make(map[string]faultVal)}
}

// Capabilities: the wrapper simulates durability over ANY inner store —
// the durable image + volatile overlay make sync points meaningful, and
// Crash/Reopen simulate the process loss — so Durable and SupportsSync
// hold even over the memory store (that is the point of the
// simulation). Persistence follows the inner store.
func (f *Fault) Capabilities() Capabilities {
	return Capabilities{Durable: true, Persistent: CapabilitiesOf(f.inner).Persistent, SupportsSync: true}
}

// FailApplyAt scripts the nth Apply call from now (1-based) to fail with
// err, persisting nothing of that batch. Later Applies succeed again —
// the fault is transient, unlike a sync failure. n <= 0 disarms.
func (f *Fault) FailApplyAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.failApplyAt = 0
		return
	}
	f.failApplyAt = f.applies + uint64(n)
	f.applyErr = err
}

// FailSyncAt scripts the nth durability point from now (1-based; an
// Apply with sync=true or a Sync call) and every later one to fail with
// err. The error is sticky by construction: after the first failure the
// durable image's true state is unknowable, so the store keeps refusing
// durability forever (until a crash + Reopen). n <= 0 disarms.
func (f *Fault) FailSyncAt(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.failSyncAt = 0
		return
	}
	f.failSyncAt = f.syncPoints + uint64(n)
	f.syncErr = err
}

// TearApplyAt scripts the nth Apply call from now (1-based) to persist
// only its first keep operations into the durable image and then crash
// the store. n <= 0 disarms.
func (f *Fault) TearApplyAt(n, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.tearAt = 0
		return
	}
	f.tearAt = f.applies + uint64(n)
	f.tearKeep = keep
}

// CrashAtApply scripts the nth Apply call from now (1-based) to crash
// the store before persisting anything of that batch. n <= 0 disarms.
func (f *Fault) CrashAtApply(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.applies + uint64(n)
}

// SetLatency makes every subsequent Apply stall d before executing.
func (f *Fault) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// Crash simulates a process/machine crash: all writes since the last
// successful durability point are dropped and every subsequent operation
// on this handle returns ErrCrashed. The durable image survives; Reopen
// returns a fresh handle over it.
func (f *Fault) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

func (f *Fault) crashLocked() {
	f.crashed = true
	f.overlay = make(map[string]faultVal)
}

// Crashed reports whether the store is in the simulated-crash state.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reopen returns a fresh Fault handle over the same durable image, as if
// the process restarted and reopened the store: the overlay (lost
// writes) is gone, counters and scripts are reset. The old handle stays
// crashed. Reopen after Close is an error.
func (f *Fault) Reopen() (*Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	f.crashLocked()
	return NewFault(f.inner), nil
}

// Stats returns a snapshot of the durability counters.
func (f *Fault) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Applies = f.applies
	s.SyncPoints = f.syncPoints
	return s
}

func (f *Fault) checkLocked() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Get returns the overlay-merged value stored under key.
func (f *Fault) Get(key []byte) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return nil, false, err
	}
	if v, ok := f.overlay[string(key)]; ok {
		if v.del {
			return nil, false, nil
		}
		return v.val, true, nil
	}
	return f.inner.Get(key)
}

// Put stores value under key. Like the wrapped stores' Put, the write is
// volatile until the next successful durability point.
func (f *Fault) Put(key, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	f.overlay[string(key)] = faultVal{val: cloneBytes(value)}
	return nil
}

// Delete removes key (volatile until the next durability point).
func (f *Fault) Delete(key []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	f.overlay[string(key)] = faultVal{del: true}
	return nil
}

// Apply atomically applies the batch, honoring any scripted fault. With
// sync=false the batch lands in the volatile overlay; with sync=true the
// overlay and the batch are flushed to the durable image and synced.
func (f *Fault) Apply(b *Batch, sync bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	f.applies++
	switch {
	case f.crashAt != 0 && f.applies >= f.crashAt:
		f.crashLocked()
		return ErrCrashed
	case f.tearAt != 0 && f.applies >= f.tearAt:
		keep := f.tearKeep
		ops := b.Ops()
		if keep > len(ops) {
			keep = len(ops)
		}
		torn := NewBatch(keep)
		for _, op := range ops[:keep] {
			if op.Kind == OpDelete {
				torn.Delete(op.Key)
			} else {
				torn.Put(op.Key, op.Value)
			}
		}
		err := f.inner.Apply(torn, true)
		f.crashLocked()
		if err != nil {
			return fmt.Errorf("%w (and durable image rejected the prefix: %v)", ErrTornBatch, err)
		}
		return ErrTornBatch
	case f.failApplyAt != 0 && f.applies == f.failApplyAt:
		f.stats.InjectedApplyFailures++
		return f.applyErr
	}
	// The batch always reaches the "page cache" (overlay) first; with
	// sync=false that is all an Apply does.
	f.bufferLocked(b)
	if !sync {
		return nil
	}
	f.syncPoints++
	if f.failSyncAt != 0 && f.syncPoints >= f.failSyncAt {
		// Durability failed after the write hit the page cache; callers
		// must treat the batch as not persisted.
		f.noteSyncFailure()
		return f.syncErr
	}
	return f.flushLocked()
}

// Sync flushes all buffered writes to the durable image, honoring a
// scripted sticky sync failure.
func (f *Fault) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLocked(); err != nil {
		return err
	}
	f.syncPoints++
	if f.failSyncAt != 0 && f.syncPoints >= f.failSyncAt {
		f.noteSyncFailure()
		return f.syncErr
	}
	return f.flushLocked()
}

// Scan calls fn over the overlay-merged view in ascending key order. The
// merged view is materialized first, so fn runs without the store lock.
func (f *Fault) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	f.mu.Lock()
	if err := f.checkLocked(); err != nil {
		f.mu.Unlock()
		return err
	}
	type pair struct{ k, v []byte }
	var merged []pair
	err := f.inner.Scan(start, end, func(k, v []byte) bool {
		if _, shadowed := f.overlay[string(k)]; !shadowed {
			merged = append(merged, pair{k, v})
		}
		return true
	})
	if err != nil {
		f.mu.Unlock()
		return err
	}
	for k, ov := range f.overlay {
		if ov.del {
			continue
		}
		kb := []byte(k)
		if start != nil && bytes.Compare(kb, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(kb, end) >= 0 {
			continue
		}
		merged = append(merged, pair{kb, ov.val})
	}
	f.mu.Unlock()
	sort.Slice(merged, func(i, j int) bool { return bytes.Compare(merged[i].k, merged[j].k) < 0 })
	for _, p := range merged {
		if !fn(p.k, p.v) {
			return nil
		}
	}
	return nil
}

// Close closes the wrapper and the durable image.
func (f *Fault) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	f.overlay = make(map[string]faultVal)
	return f.inner.Close()
}

// bufferLocked stages the batch's operations in the volatile overlay.
func (f *Fault) bufferLocked(b *Batch) {
	for _, op := range b.Ops() {
		if op.Kind == OpDelete {
			f.overlay[string(op.Key)] = faultVal{del: true}
		} else {
			// Values follow the Owned contract (immutable after hand-off)
			// and may be retained by reference; keys are copied by the
			// string conversion because the commit path reuses its key
			// arena across batches.
			f.overlay[string(op.Key)] = faultVal{val: op.Value}
		}
	}
}

// flushLocked pushes the overlay into the durable image as one synced
// inner Apply (the overlay holds at most one entry per key, so ordering
// among its entries is irrelevant).
func (f *Fault) flushLocked() error {
	if len(f.overlay) == 0 {
		return f.inner.Sync()
	}
	out := NewBatch(len(f.overlay))
	for k, ov := range f.overlay {
		if ov.del {
			out.Delete([]byte(k))
		} else {
			out.PutOwned([]byte(k), ov.val)
		}
	}
	if err := f.inner.Apply(out, true); err != nil {
		return err
	}
	f.overlay = make(map[string]faultVal)
	return nil
}

func (f *Fault) noteSyncFailure() {
	f.stats.SyncFailures++
	if f.stats.FirstSyncFailure.IsZero() {
		f.stats.FirstSyncFailure = time.Now()
	}
}
