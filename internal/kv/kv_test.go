package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemBasicCRUD(t *testing.T) {
	s := NewMem()
	defer s.Close()

	if _, ok, err := s.Get([]byte("a")); err != nil || ok {
		t.Fatalf("get on empty store: ok=%v err=%v", ok, err)
	}
	if err := s.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := s.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get([]byte("a")); ok {
		t.Fatal("delete failed")
	}
	if err := s.Delete([]byte("missing")); err != nil {
		t.Fatal("delete of missing key must not error")
	}
}

func TestMemValueIsolation(t *testing.T) {
	s := NewMem()
	defer s.Close()
	val := []byte("hello")
	if err := s.Put([]byte("k"), val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller mutates its buffer after Put
	got, _, _ := s.Get([]byte("k"))
	if string(got) != "hello" {
		t.Fatalf("store aliased caller's buffer: %q", got)
	}
}

func TestMemBatchAtomicPerKey(t *testing.T) {
	s := NewMem()
	defer s.Close()
	b := NewBatch(3)
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("z"))
	if b.Len() != 3 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := s.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get([]byte("x")); string(v) != "1" {
		t.Fatalf("x = %q", v)
	}
	if v, _, _ := s.Get([]byte("y")); string(v) != "2" {
		t.Fatalf("y = %q", v)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset did not clear batch")
	}
}

func TestMemScanOrderAndBounds(t *testing.T) {
	s := NewMem()
	defer s.Close()
	keys := []string{"b", "a", "d", "c", "e"}
	for _, k := range keys {
		if err := s.Put([]byte(k), []byte("v"+k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := s.Scan([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		if string(v) != "v"+string(k) {
			t.Errorf("value mismatch for %q: %q", k, v)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}

	// Early stop.
	n := 0
	if err := s.Scan(nil, nil, func(_, _ []byte) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMemLenHelper(t *testing.T) {
	s := NewMem()
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := Len(s)
	if err != nil || n != 10 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestMemClosed(t *testing.T) {
	s := NewMem()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
	if _, _, err := s.Get([]byte("a")); err != ErrClosed {
		t.Fatalf("get after close: %v", err)
	}
	if err := s.Put([]byte("a"), nil); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
	if err := s.Delete([]byte("a")); err != ErrClosed {
		t.Fatalf("delete after close: %v", err)
	}
	if err := s.Apply(NewBatch(0), false); err != ErrClosed {
		t.Fatalf("apply after close: %v", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Fatalf("sync after close: %v", err)
	}
	if err := s.Scan(nil, nil, nil); err != ErrClosed {
		t.Fatalf("scan after close: %v", err)
	}
}

func TestMemConcurrent(t *testing.T) {
	s := NewMem()
	defer s.Close()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key-%d", rng.Intn(500)))
				switch rng.Intn(3) {
				case 0:
					if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := s.Get(k); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := s.Delete(k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPropertyMemMatchesModel runs random batches against Mem and a plain
// map model and checks they agree.
func TestPropertyMemMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMem()
		defer s.Close()
		model := map[string]string{}
		for step := 0; step < 300; step++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int())
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2:
				if err := s.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			default:
				got, ok, err := s.Get([]byte(k))
				if err != nil {
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		n, err := Len(s)
		return err == nil && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareKeys(t *testing.T) {
	if CompareKeys([]byte("a"), []byte("b")) >= 0 {
		t.Fatal("a should sort before b")
	}
	if !bytes.Equal([]byte("a"), []byte("a")) || CompareKeys([]byte("a"), []byte("a")) != 0 {
		t.Fatal("equal keys must compare 0")
	}
}

func TestBatchClonesInputs(t *testing.T) {
	b := NewBatch(1)
	k := []byte("k")
	v := []byte("v")
	b.Put(k, v)
	k[0], v[0] = 'X', 'Y'
	op := b.Ops()[0]
	if string(op.Key) != "k" || string(op.Value) != "v" {
		t.Fatalf("batch aliased caller buffers: %q %q", op.Key, op.Value)
	}
}

func BenchmarkMemPut(b *testing.B) {
	s := NewMem()
	defer s.Close()
	key := make([]byte, 8)
	val := make([]byte, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		key[1] = byte(i >> 8)
		if err := s.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemGet(b *testing.B) {
	s := NewMem()
	defer s.Close()
	for i := 0; i < 1000; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%d", i)), make([]byte, 20)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get([]byte(fmt.Sprintf("key-%d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}
