package kvtest

import (
	"testing"

	"sistream/internal/kv"
	_ "sistream/internal/lsm" // registers the "lsm" driver
)

// TestConformance runs the contract suite against every registered
// backend spec, chained adapters included. CI runs it under -race with
// no -short as the named "kv conformance (race)" step.
func TestConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		Run(t, Harness{
			Spec: "mem",
			Open: func(t *testing.T) *kv.OpenedStore { return mustOpen(t, "mem", "") },
		})
	})

	// Persistent chains: crash simulation is close + reopen of the same
	// data directory (the LSM WAL replays the synced suffix).
	for _, spec := range []string{"lsm", "cache(4)+lsm"} {
		t.Run(spec, func(t *testing.T) {
			var dir string
			Run(t, Harness{
				Spec: spec,
				Open: func(t *testing.T) *kv.OpenedStore {
					dir = t.TempDir()
					return mustOpen(t, spec, dir)
				},
				Reopen: func(t *testing.T, prev *kv.OpenedStore) kv.Store {
					if err := prev.Close(); err != nil {
						t.Fatalf("close before reopen: %v", err)
					}
					return mustOpen(t, spec, dir)
				},
			})
		})
	}

	// Volatile chains with no crash to simulate.
	t.Run("cache(4)+mem", func(t *testing.T) {
		Run(t, Harness{
			Spec: "cache(4)+mem",
			Open: func(t *testing.T) *kv.OpenedStore { return mustOpen(t, "cache(4)+mem", "") },
		})
	})

	// Fault-wrapped chains: the wrapper simulates durability (durable
	// image + volatile overlay), so crash-and-recover is Fault.Reopen.
	// cache(4)+fault+mem additionally proves the write-behind tier
	// flushes INTO the durability point: a synced Apply through the
	// cache must survive the simulated crash below it.
	for _, spec := range []string{"fault+mem", "cache(4)+fault+mem"} {
		t.Run(spec, func(t *testing.T) {
			Run(t, Harness{
				Spec: spec,
				Open: func(t *testing.T) *kv.OpenedStore { return mustOpen(t, spec, "") },
				Reopen: func(t *testing.T, prev *kv.OpenedStore) kv.Store {
					f := prev.FaultLayer()
					if f == nil {
						t.Fatalf("spec %q has no fault layer", spec)
					}
					re, err := f.Reopen()
					if err != nil {
						t.Fatalf("fault reopen: %v", err)
					}
					return re
				},
			})
		})
	}
}

// TestConformanceCoversAllDrivers fails when a driver is registered but
// no conformance harness exercises it — the reminder to extend the
// table above when a new adapter lands.
func TestConformanceCoversAllDrivers(t *testing.T) {
	covered := map[string]bool{"mem": true, "lsm": true, "cache": true, "fault": true}
	for _, name := range kv.Drivers() {
		if !covered[name] {
			t.Errorf("driver %q has no conformance harness in conformance_test.go", name)
		}
	}
}

func mustOpen(t *testing.T, spec, dir string) *kv.OpenedStore {
	t.Helper()
	st, err := kv.Open(spec, kv.OpenOptions{Dir: dir})
	if err != nil {
		t.Fatalf("open %q: %v", spec, err)
	}
	return st
}
