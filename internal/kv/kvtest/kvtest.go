// Package kvtest is the conformance suite for kv.Store implementations:
// the executable form of the interface contract in internal/kv/store.go.
// Every registered backend spec — terminal stores and chained adapters
// alike — is run through the same battery: no key/value aliasing after
// calls return, Apply atomicity and in-batch ordering, Scan bounds,
// ordering and early stop, Sync durability where the backend declares
// Durable, and ErrClosed after Close.
//
// New adapters get conformance coverage by adding one Harness to the
// table in conformance_test.go.
package kvtest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sistream/internal/kv"
)

// Harness describes how to exercise one backend spec.
type Harness struct {
	// Spec is the backend spec under test, for diagnostics.
	Spec string
	// Open returns a fresh, empty store chain. The suite closes it.
	Open func(t *testing.T) *kv.OpenedStore
	// Reopen, when non-nil, simulates a crash-and-recover cycle on a
	// chain previously opened by Open: it must return a store seeing
	// exactly the data that was durable in prev, taking ownership of
	// prev (crashing or closing it as the simulation requires). The
	// suite closes the returned store. Durability tests are skipped
	// when nil.
	Reopen func(t *testing.T, prev *kv.OpenedStore) kv.Store
}

// Run executes the conformance suite against one harness.
func Run(t *testing.T, h Harness) {
	t.Run("Aliasing", func(t *testing.T) { testAliasing(t, h) })
	t.Run("ApplyAtomicity", func(t *testing.T) { testApplyAtomicity(t, h) })
	t.Run("ScanOrder", func(t *testing.T) { testScanOrder(t, h) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, h) })
	t.Run("SyncDurability", func(t *testing.T) { testSyncDurability(t, h) })
	t.Run("ErrClosed", func(t *testing.T) { testErrClosed(t, h) })
}

// testAliasing: implementations copy what they retain — mutating a key
// or value buffer after the call returns must not change stored state,
// and a Get-returned value must stay stable across later writes to the
// same key.
func testAliasing(t *testing.T, h Harness) {
	st := h.Open(t)
	defer st.Close()

	key := []byte("alias-key")
	val := []byte("alias-val")
	if err := st.Put(key, val); err != nil {
		t.Fatal(err)
	}
	key[0], val[0] = 'X', 'X'
	got, found, err := st.Get([]byte("alias-key"))
	if err != nil || !found {
		t.Fatalf("Get after buffer mutation: %v, %v", found, err)
	}
	if !bytes.Equal(got, []byte("alias-val")) {
		t.Fatalf("stored value aliased the caller's buffer: %q", got)
	}

	// The same rule for batch ops built with the copying constructors.
	bkey := []byte("batch-key")
	bval := []byte("batch-val")
	b := kv.NewBatch(1)
	b.Put(bkey, bval)
	bkey[0], bval[0] = 'Y', 'Y' // Batch.Put copied already
	if err := st.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	got, found, err = st.Get([]byte("batch-key"))
	if err != nil || !found || !bytes.Equal(got, []byte("batch-val")) {
		t.Fatalf("batch value aliased: %q, %v, %v", got, found, err)
	}

	// A value handed out by Get must survive later writes to its key.
	held, _, err := st.Get([]byte("alias-key"))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), held...)
	if err := st.Put([]byte("alias-key"), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(held, snapshot) {
		t.Fatalf("value returned by Get mutated by a later Put: %q", held)
	}
}

// testApplyAtomicity: every op of an applied batch is visible, in-batch
// same-key ops resolve last-wins, and put-then-delete deletes.
func testApplyAtomicity(t *testing.T, h Harness) {
	st := h.Open(t)
	defer st.Close()

	if err := st.Put([]byte("pre"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch(6)
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Put([]byte("dup"), []byte("first"))
	b.Put([]byte("dup"), []byte("second")) // last-wins
	b.Put([]byte("gone"), []byte("temp"))
	b.Delete([]byte("gone")) // put-then-delete deletes
	b.Delete([]byte("pre"))  // delete of pre-existing key
	if err := st.Apply(b, false); err != nil {
		t.Fatal(err)
	}

	want := map[string]string{"a": "1", "b": "2", "dup": "second"}
	for k, v := range want {
		got, found, err := st.Get([]byte(k))
		if err != nil || !found || string(got) != v {
			t.Errorf("Get(%s) = %q, %v, %v; want %q", k, got, found, err, v)
		}
	}
	for _, k := range []string{"gone", "pre"} {
		if _, found, err := st.Get([]byte(k)); err != nil || found {
			t.Errorf("Get(%s) = found=%v, err=%v; want deleted", k, found, err)
		}
	}
	if n, err := kv.Len(st); err != nil || n != len(want) {
		t.Errorf("Len = %d, %v; want %d", n, err, len(want))
	}
}

// testScanOrder: ascending key order, [start, end) bounds, nil bounds
// meaning the ends.
func testScanOrder(t *testing.T, h Harness) {
	st := h.Open(t)
	defer st.Close()
	for i := 9; i >= 0; i-- { // inserted out of order on purpose
		if err := st.Put([]byte(fmt.Sprintf("k%d", i)), []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(start, end []byte) []string {
		var keys []string
		if err := st.Scan(start, end, func(k, v []byte) bool {
			keys = append(keys, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return keys
	}
	all := collect(nil, nil)
	if len(all) != 10 {
		t.Fatalf("full scan saw %d keys, want 10", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("scan out of order: %q before %q", all[i-1], all[i])
		}
	}
	if got := fmt.Sprint(collect([]byte("k3"), []byte("k6"))); got != "[k3 k4 k5]" {
		t.Errorf("bounded scan = %v, want [k3 k4 k5]", got)
	}
	if got := collect([]byte("k999"), nil); len(got) != 0 {
		t.Errorf("past-the-end scan = %v, want empty", got)
	}
}

// testScanEarlyStop: fn returning false stops the scan.
func testScanEarlyStop(t *testing.T, h Harness) {
	st := h.Open(t)
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	if err := st.Scan(nil, nil, func(k, v []byte) bool {
		calls++
		return calls < 3
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times after returning false at call 3", calls)
	}
}

// testSyncDurability: data covered by Apply(sync=true) survives a
// crash-and-recover cycle; runs only where the spec declares Durable
// and the harness can simulate the crash.
func testSyncDurability(t *testing.T, h Harness) {
	caps, err := kv.SpecCaps(h.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !caps.Durable {
		t.Skipf("spec %q is not durable", h.Spec)
	}
	if h.Reopen == nil {
		t.Skipf("harness for %q cannot simulate a crash", h.Spec)
	}
	st := h.Open(t)
	b := kv.NewBatch(2)
	b.Put([]byte("durable-a"), []byte("1"))
	b.Put([]byte("durable-b"), []byte("2"))
	if err := st.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	re := h.Reopen(t, st)
	defer re.Close()
	for _, k := range []string{"durable-a", "durable-b"} {
		got, found, err := re.Get([]byte(k))
		if err != nil || !found {
			t.Fatalf("after crash: Get(%s) = %v, %v — synced write lost", k, found, err)
		}
		_ = got
	}
}

// testErrClosed: every operation on a closed store reports kv.ErrClosed.
func testErrClosed(t *testing.T, h Harness) {
	st := h.Open(t)
	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	check := func(op string, err error) {
		if !errors.Is(err, kv.ErrClosed) {
			t.Errorf("%s after Close = %v, want kv.ErrClosed", op, err)
		}
	}
	_, _, err := st.Get([]byte("k"))
	check("Get", err)
	check("Put", st.Put([]byte("k"), []byte("v")))
	check("Delete", st.Delete([]byte("k")))
	b := kv.NewBatch(1)
	b.Put([]byte("k"), []byte("v"))
	check("Apply", st.Apply(b, false))
	check("Scan", st.Scan(nil, nil, func(_, _ []byte) bool { return true }))
	check("Sync", st.Sync())
}
