package kv_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"sistream/internal/kv"
)

// countingStore wraps a Store to record how Apply/Sync are invoked, so
// the cache tests can pin down the write-behind flushing rules.
type countingStore struct {
	kv.Store
	mu         sync.Mutex
	applies    int
	syncApply  int
	syncCalls  int
	opsApplied int
}

func (c *countingStore) Apply(b *kv.Batch, sync bool) error {
	c.mu.Lock()
	c.applies++
	if sync {
		c.syncApply++
	}
	c.opsApplied += b.Len()
	c.mu.Unlock()
	return c.Store.Apply(b, sync)
}

func (c *countingStore) Sync() error {
	c.mu.Lock()
	c.syncCalls++
	c.mu.Unlock()
	return c.Store.Sync()
}

func (c *countingStore) counts() (applies, syncApply, syncCalls, ops int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applies, c.syncApply, c.syncCalls, c.opsApplied
}

func TestCacheWriteBehind(t *testing.T) {
	inner := &countingStore{Store: kv.NewMem()}
	c := kv.NewCache(inner, 64)
	defer c.Close()

	// Puts and non-sync Applies stage only: the inner store sees nothing.
	if err := c.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch(2)
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("zz"))
	if err := c.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	if applies, _, _, _ := inner.counts(); applies != 0 {
		t.Fatalf("inner saw %d applies before any durability point", applies)
	}
	if _, found, _ := inner.Store.Get([]byte("a")); found {
		t.Fatal("write-behind put leaked to inner store")
	}
	// Reads are served from the staged state.
	if v, found, err := c.Get([]byte("a")); err != nil || !found || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v, %v", v, found, err)
	}

	// A sync Apply pushes the whole dirty set + the batch in ONE
	// synchronous inner Apply — the durability point is preserved.
	b2 := kv.NewBatch(1)
	b2.Put([]byte("c"), []byte("3"))
	if err := c.Apply(b2, true); err != nil {
		t.Fatal(err)
	}
	applies, syncApply, _, ops := inner.counts()
	if applies != 1 || syncApply != 1 {
		t.Fatalf("sync Apply: inner saw applies=%d syncApply=%d, want 1/1", applies, syncApply)
	}
	if ops != 4 { // a, b, delete zz, c
		t.Fatalf("flush batch had %d ops, want 4", ops)
	}
	for _, k := range []string{"a", "b", "c"} {
		if v, found, _ := inner.Store.Get([]byte(k)); !found || len(v) == 0 {
			t.Fatalf("key %q missing from inner store after sync Apply", k)
		}
	}

	// Nothing dirty: another sync Apply flushes just its own batch; a
	// Sync with a clean cache degrades to inner.Sync().
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, syncCalls, _ := inner.counts(); syncCalls != 1 {
		t.Fatalf("clean Sync: inner.Sync called %d times, want 1", syncCalls)
	}
}

func TestCacheReadThroughAndCounters(t *testing.T) {
	inner := kv.NewMem()
	if err := inner.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	c := kv.NewCache(inner, 8)
	defer c.Close()

	if v, found, err := c.Get([]byte("k")); err != nil || !found || string(v) != "v" {
		t.Fatalf("read-through Get = %q, %v, %v", v, found, err)
	}
	if v, found, err := c.Get([]byte("k")); err != nil || !found || string(v) != "v" {
		t.Fatalf("cached Get = %q, %v, %v", v, found, err)
	}
	if _, found, err := c.Get([]byte("missing")); err != nil || found {
		t.Fatalf("Get(missing) = %v, %v", found, err)
	}
	// A staged delete is a resident not-found, served as a hit.
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, found, err := c.Get([]byte("k")); err != nil || found {
		t.Fatalf("Get after staged delete = %v, %v", found, err)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits, 2 misses", st)
	}
	if st.Dirty != 1 {
		t.Errorf("stats = %+v, want 1 dirty (the staged delete)", st)
	}
	// Scan flushes: the delete reaches the inner store.
	n := 0
	if err := c.Scan(nil, nil, func(_, _ []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("scan saw %d keys after delete, want 0", n)
	}
	if _, found, _ := inner.Get([]byte("k")); found {
		t.Error("staged delete not flushed by Scan")
	}
	if st := c.Stats(); st.Dirty != 0 || st.DirtyFlushed != 1 {
		t.Errorf("post-scan stats = %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	inner := kv.NewMem()
	c := kv.NewCache(inner, 4)
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Resident != 4 {
		t.Errorf("resident = %d, want 4", st.Resident)
	}
	if st.Evictions != 6 {
		t.Errorf("evictions = %d, want 6", st.Evictions)
	}
	// Evicted dirty entries were written back; every key is readable.
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if v, found, err := c.Get(k); err != nil || !found || v[0] != byte(i) {
			t.Fatalf("Get(%s) = %v, %v, %v", k, v, found, err)
		}
	}
	// LRU order: the most recently used keys stay resident.
	before := c.Stats().Hits
	if _, _, err := c.Get([]byte("k09")); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before+1 {
		t.Error("most recently read key was not resident")
	}
}

func TestCacheScanSeesStagedWrites(t *testing.T) {
	c := kv.NewCache(kv.NewMem(), 16)
	defer c.Close()
	b := kv.NewBatch(3)
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Put([]byte("c"), []byte("3"))
	if err := c.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := c.Scan([]byte("a"), []byte("c"), func(k, v []byte) bool {
		keys = append(keys, string(k)+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(keys); got != "[a=1 b=2]" {
		t.Errorf("scan = %v", got)
	}
}

func TestCacheAliasing(t *testing.T) {
	c := kv.NewCache(kv.NewMem(), 16)
	defer c.Close()
	k := []byte("key")
	v := []byte("value")
	if err := c.Put(k, v); err != nil {
		t.Fatal(err)
	}
	v[0] = 'X' // the cache must have copied
	got, _, err := c.Get([]byte("key"))
	if err != nil || !bytes.Equal(got, []byte("value")) {
		t.Fatalf("Get = %q, %v — cache aliased the caller's value buffer", got, err)
	}
}

func TestCacheClose(t *testing.T) {
	inner := kv.NewMem()
	c := kv.NewCache(inner, 16)
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Close flushed the write-behind set before closing the inner store.
	if _, found, err := inner.Get([]byte("k")); err == nil || found {
		// inner is closed too; the flush happened before that.
		if err == nil {
			t.Error("inner store still open after cache Close")
		}
	}
	if err := c.Put([]byte("x"), []byte("y")); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); !errors.Is(err, kv.ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
}

// TestCacheScanFlushesDirtyOverlap is the Scan-as-durability-point
// regression: dirty write-behind entries staged BEFORE a Scan must be
// (a) visible to that very Scan and (b) flushed to the inner store in
// exactly ONE atomic inner Apply — a scan must never read around the
// write-behind set, and must never split the staged batch.
func TestCacheScanFlushesDirtyOverlap(t *testing.T) {
	inner := &countingStore{Store: kv.NewMem()}
	c := kv.NewCache(inner, 64)
	defer c.Close()

	// Stage dirty entries through several write-behind Applies, including
	// a delete over a previously staged key — no durability point yet.
	b := kv.NewBatch(2)
	b.Put([]byte("scan/a"), []byte("1"))
	b.Put([]byte("scan/b"), []byte("2"))
	if err := c.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	b = kv.NewBatch(2)
	b.Put([]byte("scan/c"), []byte("3"))
	b.Delete([]byte("scan/b"))
	if err := c.Apply(b, false); err != nil {
		t.Fatal(err)
	}
	if applies, _, _, _ := inner.counts(); applies != 0 {
		t.Fatalf("inner saw %d applies before the scan", applies)
	}

	// The scan is a durability point: it must observe the staged state
	// (a and c present, b deleted) ...
	seen := map[string]string{}
	if err := c.Scan([]byte("scan/"), []byte("scan/\xff"), func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen["scan/a"] != "1" || seen["scan/c"] != "3" {
		t.Fatalf("scan saw %v, want staged a=1 and c=3 with b deleted", seen)
	}

	// ... and have pushed the whole staged set down in ONE inner Apply
	// carrying all three net operations (two puts + one delete; the
	// staged b put and its delete coalesce into the delete).
	applies, syncApply, _, ops := inner.counts()
	if applies != 1 {
		t.Fatalf("scan flushed in %d inner applies, want exactly 1 atomic apply", applies)
	}
	if syncApply != 0 {
		t.Fatalf("scan flush requested fsync (%d), want an unsynced flush", syncApply)
	}
	if ops != 3 {
		t.Fatalf("scan flush carried %d ops, want 3 (a, c, delete b)", ops)
	}

	// A second scan with nothing staged must not apply again.
	if err := c.Scan([]byte("scan/"), []byte("scan/\xff"), func(_, _ []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if applies, _, _, _ = inner.counts(); applies != 1 {
		t.Fatalf("clean scan re-applied (%d total applies), want still 1", applies)
	}
}
