package kv

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func faultPairs(t *testing.T, s Store) map[string]string {
	t.Helper()
	got := map[string]string{}
	if err := s.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return got
}

func applyPut(t *testing.T, s Store, sync bool, kvs ...string) error {
	t.Helper()
	if len(kvs)%2 != 0 {
		t.Fatal("odd kv list")
	}
	b := NewBatch(len(kvs) / 2)
	for i := 0; i < len(kvs); i += 2 {
		b.Put([]byte(kvs[i]), []byte(kvs[i+1]))
	}
	return s.Apply(b, sync)
}

func TestFaultPassthrough(t *testing.T) {
	f := NewFault(NewMem())
	if err := applyPut(t, f, true, "a", "1", "b", "2"); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := f.Put([]byte("c"), []byte("3")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := f.Delete([]byte("b")); err != nil {
		t.Fatalf("delete: %v", err)
	}
	want := map[string]string{"a": "1", "c": "3"}
	if got := faultPairs(t, f); len(got) != len(want) || got["a"] != "1" || got["c"] != "3" {
		t.Fatalf("merged view = %v, want %v", got, want)
	}
	v, ok, err := f.Get([]byte("c"))
	if err != nil || !ok || string(v) != "3" {
		t.Fatalf("get c = %q %v %v", v, ok, err)
	}
	if _, ok, _ := f.Get([]byte("b")); ok {
		t.Fatal("deleted key b still visible")
	}
}

func TestFaultCrashDropsUnsynced(t *testing.T) {
	f := NewFault(NewMem())
	if err := applyPut(t, f, true, "durable", "1"); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if err := applyPut(t, f, false, "volatile", "2"); err != nil {
		t.Fatalf("apply: %v", err)
	}
	f.Crash()
	if _, _, err := f.Get([]byte("durable")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("get after crash: %v, want ErrCrashed", err)
	}
	if err := applyPut(t, f, true, "x", "y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("apply after crash: %v, want ErrCrashed", err)
	}
	re, err := f.Reopen()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := faultPairs(t, re)
	if len(got) != 1 || got["durable"] != "1" {
		t.Fatalf("reopened image = %v, want only durable=1", got)
	}
}

func TestFaultFailApplyAtIsTransient(t *testing.T) {
	f := NewFault(NewMem())
	boom := errors.New("boom")
	f.FailApplyAt(2, boom)
	if err := applyPut(t, f, true, "a", "1"); err != nil {
		t.Fatalf("apply 1: %v", err)
	}
	if err := applyPut(t, f, true, "b", "2"); !errors.Is(err, boom) {
		t.Fatalf("apply 2: %v, want boom", err)
	}
	if _, ok, _ := f.Get([]byte("b")); ok {
		t.Fatal("failed apply leaked its batch")
	}
	if err := applyPut(t, f, true, "c", "3"); err != nil {
		t.Fatalf("apply 3 (after transient fault): %v", err)
	}
	st := f.Stats()
	if st.InjectedApplyFailures != 1 {
		t.Fatalf("InjectedApplyFailures = %d, want 1", st.InjectedApplyFailures)
	}
}

func TestFaultStickySyncError(t *testing.T) {
	f := NewFault(NewMem())
	badDisk := errors.New("EIO")
	if err := applyPut(t, f, true, "a", "1"); err != nil {
		t.Fatalf("apply: %v", err)
	}
	f.FailSyncAt(1, badDisk)
	if err := applyPut(t, f, true, "b", "2"); !errors.Is(err, badDisk) {
		t.Fatalf("first failed sync: %v, want EIO", err)
	}
	// Sticky: every later durability point keeps failing.
	if err := applyPut(t, f, true, "c", "3"); !errors.Is(err, badDisk) {
		t.Fatalf("second sync after failure: %v, want EIO", err)
	}
	if err := f.Sync(); !errors.Is(err, badDisk) {
		t.Fatalf("bare Sync after failure: %v, want EIO", err)
	}
	// Reads still serve the merged (page-cache) view.
	if _, ok, _ := f.Get([]byte("b")); !ok {
		t.Fatal("page-cache write invisible to reads")
	}
	st := f.Stats()
	if st.SyncFailures != 3 || st.FirstSyncFailure.IsZero() {
		t.Fatalf("stats = %+v, want 3 sync failures with timestamp", st)
	}
	// A crash loses everything after the last successful sync.
	re, err := f.Reopen()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := faultPairs(t, re)
	if len(got) != 1 || got["a"] != "1" {
		t.Fatalf("durable image after sticky-sync crash = %v, want only a=1", got)
	}
}

func TestFaultTornBatch(t *testing.T) {
	f := NewFault(NewMem())
	f.TearApplyAt(1, 1)
	b := NewBatch(3)
	b.Put([]byte("t1"), []byte("x"))
	b.Put([]byte("t2"), []byte("y"))
	b.Put([]byte("t3"), []byte("z"))
	if err := f.Apply(b, true); !errors.Is(err, ErrTornBatch) {
		t.Fatalf("torn apply: %v, want ErrTornBatch", err)
	}
	re, err := f.Reopen()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := faultPairs(t, re)
	if len(got) != 1 || got["t1"] != "x" {
		t.Fatalf("torn image = %v, want exactly the 1-op prefix", got)
	}
}

func TestFaultCrashAtApplySweep(t *testing.T) {
	// Crashing at apply k must leave exactly the first k-1 batches.
	for crash := 1; crash <= 4; crash++ {
		f := NewFault(NewMem())
		f.CrashAtApply(crash)
		applied := 0
		for i := 1; i <= 4; i++ {
			err := applyPut(t, f, true, fmt.Sprintf("k%d", i), "v")
			if err != nil {
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("crash=%d apply %d: %v", crash, i, err)
				}
				break
			}
			applied++
		}
		if applied != crash-1 {
			t.Fatalf("crash=%d: %d applies succeeded, want %d", crash, applied, crash-1)
		}
		re, err := f.Reopen()
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := faultPairs(t, re); len(got) != crash-1 {
			t.Fatalf("crash=%d: reopened image has %d keys (%v), want %d", crash, len(got), got, crash-1)
		}
	}
}

func TestFaultLatency(t *testing.T) {
	f := NewFault(NewMem())
	f.SetLatency(20 * time.Millisecond)
	start := time.Now()
	if err := applyPut(t, f, true, "a", "1"); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("apply returned in %v, want injected latency >= 20ms", d)
	}
}
