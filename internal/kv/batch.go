package kv

// OpKind discriminates batch operations.
type OpKind byte

// Batch operation kinds.
const (
	OpPut OpKind = iota
	OpDelete
)

// Op is one operation inside a Batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte // nil for deletes
}

// Batch accumulates operations to be applied atomically via Store.Apply.
// The zero value is an empty batch ready for use. A Batch is not safe for
// concurrent mutation.
type Batch struct {
	ops []Op
}

// NewBatch returns a batch with capacity for n operations.
func NewBatch(n int) *Batch {
	return &Batch{ops: make([]Op, 0, n)}
}

// Put appends a put operation. Key and value are copied.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, Op{Kind: OpPut, Key: cloneBytes(key), Value: cloneBytes(value)})
}

// Delete appends a delete operation. Key is copied.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, Op{Kind: OpDelete, Key: cloneBytes(key)})
}

// PutOwned appends a put operation WITHOUT copying key or value: the
// caller hands both over and must never modify them again — a store may
// retain the slices beyond Apply (the in-memory store keeps the value by
// reference). The group-commit path uses this to coalesce whole
// transaction batches with zero per-operation allocation; its values are
// immutable private write-set copies.
func (b *Batch) PutOwned(key, value []byte) {
	b.ops = append(b.ops, Op{Kind: OpPut, Key: key, Value: value})
}

// DeleteOwned appends a delete operation without copying the key (see
// PutOwned for the aliasing contract).
func (b *Batch) DeleteOwned(key []byte) {
	b.ops = append(b.ops, Op{Kind: OpDelete, Key: key})
}

// Len returns the number of operations in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Ops exposes the accumulated operations for Store implementations.
// Callers must not mutate the returned slice.
func (b *Batch) Ops() []Op { return b.ops }

// Reset clears the batch for reuse, retaining capacity.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

func cloneBytes(p []byte) []byte {
	if p == nil {
		return nil
	}
	c := make([]byte, len(p))
	copy(c, p)
	return c
}
