package stream

import (
	"fmt"
	"strings"
)

// EXPLAIN for running topologies: construction-time hooks record one
// plan node per interesting decision — sources, operator fusion, lane
// regions and their key routing, reroute/fuse decisions at region
// boundaries, table writers, and the commit spine with its tuner — and
// Explain renders the list together with LIVE figures (per-stage channel
// occupancy, writer counters, tuner window) read at call time. The plan
// is append-only and guarded by its own mutex, so Explain may be called
// at any moment: before Start, mid-run, or after Wait.

// planNode is one recorded plan entry. live, when non-nil, is sampled at
// Plan/Explain time and must be safe to call concurrently with the
// running topology (atomic counters and channel len/cap reads are).
type planNode struct {
	kind   string
	name   string
	detail string
	live   func() string
}

// note appends a plan node; nil-safe on every construction path.
func (t *Topology) note(kind, name, detail string, live func() string) {
	t.planMu.Lock()
	t.plan = append(t.plan, &planNode{kind: kind, name: name, detail: detail, live: live})
	t.planMu.Unlock()
}

// PlanStep is one step of a topology's recorded plan (Topology.Plan): a
// construction-time Kind/Name/Detail triple plus the Live figures
// sampled when the plan was requested.
type PlanStep struct {
	// Kind classifies the step: "source", "operator", "region", "table",
	// or "spine".
	Kind string
	// Name is the step's operator name as used in error attribution.
	Name string
	// Detail records the construction-time decision (window shape, lane
	// count, key routing, fusion verdict, ...). May be empty.
	Detail string
	// Live holds the step's runtime figures at sampling time (channel
	// occupancy, writer counters, tuner window, ...). Empty when the step
	// has none.
	Live string
}

// Plan returns the topology's recorded plan with live figures sampled
// now. Safe to call at any time, including while the topology runs.
func (t *Topology) Plan() []PlanStep {
	t.planMu.Lock()
	nodes := make([]*planNode, len(t.plan))
	copy(nodes, t.plan)
	t.planMu.Unlock()
	out := make([]PlanStep, len(nodes))
	for i, n := range nodes {
		out[i] = PlanStep{Kind: n.kind, Name: n.name, Detail: n.detail}
		if n.live != nil {
			out[i].Live = n.live()
		}
	}
	return out
}

// Explain renders a running (or finished, or not-yet-started) topology's
// plan as an aligned multi-line listing: one line per recorded step with
// its kind, name, construction-time decisions, and live figures sampled
// at call time. The output is for humans and diagnostics; programmatic
// consumers should use Topology.Plan.
func Explain(t *Topology) string {
	steps := t.Plan()
	var b strings.Builder
	fmt.Fprintf(&b, "topology %q (%d steps)\n", t.Name(), len(steps))
	kindW, nameW := 0, 0
	for _, s := range steps {
		if len(s.Kind) > kindW {
			kindW = len(s.Kind)
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range steps {
		fmt.Fprintf(&b, "  %-*s  %-*s", kindW, s.Kind, nameW, s.Name)
		if s.Detail != "" {
			fmt.Fprintf(&b, "  %s", s.Detail)
		}
		if s.Live != "" {
			fmt.Fprintf(&b, "  [%s]", s.Live)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// occOf returns a live sampler of the streams' edge occupancy
// (buffered batches / capacity), the backpressure signal per stage.
func occOf(streams ...*Stream) func() string {
	return func() string {
		parts := make([]string, len(streams))
		for i, s := range streams {
			parts[i] = fmt.Sprintf("%d/%d", len(s.ch), cap(s.ch))
		}
		return "occ " + strings.Join(parts, " ")
	}
}
