package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// This file pins the vectorized engine to the per-element semantics it
// replaced: a randomized pipeline run is compared element-for-element
// (punctuation positions included) against a sequential reference
// interpreter, with conflict aborts injected mid-batch through a
// fault-wrapping Protocol, and a deterministic test drives batches whose
// BOT/COMMIT land in the middle.

// faultProtocol injects a conflict abort at the failAt-th attempted
// write operation (1-based, counted across WriteBatch calls): operations
// before it apply, the transaction is aborted for real, and the batched
// write reports ErrConflict — exactly what a First-Committer-Wins loss
// looks like to ToTable.
type faultProtocol struct {
	txn.Protocol
	failAt int64
	count  int64
}

func (f *faultProtocol) WriteBatch(tx *txn.Txn, tbl *txn.Table, ops []txn.WriteOp) (int, error) {
	for i := range ops {
		f.count++
		if f.failAt != 0 && f.count == f.failAt {
			n, err := f.Protocol.WriteBatch(tx, tbl, ops[:i])
			if err != nil {
				return n, err
			}
			_ = f.Protocol.Abort(tx)
			return n, txn.ErrConflict
		}
	}
	return f.Protocol.WriteBatch(tx, tbl, ops)
}

// scriptItem is one element of a generated input script.
type scriptItem struct {
	kind Kind
	key  string
	val  string
	del  bool
}

// genScript produces a random mix of bare data tuples and well-formed
// explicit transactions (BOT ... COMMIT/ROLLBACK), with occasional
// empty-key tuples (ToTable skips those).
func genScript(rng *rand.Rand) []scriptItem {
	var script []scriptItem
	n := rng.Intn(300)
	inTxn := false
	for i := 0; i < n; i++ {
		switch {
		case !inTxn && rng.Intn(10) == 0:
			script = append(script, scriptItem{kind: KindBOT})
			inTxn = true
		case inTxn && rng.Intn(6) == 0:
			k := KindCommit
			if rng.Intn(4) == 0 {
				k = KindRollback
			}
			script = append(script, scriptItem{kind: k})
			inTxn = false
		default:
			it := scriptItem{
				kind: KindData,
				key:  fmt.Sprintf("k%d", rng.Intn(12)),
				val:  fmt.Sprintf("v%d", i),
				del:  rng.Intn(8) == 0,
			}
			if rng.Intn(20) == 0 {
				it.key = ""
			}
			script = append(script, it)
		}
	}
	if inTxn {
		script = append(script, scriptItem{kind: KindCommit})
	}
	return script
}

// refModel interprets the script sequentially with the engine's
// documented per-element semantics: Punctuate's auto/explicit state
// machine, then transactional TO_TABLE with write counting, poisoning at
// the failAt-th attempted write, rollback discard and end-of-stream
// auto-commit.
type refModel struct {
	// sequence is the expected output signature of the pipeline
	// (one letter per element: B, D:key, C, R).
	sequence []string
	// table is the expected committed content of the target table.
	table map[string]string
	// writes/commits/aborts are the expected ToTableStats.
	writes, commits, aborts int64
}

func runRef(script []scriptItem, punctuateN int, failAt int64) *refModel {
	m := &refModel{table: map[string]string{}}
	// Phase 1: punctuation (mirrors Punctuate).
	var out []scriptItem
	var explicit, auto bool
	count := 0
	for _, it := range script {
		switch it.kind {
		case KindData:
			if explicit {
				out = append(out, it)
				continue
			}
			if !auto {
				out = append(out, scriptItem{kind: KindBOT})
				auto = true
				count = 0
			}
			out = append(out, it)
			count++
			if count >= punctuateN {
				out = append(out, scriptItem{kind: KindCommit})
				auto = false
			}
		case KindBOT:
			if auto {
				out = append(out, scriptItem{kind: KindCommit})
				auto = false
			}
			explicit = true
			out = append(out, it)
		default:
			explicit = false
			out = append(out, it)
		}
	}
	if auto {
		out = append(out, scriptItem{kind: KindCommit})
	}

	// Phase 2: transactions + TO_TABLE.
	var (
		inTxn    bool
		poisoned bool
		buffered []scriptItem
		opCount  int64
	)
	for _, it := range out {
		switch it.kind {
		case KindBOT:
			m.sequence = append(m.sequence, "B")
			inTxn = true
			poisoned = false
			buffered = buffered[:0]
		case KindData:
			m.sequence = append(m.sequence, "D:"+it.key)
			if !inTxn || poisoned || it.key == "" {
				continue
			}
			opCount++
			if failAt != 0 && opCount == failAt {
				poisoned = true
				m.aborts++
				continue
			}
			m.writes++
			buffered = append(buffered, it)
		case KindCommit:
			m.sequence = append(m.sequence, "C")
			if !inTxn {
				continue
			}
			inTxn = false
			if poisoned {
				continue
			}
			m.commits++
			for _, w := range buffered {
				if w.del {
					delete(m.table, w.key)
				} else {
					m.table[w.key] = w.val
				}
			}
		case KindRollback:
			m.sequence = append(m.sequence, "R")
			if !inTxn {
				continue
			}
			inTxn = false
			// A rollback always counts one abort — on top of any poisoning
			// abort the same transaction already recorded (the engine has
			// always counted both).
			m.aborts++
		}
	}
	return m
}

// runVectorized executes the same script through the real engine.
func runVectorized(t *testing.T, script []scriptItem, punctuateN int, failAt int64) (sig []string, rows map[string]string, stats *ToTableStats) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("prop", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := &faultProtocol{Protocol: txn.NewSI(ctx), failAt: failAt}

	top := New("prop")
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	s := src.Punctuate(punctuateN).Transactions(p)
	s, stats = s.ToTable(p, tbl)
	collected := s.Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			sig = append(sig, "B")
		case KindData:
			sig = append(sig, "D:"+e.Tuple.Key)
			if e.Tx == nil {
				t.Fatal("data element lost its transaction handle")
			}
		case KindCommit:
			sig = append(sig, "C")
		case KindRollback:
			sig = append(sig, "R")
		}
	}
	kvs, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows = map[string]string{}
	for _, r := range kvs {
		rows[r.Key] = string(r.Value)
	}
	return sig, rows, stats
}

// TestPropertyVectorizedEquivalence: for random scripts, punctuation
// intervals and injected abort positions, the vectorized pipeline must
// produce the exact element sequence, table content and stats of the
// per-element reference semantics.
func TestPropertyVectorizedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			var failAt int64
			if rng.Intn(2) == 0 {
				failAt = int64(1 + rng.Intn(50))
			}

			want := runRef(script, punctuateN, failAt)
			sig, rows, stats := runVectorized(t, script, punctuateN, failAt)

			if fmt.Sprint(sig) != fmt.Sprint(want.sequence) {
				t.Fatalf("element sequence diverged (punctuate=%d failAt=%d):\n got %v\nwant %v",
					punctuateN, failAt, sig, want.sequence)
			}
			if fmt.Sprint(rows) != fmt.Sprint(want.table) {
				t.Fatalf("table content diverged:\n got %v\nwant %v", rows, want.table)
			}
			if stats.Writes.Load() != want.writes ||
				stats.Commits.Load() != want.commits ||
				stats.Aborts.Load() != want.aborts {
				t.Fatalf("stats diverged: got w=%d c=%d a=%d, want w=%d c=%d a=%d",
					stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(),
					want.writes, want.commits, want.aborts)
			}
		})
	}
}

// runParallel executes the script through a parallel keyed region with
// the given lane count (Parallelize → per-lane ToTable → Merge).
func runParallel(t *testing.T, script []scriptItem, punctuateN, lanes int, proto func(*txn.Context) txn.Protocol) (sig []string, rows map[string]string, stats *ToTableStats) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("prop", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := proto(ctx)

	top := New("prop-lanes")
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	region := src.Punctuate(punctuateN).Transactions(p).Parallelize(lanes, nil)
	stats = region.ToTable(p, tbl)
	collected := region.Merge("merge").Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			sig = append(sig, "B")
		case KindData:
			sig = append(sig, "D:"+e.Tuple.Key)
		case KindCommit:
			sig = append(sig, "C")
		case KindRollback:
			sig = append(sig, "R")
		}
	}
	kvs, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows = map[string]string{}
	for _, r := range kvs {
		rows[r.Key] = string(r.Value)
	}
	return sig, rows, stats
}

// sigStructure reduces an element signature to the parts a parallel
// region must preserve: the exact punctuation sequence, and the multiset
// of data keys between consecutive punctuations (cross-key order within
// a transaction is explicitly unordered across lanes).
func sigStructure(sig []string) (punct string, segments []string) {
	var cur []string
	flush := func() {
		sort.Strings(cur)
		segments = append(segments, strings.Join(cur, ","))
		cur = nil
	}
	for _, s := range sig {
		if strings.HasPrefix(s, "D:") {
			cur = append(cur, s[2:])
			continue
		}
		flush()
		punct += s
	}
	flush()
	return punct, segments
}

// TestPropertyLaneCountEquivalence: for random scripts, every lane count
// must produce the same committed table contents, the same stats, the
// same punctuation sequence and the same per-transaction element
// multisets as the sequential reference model — the convergence
// obligation of the parallel region (all lanes agree on transaction
// boundaries; final state equals the sequential run).
func TestPropertyLaneCountEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)

			want := runRef(script, punctuateN, 0)
			wantPunct, wantSegs := sigStructure(want.sequence)

			for _, lanes := range []int{1, 2, 4, 8} {
				sig, rows, stats := runParallel(t, script, punctuateN, lanes, func(c *txn.Context) txn.Protocol { return txn.NewSI(c) })
				gotPunct, gotSegs := sigStructure(sig)
				if gotPunct != wantPunct {
					t.Fatalf("lanes=%d: punctuation sequence diverged:\n got %q\nwant %q", lanes, gotPunct, wantPunct)
				}
				if fmt.Sprint(gotSegs) != fmt.Sprint(wantSegs) {
					t.Fatalf("lanes=%d: per-transaction element multisets diverged:\n got %v\nwant %v", lanes, gotSegs, wantSegs)
				}
				if fmt.Sprint(rows) != fmt.Sprint(want.table) {
					t.Fatalf("lanes=%d: table content diverged:\n got %v\nwant %v", lanes, rows, want.table)
				}
				if stats.Writes.Load() != want.writes ||
					stats.Commits.Load() != want.commits ||
					stats.Aborts.Load() != want.aborts {
					t.Fatalf("lanes=%d: stats diverged: got w=%d c=%d a=%d, want w=%d c=%d a=%d",
						lanes, stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(),
						want.writes, want.commits, want.aborts)
				}
			}
		})
	}
}

// TestPropertyLane1FaultEquivalence: a single-lane region processes
// elements in sequential order and flushes whole transactions, so with
// injected mid-transaction write failures it must reproduce the
// sequential reference EXACTLY — element sequence, table contents and
// stats. This is the regression for the poison-wipe bug: with one lane a
// whole [BOT .. COMMIT BOT ..] run arrives as one batch whose stage
// flushes (and thus poisoning) all happen before the barrier syncs, so a
// BOT-keyed poison reset would erase the failure the same batch's COMMIT
// must observe — committing a transaction whose writes never applied.
func TestPropertyLane1FaultEquivalence(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			failAt := int64(1 + rng.Intn(50))

			want := runRef(script, punctuateN, failAt)
			sig, rows, stats := runParallel(t, script, punctuateN, 1, func(c *txn.Context) txn.Protocol {
				return &faultProtocol{Protocol: txn.NewSI(c), failAt: failAt}
			})
			if fmt.Sprint(sig) != fmt.Sprint(want.sequence) {
				t.Fatalf("element sequence diverged (punctuate=%d failAt=%d):\n got %v\nwant %v",
					punctuateN, failAt, sig, want.sequence)
			}
			if fmt.Sprint(rows) != fmt.Sprint(want.table) {
				t.Fatalf("table content diverged (failAt=%d):\n got %v\nwant %v", failAt, rows, want.table)
			}
			if stats.Writes.Load() != want.writes ||
				stats.Commits.Load() != want.commits ||
				stats.Aborts.Load() != want.aborts {
				t.Fatalf("stats diverged (failAt=%d): got w=%d c=%d a=%d, want w=%d c=%d a=%d",
					failAt, stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(),
					want.writes, want.commits, want.aborts)
			}
		})
	}
}

// TestLaneEquivalenceAllProtocols drives the parallel region through the
// generic WriteBatch fallback too: S2PL and BOCC do not implement
// SegmentWriter, so their lanes merge segments through Protocol.WriteBatch
// under the per-lane transaction latching.
func TestLaneEquivalenceAllProtocols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	script := genScript(rng)
	const punctuateN = 5
	want := runRef(script, punctuateN, 0)
	protos := map[string]func(*txn.Context) txn.Protocol{
		"mvcc": func(c *txn.Context) txn.Protocol { return txn.NewSI(c) },
		"s2pl": func(c *txn.Context) txn.Protocol { return txn.NewS2PL(c) },
		"bocc": func(c *txn.Context) txn.Protocol { return txn.NewBOCC(c) },
	}
	for name, proto := range protos {
		t.Run(name, func(t *testing.T) {
			_, rows, stats := runParallel(t, script, punctuateN, 4, proto)
			if fmt.Sprint(rows) != fmt.Sprint(want.table) {
				t.Fatalf("table content diverged:\n got %v\nwant %v", rows, want.table)
			}
			if stats.Writes.Load() != want.writes || stats.Commits.Load() != want.commits {
				t.Fatalf("stats diverged: got w=%d c=%d, want w=%d c=%d",
					stats.Writes.Load(), stats.Commits.Load(), want.writes, want.commits)
			}
		})
	}
}

// batchFeed injects pre-built batches into a raw edge, giving tests
// deterministic control over where batch boundaries fall.
func batchFeed(top *Topology, batches [][]Element) *Stream {
	out := top.newStream()
	top.spawn("batchfeed", func() {
		defer close(out.ch)
		<-top.start
		for _, b := range batches {
			nb := getBatch()
			nb = append(nb, b...)
			out.ch <- nb
		}
	})
	return out
}

// TestBatchBoundaryMidTransaction drives batches whose BOT and COMMIT
// punctuations land mid-batch and whose transactions span batch
// boundaries: the engine must split on the in-band punctuations exactly.
func TestBatchBoundaryMidTransaction(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	d := func(key, val string) Element {
		return DataElement(Tuple{Key: key, Value: []byte(val)})
	}
	batches := [][]Element{
		// txn 1 committed mid-batch; txn 2 opens in the same batch.
		{Punctuation(KindBOT), d("a", "1"), d("b", "2"), Punctuation(KindCommit), Punctuation(KindBOT), d("c", "3")},
		// txn 2 spans the boundary and commits mid-batch; txn 3 opens.
		{d("d", "4"), Punctuation(KindCommit), Punctuation(KindBOT), d("a", "5")},
		// a batch holding only punctuations: txn 3 rolls back, txn 4 is empty.
		{Punctuation(KindRollback), Punctuation(KindBOT), Punctuation(KindCommit)},
	}
	s := batchFeed(top, batches).Transactions(e.p)
	s, stats := s.ToTable(e.p, e.t1)
	collected := s.Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	els := <-collected
	if k := kinds(els); k != "BDDCBDDCBDRBC" {
		t.Fatalf("punctuation positions not preserved: %q", k)
	}
	if stats.Writes.Load() != 5 || stats.Commits.Load() != 3 || stats.Aborts.Load() != 1 {
		t.Fatalf("stats: writes=%d commits=%d aborts=%d",
			stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load())
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Key] = string(r.Value)
	}
	// txn 3 (a=5) rolled back: a keeps txn 1's value.
	want := map[string]string{"a": "1", "b": "2", "c": "3", "d": "4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("table content: got %v want %v", got, want)
	}
}
