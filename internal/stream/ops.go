package stream

import (
	"fmt"

	"sistream/internal/txn"
)

// The stateless operators below are fused: they cost no goroutine and no
// channel hop, running inline in whatever operator eventually consumes
// the stream (see batch.go). Their per-element state, where any exists
// (Punctuate), is touched by exactly one goroutine — the consumer's.
//
// The name parameters are kept for API stability; they were only ever
// the (unused) goroutine label even in the operator-per-goroutine
// engine, and fused stages cannot fail, so nothing references them.

// Map transforms data tuples one-to-one; punctuations pass through.
func (s *Stream) Map(name string, fn func(Tuple) Tuple) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind == KindData {
			e.Tuple = fn(e.Tuple)
		}
		emit(e)
	}, nil)
}

// Filter drops data tuples failing pred; punctuations pass through.
func (s *Stream) Filter(name string, pred func(Tuple) bool) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind == KindData && !pred(e.Tuple) {
			return
		}
		emit(e)
	}, nil)
}

// FlatMap maps one tuple to zero or more; punctuations pass through.
func (s *Stream) FlatMap(name string, fn func(Tuple, func(Tuple))) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind != KindData {
			emit(e)
			return
		}
		tx := e.Tx
		fn(e.Tuple, func(t Tuple) {
			emit(Element{Kind: KindData, Tuple: t, Tx: tx})
		})
	}, nil)
}

// Punctuate inserts transaction boundary punctuations around groups of n
// data tuples — the data-centric "auto-commit every n elements" policy.
// Pre-existing punctuations in the input pass through and reset the
// counter, so explicit boundaries win over the automatic ones. The
// inserted punctuations land in-band inside the current batch.
func (s *Stream) Punctuate(n int) *Stream {
	if n <= 0 {
		panic("stream: Punctuate needs n >= 1")
	}
	// explicit: inside a transaction delimited by punctuations already
	// present in the input — those are passed through untouched.
	// auto: inside a transaction this operator opened itself.
	var explicit, auto bool
	count := 0
	return s.fuse(func(e Element, emit func(Element)) {
		switch e.Kind {
		case KindData:
			if explicit {
				emit(e)
				return
			}
			if !auto {
				emit(Punctuation(KindBOT))
				auto = true
				count = 0
			}
			emit(e)
			count++
			if count >= n {
				emit(Punctuation(KindCommit))
				auto = false
			}
		case KindBOT:
			if auto {
				// Close the automatic batch before the explicit one.
				emit(Punctuation(KindCommit))
				auto = false
			}
			explicit = true
			emit(e)
		case KindCommit, KindRollback:
			explicit = false
			emit(e)
		default:
			emit(e)
		}
	}, func(emit func(Element)) {
		if auto {
			emit(Punctuation(KindCommit))
			auto = false
		}
	})
}

// Transactions interprets punctuations against protocol p: BOT begins a
// transaction whose handle is attached to every element up to the next
// COMMIT/ROLLBACK. Downstream stateful operators (ToTable) use the
// attached handle, so all states written by this query share one
// transaction — the precondition of the consistency protocol.
//
// tables lists the states the query maintains (each downstream ToTable
// target). They are declared on every transaction at Begin so the
// consistency protocol knows the full state list upfront and the LAST
// TO_TABLE operator in the pipeline becomes the commit coordinator; with
// a single ToTable the list may be empty.
//
// If Begin fails the error is recorded and the affected batch is dropped.
//
// Transactions runs as its own operator stage (not fused): its wait for
// the previous transaction's decision must overlap with the downstream
// operators processing that transaction, which requires a goroutine
// boundary.
func (s *Stream) Transactions(p txn.Protocol, tables ...*txn.Table) *Stream {
	out := s.t.newStream()
	var cur, prev *txn.Txn
	ob := getBatch()
	s.consume("transactions", func(b []Element) {
		for _, e := range b {
			switch e.Kind {
			case KindBOT:
				// Serialize the query's transactions: batch N+1 begins
				// only after batch N is decided downstream. Without this,
				// pipelined batches writing the same hot keys would be
				// concurrent transactions and abort each other under the
				// First-Committer-Wins rule (or self-deadlock under
				// S2PL) even though the query has a single writer.
				if prev != nil {
					// Ship everything accumulated so far FIRST: the
					// previous transaction's COMMIT must reach the
					// downstream coordinator, or its decision — the very
					// thing being awaited — could never happen.
					if len(ob) > 0 {
						out.ch <- ob
						ob = getBatch()
					}
					<-prev.Done()
					prev = nil
				}
				tx, err := p.Begin()
				if err != nil {
					s.t.fail("transactions", fmt.Errorf("begin: %w", err))
					cur = nil
					continue
				}
				if err := tx.Declare(tables...); err != nil {
					s.t.fail("transactions", fmt.Errorf("declare: %w", err))
					_ = p.Abort(tx)
					cur = nil
					continue
				}
				cur = tx
				e.Tx = cur
			case KindCommit, KindRollback:
				e.Tx = cur
				prev = cur
				cur = nil
			default:
				e.Tx = cur
			}
			ob = append(ob, e)
		}
		putBatch(b)
		if len(ob) > 0 {
			out.ch <- ob
			ob = getBatch()
		}
	}, func() {
		// Input ended mid-transaction: roll the dangling transaction back.
		if cur != nil {
			_ = p.Abort(cur)
			cur = nil
		}
		putBatch(ob)
		close(out.ch)
	})
	return out
}
