package stream

import (
	"fmt"

	"sistream/internal/txn"
)

// Map transforms data tuples one-to-one; punctuations pass through.
func (s *Stream) Map(name string, fn func(Tuple) Tuple) *Stream {
	out := s.t.newStream()
	s.t.spawn(name, func() {
		defer close(out.ch)
		for e := range s.ch {
			if e.Kind == KindData {
				e.Tuple = fn(e.Tuple)
			}
			out.ch <- e
		}
	})
	return out
}

// Filter drops data tuples failing pred; punctuations pass through.
func (s *Stream) Filter(name string, pred func(Tuple) bool) *Stream {
	out := s.t.newStream()
	s.t.spawn(name, func() {
		defer close(out.ch)
		for e := range s.ch {
			if e.Kind == KindData && !pred(e.Tuple) {
				continue
			}
			out.ch <- e
		}
	})
	return out
}

// FlatMap maps one tuple to zero or more; punctuations pass through.
func (s *Stream) FlatMap(name string, fn func(Tuple, func(Tuple))) *Stream {
	out := s.t.newStream()
	s.t.spawn(name, func() {
		defer close(out.ch)
		for e := range s.ch {
			if e.Kind != KindData {
				out.ch <- e
				continue
			}
			fn(e.Tuple, func(t Tuple) {
				out.ch <- Element{Kind: KindData, Tuple: t, Tx: e.Tx}
			})
		}
	})
	return out
}

// Punctuate inserts transaction boundary punctuations around groups of n
// data tuples — the data-centric "auto-commit every n elements" policy.
// Pre-existing punctuations in the input pass through and reset the
// counter, so explicit boundaries win over the automatic ones.
func (s *Stream) Punctuate(n int) *Stream {
	if n <= 0 {
		panic("stream: Punctuate needs n >= 1")
	}
	out := s.t.newStream()
	s.t.spawn("punctuate", func() {
		defer close(out.ch)
		// explicit: inside a transaction delimited by punctuations already
		// present in the input — those are passed through untouched.
		// auto: inside a transaction this operator opened itself.
		var explicit, auto bool
		count := 0
		for e := range s.ch {
			switch e.Kind {
			case KindData:
				if explicit {
					out.ch <- e
					break
				}
				if !auto {
					out.ch <- Punctuation(KindBOT)
					auto = true
					count = 0
				}
				out.ch <- e
				count++
				if count >= n {
					out.ch <- Punctuation(KindCommit)
					auto = false
				}
			case KindBOT:
				if auto {
					// Close the automatic batch before the explicit one.
					out.ch <- Punctuation(KindCommit)
					auto = false
				}
				explicit = true
				out.ch <- e
			case KindCommit, KindRollback:
				explicit = false
				out.ch <- e
			default:
				out.ch <- e
			}
		}
		if auto {
			out.ch <- Punctuation(KindCommit)
		}
	})
	return out
}

// Transactions interprets punctuations against protocol p: BOT begins a
// transaction whose handle is attached to every element up to the next
// COMMIT/ROLLBACK. Downstream stateful operators (ToTable) use the
// attached handle, so all states written by this query share one
// transaction — the precondition of the consistency protocol.
//
// tables lists the states the query maintains (each downstream ToTable
// target). They are declared on every transaction at Begin so the
// consistency protocol knows the full state list upfront and the LAST
// TO_TABLE operator in the pipeline becomes the commit coordinator; with
// a single ToTable the list may be empty.
//
// If Begin fails the error is recorded and the affected batch is dropped.
func (s *Stream) Transactions(p txn.Protocol, tables ...*txn.Table) *Stream {
	out := s.t.newStream()
	s.t.spawn("transactions", func() {
		defer close(out.ch)
		var cur, prev *txn.Txn
		for e := range s.ch {
			switch e.Kind {
			case KindBOT:
				// Serialize the query's transactions: batch N+1 begins
				// only after batch N is decided downstream. Without this,
				// pipelined batches writing the same hot keys would be
				// concurrent transactions and abort each other under the
				// First-Committer-Wins rule (or self-deadlock under
				// S2PL) even though the query has a single writer.
				if prev != nil {
					<-prev.Done()
					prev = nil
				}
				tx, err := p.Begin()
				if err != nil {
					s.t.fail("transactions", fmt.Errorf("begin: %w", err))
					cur = nil
					continue
				}
				if err := tx.Declare(tables...); err != nil {
					s.t.fail("transactions", fmt.Errorf("declare: %w", err))
					_ = p.Abort(tx)
					cur = nil
					continue
				}
				cur = tx
				e.Tx = cur
				out.ch <- e
			case KindCommit, KindRollback:
				e.Tx = cur
				prev = cur
				cur = nil
				out.ch <- e
			default:
				e.Tx = cur
				out.ch <- e
			}
		}
		// Input ended mid-transaction: roll the dangling transaction back.
		if cur != nil {
			_ = p.Abort(cur)
		}
	})
	return out
}
