package stream

import (
	"fmt"

	"sistream/internal/txn"
)

// The stateless operators below are fused: they cost no goroutine and no
// channel hop, running inline in whatever operator eventually consumes
// the stream (see batch.go). Their per-element state, where any exists
// (Punctuate), is touched by exactly one goroutine — the consumer's.
//
// The name parameters are kept for API stability; they were only ever
// the (unused) goroutine label even in the operator-per-goroutine
// engine, and fused stages cannot fail, so nothing references them.

// Map transforms data tuples one-to-one; punctuations pass through.
func (s *Stream) Map(name string, fn func(Tuple) Tuple) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind == KindData {
			e.Tuple = fn(e.Tuple)
		}
		emit(e)
	}, nil)
}

// Filter drops data tuples failing pred; punctuations pass through.
func (s *Stream) Filter(name string, pred func(Tuple) bool) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind == KindData && !pred(e.Tuple) {
			return
		}
		emit(e)
	}, nil)
}

// FlatMap maps one tuple to zero or more; punctuations pass through.
func (s *Stream) FlatMap(name string, fn func(Tuple, func(Tuple))) *Stream {
	_ = name
	return s.fuse(func(e Element, emit func(Element)) {
		if e.Kind != KindData {
			emit(e)
			return
		}
		tx := e.Tx
		fn(e.Tuple, func(t Tuple) {
			emit(Element{Kind: KindData, Tuple: t, Tx: tx})
		})
	}, nil)
}

// Punctuate inserts transaction boundary punctuations around groups of n
// data tuples — the data-centric "auto-commit every n elements" policy.
// Pre-existing punctuations in the input pass through and reset the
// counter, so explicit boundaries win over the automatic ones. The
// inserted punctuations land in-band inside the current batch.
func (s *Stream) Punctuate(n int) *Stream {
	if n <= 0 {
		panic("stream: Punctuate needs n >= 1")
	}
	s.t.note("operator", "punctuate", fmt.Sprintf("every=%d (fused)", n), nil)
	// explicit: inside a transaction delimited by punctuations already
	// present in the input — those are passed through untouched.
	// auto: inside a transaction this operator opened itself.
	var explicit, auto bool
	count := 0
	return s.fuse(func(e Element, emit func(Element)) {
		switch e.Kind {
		case KindData:
			if explicit {
				emit(e)
				return
			}
			if !auto {
				emit(Punctuation(KindBOT))
				auto = true
				count = 0
			}
			emit(e)
			count++
			if count >= n {
				emit(Punctuation(KindCommit))
				auto = false
			}
		case KindBOT:
			if auto {
				// Close the automatic batch before the explicit one.
				emit(Punctuation(KindCommit))
				auto = false
			}
			explicit = true
			emit(e)
		case KindCommit, KindRollback:
			explicit = false
			emit(e)
		default:
			emit(e)
		}
	}, func(emit func(Element)) {
		if auto {
			emit(Punctuation(KindCommit))
			auto = false
		}
	})
}

// Transactions interprets punctuations against protocol p: BOT begins a
// transaction whose handle is attached to every element up to the next
// COMMIT/ROLLBACK. Downstream stateful operators (ToTable) use the
// attached handle, so all states written by this query share one
// transaction — the precondition of the consistency protocol.
//
// tables lists the states the query maintains (each downstream ToTable
// target). They are declared on every transaction at Begin so the
// consistency protocol knows the full state list upfront and the LAST
// TO_TABLE operator in the pipeline becomes the commit coordinator; with
// a single ToTable the list may be empty.
//
// If Begin fails the error is recorded and the affected batch is dropped.
//
// Transactions runs as its own operator stage (not fused): its wait for
// the previous transaction's decision must overlap with the downstream
// operators processing that transaction, which requires a goroutine
// boundary. The query's transactions are strictly serialized — batch N+1
// begins only after batch N is decided; TransactionsWindow relaxes this
// to a bounded window for the fused commit spine.
func (s *Stream) Transactions(p txn.Protocol, tables ...*txn.Table) *Stream {
	return s.TransactionsWindow(p, 1, tables...)
}

// TransactionsWindow is Transactions with a bounded pipeline of undecided
// transactions: up to window consecutive transactions of the query may be
// in flight at once, the enabling half of the fused commit spine
// (ParallelRegion.MergeBatched submits the lane-complete ones to the
// group-commit pipeline as one batch). window == 1 is exactly
// Transactions: batch N+1 begins only after batch N is decided.
//
// With window > 1 the transactions are attached to one txn.Chain, which
// keeps the serial-order semantics honest while they overlap: a chain
// successor's First-Committer-Wins check treats its predecessors' writes
// as serial history (not conflicts), and S2PL's wait-die lets a successor
// wait out a predecessor's locks. What a window does NOT preserve is read
// visibility BETWEEN the windowed transactions: transaction N+1 pins its
// snapshot before transaction N commits, so protocol reads inside the
// window may observe the pre-window state. Use windows on blind-write
// ingest spines (TO_TABLE pipelines); keep window == 1 for queries that
// read the states they maintain.
func (s *Stream) TransactionsWindow(p txn.Protocol, window int, tables ...*txn.Table) *Stream {
	if window < 1 {
		panic("stream: TransactionsWindow needs window >= 1")
	}
	desc := fmt.Sprintf("protocol=%s window=%d (serialized)", p.Name(), window)
	if window > 1 {
		desc = fmt.Sprintf("protocol=%s window=%d (chained)", p.Name(), window)
	}
	return s.transactionsPipeline(p, func() int { return window }, window > 1, desc, nil, tables...)
}

// TransactionsTuned is TransactionsWindow with the window under control
// of an AutoTuner instead of a constant: the bound is re-read at every
// transaction begin, so the controller's resizes apply from the next
// transaction on while in-flight ones are never disturbed. The
// transactions always ride one txn.Chain (a chain of one is a plain
// transaction), so any window the controller picks has exactly the
// commit/abort behavior of the same static window — only batching
// geometry moves. Pass the SAME tuner to the region's MergeTuned, which
// closes the feedback loop. The visibility caveat of TransactionsWindow
// applies whenever the tuner grows past 1: use on blind-write ingest
// spines.
func (s *Stream) TransactionsTuned(p txn.Protocol, tun *AutoTuner, tables ...*txn.Table) *Stream {
	if tun == nil {
		panic("stream: TransactionsTuned needs a tuner")
	}
	desc := fmt.Sprintf("protocol=%s window=auto (tuner, chained)", p.Name())
	return s.transactionsPipeline(p, tun.Window, true, desc, tun, tables...)
}

// transactionsPipeline is the shared implementation of Transactions /
// TransactionsWindow / TransactionsTuned: window yields the current
// in-flight bound (constant or tuner-driven), chained attaches the
// shared txn.Chain. desc and tun feed the recorded plan (explain.go):
// desc states the window decision, tun (when non-nil) adds the live
// controller position to the step's runtime figures.
func (s *Stream) transactionsPipeline(p txn.Protocol, window func() int, chained bool, desc string, tun *AutoTuner, tables ...*txn.Table) *Stream {
	out := s.t.newStream()
	occ := occOf(out)
	live := occ
	if tun != nil {
		live = func() string {
			st := tun.Stats()
			return fmt.Sprintf("%s, window=%d linger=%s grows=%d shrinks=%d", occ(), st.Window, st.Linger, st.Grows, st.Shrinks)
		}
	}
	s.t.note("operator", "transactions", desc, live)
	var cur *txn.Txn
	var inflight []*txn.Txn
	var chain *txn.Chain
	if chained {
		chain = txn.NewChain()
	}
	ob := getBatch()
	s.consume("transactions", func(b []Element) {
		for _, e := range b {
			switch e.Kind {
			case KindBOT:
				// Bound the query's undecided transactions: batch N+1
				// begins only after batch N-window+1 is decided
				// downstream. Without any bound, pipelined batches
				// writing the same hot keys would be unboundedly many
				// concurrent transactions; with the chain attached, the
				// overlap within the window is conflict-exempt (see
				// txn.Chain). A loop, not an if: a tuner may shrink the
				// bound below the current in-flight count, and the excess
				// must drain before the next transaction begins.
				for len(inflight) >= window() {
					// Ship everything accumulated so far FIRST: the
					// awaited transaction's COMMIT must reach the
					// downstream coordinator, or its decision — the very
					// thing being awaited — could never happen.
					if len(ob) > 0 {
						out.ch <- ob
						ob = getBatch()
					}
					<-inflight[0].Done()
					inflight = inflight[1:]
				}
				tx, err := p.Begin()
				if err != nil {
					s.t.fail("transactions", fmt.Errorf("begin: %w", err))
					cur = nil
					continue
				}
				if chain != nil {
					tx.SetChain(chain)
				}
				if err := tx.Declare(tables...); err != nil {
					s.t.fail("transactions", fmt.Errorf("declare: %w", err))
					_ = p.Abort(tx)
					cur = nil
					continue
				}
				cur = tx
				e.Tx = cur
			case KindCommit, KindRollback:
				e.Tx = cur
				if cur != nil {
					inflight = append(inflight, cur)
				}
				cur = nil
			default:
				e.Tx = cur
			}
			ob = append(ob, e)
		}
		putBatch(b)
		if len(ob) > 0 {
			out.ch <- ob
			ob = getBatch()
		}
	}, func() {
		// Input ended mid-transaction: roll the dangling transaction back.
		if cur != nil {
			_ = p.Abort(cur)
			cur = nil
		}
		putBatch(ob)
		close(out.ch)
	})
	return out
}
