package stream

import "sync"

// The dataflow engine is vectorized: edges carry []Element batches, so
// one channel send/receive is amortized over up to batchCap elements, and
// chains of stateless operators (Map, Filter, FlatMap, Punctuate, KeyBy,
// FormatValue) fuse into the consuming operator's goroutine instead of
// costing one goroutine and one channel hop each. Punctuations stay
// in-band: a batch may contain BOT/COMMIT/ROLLBACK anywhere, and
// operators that care (ToTable, Transactions) split on them.
//
// Batch ownership is linear: whoever receives a batch owns it and either
// forwards it (possibly mutated in place — batches are single-reader) or
// returns it to the pool with putBatch. Fan-out operators (Split, Hub)
// hand each consumer its own copy.

const (
	// batchCap is the target number of elements per batch. Producers cut
	// batches at this size; under light load partial batches ship
	// immediately (see emitter), so batching never adds latency that a
	// consumer would notice.
	batchCap = 128

	// chanBuf is the per-edge channel buffer in batches; small enough
	// for backpressure, large enough to decouple operator scheduling.
	chanBuf = 16
)

// batchPool recycles batch backing arrays so the steady-state hot path
// allocates nothing per element. Pooled as *[]Element to avoid an
// interface allocation per slice header on Put.
var batchPool = sync.Pool{New: func() any {
	b := make([]Element, 0, batchCap)
	return &b
}}

// getBatch returns an empty batch with at least batchCap capacity.
func getBatch() []Element {
	return (*batchPool.Get().(*[]Element))[:0]
}

// putBatch recycles a batch. Stale element contents are NOT cleared: the
// zeroing cost is measurable on the hot path, while the retention it
// avoids is transient and bounded — a pooled batch pins at most one
// batch worth of tuples until its next reuse, and sync.Pool drops idle
// entries within two GC cycles.
func putBatch(b []Element) {
	if cap(b) < batchCap {
		return
	}
	b = b[:0]
	batchPool.Put(&b)
}

// fusedStage is one stateless (or single-goroutine stateful) operator
// fused into its consumer: apply transforms one element into zero or
// more, and flush (optional) runs at end-of-stream, emitting into the
// remainder of the chain.
type fusedStage struct {
	apply func(e Element, emit func(Element))
	flush func(emit func(Element))
}

// fuse derives a stream with one more pending fused stage. The stage
// runs inside whatever goroutine eventually consumes the stream, so a
// chain of fused operators costs zero goroutines and zero channel hops.
func (s *Stream) fuse(apply func(Element, func(Element)), flush func(func(Element))) *Stream {
	stages := make([]fusedStage, len(s.stages)+1)
	copy(stages, s.stages)
	stages[len(s.stages)] = fusedStage{apply: apply, flush: flush}
	return &Stream{t: s.t, ch: s.ch, stages: stages}
}

// consume spawns op's goroutine: it drains s batch-at-a-time, applies
// the stream's fused stages, and hands each processed non-empty batch to
// fn, which takes ownership. fin (optional) runs once after the input is
// exhausted and every fused flush hook has fired — operators close their
// output edges there.
func (s *Stream) consume(op string, fn func(batch []Element), fin func()) {
	s.t.spawn(op, func() {
		if len(s.stages) == 0 {
			for b := range s.ch {
				if len(b) == 0 {
					putBatch(b)
					continue
				}
				fn(b)
			}
			if fin != nil {
				fin()
			}
			return
		}
		// sinks[i] runs the chain from stage i on; sinks[len] collects
		// into the current output batch. Stage flushes at end-of-stream
		// feed the chain suffix after their own stage, preserving
		// operator order for flush-emitted elements.
		var out []Element
		sinks := make([]func(Element), len(s.stages)+1)
		sinks[len(s.stages)] = func(e Element) { out = append(out, e) }
		for i := len(s.stages) - 1; i >= 0; i-- {
			st := s.stages[i]
			next := sinks[i+1]
			sinks[i] = func(e Element) { st.apply(e, next) }
		}
		head := sinks[0]
		deliver := func() {
			if len(out) > 0 {
				fn(out)
			} else {
				putBatch(out)
			}
		}
		for b := range s.ch {
			out = getBatch()
			for _, e := range b {
				head(e)
			}
			putBatch(b)
			deliver()
		}
		out = getBatch()
		for i := range s.stages {
			if fl := s.stages[i].flush; fl != nil {
				fl(sinks[i+1])
			}
		}
		deliver()
		if fin != nil {
			fin()
		}
	})
}

// emitter adapts per-element producers (Source generators, ToStream) to
// batched edges. Emit appends to the current batch and ships it when it
// is full — or immediately, via a non-blocking send, while the edge has
// room: when the consumer keeps up elements flow with per-element
// latency, and once backpressure builds batches grow toward batchCap,
// which is exactly when amortization pays.
type emitter struct {
	out *Stream
	buf []Element
}

func newEmitter(out *Stream) *emitter {
	return &emitter{out: out, buf: getBatch()}
}

func (em *emitter) emit(e Element) {
	em.buf = append(em.buf, e)
	if len(em.buf) >= batchCap {
		em.out.ch <- em.buf
		em.buf = getBatch()
		return
	}
	select {
	case em.out.ch <- em.buf:
		em.buf = getBatch()
	default:
	}
}

// flush ships a partial batch (blocking).
func (em *emitter) flush() {
	if len(em.buf) > 0 {
		em.out.ch <- em.buf
		em.buf = getBatch()
	}
}

// close flushes and closes the edge.
func (em *emitter) close() {
	em.flush()
	putBatch(em.buf)
	em.buf = nil
	close(em.out.ch)
}
