package stream

import (
	"fmt"
	"testing"

	"sistream/internal/txn"
)

func seedTable(t *testing.T, e *streamEnv, tbl *txn.Table, kvs map[string]string) {
	t.Helper()
	tx, err := e.p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		if err := e.p.Write(tx, tbl, k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.p.Commit(tx); err != nil {
		t.Fatal(err)
	}
}

func TestTableJoinEnriches(t *testing.T) {
	e := newStreamEnv(t)
	seedTable(t, e, e.t1, map[string]string{"a": "limit=5", "b": "limit=9"})

	top := New("t")
	out := top.SliceSource("src", tuples("a", "b", "c")).
		TableJoin("join", e.p, e.t1, func(j Joined) (Tuple, bool) {
			tp := j.Stream
			if j.Matched {
				tp.Value = append(append([]byte(nil), tp.Value...), ' ')
				tp.Value = append(tp.Value, j.TableValue...)
			} else {
				tp.Value = []byte("unmatched")
			}
			return tp, true
		}).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, el := range <-out {
		got = append(got, fmt.Sprintf("%s:%s", el.Tuple.Key, el.Tuple.Value))
	}
	want := "[a:v-a limit=5 b:v-b limit=9 c:unmatched]"
	if fmt.Sprint(got) != want {
		t.Fatalf("join output %v, want %v", got, want)
	}
}

func TestTableJoinInner(t *testing.T) {
	e := newStreamEnv(t)
	seedTable(t, e, e.t1, map[string]string{"a": "x"})
	top := New("t")
	out := top.SliceSource("src", tuples("a", "b")).
		TableJoin("inner", e.p, e.t1, func(j Joined) (Tuple, bool) {
			return j.Stream, j.Matched // inner join
		}).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if got := dataKeys(<-out); fmt.Sprint(got) != "[a]" {
		t.Fatalf("inner join kept %v", got)
	}
}

// TestTableJoinUnderQueryTransaction: a join placed upstream of the
// query's commit point reads under the query's own transaction (one
// snapshot per batch rather than per element).
func TestTableJoinUnderQueryTransaction(t *testing.T) {
	e := newStreamEnv(t)
	seedTable(t, e, e.t1, map[string]string{"a": "spec-a", "b": "spec-b"})
	top := New("t")
	var joined []string
	q := top.SliceSource("src", tuples("a", "b")).
		Punctuate(2).
		Transactions(e.p, e.t2).
		TableJoin("lookup", e.p, e.t1, func(j Joined) (Tuple, bool) {
			joined = append(joined, fmt.Sprintf("%s=%s", j.Stream.Key, j.TableValue))
			tp := j.Stream
			tp.Value = j.TableValue
			return tp, j.Matched
		})
	q, stats := q.ToTable(e.p, e.t2)
	q.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(joined) != "[a=spec-a b=spec-b]" {
		t.Fatalf("join saw %v", joined)
	}
	if stats.Commits.Load() != 1 || stats.Writes.Load() != 2 {
		t.Fatalf("downstream table: commits=%d writes=%d", stats.Commits.Load(), stats.Writes.Load())
	}
	// The joined values were persisted into t2 within the same txn.
	vals, err := QueryKeys(e.p, []TableKey{{e.t2, "a"}, {e.t2, "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "spec-a" || string(vals[1]) != "spec-b" {
		t.Fatalf("persisted join results: %q %q", vals[0], vals[1])
	}
}

func TestTableJoinPunctuationsPass(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	out := top.SliceSource("src", tuples("a")).
		Punctuate(1).
		TableJoin("join", e.p, e.t1, func(j Joined) (Tuple, bool) { return j.Stream, true }).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if k := kinds(<-out); k != "BDC" {
		t.Fatalf("punctuations mangled: %q", k)
	}
}
