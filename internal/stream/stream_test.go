package stream

import (
	"fmt"
	"strings"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

func tuples(keys ...string) []Tuple {
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = Tuple{Key: k, Value: []byte("v-" + k), Num: float64(i), Ts: int64(i)}
	}
	return out
}

func dataKeys(els []Element) []string {
	var out []string
	for _, e := range els {
		if e.Kind == KindData {
			out = append(out, e.Tuple.Key)
		}
	}
	return out
}

func kinds(els []Element) string {
	var b strings.Builder
	for _, e := range els {
		switch e.Kind {
		case KindData:
			b.WriteByte('D')
		case KindBOT:
			b.WriteByte('B')
		case KindCommit:
			b.WriteByte('C')
		case KindRollback:
			b.WriteByte('R')
		}
	}
	return b.String()
}

func TestSourceMapFilterSink(t *testing.T) {
	top := New("t")
	out := top.SliceSource("src", tuples("a", "b", "c", "d")).
		Map("upper", func(tp Tuple) Tuple {
			tp.Key = strings.ToUpper(tp.Key)
			return tp
		}).
		Filter("not-b", func(tp Tuple) bool { return tp.Key != "B" }).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	got := dataKeys(<-out)
	if fmt.Sprint(got) != "[A C D]" {
		t.Fatalf("got %v", got)
	}
}

func TestFlatMap(t *testing.T) {
	top := New("t")
	out := top.SliceSource("src", tuples("a", "b")).
		FlatMap("dup", func(tp Tuple, emit func(Tuple)) {
			emit(tp)
			tp.Key += "2"
			emit(tp)
		}).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if got := dataKeys(<-out); fmt.Sprint(got) != "[a a2 b b2]" {
		t.Fatalf("got %v", got)
	}
}

func TestPunctuateBatches(t *testing.T) {
	top := New("t")
	out := top.SliceSource("src", tuples("a", "b", "c", "d", "e")).
		Punctuate(2).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	els := <-out
	if k := kinds(els); k != "BDDCBDDCBDC" {
		t.Fatalf("punctuation pattern %q", k)
	}
}

func TestPunctuateRespectsExplicitBoundaries(t *testing.T) {
	top := New("t")
	src := top.Source("src", func(emit func(Element)) error {
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "a"}))
		emit(DataElement(Tuple{Key: "b"}))
		emit(DataElement(Tuple{Key: "c"}))
		emit(Punctuation(KindCommit))
		return nil
	})
	out := src.Punctuate(1).Collect() // explicit boundaries win
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if k := kinds(<-out); k != "BDDDC" {
		t.Fatalf("pattern %q, want explicit BDDDC", k)
	}
}

func TestMergeAndSplit(t *testing.T) {
	top := New("t")
	a := top.SliceSource("a", tuples("a1", "a2"))
	b := top.SliceSource("b", tuples("b1", "b2"))
	merged := Merge("m", a, b)
	parts := merged.Split(2)
	c1 := parts[0].Collect()
	c2 := parts[1].Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	k1, k2 := dataKeys(<-c1), dataKeys(<-c2)
	if len(k1) != 4 || len(k2) != 4 {
		t.Fatalf("split lost elements: %v / %v", k1, k2)
	}
	if fmt.Sprint(k1) != fmt.Sprint(k2) {
		t.Fatalf("split outputs differ: %v vs %v", k1, k2)
	}
}

func TestHubAttachFromPointOfAttachment(t *testing.T) {
	top := New("t")
	gate := make(chan struct{})
	firstSeen := make(chan struct{})
	src := top.Source("src", func(emit func(Element)) error {
		emit(DataElement(Tuple{Key: "early"}))
		<-gate
		emit(DataElement(Tuple{Key: "late1"}))
		emit(DataElement(Tuple{Key: "late2"}))
		return nil
	})
	hub := src.Hub()
	early, _ := hub.Attach()
	var earlyKeys []string
	early.Sink("early", func(e Element) {
		earlyKeys = append(earlyKeys, e.Tuple.Key)
		if e.Tuple.Key == "early" {
			close(firstSeen)
		}
	})
	top.Start()
	<-firstSeen // the first element has been broadcast; hub is gated now
	lateSub, detach := hub.Attach()
	lateOut := lateSub.Collect()
	close(gate)
	if err := top.Wait(); err != nil {
		t.Fatal(err)
	}
	defer detach()
	if fmt.Sprint(earlyKeys) != "[early late1 late2]" {
		t.Fatalf("early subscriber: %v", earlyKeys)
	}
	// The late subscriber attached strictly after "early" was broadcast
	// and before the gate opened: it sees exactly the suffix.
	if got := dataKeys(<-lateOut); fmt.Sprint(got) != "[late1 late2]" {
		t.Fatalf("late subscriber: %v", got)
	}
}

func TestSlidingWindowAggregate(t *testing.T) {
	top := New("t")
	var in []Tuple
	for i := 1; i <= 5; i++ {
		in = append(in, Tuple{Key: "m", Num: float64(i)})
	}
	out := top.SliceSource("src", in).
		SlidingWindow("w", 3, Sum).
		Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	var sums []float64
	for _, e := range <-out {
		sums = append(sums, e.Tuple.Num)
	}
	// windows: [1]=1 [1,2]=3 [1,2,3]=6 [2,3,4]=9 [3,4,5]=12
	if fmt.Sprint(sums) != "[1 3 6 9 12]" {
		t.Fatalf("sliding sums %v", sums)
	}
}

func TestSlidingWindowPerKey(t *testing.T) {
	top := New("t")
	in := []Tuple{
		{Key: "a", Num: 1}, {Key: "b", Num: 10},
		{Key: "a", Num: 2}, {Key: "b", Num: 20},
	}
	out := top.SliceSource("src", in).SlidingWindow("w", 2, Avg).Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range <-out {
		got = append(got, fmt.Sprintf("%s:%g", e.Tuple.Key, e.Tuple.Num))
	}
	if fmt.Sprint(got) != "[a:1 b:10 a:1.5 b:15]" {
		t.Fatalf("per-key windows: %v", got)
	}
}

func TestTumblingWindow(t *testing.T) {
	top := New("t")
	in := []Tuple{
		{Key: "m", Num: 1, Ts: 0}, {Key: "m", Num: 2, Ts: 5}, // window [0,10)
		{Key: "m", Num: 3, Ts: 12}, // window [10,20)
		{Key: "m", Num: 5, Ts: 25}, // window [20,30)
	}
	out := top.SliceSource("src", in).TumblingWindow("w", 10, Sum).Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range <-out {
		got = append(got, fmt.Sprintf("%d:%g", e.Tuple.Ts, e.Tuple.Num))
	}
	if fmt.Sprint(got) != "[0:3 10:3 20:5]" {
		t.Fatalf("tumbling windows: %v", got)
	}
}

func TestAggFuncs(t *testing.T) {
	vs := []float64{3, 1, 4, 1, 5}
	if Sum(vs) != 14 || Min(vs) != 1 || Max(vs) != 5 || Count(vs) != 5 {
		t.Fatal("agg funcs broken")
	}
	if Avg(vs) != 2.8 {
		t.Fatalf("avg = %g", Avg(vs))
	}
	if Avg(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-window aggs should be 0")
	}
}

// streamEnv builds a transactional environment for linking-operator tests.
type streamEnv struct {
	ctx *txn.Context
	p   txn.Protocol
	t1  *txn.Table
	t2  *txn.Table
}

func newStreamEnv(t *testing.T) *streamEnv {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	t1, err := ctx.CreateTable("s1", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ctx.CreateTable("s2", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", t1, t2); err != nil {
		t.Fatal(err)
	}
	return &streamEnv{ctx: ctx, p: txn.NewSI(ctx), t1: t1, t2: t2}
}

func TestToTableCommitsBatches(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	s := top.SliceSource("src", tuples("a", "b", "c", "d")).
		Punctuate(2).
		Transactions(e.p)
	s, stats := s.ToTable(e.p, e.t1)
	s.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Writes.Load() != 4 || stats.Commits.Load() != 2 || stats.Aborts.Load() != 0 {
		t.Fatalf("stats: writes=%d commits=%d aborts=%d",
			stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load())
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table has %d rows", len(rows))
	}
}

func TestToTableRollbackDiscards(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	src := top.Source("src", func(emit func(Element)) error {
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "kept", Value: []byte("1")}))
		emit(Punctuation(KindCommit))
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "doomed", Value: []byte("2")}))
		emit(Punctuation(KindRollback))
		return nil
	})
	s, stats := src.Transactions(e.p).ToTable(e.p, e.t1)
	s.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Commits.Load() != 1 || stats.Aborts.Load() != 1 {
		t.Fatalf("stats: commits=%d aborts=%d", stats.Commits.Load(), stats.Aborts.Load())
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "kept" {
		t.Fatalf("rows: %v", rows)
	}
}

func TestToTableDeleteTuple(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	src := top.Source("src", func(emit func(Element)) error {
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "k", Value: []byte("v")}))
		emit(Punctuation(KindCommit))
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "k", Delete: true}))
		emit(Punctuation(KindCommit))
		return nil
	})
	s, _ := src.Transactions(e.p).ToTable(e.p, e.t1)
	s.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("delete tuple ignored: %v", rows)
	}
}

// TestTwoStatesOneTransaction chains two ToTable operators: both states
// must be updated atomically by the shared transaction.
func TestTwoStatesOneTransaction(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	s := top.SliceSource("src", tuples("x", "y")).
		Punctuate(2).
		Transactions(e.p, e.t1, e.t2)
	s, st1 := s.ToTable(e.p, e.t1)
	s, st2 := s.ToTable(e.p, e.t2)
	s.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if st1.Commits.Load() != 1 || st2.Commits.Load() != 1 {
		t.Fatalf("commits: %d / %d", st1.Commits.Load(), st2.Commits.Load())
	}
	r1, _ := TableSnapshot(e.p, e.t1)
	r2, _ := TableSnapshot(e.p, e.t2)
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatalf("rows: %d / %d", len(r1), len(r2))
	}
	// Both states committed under the SAME timestamp (one transaction).
	if e.t1.Group().LastCTS() == 0 {
		t.Fatal("no commit recorded")
	}
}

func TestToStreamEmitsCommittedChanges(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")

	feed, stopFeed := ToStream(top, e.t1, e.p)
	got := make(chan Element, 16)
	feed.Sink("collect", func(el Element) { got <- el })

	writer := top.SliceSource("src", []Tuple{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
		{Key: "a", Value: []byte("3")},
	}).Punctuate(1).Transactions(e.p)
	writer, _ = writer.ToTable(e.p, e.t1)
	writer.Discard()

	top.Start()
	var vals []string
	for i := 0; i < 3; i++ {
		el := <-got
		vals = append(vals, fmt.Sprintf("%s=%s", el.Tuple.Key, el.Tuple.Value))
	}
	stopFeed()
	if err := top.Wait(); err != nil {
		t.Fatal(err)
	}
	// Values are as-of each commit: a=1, b=2, a=3 in commit order.
	if fmt.Sprint(vals) != "[a=1 b=2 a=3]" {
		t.Fatalf("feed values: %v", vals)
	}
}

func TestQueryKeysConsistentSnapshot(t *testing.T) {
	e := newStreamEnv(t)
	// Seed both states.
	tx, _ := e.p.Begin()
	e.p.Write(tx, e.t1, "k", []byte("1"))
	e.p.Write(tx, e.t2, "k", []byte("1"))
	if err := e.p.Commit(tx); err != nil {
		t.Fatal(err)
	}
	vals, err := QueryKeys(e.p, []TableKey{{e.t1, "k"}, {e.t2, "k"}, {e.t1, "absent"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || string(vals[1]) != "1" || vals[2] != nil {
		t.Fatalf("query: %q %q %q", vals[0], vals[1], vals[2])
	}
}

func TestTransactionsAbortsDanglingTxn(t *testing.T) {
	e := newStreamEnv(t)
	top := New("t")
	src := top.Source("src", func(emit func(Element)) error {
		emit(Punctuation(KindBOT))
		emit(DataElement(Tuple{Key: "k", Value: []byte("v")}))
		return nil // stream ends mid-transaction
	})
	s, stats := src.Transactions(e.p).ToTable(e.p, e.t1)
	s.Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Commits.Load() != 0 {
		t.Fatal("dangling transaction committed")
	}
	if e.ctx.ActiveCount() != 0 {
		t.Fatalf("dangling transaction leaked: %d active", e.ctx.ActiveCount())
	}
	rows, _ := TableSnapshot(e.p, e.t1)
	if len(rows) != 0 {
		t.Fatalf("dangling writes visible: %v", rows)
	}
}
