package stream

import (
	"errors"
	"strings"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

func TestSourceErrorPropagates(t *testing.T) {
	top := New("t")
	boom := errors.New("sensor offline")
	s := top.Source("bad", func(emit func(Element)) error {
		emit(DataElement(Tuple{Key: "a"}))
		return boom
	})
	s.Discard()
	err := top.Run()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("source error lost: %v", err)
	}
	if !strings.Contains(err.Error(), "t/bad") {
		t.Fatalf("error lacks topology/operator context: %v", err)
	}
}

func TestFirstErrorWins(t *testing.T) {
	top := New("t")
	a := top.Source("a", func(func(Element)) error { return errors.New("first") })
	b := top.Source("b", func(func(Element)) error { return errors.New("second") })
	a.Discard()
	b.Discard()
	if err := top.Run(); err == nil {
		t.Fatal("errors swallowed")
	}
}

func TestStartIdempotent(t *testing.T) {
	top := New("t")
	top.SliceSource("src", tuples("a")).Discard()
	top.Start()
	top.Start() // second call must not panic (double close)
	if err := top.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorPanicsOnBadArguments(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	top := New("t")
	s := top.SliceSource("src", nil)
	mustPanic("punctuate-0", func() { s.Punctuate(0) })
	mustPanic("sliding-0", func() { s.SlidingWindow("w", 0, Sum) })
	mustPanic("tumbling-0", func() { s.TumblingWindow("w", 0, Sum) })
	mustPanic("merge-empty", func() { Merge("m") })
	s.Discard()
	_ = top.Run()
}

func TestToStreamPanicsWithoutGroup(t *testing.T) {
	e := newStreamEnv(t)
	orphan, err := e.ctx.CreateTable("orphan", kv.NewMem(), txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ToStream on a group-less table must panic")
		}
	}()
	ToStream(New("t"), orphan, e.p)
}

// KindString covers the Kind stringer including the unknown branch.
func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData:     "DATA",
		KindBOT:      "BOT",
		KindCommit:   "COMMIT",
		KindRollback: "ROLLBACK",
		Kind(99):     "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestHubAfterClose(t *testing.T) {
	top := New("t")
	hub := top.SliceSource("src", tuples("a")).Hub()
	early, detach := hub.Attach()
	earlyOut := early.Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	<-earlyOut
	detach() // detach after hub finished: must be a no-op
	// Attaching after the hub's input closed yields a closed stream.
	late, lateDetach := hub.Attach()
	defer lateDetach()
	if _, ok := <-late.ch; ok {
		t.Fatal("post-close attach delivered an element")
	}
}
