package stream

import (
	"errors"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// TestSpineDrainsCleanlyOnGroupFailure: a sticky sync failure mid-run
// poisons the commit group; the fused spine must surface exactly one
// topology failure (wrapping txn.ErrGroupFailed), account every later
// boundary as an abort, and drain to completion — no wedged worker, no
// post-failure commit acknowledged.
func TestSpineDrainsCleanlyOnGroupFailure(t *testing.T) {
	inner := kv.NewMem()
	fault := kv.NewFault(inner)
	badDisk := errors.New("injected: EIO")
	// Fail the 4th durability point and every one after it.
	fault.FailSyncAt(4, badDisk)

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("t", fault, txn.TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	group, err := ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)

	const elements, commitEvery = 400, 10
	top := New("failstop")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < elements; i++ {
			emit(DataElement(Tuple{Key: "k" + string(rune('a'+i%7)), Value: []byte{byte(i)}}))
		}
		return nil
	})
	region := src.Punctuate(commitEvery).TransactionsWindow(p, 4).Parallelize(2, nil)
	stats := region.ToTable(p, tbl)
	region.MergeBatched("merge", 4).Discard()

	// The run must TERMINATE (a wedged spine worker would hang the test)
	// and surface the fail-stop error through the region's error path.
	err = top.Run()
	if err == nil {
		t.Fatal("expected the topology to fail")
	}
	if !errors.Is(err, txn.ErrGroupFailed) || !errors.Is(err, badDisk) {
		t.Fatalf("topology error = %v, want ErrGroupFailed wrapping the injected EIO", err)
	}

	if group.Err() == nil {
		t.Fatal("group not poisoned")
	}
	commits, aborts := stats.Commits.Load(), stats.Aborts.Load()
	if commits == 0 {
		t.Fatal("no commit succeeded before the injected failure")
	}
	if aborts == 0 {
		t.Fatal("no post-failure boundary was drained as an abort")
	}
	if commits+aborts != elements/commitEvery {
		t.Fatalf("commits(%d)+aborts(%d) != %d transactions", commits, aborts, elements/commitEvery)
	}
	txns, _ := group.CommitStats()
	if int64(txns) != commits {
		t.Fatalf("group committed %d txns, stats acked %d", txns, commits)
	}

	// No post-failure commit was acknowledged: a crash + reopen recovers
	// a watermark equal to the last acknowledged commit — nothing less
	// (acked durable work lost) and nothing more (unacked work leaked).
	lastAcked := group.LastCTS()
	re, err := fault.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ctx2 := txn.NewContext()
	tbl2, err := ctx2.CreateTable("t", re, txn.TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	group2, err := ctx2.CreateGroup("g", tbl2)
	if err != nil {
		t.Fatal(err)
	}
	if group2.LastCTS() != lastAcked {
		t.Fatalf("recovered watermark %d != last acknowledged commit %d", group2.LastCTS(), lastAcked)
	}
}
