package stream

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// This file pins the self-tuning spine to the promise that makes it safe
// to leave on: tuning changes BATCHING GEOMETRY only. Whatever window
// sequence the controller walks through, the committed table contents,
// stats and punctuation framing are identical to the sequential
// reference — across protocols, wiring shapes (direct, fused
// Reparallelize, merge+re-route fallback), and forced mid-stream
// resizes.

// runSpineTuned is runSpine with the adaptive controller in both ends of
// the spine (TransactionsTuned + MergeTuned) and a selectable region
// wiring between them.
func runSpineTuned(t *testing.T, script []scriptItem, punctuateN, lanes int, wiring string, cfg AutoTune, proto func(*txn.Context) txn.Protocol) (sig []string, rows map[string]string, stats *ToTableStats) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("prop", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := proto(ctx)
	tun := NewAutoTuner(cfg)

	top := New("prop-tuned")
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	region := src.Punctuate(punctuateN).TransactionsTuned(p, tun).Parallelize(lanes, nil)
	switch wiring {
	case "direct":
	case "fused":
		// Same count, same (default) token: must wire lane-for-lane.
		region = region.Reparallelize("re", lanes, nil)
	case "reroute":
		// Count mismatch: merge barrier + fresh router in the middle.
		region = region.Reparallelize("re", lanes/2+1, nil)
	default:
		t.Fatalf("unknown wiring %q", wiring)
	}
	stats = region.ToTable(p, tbl)
	collected := region.MergeTuned("merge", tun).Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			sig = append(sig, "B")
		case KindData:
			sig = append(sig, "D:"+e.Tuple.Key)
		case KindCommit:
			sig = append(sig, "C")
		case KindRollback:
			sig = append(sig, "R")
		}
	}
	kvs, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows = map[string]string{}
	for _, r := range kvs {
		rows[r.Key] = string(r.Value)
	}
	return sig, rows, stats
}

// TestPropertyAdaptiveEquivalence: random scripts (rollbacks included)
// through the self-tuning spine must reproduce the sequential reference
// exactly — for all three protocols and all three wiring shapes. The
// tuner runs a deliberately twitchy config (Settle=1: a decision per
// batch) so window resizes land mid-script constantly.
func TestPropertyAdaptiveEquivalence(t *testing.T) {
	protos := map[string]func(*txn.Context) txn.Protocol{
		"mvcc": func(c *txn.Context) txn.Protocol { return txn.NewSI(c) },
		"s2pl": func(c *txn.Context) txn.Protocol { return txn.NewS2PL(c) },
		"bocc": func(c *txn.Context) txn.Protocol { return txn.NewBOCC(c) },
	}
	seeds := int64(4)
	if testing.Short() {
		seeds = 2
	}
	twitchy := AutoTune{MaxWindow: 8, Settle: 1}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 7700))
		script := genScript(rng)
		punctuateN := 1 + rng.Intn(7)
		want := runRef(script, punctuateN, 0)
		for name, proto := range protos {
			for _, wiring := range []string{"direct", "fused", "reroute"} {
				t.Run(fmt.Sprintf("seed=%d/%s/%s", seed, name, wiring), func(t *testing.T) {
					sig, rows, stats := runSpineTuned(t, script, punctuateN, 4, wiring, twitchy, proto)
					checkSpineAgainstRef(t, name+"/"+wiring, want, sig, rows, stats)
				})
			}
		}
	}
}

// TestStressAutoTuneResizeMidStream is the -race stress of the
// controller resizing while the pipeline runs: LatencyBound of 1ns makes
// every grown window immediately violate the latency guard, so the
// controller oscillates grow/shrink for the whole run — concurrent with
// 8 lanes, windowed transactions, rollbacks splitting batches — and the
// outcome must still match the sequential expectation exactly.
func TestStressAutoTuneResizeMidStream(t *testing.T) {
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("stress", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)
	tun := NewAutoTuner(AutoTune{MaxWindow: 16, Settle: 1, LatencyBound: time.Nanosecond})

	txns := 2000
	if testing.Short() {
		txns = 400
	}
	const keys, perTxn, rollbackEvery = 97, 7, 5

	top := New("stress-tune")
	src := top.Source("gen", func(emit func(Element)) error {
		n := 0
		for i := 0; i < txns; i++ {
			emit(Punctuation(KindBOT))
			for j := 0; j < perTxn; j++ {
				emit(DataElement(Tuple{
					Key:   fmt.Sprintf("k%02d", n%keys),
					Value: []byte(fmt.Sprintf("t%05d", i)),
				}))
				n++
			}
			if (i+1)%rollbackEvery == 0 {
				emit(Punctuation(KindRollback))
			} else {
				emit(Punctuation(KindCommit))
			}
		}
		return nil
	})
	region := src.TransactionsTuned(p, tun).Parallelize(8, nil)
	stats := region.ToTable(p, tbl)
	region.MergeTuned("merge", tun).Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}

	ts := tun.Stats()
	if ts.Grows == 0 || ts.Shrinks == 0 {
		t.Fatalf("controller never oscillated (grows=%d shrinks=%d); the stress needs resizes mid-stream", ts.Grows, ts.Shrinks)
	}
	wantCommits := int64(txns - txns/rollbackEvery)
	wantAborts := int64(txns / rollbackEvery)
	if c, a := stats.Commits.Load(), stats.Aborts.Load(); c != wantCommits || a != wantAborts {
		t.Fatalf("commits=%d aborts=%d, want %d/%d", c, a, wantCommits, wantAborts)
	}
	if w := stats.Writes.Load(); w != int64(txns*perTxn) {
		t.Fatalf("writes=%d, want %d", w, txns*perTxn)
	}
	if committed, _ := g.CommitStats(); committed != uint64(wantCommits) {
		t.Fatalf("group committed %d, want %d", committed, wantCommits)
	}
	want := map[string]string{}
	n := 0
	for i := 0; i < txns; i++ {
		commit := (i+1)%rollbackEvery != 0
		for j := 0; j < perTxn; j++ {
			if commit {
				want[fmt.Sprintf("k%02d", n%keys)] = fmt.Sprintf("t%05d", i)
			}
			n++
		}
	}
	rows, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Key] = string(r.Value)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("table diverged under mid-stream resizing:\n got %d keys\nwant %d keys", len(got), len(want))
	}
}

// TestAutoTunerController unit-drives the decision logic with synthetic
// observations: amortization that keeps improving grows the window to the
// cap; a latency violation halves it and holds; a probe that stops paying
// reverts with hysteresis.
func TestAutoTunerController(t *testing.T) {
	const settle = 4
	a := NewAutoTuner(AutoTune{MaxWindow: 8, Settle: settle, LatencyBound: time.Second})
	if a.Window() != 1 {
		t.Fatalf("start window = %d, want 1", a.Window())
	}
	// Perfect amortization: per-batch cost constant at 1ms no matter the
	// batch size, so per-transaction cost halves with every doubling.
	feed := func(n int) {
		for i := 0; i < settle; i++ {
			a.observeBatch(n, time.Millisecond)
		}
	}
	feed(1) // decision: probe to 2
	if a.Window() != 2 {
		t.Fatalf("after first decision window = %d, want 2 (probe)", a.Window())
	}
	feed(2) // probe accepted (cost halved), next decision probes again
	feed(2) // probe to 4
	feed(4) // accepted; probe to 8 next
	feed(4)
	feed(8) // accepted; at cap
	if a.Window() != 8 {
		t.Fatalf("window = %d after improving amortization, want cap 8", a.Window())
	}
	if g := a.Stats().Grows; g < 3 {
		t.Fatalf("grows = %d, want >= 3", g)
	}

	// Latency violation: batches now take longer than the bound — halve.
	for i := 0; i < settle; i++ {
		a.observeBatch(8, 2*time.Second)
	}
	if a.Window() != 4 {
		t.Fatalf("window = %d after latency violation, want 4", a.Window())
	}
	if s := a.Stats().Shrinks; s == 0 {
		t.Fatal("latency violation recorded no shrink")
	}
	// Hold: the next few decisions must not probe upward again.
	feed(4)
	if a.Window() != 4 {
		t.Fatalf("window = %d during hold, want 4", a.Window())
	}

	// Flat cost curve: once the hold expires, a probe that does not beat
	// the margin must revert.
	b := NewAutoTuner(AutoTune{MaxWindow: 8, Settle: 1, LatencyBound: time.Hour})
	b.observeBatch(1, time.Millisecond) // probe to 2
	if b.Window() != 2 {
		t.Fatalf("b window = %d, want 2", b.Window())
	}
	b.observeBatch(2, 2*time.Millisecond) // per-txn cost flat: revert
	if b.Window() != 1 {
		t.Fatalf("b window = %d after flat probe, want 1 (revert)", b.Window())
	}
	if s := b.Stats().Shrinks; s != 1 {
		t.Fatalf("b shrinks = %d, want 1", s)
	}
}

// TestAutoTunerLinger: the linger follows the window and the observed
// inter-arrival gap, clamped to [spineLinger, MaxLinger].
func TestAutoTunerLinger(t *testing.T) {
	a := NewAutoTuner(AutoTune{MaxWindow: 8, Settle: 1, MaxLinger: time.Millisecond, LatencyBound: time.Hour})
	if a.linger() != spineLinger {
		t.Fatalf("initial linger = %v, want floor %v", a.linger(), spineLinger)
	}
	// Window 1: the floor regardless of arrivals.
	a.interArrival.Observe(float64(500 * time.Microsecond))
	a.retarget()
	if a.linger() != spineLinger {
		t.Fatalf("linger = %v at window 1, want floor", a.linger())
	}
	// Window 4 with 500µs gaps wants 1.5ms — clamped to MaxLinger 1ms.
	a.setWindow(4)
	a.retarget()
	if a.linger() != time.Millisecond {
		t.Fatalf("linger = %v, want clamp at MaxLinger 1ms", a.linger())
	}
	// Tiny gaps: floor wins.
	a.interArrival.Reset()
	a.interArrival.Observe(float64(10 * time.Nanosecond))
	for i := 0; i < 64; i++ {
		a.interArrival.Observe(float64(10 * time.Nanosecond))
	}
	a.retarget()
	if a.linger() != spineLinger {
		t.Fatalf("linger = %v with tiny gaps, want floor %v", a.linger(), spineLinger)
	}
}
