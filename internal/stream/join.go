package stream

import (
	"sistream/internal/txn"
)

// Joined is the result of a table-lookup join for one stream tuple.
type Joined struct {
	// Stream is the incoming tuple.
	Stream Tuple
	// TableValue is the joined row's value; nil when the key was absent
	// (the join is an outer join — see TableJoin).
	TableValue []byte
	// Matched reports whether the table had a visible row for the key.
	Matched bool
}

// TableJoin enriches each data tuple with the row of tbl under the
// tuple's key — the stream-table lookup join pattern of the paper's
// Figure 1 (the Verify operator joining measurements against the
// Specification state). Reads happen under the element's attached
// transaction when one is present (so a query joining the tables it also
// maintains sees its own uncommitted writes); otherwise each lookup runs
// in its own read-only snapshot transaction.
//
// fn maps the join result to an output tuple; returning false drops the
// element (an inner join keeps only fn(..)==true for matched rows).
// Punctuations pass through. Batches are filtered and rewritten in place.
//
// Placement: when joining under the query's transaction, TableJoin must
// sit UPSTREAM of the query's final ToTable — the operator that flips the
// last consistency-protocol flag commits the transaction, and operator
// stages run concurrently, so a join placed after it may find the
// transaction already finished (such elements are dropped).
func (s *Stream) TableJoin(name string, p txn.Protocol, tbl *txn.Table, fn func(Joined) (Tuple, bool)) *Stream {
	out := s.t.newStream()
	s.consume(name, func(b []Element) {
		w := 0
		for _, e := range b {
			if e.Kind != KindData {
				b[w] = e
				w++
				continue
			}
			var value []byte
			var matched bool
			if e.Tx != nil {
				v, ok, err := p.Read(e.Tx, tbl, e.Tuple.Key)
				if err != nil {
					if txn.IsAbort(err) || err == txn.ErrFinished {
						continue // transaction gone; drop the element
					}
					s.t.fail(name, err)
					continue
				}
				value, matched = v, ok
			} else {
				rtx, err := p.BeginReadOnly()
				if err != nil {
					s.t.fail(name, err)
					continue
				}
				v, ok, err := p.Read(rtx, tbl, e.Tuple.Key)
				if err != nil {
					_ = p.Abort(rtx)
					if txn.IsAbort(err) {
						continue
					}
					s.t.fail(name, err)
					continue
				}
				if ok {
					value = append([]byte(nil), v...)
				}
				if err := p.Commit(rtx); err != nil {
					continue // validation abort (BOCC): drop, upstream retries
				}
				matched = ok
			}
			t, keep := fn(Joined{Stream: e.Tuple, TableValue: value, Matched: matched})
			if !keep {
				continue
			}
			b[w] = Element{Kind: KindData, Tuple: t, Tx: e.Tx}
			w++
		}
		if w == 0 {
			putBatch(b)
			return
		}
		out.ch <- b[:w]
	}, func() { close(out.ch) })
	return out
}
