package stream

// Self-tuning commit spine. The static pipeline knobs — the
// TransactionsWindow size and the spine's fixed linger — bake in one
// point of the throughput/latency trade: how many transactions may be in
// flight bounds how many boundaries the spine can batch into one
// group-commit submission, and the linger bounds how long it holds out
// for them. The right values depend on the store's observed fsync
// latency: on a synced LSM a bigger window keeps amortizing the fsync
// over more transactions; on a memory store batching buys little and a
// large window only defers decisions. AutoTune replaces both constants
// with a measured controller:
//
//   - The spine worker times every clean commit run (the CommitChain
//     submission — admission, the coalesced store Apply with its fsync,
//     install and publish) and accumulates per-transaction cost.
//   - Every Settle batches the controller decides: if per-batch decision
//     latency exceeds LatencyBound the window HALVES (latency guard);
//     otherwise it probes upward, DOUBLING while the marginal
//     per-transaction cost keeps improving and reverting (with
//     hysteresis) when a probe stops paying.
//   - The linger follows the window: it targets the time the spine
//     expects window-1 further boundaries to take to arrive (the enqueue
//     inter-arrival EWMA), clamped to [spineLinger, MaxLinger] — a fast
//     producer never waits longer than it must, a slow one never holds a
//     decided transaction past MaxLinger.
//
// Tuning changes BATCHING GEOMETRY only: which transactions commit and
// which abort is identical to any static window (the windowed
// transactions ride one txn.Chain either way, and a chain of one is a
// plain transaction) — pinned by TestPropertyAdaptiveEquivalence.

import (
	"sync/atomic"
	"time"

	"sistream/internal/metrics"
)

// Defaults for zero-valued AutoTune fields.
const (
	// DefaultMaxWindow bounds how far the controller may grow the
	// in-flight transaction window.
	DefaultMaxWindow = 64
	// DefaultLatencyBound is the per-batch decision-latency ceiling: a
	// batch whose commit work exceeds it makes the controller halve the
	// window regardless of throughput.
	DefaultLatencyBound = 25 * time.Millisecond
	// DefaultMaxLinger caps how long the spine holds a decided
	// transaction while collecting a batch.
	DefaultMaxLinger = 2 * time.Millisecond
	// DefaultSettle is how many batches the controller observes between
	// decisions — the hysteresis that keeps one noisy batch from
	// thrashing the window.
	DefaultSettle = 8
)

// growMargin is the relative per-transaction cost improvement a window
// probe must deliver to stick; reverts below it. The margin is the
// hysteresis band: oscillating around a flat cost curve never holds.
const growMargin = 0.05

// holdDecisions is how many decisions the controller sits out after a
// shrink or a failed probe before probing upward again.
const holdDecisions = 4

// AutoTune configures the self-tuning commit spine (NewAutoTuner). The
// zero value of every field selects its default.
type AutoTune struct {
	// MaxWindow bounds the adaptive transaction window (default
	// DefaultMaxWindow).
	MaxWindow int
	// LatencyBound is the per-batch decision-latency ceiling above which
	// the window shrinks (default DefaultLatencyBound).
	LatencyBound time.Duration
	// MaxLinger caps the spine's batch-collection wait (default
	// DefaultMaxLinger).
	MaxLinger time.Duration
	// Settle is the number of observed batches per controller decision
	// (default DefaultSettle).
	Settle int
}

// AutoTuner is the shared state between the two ends of a self-tuning
// spine: TransactionsTuned reads the current window at every transaction
// begin, the MergeTuned spine worker reads window and linger while
// collecting batches and feeds observations back. Create one per
// pipeline (NewAutoTuner) and pass it to both ends; the controller logic
// runs only on the spine worker goroutine, so all decision state is
// single-writer.
type AutoTuner struct {
	cfg AutoTune

	window   atomic.Int64 // current window; read by TransactionsTuned
	lingerNs atomic.Int64 // current linger; read by the spine worker

	grows   atomic.Uint64
	shrinks atomic.Uint64

	// Occupancy and inter-arrival signals, recorded at spine enqueue.
	occupancy    metrics.EWMA
	interArrival metrics.EWMA
	lastEnqueue  atomic.Int64 // UnixNano of the previous enqueue

	// Decision accumulator — owned by the spine worker goroutine.
	accTxns    int
	accBatches int
	accNs      int64
	// Probe state: prevCost is the accepted per-transaction cost the next
	// probe must beat; probing marks a doubled window awaiting its
	// verdict; hold counts decisions to sit out after a revert/shrink.
	prevCost   float64
	prevWindow int
	probing    bool
	hold       int
}

// NewAutoTuner creates the controller for one self-tuning pipeline,
// starting at window 1 (no batching until measurements justify it).
func NewAutoTuner(cfg AutoTune) *AutoTuner {
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = DefaultMaxWindow
	}
	if cfg.LatencyBound <= 0 {
		cfg.LatencyBound = DefaultLatencyBound
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = DefaultMaxLinger
	}
	if cfg.Settle <= 0 {
		cfg.Settle = DefaultSettle
	}
	a := &AutoTuner{cfg: cfg}
	a.window.Store(1)
	a.lingerNs.Store(int64(spineLinger))
	return a
}

// Window returns the controller's current transaction window, in
// [1, MaxWindow]. TransactionsTuned consults it at every BOT, so a
// resize takes effect on the next transaction — in-flight ones are
// never disturbed.
func (a *AutoTuner) Window() int { return int(a.window.Load()) }

// linger returns the spine's current batch-collection bound.
func (a *AutoTuner) linger() time.Duration {
	return time.Duration(a.lingerNs.Load())
}

// AutoTunerStats is a point-in-time view of the controller
// (AutoTuner.Stats).
type AutoTunerStats struct {
	// Window and Linger are the current knob positions.
	Window int
	Linger time.Duration
	// Grows counts upward window resizes (probes); Shrinks counts
	// downward ones (latency halvings and probe reverts) — both non-zero
	// means the controller actually explored.
	Grows, Shrinks uint64
	// QueueOccupancy is the EWMA of the spine queue length at enqueue;
	// InterArrival the EWMA of time between enqueues.
	QueueOccupancy float64
	InterArrival   time.Duration
}

// Stats snapshots the controller.
func (a *AutoTuner) Stats() AutoTunerStats {
	return AutoTunerStats{
		Window:         a.Window(),
		Linger:         a.linger(),
		Grows:          a.grows.Load(),
		Shrinks:        a.shrinks.Load(),
		QueueOccupancy: a.occupancy.Value(),
		InterArrival:   time.Duration(a.interArrival.Value()),
	}
}

// noteEnqueue records one boundary arriving at the spine queue: the
// queue occupancy it found and the inter-arrival gap since the previous
// one. Called by the barrier coordinator (any lane goroutine may be
// coordinator, so everything here is atomic).
func (a *AutoTuner) noteEnqueue(queueLen int) {
	// +1: strictly positive so an idle queue still seeds the EWMA.
	a.occupancy.Observe(float64(queueLen) + 1)
	now := time.Now().UnixNano()
	if prev := a.lastEnqueue.Swap(now); prev != 0 && now > prev {
		a.interArrival.Observe(float64(now - prev))
	}
}

// observeBatch feeds one timed commit submission (n transactions decided
// in d) into the controller; every Settle batches it re-decides the
// window and linger. Spine-worker goroutine only.
func (a *AutoTuner) observeBatch(n int, d time.Duration) {
	a.accTxns += n
	a.accBatches++
	a.accNs += d.Nanoseconds()
	if a.accBatches < a.cfg.Settle {
		return
	}
	a.decide()
	a.accTxns, a.accBatches, a.accNs = 0, 0, 0
}

// decide is one controller step over the accumulated interval.
func (a *AutoTuner) decide() {
	if a.accTxns == 0 {
		return
	}
	w := a.Window()
	batchLat := float64(a.accNs) / float64(a.accBatches)
	cost := float64(a.accNs) / float64(a.accTxns)

	switch {
	case batchLat > float64(a.cfg.LatencyBound.Nanoseconds()) && w > 1:
		// Latency guard: decisions are arriving too slowly; halve
		// regardless of throughput and hold before probing again.
		a.setWindow(w / 2)
		a.shrinks.Add(1)
		a.probing = false
		a.hold = holdDecisions
		a.prevCost = 0 // stale baseline: the regime changed
	case a.probing:
		a.probing = false
		if a.prevCost > 0 && cost > a.prevCost*(1-growMargin) {
			// The doubled window did not pay its margin: revert and hold.
			a.setWindow(a.prevWindow)
			a.shrinks.Add(1)
			a.hold = holdDecisions
		} else {
			// Probe accepted; its cost is the next baseline.
			a.prevCost = cost
		}
	case a.hold > 0:
		a.hold--
	case w < a.cfg.MaxWindow:
		if a.prevCost == 0 {
			a.prevCost = cost
		}
		a.prevWindow = w
		a.setWindow(w * 2)
		a.grows.Add(1)
		a.probing = true
	}
	a.retarget()
}

// setWindow clamps and publishes a new window.
func (a *AutoTuner) setWindow(w int) {
	if w < 1 {
		w = 1
	}
	if w > a.cfg.MaxWindow {
		w = a.cfg.MaxWindow
	}
	a.window.Store(int64(w))
}

// retarget follows the window with the linger: long enough for the rest
// of a window's boundaries to arrive at the observed inter-arrival rate,
// clamped to [spineLinger, MaxLinger].
func (a *AutoTuner) retarget() {
	w := a.Window()
	target := int64(spineLinger)
	if ia := a.interArrival.Value(); ia > 0 && w > 1 {
		if t := int64(ia) * int64(w-1); t > target {
			target = t
		}
	}
	if max := a.cfg.MaxLinger.Nanoseconds(); target > max {
		target = max
	}
	a.lingerNs.Store(target)
}
