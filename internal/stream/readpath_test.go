package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// Property test: index–table equivalence. Random transaction scripts —
// writes, deletes, explicit rollbacks — run through the full pipeline
// (source → transactions → parallel lanes → TO_TABLE) under each
// protocol, with a commit watcher that, at EVERY commit boundary,
// compares a secondary-index lookup against a filtered full-table scan
// at that commit's timestamp. The index is maintained on the commit path
// (see txn/index.go); the property pins its invariant: an index read at
// cts returns exactly the rows a table scan at cts would, for every cts
// the group ever published — never a row early, never a row late, and
// nothing from aborted transactions.

// equivBuckets is the index-key domain of the random scripts. Values
// starting with 'x' are excluded (ok=false), so the partial-index path
// is exercised too.
var equivBuckets = []string{"b0", "b1", "b2", "b3"}

func equivExtract(_ string, value []byte) (string, bool) {
	if len(value) == 0 || value[0] == 'x' {
		return "", false
	}
	return equivBuckets[int(value[0]-'0')%len(equivBuckets)], true
}

// equivCheck compares, at snapshot cts, the index's view of every bucket
// against a full scan of the table filtered through the same extractor —
// keys and values both.
func equivCheck(tbl *txn.Table, ix *txn.Index, cts txn.Timestamp) error {
	want := map[string]map[string][]byte{} // bucket -> key -> value
	tbl.SnapshotScan(cts, func(key string, value []byte) bool {
		if b, ok := equivExtract(key, value); ok {
			if want[b] == nil {
				want[b] = map[string][]byte{}
			}
			want[b][key] = append([]byte(nil), value...)
		}
		return true
	})
	for _, b := range equivBuckets {
		got := map[string][]byte{}
		ix.Lookup(cts, b, func(key string, value []byte) bool {
			if _, dup := got[key]; dup {
				return true // flagged below by count mismatch
			}
			got[key] = append([]byte(nil), value...)
			return true
		})
		if len(got) != len(want[b]) {
			return fmt.Errorf("cts %d bucket %s: index has %d rows, scan has %d", cts, b, len(got), len(want[b]))
		}
		for k, v := range want[b] {
			gv, ok := got[k]
			if !ok {
				return fmt.Errorf("cts %d bucket %s: key %s visible in scan but not in index", cts, b, k)
			}
			if !bytes.Equal(gv, v) {
				return fmt.Errorf("cts %d bucket %s key %s: index value %q != scan value %q", cts, b, k, gv, v)
			}
		}
	}
	return nil
}

// equivScript generates one random transaction script as a pre-punctuated
// element sequence: txns transactions of 1..8 operations (puts, ~20%
// deletes) over a 24-key domain, ~15% of them ending in ROLLBACK.
func equivScript(rng *rand.Rand, txns int) []Element {
	var script []Element
	for t := 0; t < txns; t++ {
		script = append(script, Punctuation(KindBOT))
		for n := 1 + rng.Intn(8); n > 0; n-- {
			key := fmt.Sprintf("k%02d", rng.Intn(24))
			if rng.Float64() < 0.2 {
				script = append(script, Element{Kind: KindData, Tuple: Tuple{Key: key, Delete: true}})
				continue
			}
			// First byte selects the bucket; 'x' leaves the row unindexed.
			first := byte('0' + rng.Intn(len(equivBuckets)))
			if rng.Float64() < 0.15 {
				first = 'x'
			}
			value := append([]byte{first}, []byte(fmt.Sprintf("-t%d-%d", t, rng.Intn(1000)))...)
			script = append(script, Element{Kind: KindData, Tuple: Tuple{Key: key, Value: value}})
		}
		if rng.Float64() < 0.15 {
			script = append(script, Punctuation(KindRollback))
		} else {
			script = append(script, Punctuation(KindCommit))
		}
	}
	return script
}

func runEquivProperty(t *testing.T, protocol string, lanes int, seed int64) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("rows", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	group, err := ctx.CreateGroup("rows", tbl)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := tbl.CreateIndex("bucket", equivExtract)
	if err != nil {
		t.Fatal(err)
	}
	var p txn.Protocol
	switch protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	default:
		t.Fatalf("unknown protocol %q", protocol)
	}

	txns := 60
	if testing.Short() {
		txns = 20
	}
	script := equivScript(rand.New(rand.NewSource(seed)), txns)

	// The watcher runs on the committing goroutine under the group's
	// commit latch, right after the commit's versions installed — the
	// exact boundary the property quantifies over.
	var (
		checkMu   sync.Mutex
		checkErrs []error
		checked   int
	)
	group.Watch(func(cts txn.Timestamp, _ map[txn.StateID][]string) {
		err := equivCheck(tbl, ix, cts)
		checkMu.Lock()
		if err != nil && len(checkErrs) < 5 {
			checkErrs = append(checkErrs, err)
		}
		checked++
		checkMu.Unlock()
	})

	top := New("equiv")
	src := top.Source("script", func(emit func(Element)) error {
		for _, e := range script {
			emit(e)
		}
		return nil
	})
	region := src.Transactions(p).Parallelize(lanes, nil)
	stats := region.ToTable(p, tbl)
	region.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}

	checkMu.Lock()
	defer checkMu.Unlock()
	for _, err := range checkErrs {
		t.Error(err)
	}
	if commits := stats.Commits.Load(); checked < int(commits) {
		t.Errorf("watcher checked %d boundaries, expected >= %d commits", checked, commits)
	}
	if checked == 0 {
		t.Fatal("no commit boundary was ever checked (empty script?)")
	}
	// And once more at the final horizon, plus the released-world check:
	// everything the scripts left behind must still be equivalent.
	if err := equivCheck(tbl, ix, group.LastCTS()); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndexTableEquivalence sweeps the property over the three
// protocols × {1, 4} lanes × several seeds (fewer under -short).
func TestPropertyIndexTableEquivalence(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for _, protocol := range []string{"mvcc", "s2pl", "bocc"} {
		for _, lanes := range []int{1, 4} {
			for seed := int64(0); seed < int64(seeds); seed++ {
				protocol, lanes, seed := protocol, lanes, seed
				t.Run(fmt.Sprintf("%s/lanes=%d/seed=%d", protocol, lanes, seed), func(t *testing.T) {
					runEquivProperty(t, protocol, lanes, seed)
				})
			}
		}
	}
}

// TestSnapshotIndexLookupThroughStream pins the composition the query
// quickstart relies on: FromSnapshot streams a pinned snapshot's rows
// through a topology while writers keep committing, and Snapshot.Lookup
// over the index agrees with the streamed rows filtered by bucket.
func TestSnapshotIndexLookupThroughStream(t *testing.T) {
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("rows", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("rows", tbl); err != nil {
		t.Fatal(err)
	}
	ix, err := tbl.CreateIndex("bucket", equivExtract)
	if err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)

	// Seed 100 keys over the buckets via the write path.
	write := func(from, to int) {
		top := New("seed")
		src := top.Source("gen", func(emit func(Element)) error {
			for i := from; i < to; i++ {
				emit(DataElement(Tuple{
					Key:   fmt.Sprintf("k%03d", i),
					Value: []byte(fmt.Sprintf("%d-v%d", i%len(equivBuckets), i)),
				}))
			}
			return nil
		})
		s := src.Punctuate(10).Transactions(p)
		s, _ = s.ToTable(p, tbl)
		s.Discard()
		if err := top.Run(); err != nil {
			t.Fatal(err)
		}
	}
	write(0, 100)

	snap, err := ctx.Snapshot(tbl)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Commit more rows AFTER pinning: the streamed scan must not see them.
	write(100, 150)

	top := New("scan")
	rows := FromSnapshot(top, snap, tbl, 4)
	collected := rows.Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	streamed := map[string][]byte{}
	for _, e := range <-collected {
		if e.Kind == KindData {
			streamed[e.Tuple.Key] = e.Tuple.Value
		}
	}
	if len(streamed) != 100 {
		t.Fatalf("streamed scan saw %d rows, want the 100 pre-pin rows", len(streamed))
	}
	for _, b := range equivBuckets {
		want := map[string]bool{}
		for k, v := range streamed {
			if bk, ok := equivExtract(k, v); ok && bk == b {
				want[k] = true
			}
		}
		got := map[string]bool{}
		if err := snap.Lookup(ix, b, func(key string, _ []byte) bool {
			got[key] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("bucket %s: index lookup %d rows, streamed scan %d", b, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("bucket %s: key %s streamed but absent from index lookup", b, k)
			}
		}
	}
}
