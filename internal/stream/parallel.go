package stream

import (
	"fmt"
	"sync"

	"sistream/internal/txn"
)

// Parallel keyed regions: the multiplier after vectorization. A single
// continuous query's dataflow spine — one fused operator chain, one
// TO_TABLE goroutine — is inherently single-writer; Parallelize splits it
// into P independent lanes by hashing each tuple's key, so the per-element
// work (operator stages, write-set building, value copies) runs on P
// cores, while the transaction model of the paper is preserved exactly:
//
//   - Routing is KEYED: a key is always processed by the same lane, so
//     per-key order is preserved and the lanes' write sets are disjoint.
//   - Punctuations are BROADCAST: every lane sees every BOT/COMMIT/
//     ROLLBACK, in the same order, at the same position relative to its
//     share of the data.
//   - The merge BARRIER re-serializes punctuations: a lane reaching a
//     punctuation first flushes its pending per-lane write segment into
//     the shared transaction (txn.Segment — one latch acquisition per
//     lane per boundary), then parks; the last lane to arrive becomes the
//     commit coordinator and fires the single CommitState/Abort only
//     after every lane has acknowledged the boundary. The transaction
//     therefore commits all lanes' writes atomically — the same
//     per-transaction atomicity the sequential TO_TABLE provides — and
//     the merged output stream carries each punctuation exactly once, at
//     a position consistent with every data element of its transaction.
//
// What is NOT preserved is the interleaving of data elements of one
// transaction across different keys: lanes run concurrently, so the
// merged stream orders them arbitrarily between two punctuations (the
// property test in parallel_test.go pins down exactly this contract:
// identical per-transaction element multisets, identical table contents
// and stats for every lane count, against the sequential reference).

// laneKey is the default routing hash: txn.DefaultKeyHash of the tuple
// key — the SAME function the partitioned change feed defaults to, so
// default-keyed ingest lanes and feed partitions agree on placement
// (an empty key routes to lane 0).
func laneKey(t Tuple) uint64 {
	return txn.DefaultKeyHash(t.Key)
}

// ParallelRegion is a parallel section of a topology: P keyed lanes
// between a Parallelize router and a Merge barrier. Build the per-lane
// pipeline with Apply and ToTable, then close the region with Merge —
// a region whose lanes are never merged does not run.
type ParallelRegion struct {
	t     *Topology
	lanes []*Stream
	// actions run on the commit coordinator (the last lane to reach a
	// punctuation barrier), in registration order, with every lane parked
	// and every lane's segment flushed — see ToTable.
	actions []func(Element)
	merged  bool
}

// Parallelize hash-routes the stream's data elements into p keyed lanes
// and broadcasts punctuations to all of them. keyFn maps a tuple to its
// routing hash (nil selects FNV-1a of Tuple.Key); tuples with equal hash
// share a lane, so state updates of one key stay ordered. p == 1 is the
// identity: the stream itself becomes the single lane and no router
// goroutine is spawned.
func (s *Stream) Parallelize(p int, keyFn func(Tuple) uint64) *ParallelRegion {
	if p < 1 {
		panic("stream: Parallelize needs p >= 1")
	}
	r := &ParallelRegion{t: s.t}
	if p == 1 {
		r.lanes = []*Stream{s}
		return r
	}
	if keyFn == nil {
		keyFn = laneKey
	}
	r.lanes = make([]*Stream, p)
	for i := range r.lanes {
		r.lanes[i] = s.t.newStream()
	}
	pend := make([][]Element, p)
	// ship sends lane i's pending batch (blocking) and clears it. A
	// non-nil pending batch always holds at least one element (it is
	// created on first append and nilled on every send).
	ship := func(i int) {
		if len(pend[i]) > 0 {
			r.lanes[i].ch <- pend[i]
			pend[i] = nil
		}
	}
	s.consume("parallelize", func(b []Element) {
		for _, e := range b {
			if e.Kind == KindData {
				i := int(keyFn(e.Tuple) % uint64(p))
				if pend[i] == nil {
					pend[i] = getBatch()
				}
				pend[i] = append(pend[i], e)
				if len(pend[i]) >= batchCap {
					ship(i)
				}
				continue
			}
			// Punctuation: every lane must see it after all data routed
			// before it — flush the pending data batches, then broadcast.
			for i := range pend {
				ship(i)
			}
			for i := range r.lanes {
				pb := getBatch()
				pb = append(pb, e)
				r.lanes[i].ch <- pb
			}
		}
		putBatch(b)
		// Between punctuations, ship partial batches only while the lane
		// edge has room (the emitter discipline): when lanes keep up,
		// delivery is prompt; once backpressure builds, batches grow
		// toward batchCap, which is when amortization pays.
		for i := range pend {
			if len(pend[i]) > 0 {
				select {
				case r.lanes[i].ch <- pend[i]:
					pend[i] = nil
				default:
				}
			}
		}
	}, func() {
		for i := range pend {
			ship(i)
		}
		for _, l := range r.lanes {
			close(l.ch)
		}
	})
	return r
}

// Apply derives each lane through fn (lane index, lane stream) — the hook
// for per-lane fused operator chains (Map/Filter/FlatMap run inside the
// lane's consumer, so a chain still costs zero goroutines per lane). fn
// must return a stream of the same topology.
func (r *ParallelRegion) Apply(fn func(lane int, s *Stream) *Stream) *ParallelRegion {
	r.checkOpen("Apply")
	for i, l := range r.lanes {
		nl := fn(i, l)
		if nl == nil || nl.t != r.t {
			panic("stream: ParallelRegion.Apply must return a stream of the same topology")
		}
		r.lanes[i] = nl
	}
	return r
}

func (r *ParallelRegion) checkOpen(op string) {
	if r.merged {
		panic("stream: ParallelRegion." + op + " after Merge")
	}
}

// laneTableCtl coordinates one region ToTable's poisoning state across
// lanes: the first lane flush failure of a transaction poisons it (and
// accounts for it exactly once); the commit coordinator turns a poisoned
// transaction into a global abort. Poisoning is keyed to the transaction
// handle — NOT a flag reset at BOT — because with a single lane the
// region's stream can deliver a whole [BOT .. COMMIT BOT ..] run in one
// batch, whose fused-stage flushes all execute before the collector's
// barrier syncs; a BOT-time reset would then wipe a poison the same
// batch's COMMIT still has to observe.
type laneTableCtl struct {
	mu       sync.Mutex
	poisoned *txn.Txn // transaction whose writes failed; nil when none
}

// fail records a lane flush failure of tx. Only the FIRST failure of the
// transaction counts: one abort for the abort family (a First-Committer-
// Wins loss, or ErrFinished because another lane's failure already
// aborted the transaction), a topology failure otherwise — mirroring the
// sequential TO_TABLE, which poisons on the first failing write and
// counts a single abort for the transaction.
func (c *laneTableCtl) fail(t *Topology, op string, stats *ToTableStats, tx *txn.Txn, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poisoned == tx {
		return
	}
	c.poisoned = tx
	if txn.IsAbort(err) || err == txn.ErrFinished {
		stats.Aborts.Add(1)
	} else {
		t.fail(op, err)
	}
}

func (c *laneTableCtl) isPoisoned(tx *txn.Txn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned == tx
}

// ToTable adds a per-lane TO_TABLE write path to every lane of the
// region, maintaining tbl inside the transaction attached to the
// elements — the parallel analogue of Stream.ToTable:
//
//   - Each lane buffers its data tuples into a private txn.Segment (value
//     copies happen lane-locally, in parallel, with no shared latch).
//   - At every punctuation the lane flushes its segment into the shared
//     transaction — through the protocol's SegmentWriter fast path when
//     available (SI and BOCC: ownership transfer, one latch acquisition),
//     through Protocol.WriteBatch otherwise — BEFORE acknowledging the
//     barrier,
//     so the coordinator never commits a transaction with lane writes
//     still buffered.
//   - The commit itself (CommitState on COMMIT, Abort on ROLLBACK, global
//     abort of poisoned transactions) runs once, on the coordinator, at
//     the Merge barrier; ToTable registers that action here.
//
// Poisoning is flush-granular: a lane discovers a write failure when its
// segment flushes at a boundary, not per element as the sequential
// operator does, so under injected mid-transaction faults the Writes
// count may include same-transaction writes a sequential run would have
// skipped. Commits, Aborts and committed table contents are identical for
// every lane count (the sequential engine discards a poisoned
// transaction's buffered writes just the same).
//
// The returned stats object is live. As with chained sequential ToTable
// operators, maintaining several tables requires declaring them all on
// the transaction (stream.Transactions' tables parameter) so the LAST
// CommitState fires the global commit.
func (r *ParallelRegion) ToTable(p txn.Protocol, tbl *txn.Table) *ToTableStats {
	r.checkOpen("ToTable")
	stats := &ToTableStats{}
	name := "to_table/" + string(tbl.ID())
	sw, _ := p.(txn.SegmentWriter)
	ctl := &laneTableCtl{}
	for i := range r.lanes {
		seg := txn.NewSegment(batchCap)
		var cur *txn.Txn
		// flush merges the lane's segment into tx; eos marks the
		// end-of-stream flush, where ErrFinished is expected (the
		// Transactions operator aborts a dangling transaction when its
		// own input ends) and must not count as a new abort.
		flush := func(tx *txn.Txn, eos bool) {
			if seg.Len() == 0 {
				return
			}
			if tx == nil {
				seg.Reset()
				return
			}
			var (
				n   int
				err error
			)
			if sw != nil {
				n, err = sw.WriteSegment(tx, tbl, seg)
			} else {
				n, err = p.WriteBatch(tx, tbl, seg.Ops())
			}
			seg.Reset()
			stats.Writes.Add(int64(n))
			if err != nil && !(eos && err == txn.ErrFinished) {
				ctl.fail(r.t, name, stats, tx, err)
			}
		}
		r.lanes[i] = r.lanes[i].fuse(func(e Element, emit func(Element)) {
			switch e.Kind {
			case KindBOT:
				// A well-formed stream never has a pending segment here;
				// flush defensively so a malformed one cannot leak writes
				// across transactions.
				flush(cur, false)
				cur = e.Tx
			case KindData:
				if e.Tx != nil {
					cur = e.Tx
					if e.Tuple.Key != "" {
						if e.Tuple.Delete {
							seg.Delete(e.Tuple.Key)
						} else {
							seg.Put(e.Tuple.Key, e.Tuple.Value)
						}
					}
				}
			case KindCommit, KindRollback:
				if e.Tx != nil {
					cur = e.Tx
				}
				flush(cur, false)
				cur = nil
			}
			emit(e)
		}, func(emit func(Element)) {
			// Input ended mid-transaction: apply the dangling segment (the
			// sequential engine applies pending runs at batch boundaries
			// too); the transaction itself is rolled back upstream.
			flush(cur, true)
		})
	}
	r.actions = append(r.actions, func(e Element) {
		switch e.Kind {
		case KindCommit:
			if e.Tx == nil {
				return
			}
			if ctl.isPoisoned(e.Tx) {
				// Some lane already gave up on the transaction; make the
				// abort global (the abort itself was already counted).
				if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
					r.t.fail(name, err)
				}
				return
			}
			if err := p.CommitState(e.Tx, tbl); err != nil {
				if txn.IsAbort(err) || err == txn.ErrFinished {
					stats.Aborts.Add(1)
				} else {
					r.t.fail(name, err)
				}
				return
			}
			stats.Commits.Add(1)
		case KindRollback:
			if e.Tx == nil {
				return
			}
			// Lane segments were flushed before the barrier (Writes counts
			// them, as in the sequential engine); Abort discards them.
			if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
				r.t.fail(name, err)
			}
			stats.Aborts.Add(1)
		}
	})
	return stats
}

// laneBarrier is the punctuation barrier of a parallel region: a cyclic
// barrier over the region's lane collectors. Lanes forward data batches
// to the merged output as they arrive; at a punctuation each lane parks,
// and the LAST lane to arrive becomes the coordinator for that boundary —
// it runs the region's registered actions (segment-backed commits), emits
// the punctuation into the merged stream exactly once, and releases the
// parked lanes.
type laneBarrier struct {
	n   int
	out *Stream

	mu      sync.Mutex
	arrived int
	resume  chan struct{}
	actions []func(Element)
}

// sync is called by a lane collector holding a punctuation element. It
// returns when the boundary is fully acknowledged and committed.
func (b *laneBarrier) sync(e Element) {
	b.mu.Lock()
	b.arrived++
	if b.arrived < b.n {
		ch := b.resume
		b.mu.Unlock()
		<-ch
		return
	}
	// Coordinator: every lane has acknowledged the boundary (and, per
	// ToTable's contract, flushed its segment before arriving here).
	b.arrived = 0
	for _, act := range b.actions {
		act(e)
	}
	pb := getBatch()
	pb = append(pb, e)
	b.out.ch <- pb
	close(b.resume)
	b.resume = make(chan struct{})
	b.mu.Unlock()
}

// Merge closes the region: it re-serializes the lanes into one output
// stream whose punctuations appear exactly once, every data element of a
// transaction between that transaction's BOT and COMMIT/ROLLBACK, and
// per-key element order preserved (cross-key order within a transaction
// is arbitrary — lanes run concurrently). Merge must be called exactly
// once per region; the region's commit actions (ToTable) run at its
// barrier.
func (r *ParallelRegion) Merge(name string) *Stream {
	r.checkOpen("Merge")
	r.merged = true
	out := r.t.newStream()
	b := &laneBarrier{n: len(r.lanes), out: out, resume: make(chan struct{}), actions: r.actions}
	var wg sync.WaitGroup
	wg.Add(len(r.lanes))
	for i, lane := range r.lanes {
		lane.consume(fmt.Sprintf("%s/lane%d", name, i), func(batch []Element) {
			start := 0
			for j := range batch {
				if batch[j].Kind == KindData {
					continue
				}
				if j > start {
					nb := getBatch()
					nb = append(nb, batch[start:j]...)
					out.ch <- nb
				}
				b.sync(batch[j])
				start = j + 1
			}
			if start == 0 {
				// Pure data batch (the common case): forward whole, no copy.
				out.ch <- batch
				return
			}
			if start < len(batch) {
				nb := getBatch()
				nb = append(nb, batch[start:]...)
				out.ch <- nb
			}
			putBatch(batch)
		}, wg.Done)
	}
	r.t.spawn(name+"/closer", func() {
		wg.Wait()
		close(out.ch)
	})
	return out
}
