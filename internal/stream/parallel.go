package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sistream/internal/txn"
)

// Parallel keyed regions: the multiplier after vectorization. A single
// continuous query's dataflow spine — one fused operator chain, one
// TO_TABLE goroutine — is inherently single-writer; Parallelize splits it
// into P independent lanes by hashing each tuple's key, so the per-element
// work (operator stages, write-set building, value copies) runs on P
// cores, while the transaction model of the paper is preserved exactly:
//
//   - Routing is KEYED: a key is always processed by the same lane, so
//     per-key order is preserved and the lanes' write sets are disjoint.
//   - Punctuations are BROADCAST: every lane sees every BOT/COMMIT/
//     ROLLBACK, in the same order, at the same position relative to its
//     share of the data.
//   - The merge BARRIER re-serializes punctuations: a lane reaching a
//     punctuation first flushes its pending per-lane write segment into
//     the shared transaction (txn.Segment — one latch acquisition per
//     lane per boundary), then parks; the last lane to arrive becomes the
//     commit coordinator and fires the single CommitState/Abort only
//     after every lane has acknowledged the boundary. The transaction
//     therefore commits all lanes' writes atomically — the same
//     per-transaction atomicity the sequential TO_TABLE provides — and
//     the merged output stream carries each punctuation exactly once, at
//     a position consistent with every data element of its transaction.
//
// Merge commits synchronously at the barrier; MergeBatched adds the fused
// commit spine — the coordinator defers the commit work to a spine worker
// that batches consecutive lane-complete transactions into ONE
// group-commit submission (see commitSpine) — and Reparallelize wires a
// region's lanes directly into a downstream region when the partitioning
// matches, skipping the merge/re-route hop entirely.
//
// What is NOT preserved is the interleaving of data elements of one
// transaction across different keys: lanes run concurrently, so the
// merged stream orders them arbitrarily between two punctuations (the
// property test in parallel_test.go pins down exactly this contract:
// identical per-transaction element multisets, identical table contents
// and stats for every lane count, against the sequential reference).

// laneKey is the default routing hash: txn.DefaultKeyHash of the tuple
// key — the SAME function the partitioned change feed defaults to, so
// default-keyed ingest lanes and feed partitions agree on placement
// (an empty key routes to lane 0).
func laneKey(t Tuple) uint64 {
	return txn.DefaultKeyHash(t.Key)
}

// KeyFn is a routing-function TOKEN shared by the keyed parallel
// constructs (Parallelize, Reparallelize, FromTablePartitioned). Two Go
// function values can never be proven equal, so the planner treats the
// token's POINTER as the identity of the partitioning: build one *KeyFn
// per routing function and pass the same token everywhere that function
// partitions — then Reparallelize can fuse two regions lane-for-lane on
// token equality exactly as it does for the shared default (nil, which
// selects txn.DefaultKeyHash on both the tuple and the key side).
//
// Tuple routes ingest-side tuples; Key partitions feed-side row keys.
// Setting only Key derives Tuple from it over Tuple.Key (NewKeyFn), which
// also guarantees the two sides agree on placement. Setting only Tuple
// leaves the token unusable for FromTablePartitioned.
type KeyFn struct {
	// Tuple maps a tuple to its routing hash (ingest-lane routing); nil
	// derives it from Key applied to Tuple.Key.
	Tuple func(Tuple) uint64
	// Key maps a row key to its hash (feed partitioning); required when
	// the token is used with FromTablePartitioned.
	Key func(string) uint64
}

// NewKeyFn builds a routing token from one key-string hash, usable on
// both the ingest side (tuples route by Tuple.Key) and the feed side —
// the construction that makes same-token fusion across the table seam
// sound by definition.
func NewKeyFn(key func(string) uint64) *KeyFn {
	return &KeyFn{
		Key:   key,
		Tuple: func(t Tuple) uint64 { return key(t.Key) },
	}
}

// tupleFn resolves the ingest-side routing function (nil token or fields
// selects the default lane hash).
func (k *KeyFn) tupleFn() func(Tuple) uint64 {
	switch {
	case k == nil:
		return laneKey
	case k.Tuple != nil:
		return k.Tuple
	case k.Key != nil:
		kf := k.Key
		return func(t Tuple) uint64 { return kf(t.Key) }
	default:
		return laneKey
	}
}

// keyHash resolves the feed-side partitioning function (nil token selects
// txn.DefaultKeyHash downstream).
func (k *KeyFn) keyHash() func(string) uint64 {
	if k == nil {
		return nil
	}
	if k.Key == nil {
		panic("stream: KeyFn used for feed partitioning must set Key")
	}
	return k.Key
}

// ParallelRegion is a parallel section of a topology: P keyed lanes
// between a Parallelize router and a Merge barrier. Build the per-lane
// pipeline with Apply and ToTable, then close the region with Merge or
// MergeBatched — or hand the lanes to a downstream region with
// Reparallelize. A region whose lanes are never merged does not run.
type ParallelRegion struct {
	t     *Topology
	lanes []*Stream
	// actions run on the commit coordinator (the last lane to reach a
	// punctuation barrier), in registration order, with every lane parked
	// and every lane's segment flushed — see ToTable. MergeBatched defers
	// them to the commit spine, which requires every action to be a
	// ToTable registration (regs mirrors them one to one).
	actions []func(Element)
	regs    []laneCommitReg
	// key is the routing token the region was partitioned with (nil = the
	// default key hash). Token identity is what makes direct
	// partition→lane fusion verifiable — see Reparallelize.
	key    *KeyFn
	merged bool
}

// Parallelize hash-routes the stream's data elements into p keyed lanes
// and broadcasts punctuations to all of them. keyFn is the routing token
// (nil selects FNV-1a of Tuple.Key); tuples with equal hash share a lane,
// so state updates of one key stay ordered. Pass the SAME token to every
// construct partitioning by the same function — token identity is what
// lets Reparallelize fuse regions (see KeyFn). p == 1 is the identity:
// the stream itself becomes the single lane and no router goroutine is
// spawned.
func (s *Stream) Parallelize(p int, keyFn *KeyFn) *ParallelRegion {
	if p < 1 {
		panic("stream: Parallelize needs p >= 1")
	}
	r := &ParallelRegion{t: s.t, key: keyFn}
	keyDesc := "default"
	if keyFn != nil {
		keyDesc = "custom"
	}
	if p == 1 {
		r.lanes = []*Stream{s}
		s.t.note("region", "parallelize", "lanes=1 (identity, no router)", nil)
		return r
	}
	route := keyFn.tupleFn()
	r.lanes = make([]*Stream, p)
	for i := range r.lanes {
		r.lanes[i] = s.t.newStream()
	}
	s.t.note("region", "parallelize", fmt.Sprintf("lanes=%d key=%s (hash-routed, punctuations broadcast)", p, keyDesc), occOf(r.lanes...))
	pend := make([][]Element, p)
	// ship sends lane i's pending batch (blocking) and clears it. A
	// non-nil pending batch always holds at least one element (it is
	// created on first append and nilled on every send).
	ship := func(i int) {
		if len(pend[i]) > 0 {
			r.lanes[i].ch <- pend[i]
			pend[i] = nil
		}
	}
	s.consume("parallelize", func(b []Element) {
		for _, e := range b {
			if e.Kind == KindData {
				i := int(route(e.Tuple) % uint64(p))
				if pend[i] == nil {
					pend[i] = getBatch()
				}
				pend[i] = append(pend[i], e)
				if len(pend[i]) >= batchCap {
					ship(i)
				}
				continue
			}
			// Punctuation: every lane must see it after all data routed
			// before it — flush the pending data batches, then broadcast.
			for i := range pend {
				ship(i)
			}
			for i := range r.lanes {
				pb := getBatch()
				pb = append(pb, e)
				r.lanes[i].ch <- pb
			}
		}
		putBatch(b)
		// Between punctuations, ship partial batches only while the lane
		// edge has room (the emitter discipline): when lanes keep up,
		// delivery is prompt; once backpressure builds, batches grow
		// toward batchCap, which is when amortization pays.
		for i := range pend {
			if len(pend[i]) > 0 {
				select {
				case r.lanes[i].ch <- pend[i]:
					pend[i] = nil
				default:
				}
			}
		}
	}, func() {
		for i := range pend {
			ship(i)
		}
		for _, l := range r.lanes {
			close(l.ch)
		}
	})
	return r
}

// Apply derives each lane through fn (lane index, lane stream) — the hook
// for per-lane fused operator chains (Map/Filter/FlatMap run inside the
// lane's consumer, so a chain still costs zero goroutines per lane). fn
// must return a stream of the same topology.
func (r *ParallelRegion) Apply(fn func(lane int, s *Stream) *Stream) *ParallelRegion {
	r.checkOpen("Apply")
	for i, l := range r.lanes {
		nl := fn(i, l)
		if nl == nil || nl.t != r.t {
			panic("stream: ParallelRegion.Apply must return a stream of the same topology")
		}
		r.lanes[i] = nl
	}
	return r
}

// Reparallelize is the region planner's seam between two parallel
// sections: it re-partitions the region into p keyed lanes for a
// downstream consumer chain. When the partitioning provably matches —
// p equals the region's lane count and the requested routing token IS the
// region's token (both nil selects the shared default,
// txn.DefaultKeyHash; a custom *KeyFn proves equality by pointer
// identity, see KeyFn) — partition i is wired directly into lane i: no
// Merge goroutine, no re-hash, no channel hop; the two regions become
// one, with a single barrier (the downstream Merge/MergeBatched)
// re-serializing punctuations exactly once for the combined span. A
// single-lane region fuses with a single-lane request regardless of token
// (there is nothing to route).
//
// When the counts differ or the tokens do (two DIFFERENT tokens may wrap
// the same function — equality of Go functions is unprovable, which is
// why the token exists), the region is closed with a Merge barrier and
// re-routed through a fresh Parallelize — correct, just not fused. Either
// way the caller continues on the returned region and must close it with
// Merge or MergeBatched.
func (r *ParallelRegion) Reparallelize(name string, p int, keyFn *KeyFn) *ParallelRegion {
	r.checkOpen("Reparallelize")
	if p < 1 {
		panic("stream: Reparallelize needs p >= 1")
	}
	if p == len(r.lanes) && (p == 1 || keyFn == r.key) {
		r.merged = true
		r.t.note("region", name, fmt.Sprintf("fused lane-for-lane (lanes=%d, matching partitioning — no merge, no re-route)", p), nil)
		return &ParallelRegion{
			t:       r.t,
			lanes:   r.lanes,
			actions: r.actions,
			regs:    r.regs,
			key:     r.key,
		}
	}
	r.t.note("region", name, "reroute (partitioning mismatch: merge + re-hash)", nil)
	return r.Merge(name).Parallelize(p, keyFn)
}

func (r *ParallelRegion) checkOpen(op string) {
	if r.merged {
		panic("stream: ParallelRegion." + op + " after Merge")
	}
}

// laneTableCtl coordinates one region ToTable's poisoning state across
// lanes: the first lane flush failure of a transaction poisons it (and
// accounts for it exactly once); the commit coordinator turns a poisoned
// transaction into a global abort. Poisoning is keyed to the transaction
// handle — NOT a flag reset at BOT — because with a single lane the
// region's stream can deliver a whole [BOT .. COMMIT BOT ..] run in one
// batch, whose fused-stage flushes all execute before the collector's
// barrier syncs; a BOT-time reset would then wipe a poison the same
// batch's COMMIT still has to observe. Several transactions may be
// poisoned at once (a commit spine defers their handling past the
// barrier), so the state is a set, cleared as each transaction's final
// punctuation is handled.
type laneTableCtl struct {
	mu       sync.Mutex
	poisoned map[*txn.Txn]bool
}

// fail records a lane flush failure of tx. Only the FIRST failure of the
// transaction counts: one abort for the abort family (a First-Committer-
// Wins loss, or ErrFinished because another lane's failure already
// aborted the transaction), a topology failure otherwise — mirroring the
// sequential TO_TABLE, which poisons on the first failing write and
// counts a single abort for the transaction.
func (c *laneTableCtl) fail(t *Topology, op string, stats *ToTableStats, tx *txn.Txn, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poisoned[tx] {
		return
	}
	if c.poisoned == nil {
		c.poisoned = make(map[*txn.Txn]bool)
	}
	c.poisoned[tx] = true
	if txn.IsAbort(err) || err == txn.ErrFinished {
		stats.Aborts.Add(1)
	} else {
		t.fail(op, err)
	}
}

func (c *laneTableCtl) isPoisoned(tx *txn.Txn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisoned[tx]
}

// clear drops tx's poison record once its final punctuation has been
// handled (the transaction is finished; the handle is never seen again).
func (c *laneTableCtl) clear(tx *txn.Txn) {
	c.mu.Lock()
	delete(c.poisoned, tx)
	c.mu.Unlock()
}

// laneCommitReg is one ToTable's registration with the region's commit
// machinery: the protocol and table it maintains, its live stats, and its
// poisoning state. The barrier actions and the commit spine both work off
// these.
type laneCommitReg struct {
	p     txn.Protocol
	tbl   *txn.Table
	stats *ToTableStats
	ctl   *laneTableCtl
}

// ToTable adds a per-lane TO_TABLE write path to every lane of the
// region, maintaining tbl inside the transaction attached to the
// elements — the parallel analogue of Stream.ToTable:
//
//   - Each lane buffers its data tuples into a private txn.Segment (value
//     copies happen lane-locally, in parallel, with no shared latch).
//   - At every punctuation the lane flushes its segment into the shared
//     transaction — through the protocol's SegmentWriter fast path when
//     available (SI, BOCC and S2PL all implement it: ownership transfer,
//     one latch acquisition, with S2PL additionally acquiring its
//     exclusive locks lane-side), through Protocol.WriteBatch otherwise —
//     BEFORE acknowledging the barrier, so the coordinator never commits
//     a transaction with lane writes still buffered.
//   - The commit itself (CommitState on COMMIT, Abort on ROLLBACK, global
//     abort of poisoned transactions) runs once per transaction, at the
//     region's closing barrier: synchronously on the coordinator under
//     Merge, deferred to the batching commit spine under MergeBatched.
//
// Poisoning is flush-granular: a lane discovers a write failure when its
// segment flushes at a boundary, not per element as the sequential
// operator does, so under injected mid-transaction faults the Writes
// count may include same-transaction writes a sequential run would have
// skipped. Commits, Aborts and committed table contents are identical for
// every lane count (the sequential engine discards a poisoned
// transaction's buffered writes just the same).
//
// The returned stats object is live. As with chained sequential ToTable
// operators, maintaining several tables requires declaring them all on
// the transaction (stream.Transactions' tables parameter) so the LAST
// CommitState fires the global commit.
func (r *ParallelRegion) ToTable(p txn.Protocol, tbl *txn.Table) *ToTableStats {
	r.checkOpen("ToTable")
	stats := &ToTableStats{}
	name := "to_table/" + string(tbl.ID())
	r.t.note("table", name, fmt.Sprintf("protocol=%s lanes=%d (per-lane segments)", p.Name(), len(r.lanes)), func() string {
		return fmt.Sprintf("writes=%d commits=%d aborts=%d", stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load())
	})
	sw, _ := p.(txn.SegmentWriter)
	ctl := &laneTableCtl{}
	for i := range r.lanes {
		seg := txn.NewSegment(batchCap)
		var cur *txn.Txn
		// flush merges the lane's segment into tx; eos marks the
		// end-of-stream flush, where ErrFinished is expected (the
		// Transactions operator aborts a dangling transaction when its
		// own input ends) and must not count as a new abort.
		flush := func(tx *txn.Txn, eos bool) {
			if seg.Len() == 0 {
				return
			}
			if tx == nil {
				seg.Reset()
				return
			}
			var (
				n   int
				err error
			)
			if sw != nil {
				n, err = sw.WriteSegment(tx, tbl, seg)
			} else {
				n, err = p.WriteBatch(tx, tbl, seg.Ops())
			}
			seg.Reset()
			stats.Writes.Add(int64(n))
			if err != nil && !(eos && err == txn.ErrFinished) {
				ctl.fail(r.t, name, stats, tx, err)
			}
		}
		r.lanes[i] = r.lanes[i].fuse(func(e Element, emit func(Element)) {
			switch e.Kind {
			case KindBOT:
				// A well-formed stream never has a pending segment here;
				// flush defensively so a malformed one cannot leak writes
				// across transactions.
				flush(cur, false)
				cur = e.Tx
			case KindData:
				if e.Tx != nil {
					cur = e.Tx
					if e.Tuple.Key != "" {
						if e.Tuple.Delete {
							seg.Delete(e.Tuple.Key)
						} else {
							seg.Put(e.Tuple.Key, e.Tuple.Value)
						}
					}
				}
			case KindCommit, KindRollback:
				if e.Tx != nil {
					cur = e.Tx
				}
				flush(cur, false)
				cur = nil
			}
			emit(e)
		}, func(emit func(Element)) {
			// Input ended mid-transaction: apply the dangling segment (the
			// sequential engine applies pending runs at batch boundaries
			// too); the transaction itself is rolled back upstream.
			flush(cur, true)
		})
	}
	reg := laneCommitReg{p: p, tbl: tbl, stats: stats, ctl: ctl}
	r.regs = append(r.regs, reg)
	r.actions = append(r.actions, func(e Element) {
		switch e.Kind {
		case KindCommit:
			if e.Tx == nil {
				return
			}
			if ctl.isPoisoned(e.Tx) {
				// Some lane already gave up on the transaction; make the
				// abort global (the abort itself was already counted).
				if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
					r.t.fail(name, err)
				}
				ctl.clear(e.Tx)
				return
			}
			if err := p.CommitState(e.Tx, tbl); err != nil {
				if txn.IsAbort(err) || err == txn.ErrFinished {
					stats.Aborts.Add(1)
				} else {
					r.t.fail(name, err)
				}
				return
			}
			stats.Commits.Add(1)
		case KindRollback:
			if e.Tx == nil {
				return
			}
			// Lane segments were flushed before the barrier (Writes counts
			// them, as in the sequential engine); Abort discards them.
			if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
				r.t.fail(name, err)
			}
			ctl.clear(e.Tx)
			stats.Aborts.Add(1)
		}
	})
	return stats
}

// laneBarrier is the punctuation barrier of a parallel region: a cyclic
// barrier over the region's lane collectors. Lanes forward data batches
// to the merged output as they arrive; at a punctuation each lane parks,
// and the LAST lane to arrive becomes the coordinator for that boundary —
// it runs the region's commit work (onPunct: the registered actions under
// Merge, a spine enqueue under MergeBatched), emits the punctuation into
// the merged stream exactly once, and releases the parked lanes.
type laneBarrier struct {
	n   int
	out *Stream

	mu      sync.Mutex
	arrived int
	resume  chan struct{}
	onPunct func(Element)
}

// sync is called by a lane collector holding a punctuation element. It
// returns when the boundary is fully acknowledged and its commit work is
// either done (Merge) or handed to the spine in boundary order
// (MergeBatched).
func (b *laneBarrier) sync(e Element) {
	b.mu.Lock()
	b.arrived++
	if b.arrived < b.n {
		ch := b.resume
		b.mu.Unlock()
		<-ch
		return
	}
	// Coordinator: every lane has acknowledged the boundary (and, per
	// ToTable's contract, flushed its segment before arriving here).
	b.arrived = 0
	if b.onPunct != nil {
		b.onPunct(e)
	}
	pb := getBatch()
	pb = append(pb, e)
	b.out.ch <- pb
	close(b.resume)
	b.resume = make(chan struct{})
	b.mu.Unlock()
}

// Merge closes the region: it re-serializes the lanes into one output
// stream whose punctuations appear exactly once, every data element of a
// transaction between that transaction's BOT and COMMIT/ROLLBACK, and
// per-key element order preserved (cross-key order within a transaction
// is arbitrary — lanes run concurrently). Merge must be called exactly
// once per region; the region's commit actions (ToTable) run at its
// barrier, synchronously — the transaction is globally committed before
// its COMMIT punctuation is emitted downstream.
func (r *ParallelRegion) Merge(name string) *Stream {
	actions := r.actions
	return r.close(name, func(e Element) {
		for _, act := range actions {
			act(e)
		}
	}, nil)
}

// MergeBatched closes the region like Merge but defers the commit work to
// the region's commit spine: the barrier coordinator hands each decided
// transaction to a spine worker and releases the lanes immediately, so
// the next transaction's data flows while the previous commits. The
// worker batches up to maxBatch consecutive lane-complete transactions
// into ONE group-commit submission (txn.ChainCommitter) — one leader
// tenure, one coalesced store batch and fsync, one LastCTS publish for
// the whole run; aborts (rollbacks, poisoned transactions) split the
// batch and never poison their neighbors. Pair it with a
// TransactionsWindow upstream (window ≈ maxBatch), or the serialized
// Transactions operator will never let a second transaction queue behind
// the first.
//
// The merged stream's framing is identical to Merge's — each punctuation
// exactly once, in order — but a COMMIT punctuation may be emitted
// downstream BEFORE its transaction is globally committed (durable and
// visible); the transaction's Done channel still closes only at the real
// commit. Every commit action of the region must come from ToTable, and
// all ToTable calls must share one protocol.
func (r *ParallelRegion) MergeBatched(name string, maxBatch int) *Stream {
	if maxBatch < 1 {
		panic("stream: MergeBatched needs maxBatch >= 1")
	}
	sp := newCommitSpine(r.t, name, r.spineRegs("MergeBatched"), maxBatch)
	return r.close(name, sp.enqueue, sp)
}

// MergeTuned closes the region like MergeBatched but puts the spine's
// batching geometry under an AutoTuner: the batch ceiling is the tuner's
// current window (bounded by its MaxWindow), the linger follows the
// tuner's inter-arrival estimate, and every clean commit run is timed
// and fed back to the controller. Pair it with a TransactionsTuned
// upstream sharing the SAME tuner — the window bound and the batch
// ceiling then move together, which is the whole feedback loop. All
// other MergeBatched contracts (framing, early COMMIT emission, ToTable/
// one-protocol requirements) apply unchanged.
func (r *ParallelRegion) MergeTuned(name string, tun *AutoTuner) *Stream {
	if tun == nil {
		panic("stream: MergeTuned needs a tuner")
	}
	sp := newCommitSpine(r.t, name, r.spineRegs("MergeTuned"), tun.cfg.MaxWindow)
	sp.tun = tun
	return r.close(name, sp.enqueue, sp)
}

// spineRegs validates the region's commit actions for a batched close
// and returns the ToTable registrations the spine works off.
func (r *ParallelRegion) spineRegs(op string) []laneCommitReg {
	if len(r.regs) != len(r.actions) {
		panic("stream: " + op + " requires all region commit actions to come from ToTable")
	}
	for _, reg := range r.regs[1:] {
		if reg.p != r.regs[0].p {
			panic("stream: " + op + " requires all region ToTable calls to share one protocol")
		}
	}
	return r.regs
}

// close implements Merge/MergeBatched: lane collectors, the punctuation
// barrier with the given coordinator hook, and (for the batched variant)
// the spine worker whose queue is closed once every lane is done.
func (r *ParallelRegion) close(name string, onPunct func(Element), sp *commitSpine) *Stream {
	r.checkOpen("Merge")
	r.merged = true
	out := r.t.newStream()
	switch {
	case sp == nil:
		r.t.note("spine", name, fmt.Sprintf("merge barrier, lanes=%d (synchronous commit at barrier)", len(r.lanes)), occOf(out))
	case sp.tun != nil:
		occ := occOf(out)
		r.t.note("spine", name, fmt.Sprintf("commit spine, lanes=%d batch<=auto (tuner)", len(r.lanes)), func() string {
			st := sp.tun.Stats()
			return fmt.Sprintf("%s, queue %d/%d, window=%d linger=%s grows=%d shrinks=%d",
				occ(), len(sp.q), cap(sp.q), st.Window, st.Linger, st.Grows, st.Shrinks)
		})
	default:
		occ := occOf(out)
		r.t.note("spine", name, fmt.Sprintf("commit spine, lanes=%d batch<=%d", len(r.lanes), sp.maxBatch), func() string {
			return fmt.Sprintf("%s, queue %d/%d", occ(), len(sp.q), cap(sp.q))
		})
	}
	b := &laneBarrier{n: len(r.lanes), out: out, resume: make(chan struct{}), onPunct: onPunct}
	var wg sync.WaitGroup
	wg.Add(len(r.lanes))
	for i, lane := range r.lanes {
		lane.consume(fmt.Sprintf("%s/lane%d", name, i), func(batch []Element) {
			start := 0
			for j := range batch {
				if batch[j].Kind == KindData {
					continue
				}
				if j > start {
					nb := getBatch()
					nb = append(nb, batch[start:j]...)
					out.ch <- nb
				}
				b.sync(batch[j])
				start = j + 1
			}
			if start == 0 {
				// Pure data batch (the common case): forward whole, no copy.
				out.ch <- batch
				return
			}
			if start < len(batch) {
				nb := getBatch()
				nb = append(nb, batch[start:]...)
				out.ch <- nb
			}
			putBatch(batch)
		}, wg.Done)
	}
	r.t.spawn(name+"/closer", func() {
		wg.Wait()
		close(out.ch)
		if sp != nil {
			close(sp.q)
		}
	})
	if sp != nil {
		r.t.spawn(name+"/spine", sp.run)
	}
	return out
}

// commitSpine is the deferred commit worker of a batched region barrier:
// the coordinator enqueues each decided transaction (with its punctuation
// kind) in boundary order and releases the lanes; the worker drains the
// queue, groups maximal runs of consecutive clean COMMIT entries up to
// maxBatch, and submits each run to the group-commit pipeline as ONE
// cross-transaction batch through txn.ChainCommitter. Rollbacks and
// poisoned transactions are handled singly, splitting the run exactly
// where they sit — an abort never delays or poisons its neighbors beyond
// that split. Protocols without ChainCommitter (e.g. test wrappers) fall
// back to per-transaction CommitState in the same order.
type commitSpine struct {
	t        *Topology
	name     string
	regs     []laneCommitReg
	tbls     []*txn.Table
	cc       txn.ChainCommitter
	maxBatch int
	// tun, when set (MergeTuned), overrides the static batching geometry:
	// the collection target is capped at the tuner's current window, the
	// linger follows the tuner, and every clean commit run is timed and
	// fed back as a controller observation.
	tun *AutoTuner
	q   chan spineEntry
	// groupFailed latches the first txn.ErrGroupFailed verdict (worker-
	// goroutine owned): a poisoned commit group is surfaced as exactly ONE
	// topology failure, and every later fail-fast verdict is accounted as
	// an abort — the spine drains the remaining boundaries deterministically
	// instead of wedging or flooding the error list (see account).
	groupFailed bool
}

// spineEntry is one decided transaction awaiting its commit work.
type spineEntry struct {
	kind Kind
	tx   *txn.Txn
}

func newCommitSpine(t *Topology, name string, regs []laneCommitReg, maxBatch int) *commitSpine {
	sp := &commitSpine{t: t, name: name, regs: regs, maxBatch: maxBatch}
	for _, reg := range regs {
		sp.tbls = append(sp.tbls, reg.tbl)
	}
	if len(regs) > 0 {
		sp.cc, _ = regs[0].p.(txn.ChainCommitter)
	}
	qcap := 2 * maxBatch
	if qcap < chanBuf {
		qcap = chanBuf
	}
	sp.q = make(chan spineEntry, qcap)
	return sp
}

// enqueue hands one boundary's commit work to the worker, in boundary
// order (called by the barrier coordinator; a full queue backpressures
// the barrier, which is safe — the worker never waits on the barrier).
func (sp *commitSpine) enqueue(e Element) {
	if e.Kind != KindCommit && e.Kind != KindRollback {
		return
	}
	if e.Tx == nil {
		return
	}
	if sp.tun != nil {
		sp.tun.noteEnqueue(len(sp.q))
	}
	sp.q <- spineEntry{kind: e.Kind, tx: e.Tx}
}

// spineLinger bounds how long the spine collects further boundaries for
// one batch once cross-transaction pressure is established — the same
// fallback bound the group-commit leader uses for its own collection.
const spineLinger = 200 * time.Microsecond

// run drains the queue until it closes. Batch formation mirrors the
// group-commit leader's adaptive policy: the previous batch's size
// estimates how many boundaries the pipeline produces per commit
// latency, and the worker collects up to that many (never beyond
// maxBatch), parking on the queue with a linger-bounded timer. A
// steady one-at-a-time stream (previous batch of one) never lingers and
// never pays added latency; only once commits demonstrably lag boundary
// production does the spine start holding out for larger batches.
func (sp *commitSpine) run() {
	pend := make([]spineEntry, 0, sp.maxBatch)
	target := 1
	for {
		e, ok := <-sp.q
		if !ok {
			return
		}
		// ceil is the batch ceiling of this iteration: the static maxBatch,
		// tightened to the tuner's current window under MergeTuned so the
		// spine's geometry tracks the controller.
		ceil, linger := sp.maxBatch, spineLinger
		if sp.tun != nil {
			if w := sp.tun.Window(); w < ceil {
				ceil = w
			}
			linger = sp.tun.linger()
		}
		if target > ceil {
			target = ceil
		}
		pend = append(pend[:0], e)
		closed := false
		if target > 1 {
			timer := time.NewTimer(linger)
		collect:
			for len(pend) < target {
				select {
				case e2, ok := <-sp.q:
					if !ok {
						closed = true
						break collect
					}
					pend = append(pend, e2)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		// Opportunistically take whatever else is already queued.
	drain:
		for !closed && len(pend) < ceil {
			select {
			case e2, ok := <-sp.q:
				if !ok {
					break drain
				}
				pend = append(pend, e2)
			default:
				break drain
			}
		}
		target = len(pend)
		if target > ceil {
			target = ceil
		}
		sp.process(pend)
		if closed {
			// A closed receive means the queue is closed AND empty: every
			// boundary is in pend and has been processed.
			return
		}
	}
}

// process handles one drained slice of boundary entries in order.
func (sp *commitSpine) process(entries []spineEntry) {
	i := 0
	for i < len(entries) {
		e := entries[i]
		if e.kind == KindCommit && !sp.anyPoisoned(e.tx) {
			j := i
			for j < len(entries) && entries[j].kind == KindCommit && !sp.anyPoisoned(entries[j].tx) {
				j++
			}
			sp.commitRun(entries[i:j])
			i = j
			continue
		}
		sp.single(e)
		i++
	}
}

// anyPoisoned reports whether any lane write path gave up on tx. The
// poisoning state is final once the transaction's boundary passed the
// barrier (every lane flushed before acknowledging), so reading it at
// spine time is race-free.
func (sp *commitSpine) anyPoisoned(tx *txn.Txn) bool {
	for _, reg := range sp.regs {
		if reg.ctl.isPoisoned(tx) {
			return true
		}
	}
	return false
}

// commitRun commits a run of consecutive clean transactions — as one
// chain batch when the protocol supports it, per-transaction otherwise.
// Stats mirror the synchronous barrier actions exactly: per table, nil is
// a commit, an abort-family error an abort, anything else a topology
// failure.
func (sp *commitSpine) commitRun(run []spineEntry) {
	var start time.Time
	if sp.tun != nil {
		start = time.Now()
	}
	if sp.cc != nil && len(run) > 0 {
		txs := make([]*txn.Txn, len(run))
		for i := range run {
			txs[i] = run[i].tx
		}
		errsPerTx := sp.cc.CommitChain(txs, sp.tbls)
		for i := range errsPerTx {
			for j, reg := range sp.regs {
				sp.account(reg, errsPerTx[i][j])
			}
		}
	} else {
		for _, e := range run {
			for _, reg := range sp.regs {
				sp.account(reg, reg.p.CommitState(e.tx, reg.tbl))
			}
		}
	}
	if sp.tun != nil {
		// Only clean runs are observations: rollbacks and poisoned commits
		// (handled by single) measure fault handling, not batching.
		sp.tun.observeBatch(len(run), time.Since(start))
	}
}

// account books one table's commit verdict into its stats. A broken
// commit group (fail-stop, txn.ErrGroupFailed) is deterministic pipeline
// poisoning: the first verdict fails the topology with the sticky cause,
// every subsequent one counts as an abort so the worker drains the
// remaining in-flight boundaries cleanly — no post-failure commit is
// ever acknowledged, and the barrier never wedges behind a spine that
// stopped consuming.
func (sp *commitSpine) account(reg laneCommitReg, err error) {
	switch {
	case err == nil:
		reg.stats.Commits.Add(1)
	case errors.Is(err, txn.ErrGroupFailed):
		reg.stats.Aborts.Add(1)
		if !sp.groupFailed {
			sp.groupFailed = true
			sp.t.fail(sp.name, err)
		}
	case txn.IsAbort(err) || err == txn.ErrFinished:
		reg.stats.Aborts.Add(1)
	default:
		sp.t.fail(sp.name, err)
	}
}

// single handles a rollback or a poisoned commit — the batch splitters —
// with exactly the synchronous actions' semantics.
func (sp *commitSpine) single(e spineEntry) {
	switch e.kind {
	case KindCommit:
		for _, reg := range sp.regs {
			if reg.ctl.isPoisoned(e.tx) {
				// The abort was already counted at poisoning time.
				if err := reg.p.Abort(e.tx); err != nil && err != txn.ErrFinished {
					sp.t.fail(sp.name, err)
				}
				reg.ctl.clear(e.tx)
				continue
			}
			sp.account(reg, reg.p.CommitState(e.tx, reg.tbl))
		}
	case KindRollback:
		for _, reg := range sp.regs {
			if err := reg.p.Abort(e.tx); err != nil && err != txn.ErrFinished {
				sp.t.fail(sp.name, err)
			}
			reg.ctl.clear(e.tx)
			reg.stats.Aborts.Add(1)
		}
	}
}
