package stream

import (
	"fmt"

	"sistream/internal/txn"
)

// Kind discriminates data elements from control punctuations.
type Kind uint8

// Element kinds. The punctuation kinds mirror the paper's transaction
// boundary markers.
const (
	// KindData is a regular stream tuple.
	KindData Kind = iota
	// KindBOT marks the begin of a transaction (punctuation).
	KindBOT
	// KindCommit marks a transaction commit (punctuation).
	KindCommit
	// KindRollback marks a transaction rollback (punctuation).
	KindRollback
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindBOT:
		return "BOT"
	case KindCommit:
		return "COMMIT"
	case KindRollback:
		return "ROLLBACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tuple is one stream data record. Key/Value bind tuples to table rows
// for the linking operators; Num carries a numeric measure for windows
// and aggregations; Ts is the event timestamp (logical or wall-clock,
// chosen by the source); Delete marks an explicit deletion tuple for
// TO_TABLE ("a delete occurs if the tuple is ... explicitly removed by a
// delete tuple", Section 3).
type Tuple struct {
	Key    string
	Value  []byte
	Num    float64
	Ts     int64
	Delete bool
}

// Element is what flows through streams: either a data tuple or a
// transaction punctuation. Tx carries the transaction handle attached by
// the Transactions operator, shared by every stateful operator of the
// query so that multi-state writes join one transaction — the
// prerequisite for the consistency protocol.
type Element struct {
	Kind  Kind
	Tuple Tuple
	Tx    *txn.Txn
}

// DataElement wraps a tuple.
func DataElement(t Tuple) Element { return Element{Kind: KindData, Tuple: t} }

// Punctuation constructs a control element.
func Punctuation(k Kind) Element { return Element{Kind: k} }
