// Package stream is the dataflow substrate of the reproduction: a
// channel-based stream-processing framework playing the role PipeFabric
// plays in the paper. A query is a Topology — a graph of operators
// connected by subscribed streams — and transaction boundaries travel
// in-band as punctuations (BOT / COMMIT / ROLLBACK control elements),
// implementing the paper's data-centric transaction model (Section 3).
//
// The four linking operators of the paper connect streams and
// transactional tables:
//
//	TO_TABLE    Stream.ToTable — applies stream tuples to a table inside
//	            the transaction delimited by the punctuations.
//	TO_STREAM   ToStream — emits a stream of committed changes of a
//	            table (per-commit trigger policy).
//	FROM(table) TableSnapshot / QueryKeys — one-time snapshot queries.
//	FROM(stream) Hub.Attach — subscribe to a stream at the point of
//	            attachment.
//
// Execution is vectorized: edges carry batches of elements and chains of
// stateless operators fuse into a single goroutine (see batch.go). The
// programming model is unchanged — sources emit and sinks observe one
// element at a time, and punctuations keep their exact in-band position.
package stream

import (
	"fmt"

	"sistream/internal/txn"
)

// Kind discriminates data elements from control punctuations.
type Kind uint8

// Element kinds. The punctuation kinds mirror the paper's transaction
// boundary markers.
const (
	// KindData is a regular stream tuple.
	KindData Kind = iota
	// KindBOT marks the begin of a transaction (punctuation).
	KindBOT
	// KindCommit marks a transaction commit (punctuation).
	KindCommit
	// KindRollback marks a transaction rollback (punctuation).
	KindRollback
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindBOT:
		return "BOT"
	case KindCommit:
		return "COMMIT"
	case KindRollback:
		return "ROLLBACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tuple is one stream data record. Key/Value bind tuples to table rows
// for the linking operators; Num carries a numeric measure for windows
// and aggregations; Ts is the event timestamp (logical or wall-clock,
// chosen by the source); Delete marks an explicit deletion tuple for
// TO_TABLE ("a delete occurs if the tuple is ... explicitly removed by a
// delete tuple", Section 3).
type Tuple struct {
	Key    string
	Value  []byte
	Num    float64
	Ts     int64
	Delete bool
}

// Element is what flows through streams: either a data tuple or a
// transaction punctuation. Tx carries the transaction handle attached by
// the Transactions operator, shared by every stateful operator of the
// query so that multi-state writes join one transaction — the
// prerequisite for the consistency protocol.
type Element struct {
	Kind  Kind
	Tuple Tuple
	Tx    *txn.Txn
}

// DataElement wraps a tuple.
func DataElement(t Tuple) Element { return Element{Kind: KindData, Tuple: t} }

// Punctuation constructs a control element.
func Punctuation(k Kind) Element { return Element{Kind: k} }
