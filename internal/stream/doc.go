// Package stream is the dataflow substrate of the reproduction: a
// channel-based stream-processing framework playing the role PipeFabric
// plays in the paper. A query is a Topology — a graph of operators
// connected by subscribed streams — and transaction boundaries travel
// in-band as punctuations (BOT / COMMIT / ROLLBACK control elements),
// implementing the paper's data-centric transaction model (Section 3).
//
// # Linking operators
//
// The four linking operators of the paper connect streams and
// transactional tables:
//
//	TO_TABLE     Stream.ToTable — applies stream tuples to a table inside
//	             the transaction delimited by the punctuations;
//	             ParallelRegion.ToTable is its keyed-parallel analogue.
//	TO_STREAM    ToStream — emits a stream of committed changes of a
//	             table (per-commit trigger policy);
//	             FromTablePartitioned is its partitioned analogue.
//	FROM(table)  TableSnapshot / QueryKeys — one-time snapshot queries.
//	FROM(stream) Hub.Attach — subscribe to a stream at the point of
//	             attachment.
//
// # Execution model
//
// Execution is vectorized: edges carry batches of elements and chains of
// stateless operators fuse into a single goroutine (see batch.go). The
// programming model is unchanged — sources emit and sinks observe one
// element at a time, and punctuations keep their exact in-band position.
//
// Queries parallelize on both sides of a table while preserving the
// paper's transaction model. Stream.Parallelize splits the ingest spine
// into keyed lanes whose private write segments merge into one shared
// transaction at a cyclic punctuation barrier (parallel.go), and
// FromTablePartitioned splits a table's change feed into per-partition
// commit watchers re-serialized by the same barrier (feed.go) — so
// per-key order and per-transaction atomicity hold end to end with no
// sequential stage between a source and a downstream sink.
//
// The commit spine fuses too: TransactionsWindow runs a bounded window
// of a query's transactions concurrently, ParallelRegion.MergeBatched
// submits consecutive lane-complete transactions to the group-commit
// pipeline as one cross-transaction batch (one fsync for N small
// transactions), and ParallelRegion.Reparallelize wires a feed region's
// partitions directly into a downstream region's lanes when the
// partitioning matches — no merge hop, one spanning barrier.
//
// See DESIGN.md for the architecture narrative and the ordering /
// atomicity contracts each construct pins down.
package stream
