package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// commitSig is the comparable signature of one committed transaction as
// seen on a change feed: its commit timestamp and the sorted row changes
// it delivered. An ordered []commitSig captures everything the feed must
// preserve — the commit (punctuation) sequence, each commit's element
// multiset, and per-key order (a key appears at most once per commit, so
// ordered commits induce the per-key sequence).
type commitSig struct {
	cts  int64
	rows string
}

func rowSig(tp Tuple) string {
	if tp.Delete {
		return tp.Key + "=DEL"
	}
	return tp.Key + "=" + string(tp.Value)
}

// feedEnv creates a one-table SI group over a mem store. VersionSlots is
// oversized so no version is ever reclaimed mid-test: the feed reads rows
// at historical snapshots, and lazy reclamation would race the (by
// design asynchronous) feed consumers nondeterministically.
func feedEnv(t *testing.T) (txn.Protocol, *txn.Table) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("feedprop", store, txn.TableOptions{VersionSlots: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	return txn.NewSI(ctx), tbl
}

// runScriptIngest pushes the script through source → Punctuate →
// Transactions(Window) → (lanes) → TO_TABLE with the feed topology
// already started, then stops the feed and waits for it to drain. With
// window > 1 the ingest side runs the fused commit spine: windowed
// transactions and a batching merge barrier (batch = window).
func runScriptIngest(t *testing.T, p txn.Protocol, tbl *txn.Table, script []scriptItem, punctuateN, lanes, window int, feedTop *Topology, stopFeed func()) {
	t.Helper()
	top := New("ingest")
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	s := src.Punctuate(punctuateN).TransactionsWindow(p, window)
	switch {
	case window > 1:
		region := s.Parallelize(lanes, nil)
		region.ToTable(p, tbl)
		region.MergeBatched("merge", window).Discard()
	case lanes > 1:
		region := s.Parallelize(lanes, nil)
		region.ToTable(p, tbl)
		region.Merge("merge").Discard()
	default:
		s, _ = s.ToTable(p, tbl)
		s.Discard()
	}
	feedTop.Start()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	stopFeed()
	if err := feedTop.Wait(); err != nil {
		t.Fatal(err)
	}
}

// sequentialFeedSigs runs the script with the sequential spine and the
// sequential TO_STREAM feed, returning the reference commit signatures
// (elements grouped by their commit timestamp, in commit order).
func sequentialFeedSigs(t *testing.T, script []scriptItem, punctuateN int) []commitSig {
	t.Helper()
	p, tbl := feedEnv(t)
	feedTop := New("feed-seq")
	out, stopFeed := ToStream(feedTop, tbl, p)
	collected := out.Collect()
	runScriptIngest(t, p, tbl, script, punctuateN, 1, 1, feedTop, stopFeed)

	var sigs []commitSig
	var rows []string
	flush := func() {
		if rows != nil {
			sort.Strings(rows)
			sigs[len(sigs)-1].rows = strings.Join(rows, ",")
			rows = nil
		}
	}
	for _, e := range <-collected {
		if e.Kind != KindData {
			t.Fatalf("sequential TO_STREAM emitted a %v punctuation", e.Kind)
		}
		if len(sigs) == 0 || sigs[len(sigs)-1].cts != e.Tuple.Ts {
			flush()
			sigs = append(sigs, commitSig{cts: e.Tuple.Ts})
		}
		rows = append(rows, rowSig(e.Tuple))
	}
	flush()
	return sigs
}

// feedWiring selects how the partitioned feed region is consumed:
// merged directly (the PR-4 shape), fused lane-for-lane into a
// downstream parallel region via Reparallelize (no merge hop, single
// spanning barrier), or re-routed through an explicit Merge →
// Parallelize seam (the unfused baseline the fusion removes).
type feedWiring int

const (
	wireMerge feedWiring = iota
	wireFused
	wireRerouted
)

func (w feedWiring) String() string {
	switch w {
	case wireFused:
		return "fused"
	case wireRerouted:
		return "rerouted"
	default:
		return "merge"
	}
}

// partitionedFeedSigs runs the script through lanes ingest lanes (window
// > 1 selecting the batching commit spine) with a parts-way partitioned
// feed consumed through the given wiring and merged back into one
// stream, returning the observed commit signatures and validating the
// punctuation framing. The downstream region applies an identity Map per
// lane so the fused wiring actually carries per-lane consumer chains.
func partitionedFeedSigs(t *testing.T, script []scriptItem, punctuateN, lanes, parts, window int, wiring feedWiring) []commitSig {
	t.Helper()
	p, tbl := feedEnv(t)
	feedTop := New("feed-part")
	region, stopFeed := FromTablePartitioned(feedTop, tbl, parts, nil)
	switch wiring {
	case wireFused:
		region = region.Reparallelize("repart", parts, nil)
	case wireRerouted:
		region = region.Merge("preMerge").Parallelize(parts, nil)
	}
	region = region.Apply(func(_ int, s *Stream) *Stream {
		return s.Map("identity", func(tp Tuple) Tuple { return tp })
	})
	collected := region.Merge("feedmerge").Collect()
	runScriptIngest(t, p, tbl, script, punctuateN, lanes, window, feedTop, stopFeed)

	var sigs []commitSig
	var rows []string
	depth := 0
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			depth++
			if depth != 1 {
				t.Fatal("nested BOT in merged feed")
			}
			sigs = append(sigs, commitSig{cts: e.Tuple.Ts})
			rows = rows[:0]
		case KindData:
			if depth != 1 {
				t.Fatal("feed data element outside BOT/COMMIT")
			}
			if e.Tuple.Ts != sigs[len(sigs)-1].cts {
				t.Fatalf("element cts %d inside commit %d", e.Tuple.Ts, sigs[len(sigs)-1].cts)
			}
			rows = append(rows, rowSig(e.Tuple))
		case KindCommit:
			depth--
			if depth != 0 {
				t.Fatal("COMMIT without matching BOT in merged feed")
			}
			if e.Tuple.Ts != sigs[len(sigs)-1].cts {
				t.Fatalf("COMMIT cts %d closes commit %d", e.Tuple.Ts, sigs[len(sigs)-1].cts)
			}
			sort.Strings(rows)
			sigs[len(sigs)-1].rows = strings.Join(rows, ",")
		default:
			t.Fatalf("unexpected %v element in merged feed", e.Kind)
		}
	}
	if depth != 0 {
		t.Fatal("merged feed ended inside a transaction")
	}
	return sigs
}

// TestPropertyFeedEquivalence: for random scripts, every ingest lane
// count × feed partition count must deliver exactly the sequential
// TO_STREAM path's changes — same commit sequence, same per-commit
// element multisets (and thus the same total multiset and per-key
// order), with the partitioned feed's punctuations correctly framed and
// appearing exactly once per transaction after the merge barrier.
func TestPropertyFeedEquivalence(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 7000))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			want := sequentialFeedSigs(t, script, punctuateN)
			check := func(label string, got []commitSig) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s: %d feed commits, want %d", label, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: commit %d diverged:\n got %+v\nwant %+v", label, i, got[i], want[i])
					}
				}
			}
			for _, lanes := range []int{1, 2, 4} {
				for _, parts := range []int{1, 2, 4} {
					got := partitionedFeedSigs(t, script, punctuateN, lanes, parts, 1, wireMerge)
					check(fmt.Sprintf("lanes=%d parts=%d", lanes, parts), got)
				}
			}
		})
	}
}

// TestPropertyFeedEquivalenceFusedSpine sweeps the FUSED end of the
// pipeline against the same sequential reference: windowed ingest with
// cross-transaction commit batching ({1,2,8}) feeding a partitioned feed
// consumed either fused (direct partition→lane wiring, single spanning
// barrier) or re-routed (explicit Merge → Parallelize seam). Every
// combination must deliver the sequential TO_STREAM signatures exactly.
func TestPropertyFeedEquivalenceFusedSpine(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 7700))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			want := sequentialFeedSigs(t, script, punctuateN)
			for _, window := range []int{1, 2, 8} {
				for _, wiring := range []feedWiring{wireFused, wireRerouted} {
					got := partitionedFeedSigs(t, script, punctuateN, 4, 4, window, wiring)
					label := fmt.Sprintf("window=%d wiring=%s", window, wiring)
					if len(got) != len(want) {
						t.Fatalf("%s: %d feed commits, want %d", label, len(got), len(want))
					}
					for i := range want {
						// Absolute commit timestamps shift under a window
						// (transaction N+1's Begin draws a timestamp before
						// transaction N commits); what must match is the
						// ordered per-commit row signature, with commit
						// timestamps strictly ascending.
						if got[i].rows != want[i].rows {
							t.Fatalf("%s: commit %d rows diverged:\n got %+v\nwant %+v", label, i, got[i], want[i])
						}
						if i > 0 && got[i].cts <= got[i-1].cts {
							t.Fatalf("%s: commit timestamps not ascending: %d then %d", label, got[i-1].cts, got[i].cts)
						}
					}
				}
			}
		})
	}
}

// TestFeedPartitionedPerKeyOrder drives many updates of few keys through
// 4 lanes × 4 partitions and checks each key's value sequence on the
// merged feed is exactly its committed update sequence — the end-to-end
// per-key order guarantee of the shared-nothing pipeline.
func TestFeedPartitionedPerKeyOrder(t *testing.T) {
	p, tbl := feedEnv(t)
	const elements, keys, commitEvery = 4000, 13, 50
	feedTop := New("feed-order")
	region, stopFeed := FromTablePartitioned(feedTop, tbl, 4, nil)
	collected := region.Merge("feedmerge").Collect()

	var script []scriptItem
	for i := 0; i < elements; i++ {
		script = append(script, scriptItem{
			kind: KindData,
			key:  fmt.Sprintf("k%d", i%keys),
			val:  fmt.Sprintf("v%d", i),
		})
	}
	runScriptIngest(t, p, tbl, script, commitEvery, 4, 1, feedTop, stopFeed)

	// Each commit writes each key at most once (write-set dedup keeps the
	// last value); expected per-key sequence is the last write of the key
	// in each transaction window that contains one.
	wantSeq := map[string][]string{}
	for start := 0; start < elements; start += commitEvery {
		end := start + commitEvery
		if end > elements {
			end = elements
		}
		last := map[string]int{}
		for i := start; i < end; i++ {
			last[fmt.Sprintf("k%d", i%keys)] = i
		}
		for k, i := range last {
			wantSeq[k] = append(wantSeq[k], fmt.Sprintf("v%d", i))
		}
	}
	gotSeq := map[string][]string{}
	for _, e := range <-collected {
		if e.Kind == KindData {
			gotSeq[e.Tuple.Key] = append(gotSeq[e.Tuple.Key], string(e.Tuple.Value))
		}
	}
	if len(gotSeq) != keys {
		t.Fatalf("feed saw %d keys, want %d", len(gotSeq), keys)
	}
	for k, want := range wantSeq {
		if fmt.Sprint(gotSeq[k]) != fmt.Sprint(want) {
			t.Fatalf("key %s: per-key order diverged\n got %v\nwant %v", k, gotSeq[k], want)
		}
	}
}
