package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// This file pins the fused commit spine to the sequential semantics it
// accelerates: windowed transactions (TransactionsWindow) feeding a
// batched barrier (MergeBatched) must produce exactly the reference
// model's committed state, stats, punctuation sequence, per-transaction
// element multisets and abort placement — for every window/batch size,
// lane count and protocol, including rollbacks landing mid-batch.

// runSpine executes the script through the fused spine: windowed
// transactions, keyed lanes, per-lane TO_TABLE, batching merge barrier.
func runSpine(t *testing.T, script []scriptItem, punctuateN, lanes, window, batch int, proto func(*txn.Context) txn.Protocol) (sig []string, rows map[string]string, stats *ToTableStats) {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("prop", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := proto(ctx)

	top := New("prop-spine")
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	region := src.Punctuate(punctuateN).TransactionsWindow(p, window).Parallelize(lanes, nil)
	stats = region.ToTable(p, tbl)
	collected := region.MergeBatched("merge", batch).Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			sig = append(sig, "B")
		case KindData:
			sig = append(sig, "D:"+e.Tuple.Key)
		case KindCommit:
			sig = append(sig, "C")
		case KindRollback:
			sig = append(sig, "R")
		}
	}
	kvs, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows = map[string]string{}
	for _, r := range kvs {
		rows[r.Key] = string(r.Value)
	}
	return sig, rows, stats
}

// checkSpineAgainstRef compares one spine run against the sequential
// reference model (punctuation sequence, per-transaction multisets,
// table contents, stats — abort placement included via the stats and the
// punctuation sequence).
func checkSpineAgainstRef(t *testing.T, label string, want *refModel, sig []string, rows map[string]string, stats *ToTableStats) {
	t.Helper()
	wantPunct, wantSegs := sigStructure(want.sequence)
	gotPunct, gotSegs := sigStructure(sig)
	if gotPunct != wantPunct {
		t.Fatalf("%s: punctuation sequence diverged:\n got %q\nwant %q", label, gotPunct, wantPunct)
	}
	if fmt.Sprint(gotSegs) != fmt.Sprint(wantSegs) {
		t.Fatalf("%s: per-transaction element multisets diverged:\n got %v\nwant %v", label, gotSegs, wantSegs)
	}
	if fmt.Sprint(rows) != fmt.Sprint(want.table) {
		t.Fatalf("%s: table content diverged:\n got %v\nwant %v", label, rows, want.table)
	}
	if stats.Writes.Load() != want.writes ||
		stats.Commits.Load() != want.commits ||
		stats.Aborts.Load() != want.aborts {
		t.Fatalf("%s: stats diverged: got w=%d c=%d a=%d, want w=%d c=%d a=%d",
			label, stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(),
			want.writes, want.commits, want.aborts)
	}
}

// TestPropertySpineEquivalence: for random scripts (rollbacks included —
// an abort landing mid-batch splits the chain), every window/batch size
// must reproduce the sequential reference exactly. genScript mixes
// explicit BOT..COMMIT/ROLLBACK transactions with auto-punctuated runs,
// so batched chains regularly carry a rollback in the middle.
func TestPropertySpineEquivalence(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + 9000))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			want := runRef(script, punctuateN, 0)
			for _, wb := range []int{1, 2, 8} {
				sig, rows, stats := runSpine(t, script, punctuateN, 4, wb, wb,
					func(c *txn.Context) txn.Protocol { return txn.NewSI(c) })
				checkSpineAgainstRef(t, fmt.Sprintf("window=batch=%d", wb), want, sig, rows, stats)
			}
		})
	}
}

// TestSpineEquivalenceAllProtocols drives the fused spine (window=8,
// batch=8, 4 lanes) through all three protocols: SI and BOCC take the
// SegmentWriter + ChainCommitter fast paths, S2PL additionally exercises
// lane-side lock acquisition with chain-aware wait-die.
func TestSpineEquivalenceAllProtocols(t *testing.T) {
	protos := map[string]func(*txn.Context) txn.Protocol{
		"mvcc": func(c *txn.Context) txn.Protocol { return txn.NewSI(c) },
		"s2pl": func(c *txn.Context) txn.Protocol { return txn.NewS2PL(c) },
		"bocc": func(c *txn.Context) txn.Protocol { return txn.NewBOCC(c) },
	}
	for seed := int64(40); seed < 44; seed++ {
		rng := rand.New(rand.NewSource(seed))
		script := genScript(rng)
		punctuateN := 1 + rng.Intn(7)
		want := runRef(script, punctuateN, 0)
		for name, proto := range protos {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				sig, rows, stats := runSpine(t, script, punctuateN, 4, 8, 8, proto)
				checkSpineAgainstRef(t, name, want, sig, rows, stats)
			})
		}
	}
}

// TestSpineFallbackWithoutChainCommitter: a wrapped protocol (no
// ChainCommitter) must run the spine through the per-transaction
// CommitState fallback with identical semantics, including injected
// write failures poisoning transactions mid-window.
func TestSpineFallbackWithoutChainCommitter(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			failAt := int64(1 + rng.Intn(50))
			want := runRef(script, punctuateN, failAt)
			// One lane: sequential element order makes injected fault
			// positions deterministic, as in TestPropertyLane1FaultEquivalence
			// — here with the whole window/batch machinery in the path.
			sig, rows, stats := runSpine(t, script, punctuateN, 1, 8, 8, func(c *txn.Context) txn.Protocol {
				return &faultProtocol{Protocol: txn.NewSI(c), failAt: failAt}
			})
			if fmt.Sprint(sig) != fmt.Sprint(want.sequence) {
				t.Fatalf("element sequence diverged (failAt=%d):\n got %v\nwant %v", failAt, sig, want.sequence)
			}
			if fmt.Sprint(rows) != fmt.Sprint(want.table) {
				t.Fatalf("table content diverged (failAt=%d):\n got %v\nwant %v", failAt, rows, want.table)
			}
			if stats.Writes.Load() != want.writes ||
				stats.Commits.Load() != want.commits ||
				stats.Aborts.Load() != want.aborts {
				t.Fatalf("stats diverged (failAt=%d): got w=%d c=%d a=%d, want w=%d c=%d a=%d",
					failAt, stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(),
					want.writes, want.commits, want.aborts)
			}
		})
	}
}

// TestStressSpineAbortMidBatch is the -race stress of aborts landing
// mid-batch at the barrier: 8 lanes, window/batch 8, thousands of small
// transactions with every 5th transaction ROLLED BACK — so nearly every
// chain batch the spine forms is split by an abort — verified against a
// sequentially computed expectation (tables, stats, framing).
func TestStressSpineAbortMidBatch(t *testing.T) {
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("stress", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)

	txns := 2000
	if testing.Short() {
		txns = 400
	}
	const keys, perTxn, rollbackEvery = 97, 7, 5

	top := New("stress-spine")
	src := top.Source("gen", func(emit func(Element)) error {
		n := 0
		for i := 0; i < txns; i++ {
			emit(Punctuation(KindBOT))
			for j := 0; j < perTxn; j++ {
				emit(DataElement(Tuple{
					Key:   fmt.Sprintf("k%02d", n%keys),
					Value: []byte(fmt.Sprintf("t%05d", i)),
				}))
				n++
			}
			if (i+1)%rollbackEvery == 0 {
				emit(Punctuation(KindRollback))
			} else {
				emit(Punctuation(KindCommit))
			}
		}
		return nil
	})
	region := src.TransactionsWindow(p, 8).Parallelize(8, nil)
	stats := region.ToTable(p, tbl)
	collected := region.MergeBatched("merge", 8).Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}

	wantCommits := int64(txns - txns/rollbackEvery)
	wantAborts := int64(txns / rollbackEvery)
	if c, a := stats.Commits.Load(), stats.Aborts.Load(); c != wantCommits || a != wantAborts {
		t.Fatalf("commits=%d aborts=%d, want %d/%d", c, a, wantCommits, wantAborts)
	}
	if w := stats.Writes.Load(); w != int64(txns*perTxn) {
		t.Fatalf("writes=%d, want %d", w, txns*perTxn)
	}

	// Framing: one BOT and one COMMIT/ROLLBACK per transaction, data
	// strictly inside.
	depth, bots, ends := 0, 0, 0
	for _, e := range <-collected {
		switch e.Kind {
		case KindBOT:
			bots++
			if depth++; depth != 1 {
				t.Fatal("nested BOT in merged stream")
			}
		case KindCommit, KindRollback:
			ends++
			if depth--; depth != 0 {
				t.Fatal("unmatched COMMIT/ROLLBACK in merged stream")
			}
		case KindData:
			if depth != 1 {
				t.Fatal("data element outside transaction")
			}
		}
	}
	if bots != txns || ends != txns {
		t.Fatalf("framing: %d BOTs, %d ends, want %d each", bots, ends, txns)
	}

	// Final state: per key, the last value written by a COMMITTED
	// transaction (rolled-back writes discarded).
	want := map[string]string{}
	n := 0
	for i := 0; i < txns; i++ {
		commit := (i+1)%rollbackEvery != 0
		for j := 0; j < perTxn; j++ {
			if commit {
				want[fmt.Sprintf("k%02d", n%keys)] = fmt.Sprintf("t%05d", i)
			}
			n++
		}
	}
	rows, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Key] = string(r.Value)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("table diverged after abort-heavy spine run:\n got %d keys\nwant %d keys", len(got), len(want))
	}
}

// TestSpineRaisesCommitFanIn: with small transactions and a window, the
// group-commit pipeline must carry multiple transactions per batch at
// least once — the whole point of the fused spine. (The exact fan-in is
// timing-dependent; the test only requires that SOME cross-transaction
// batch happened, which the synchronous spine can never produce.)
func TestSpineRaisesCommitFanIn(t *testing.T) {
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("fanin", store, txn.TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)

	const txns = 500
	top := New("fanin")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < txns; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("k%d", i%31), Value: []byte("v")}))
		}
		return nil
	})
	region := src.Punctuate(1).TransactionsWindow(p, 8).Parallelize(2, nil)
	region.ToTable(p, tbl)
	region.MergeBatched("merge", 8).Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	committed, batches := g.CommitStats()
	if committed != txns {
		t.Fatalf("group committed %d transactions, want %d", committed, txns)
	}
	if batches >= committed {
		t.Fatalf("no cross-transaction batching: %d txns in %d batches", committed, batches)
	}
}

// TestReparallelizeFusedSharesLanes: matching default-keyed regions fuse
// lane-for-lane (no merge hop — the new region holds the same lane
// edges); a count mismatch falls back to merge + re-route and stays
// correct.
func TestReparallelizeFusedSharesLanes(t *testing.T) {
	e := newParallelEnv(t)
	top := New("fuse")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < 500; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("k%d", i%13), Value: []byte(fmt.Sprintf("v%d", i))}))
		}
		return nil
	})
	r1 := src.Punctuate(25).Transactions(e.p).Parallelize(4, nil)
	lanesBefore := append([]*Stream(nil), r1.lanes...)
	r2 := r1.Reparallelize("repart", 4, nil)
	if len(r2.lanes) != 4 {
		t.Fatalf("fused region has %d lanes", len(r2.lanes))
	}
	for i := range r2.lanes {
		if r2.lanes[i] != lanesBefore[i] {
			t.Fatalf("lane %d was re-routed; fusion must reuse the upstream lane edges", i)
		}
	}
	stats := r2.ToTable(e.p, e.t1)
	r2.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Writes.Load() != 500 || stats.Aborts.Load() != 0 {
		t.Fatalf("fused region: writes=%d aborts=%d", stats.Writes.Load(), stats.Aborts.Load())
	}
}

// TestReparallelizeSharedTokenFuses pins the KeyFn-token planner rule:
// regions partitioned with the SAME *KeyFn fuse lane-for-lane just like
// default-keyed ones; a different token wrapping the very same function —
// unprovably equal — takes the merge + re-route fallback, and keyed
// routing under the custom hash still holds either way.
func TestReparallelizeSharedTokenFuses(t *testing.T) {
	e := newParallelEnv(t)
	hash := func(key string) uint64 {
		if len(key) == 0 {
			return 0
		}
		return uint64(key[len(key)-1]) // routes by trailing byte
	}
	tok := NewKeyFn(hash)

	top := New("tokfuse")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < 500; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("k%d", i%13), Value: []byte(fmt.Sprintf("v%d", i))}))
		}
		return nil
	})
	r1 := src.Punctuate(25).Transactions(e.p).Parallelize(4, tok)
	lanesBefore := append([]*Stream(nil), r1.lanes...)
	r2 := r1.Reparallelize("repart", 4, tok)
	for i := range r2.lanes {
		if r2.lanes[i] != lanesBefore[i] {
			t.Fatalf("lane %d was re-routed; same-token regions must fuse", i)
		}
	}
	// Routing under the custom hash: every key owned by exactly one lane.
	laneOf := make([]map[string]int, 4)
	r2.Apply(func(lane int, s *Stream) *Stream {
		seen := map[string]int{}
		laneOf[lane] = seen
		return s.Map("observe", func(tp Tuple) Tuple {
			seen[tp.Key]++
			return tp
		})
	})
	stats := r2.ToTable(e.p, e.t1)
	r2.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Writes.Load() != 500 || stats.Aborts.Load() != 0 {
		t.Fatalf("fused token region: writes=%d aborts=%d", stats.Writes.Load(), stats.Aborts.Load())
	}
	for k := 0; k < 13; k++ {
		key := fmt.Sprintf("k%d", k)
		owner := -1
		for lane := range laneOf {
			if laneOf[lane][key] > 0 {
				if owner != -1 {
					t.Fatalf("key %s on lanes %d and %d", key, owner, lane)
				}
				owner = lane
			}
		}
		if owner != int(hash(key)%4) {
			t.Fatalf("key %s on lane %d, want %d (custom hash routing)", key, owner, int(hash(key)%4))
		}
	}

	// Control: a DISTINCT token over the identical function must NOT fuse.
	top2 := New("tokfall")
	e2 := newParallelEnv(t)
	src2 := top2.Source("gen", func(emit func(Element)) error {
		emit(DataElement(Tuple{Key: "k1", Value: []byte("v")}))
		return nil
	})
	o1 := src2.Punctuate(1).Transactions(e2.p).Parallelize(2, tok)
	lanes1 := append([]*Stream(nil), o1.lanes...)
	o2 := o1.Reparallelize("repart", 2, NewKeyFn(hash))
	same := 0
	for i := range o2.lanes {
		if i < len(lanes1) && o2.lanes[i] == lanes1[i] {
			same++
		}
	}
	if same == len(lanes1) {
		t.Fatal("distinct tokens fused; token identity, not function identity, must gate fusion")
	}
	o2.ToTable(e2.p, e2.t1)
	o2.Merge("merge").Discard()
	if err := top2.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestReparallelizeFallbackReroutes: mismatched counts cannot fuse; the
// planner inserts a merge barrier and a fresh router, and keyed routing
// still holds in the downstream region.
func TestReparallelizeFallbackReroutes(t *testing.T) {
	e := newParallelEnv(t)
	top := New("refall")
	const elements, keys = 1000, 17
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < elements; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("k%d", i%keys), Value: []byte(fmt.Sprintf("v%d", i))}))
		}
		return nil
	})
	r1 := src.Punctuate(50).Transactions(e.p).Parallelize(4, nil)
	r2 := r1.Reparallelize("repart", 2, nil)
	if len(r2.lanes) != 2 {
		t.Fatalf("fallback region has %d lanes, want 2", len(r2.lanes))
	}
	laneOf := make([]map[string]int, 2)
	r2.Apply(func(lane int, s *Stream) *Stream {
		seen := map[string]int{}
		laneOf[lane] = seen
		return s.Map("observe", func(tp Tuple) Tuple {
			seen[tp.Key]++
			return tp
		})
	})
	stats := r2.ToTable(e.p, e.t1)
	r2.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if stats.Writes.Load() != elements {
		t.Fatalf("writes=%d, want %d", stats.Writes.Load(), elements)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		owners := 0
		for lane := 0; lane < 2; lane++ {
			if laneOf[lane][key] > 0 {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %s processed by %d downstream lanes after re-route", key, owners)
		}
	}
}
