package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"

	_ "sistream/internal/lsm" // registers the "lsm" driver
)

// backendEquivSpecs are the registered backend specs the cross-backend
// property drives: the volatile reference, the persistent LSM store,
// the cache tier over both, and the fault wrapper (unscripted, so it
// only exercises the pass-through + overlay machinery).
var backendEquivSpecs = []string{
	"mem",
	"lsm",
	"cache(32)+lsm",
	"cache(16)+mem",
	"fault+mem",
}

// runSpineOn drives one script through the full commit spine —
// Punctuate → TransactionsWindow → Parallelize → ToTable →
// MergeBatched — over the given backend spec with synchronous commits,
// and returns the committed table content and the commit stats.
func runSpineOn(t *testing.T, spec string, script []scriptItem, punctuateN, window, lanes int) (rows map[string]string, writes, commits, aborts int64, commitTxns uint64) {
	t.Helper()
	store, err := kv.Open(spec, kv.OpenOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open %q: %v", spec, err)
	}
	t.Cleanup(func() { store.Close() })
	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("equiv", store, txn.TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	group, err := ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	p := txn.NewSI(ctx)

	top := New("equiv-" + spec)
	src := top.Source("script", func(emit func(Element)) error {
		for _, it := range script {
			if it.kind == KindData {
				emit(DataElement(Tuple{Key: it.key, Value: []byte(it.val), Delete: it.del}))
			} else {
				emit(Punctuation(it.kind))
			}
		}
		return nil
	})
	region := src.Punctuate(punctuateN).TransactionsWindow(p, window).Parallelize(lanes, nil)
	stats := region.ToTable(p, tbl)
	region.MergeBatched("merge", window).Discard()
	if err := top.Run(); err != nil {
		t.Fatalf("spec %q: %v", spec, err)
	}

	kvs, err := TableSnapshot(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	rows = map[string]string{}
	for _, r := range kvs {
		rows[r.Key] = string(r.Value)
	}
	txns, _ := group.CommitStats()
	return rows, stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load(), txns
}

// TestPropertyBackendEquivalence: one random script driven through the
// full spine must yield identical table contents and commit stats on
// every registered backend — the storage adapter is not allowed to
// change what commits, only where the bytes live. Batch counts are NOT
// compared: group-commit coalescing depends on commit latency, which is
// exactly what differs between backends.
func TestPropertyBackendEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := genScript(rng)
			punctuateN := 1 + rng.Intn(7)
			window := 1 + rng.Intn(4)
			lanes := 1 + rng.Intn(3)

			ref := backendEquivSpecs[0]
			wantRows, wantW, wantC, wantA, wantTxns := runSpineOn(t, ref, script, punctuateN, window, lanes)
			for _, spec := range backendEquivSpecs[1:] {
				rows, w, c, a, txns := runSpineOn(t, spec, script, punctuateN, window, lanes)
				if fmt.Sprint(rows) != fmt.Sprint(wantRows) {
					t.Fatalf("table content diverged between %q and %q (punctuate=%d window=%d lanes=%d):\n got %v\nwant %v",
						ref, spec, punctuateN, window, lanes, rows, wantRows)
				}
				if w != wantW || c != wantC || a != wantA || txns != wantTxns {
					t.Fatalf("commit stats diverged between %q and %q: got w=%d c=%d a=%d txns=%d, want w=%d c=%d a=%d txns=%d",
						ref, spec, w, c, a, txns, wantW, wantC, wantA, wantTxns)
				}
			}
		})
	}
}
