package stream

import "fmt"

// AggFunc folds a window of numeric samples into one value.
type AggFunc func(values []float64) float64

// Built-in aggregate functions for window operators.
var (
	// Sum adds all samples.
	Sum AggFunc = func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s
	}
	// Avg is the arithmetic mean.
	Avg AggFunc = func(vs []float64) float64 {
		if len(vs) == 0 {
			return 0
		}
		return Sum(vs) / float64(len(vs))
	}
	// Min returns the smallest sample.
	Min AggFunc = func(vs []float64) float64 {
		if len(vs) == 0 {
			return 0
		}
		m := vs[0]
		for _, v := range vs[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	// Max returns the largest sample.
	Max AggFunc = func(vs []float64) float64 {
		if len(vs) == 0 {
			return 0
		}
		m := vs[0]
		for _, v := range vs[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	// Count returns the number of samples.
	Count AggFunc = func(vs []float64) float64 { return float64(len(vs)) }
)

// SlidingWindow maintains, per key, a count-based sliding window of the
// last `size` Num samples and emits one aggregated tuple for every input
// tuple (Key preserved, Num = agg(window), Ts from the triggering tuple).
// This is the stateful "Window + Aggregate" operator pattern of the
// paper's Figure 1; combined with ToTable its state becomes queryable.
// Punctuations pass through. The operator is one-to-one, so batches are
// aggregated in place and forwarded without copying.
func (s *Stream) SlidingWindow(name string, size int, agg AggFunc) *Stream {
	if size <= 0 {
		panic("stream: SlidingWindow needs size >= 1")
	}
	out := s.t.newStream()
	windows := map[string][]float64{}
	s.consume(name, func(b []Element) {
		for i := range b {
			e := &b[i]
			if e.Kind != KindData {
				continue
			}
			w := append(windows[e.Tuple.Key], e.Tuple.Num)
			if len(w) > size {
				w = w[len(w)-size:]
			}
			windows[e.Tuple.Key] = w
			e.Tuple.Num = agg(w)
		}
		out.ch <- b
	}, func() { close(out.ch) })
	return out
}

// TumblingWindow groups data tuples per key into non-overlapping windows
// of `size` event-time units (based on Tuple.Ts) and emits one aggregated
// tuple per key when its window closes (a later-window tuple for that key
// arrives). Remaining windows are flushed when the stream ends.
// Punctuations pass through unchanged.
func (s *Stream) TumblingWindow(name string, size int64, agg AggFunc) *Stream {
	if size <= 0 {
		panic("stream: TumblingWindow needs size >= 1")
	}
	out := s.t.newStream()
	type win struct {
		start  int64
		values []float64
		last   Tuple
	}
	wins := map[string]*win{}
	flush := func(w *win, tx *Element, ob []Element) []Element {
		t := w.last
		t.Num = agg(w.values)
		t.Ts = w.start
		e := Element{Kind: KindData, Tuple: t}
		if tx != nil {
			e.Tx = tx.Tx
		}
		return append(ob, e)
	}
	send := func(ob []Element) {
		if len(ob) > 0 {
			out.ch <- ob
		} else {
			putBatch(ob)
		}
	}
	s.consume(name, func(b []Element) {
		ob := getBatch()
		for _, e := range b {
			if e.Kind != KindData {
				ob = append(ob, e)
				continue
			}
			k := e.Tuple.Key
			start := (e.Tuple.Ts / size) * size
			w := wins[k]
			if w != nil && w.start != start {
				ob = flush(w, &e, ob)
				w = nil
			}
			if w == nil {
				w = &win{start: start}
				wins[k] = w
			}
			w.values = append(w.values, e.Tuple.Num)
			w.last = e.Tuple
		}
		putBatch(b)
		send(ob)
	}, func() {
		ob := getBatch()
		for _, w := range wins {
			ob = flush(w, nil, ob)
		}
		send(ob)
		close(out.ch)
	})
	return out
}

// KeyBy rewrites tuple keys via fn (a grouping/repartitioning helper).
func (s *Stream) KeyBy(fn func(Tuple) string) *Stream {
	return s.Map("keyby", func(t Tuple) Tuple {
		t.Key = fn(t)
		return t
	})
}

// FormatValue renders Num into Value using the given format, so
// aggregation results can be persisted by ToTable.
func (s *Stream) FormatValue(format string) *Stream {
	return s.Map("format", func(t Tuple) Tuple {
		t.Value = []byte(fmt.Sprintf(format, t.Num))
		return t
	})
}
