package stream

import (
	"fmt"
	"sync"
)

// Topology is a dataflow graph under construction and, after Start, in
// execution. Operators are goroutines; edges are channels of Element
// batches (see batch.go for the vectorized execution model). Build the
// graph with Source and the Stream methods, then call Start and Wait.
// The first operator error aborts bookkeeping and is returned by Wait.
type Topology struct {
	name  string
	start chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	errs    []error
	started bool

	// Recorded plan (see explain.go): construction-time notes plus live
	// samplers, append-only under its own mutex so Explain can run while
	// the topology does.
	planMu sync.Mutex
	plan   []*planNode
}

// New creates an empty topology.
func New(name string) *Topology {
	return &Topology{name: name, start: make(chan struct{})}
}

// Name returns the topology's name.
func (t *Topology) Name() string { return t.name }

// fail records an operator error.
func (t *Topology) fail(op string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, fmt.Errorf("%s/%s: %w", t.name, op, err))
}

// Start releases the sources. Idempotent.
func (t *Topology) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.started = true
		close(t.start)
	}
}

// Wait blocks until every operator has finished (sources exhausted and
// channels drained) and returns the first recorded error.
func (t *Topology) Wait() error {
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}

// Run is Start followed by Wait.
func (t *Topology) Run() error {
	t.Start()
	return t.Wait()
}

// Stream is one dataflow edge: the output of an operator, consumable by
// exactly one downstream operator (use Hub or Split for fan-out). A
// Stream may additionally carry fused stages — stateless transforms the
// eventual consumer applies inline (see batch.go) — so deriving a stream
// with Map/Filter/... costs nothing at runtime.
type Stream struct {
	t      *Topology
	ch     chan []Element
	stages []fusedStage
}

func (t *Topology) newStream() *Stream {
	return &Stream{t: t, ch: make(chan []Element, chanBuf)}
}

// spawn registers and launches one operator goroutine.
func (t *Topology) spawn(op string, body func()) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		body()
	}()
	_ = op
}

// Source creates a stream fed by gen, which emits elements until it
// returns (nil for exhausted input, or an error). Generation begins when
// the topology starts. Emitted elements are delivered in batches: a
// partial batch ships as soon as the edge has room, so delivery is
// prompt whenever the consumer keeps up, and only a persistently full
// edge (a backlogged consumer) makes batches grow toward batchCap.
func (t *Topology) Source(name string, gen func(emit func(Element)) error) *Stream {
	out := t.newStream()
	t.note("source", name, "", occOf(out))
	t.spawn(name, func() {
		<-t.start
		em := newEmitter(out)
		err := gen(em.emit)
		em.close()
		if err != nil {
			t.fail(name, err)
		}
	})
	return out
}

// SliceSource emits the given tuples as data elements (testing and
// examples convenience). The input is pre-chunked into full batches.
func (t *Topology) SliceSource(name string, tuples []Tuple) *Stream {
	out := t.newStream()
	t.note("source", name, fmt.Sprintf("%d tuples", len(tuples)), occOf(out))
	t.spawn(name, func() {
		defer close(out.ch)
		<-t.start
		for len(tuples) > 0 {
			n := batchCap
			if n > len(tuples) {
				n = len(tuples)
			}
			b := getBatch()
			for _, tp := range tuples[:n] {
				b = append(b, DataElement(tp))
			}
			tuples = tuples[n:]
			out.ch <- b
		}
	})
	return out
}

// Sink consumes the stream, calling fn for every element.
func (s *Stream) Sink(name string, fn func(Element)) {
	s.consume(name, func(b []Element) {
		for _, e := range b {
			fn(e)
		}
		putBatch(b)
	}, nil)
}

// Collect consumes the stream into a slice delivered on the returned
// channel when the stream closes (testing convenience).
func (s *Stream) Collect() <-chan []Element {
	out := make(chan []Element, 1)
	var all []Element
	s.consume("collect", func(b []Element) {
		all = append(all, b...)
		putBatch(b)
	}, func() { out <- all })
	return out
}

// Discard consumes and drops the stream (when only the operator's side
// effects matter, e.g. after ToTable).
func (s *Stream) Discard() {
	s.consume("discard", func(b []Element) { putBatch(b) }, nil)
}

// Merge fans several streams into one; element order across inputs is
// arbitrary, order within an input is preserved. Batches are forwarded
// whole — no copying.
func Merge(name string, streams ...*Stream) *Stream {
	if len(streams) == 0 {
		panic("stream: Merge needs at least one input")
	}
	t := streams[0].t
	out := t.newStream()
	var wg sync.WaitGroup
	wg.Add(len(streams))
	for _, in := range streams {
		in.consume(name, func(b []Element) { out.ch <- b }, wg.Done)
	}
	t.spawn(name+"/closer", func() {
		wg.Wait()
		close(out.ch)
	})
	return out
}

// Split duplicates the stream into n independent output streams, each
// receiving every element (punctuations included). The transaction
// handle is shared — that is what lets several TO_TABLE operators join
// the same transaction. Each output gets its own copy of every batch
// (batches are single-owner; consumers may mutate them in place).
func (s *Stream) Split(n int) []*Stream {
	outs := make([]*Stream, n)
	for i := range outs {
		outs[i] = s.t.newStream()
	}
	s.consume("split", func(b []Element) {
		for _, o := range outs[1:] {
			nb := getBatch()
			nb = append(nb, b...)
			o.ch <- nb
		}
		outs[0].ch <- b
	}, func() {
		for _, o := range outs {
			close(o.ch)
		}
	})
	return outs
}

// Hub turns the stream into an attach-point implementing the paper's
// FROM(stream) semantics: subscribers receive all elements from their
// point of attachment onward. Elements arriving while no subscriber is
// attached are dropped (a stream is volatile).
type Hub struct {
	t    *Topology
	mu   sync.Mutex
	subs map[int]*hubSub
	next int
	done bool
}

// hubSub is one subscription. Its mutex serializes delivery against
// channel close, and done unblocks an in-flight delivery when the
// subscriber detaches — so Detach never waits on a slow subscriber's
// full channel.
type hubSub struct {
	st   *Stream
	done chan struct{}

	mu   sync.Mutex
	gone bool
}

// close closes the subscriber's edge exactly once.
func (sub *hubSub) close() {
	sub.mu.Lock()
	if !sub.gone {
		sub.gone = true
		close(sub.st.ch)
	}
	sub.mu.Unlock()
}

// Hub consumes the stream and returns the attach-point. Broadcasting
// snapshots the subscriber list under the hub lock and delivers outside
// it, so Attach and Detach never wait behind a slow subscriber, and a
// stalled subscriber can always be detached (done interrupts its
// in-flight delivery). Delivery itself is sequential: a subscriber with
// a full channel still backpressures the hub — and thus later
// subscribers in the same round — which is deliberate; the alternative
// is dropping or buffering elements unboundedly.
func (s *Stream) Hub() *Hub {
	h := &Hub{t: s.t, subs: make(map[int]*hubSub)}
	var snap []*hubSub
	s.consume("hub", func(b []Element) {
		h.mu.Lock()
		snap = snap[:0]
		for _, sub := range h.subs {
			snap = append(snap, sub)
		}
		h.mu.Unlock()
		if len(snap) == 1 {
			// Single-subscriber fast path: hand the batch off without the
			// copy — ownership transfers to the subscriber, so the hub must
			// not recycle it (and must recycle it itself if the delivery is
			// interrupted by a detach or the subscriber is already gone).
			sub := snap[0]
			delivered := false
			sub.mu.Lock()
			if !sub.gone {
				select {
				case sub.st.ch <- b:
					delivered = true
				case <-sub.done:
				}
			}
			sub.mu.Unlock()
			if !delivered {
				putBatch(b)
			}
			return
		}
		for _, sub := range snap {
			sub.mu.Lock()
			if !sub.gone {
				nb := getBatch()
				nb = append(nb, b...)
				select {
				case sub.st.ch <- nb:
				case <-sub.done:
					putBatch(nb)
				}
			}
			sub.mu.Unlock()
		}
		putBatch(b)
	}, func() {
		h.mu.Lock()
		h.done = true
		subs := make([]*hubSub, 0, len(h.subs))
		for id, sub := range h.subs {
			subs = append(subs, sub)
			delete(h.subs, id)
		}
		h.mu.Unlock()
		for _, sub := range subs {
			sub.close()
		}
	})
	return h
}

// Attach subscribes from this point on (FROM(stream)). The returned
// stream closes when the hub's input closes or Detach is called.
func (h *Hub) Attach() (*Stream, func()) {
	h.mu.Lock()
	sub := &hubSub{st: h.t.newStream(), done: make(chan struct{})}
	if h.done {
		h.mu.Unlock()
		close(sub.st.ch)
		return sub.st, func() {}
	}
	id := h.next
	h.next++
	h.subs[id] = sub
	h.mu.Unlock()
	detach := func() {
		h.mu.Lock()
		_, live := h.subs[id]
		delete(h.subs, id)
		h.mu.Unlock()
		if !live {
			return // already detached, or the hub closed it
		}
		close(sub.done)
		sub.close()
	}
	return sub.st, detach
}
