package stream

import (
	"fmt"
	"sync"
)

// chanBuf is the per-edge channel buffer; small enough for backpressure,
// large enough to decouple operator scheduling.
const chanBuf = 256

// Topology is a dataflow graph under construction and, after Start, in
// execution. Operators are goroutines; edges are channels of Elements.
// Build the graph with Source and the Stream methods, then call Start
// and Wait. The first operator error aborts bookkeeping and is returned
// by Wait.
type Topology struct {
	name  string
	start chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	errs    []error
	started bool
}

// New creates an empty topology.
func New(name string) *Topology {
	return &Topology{name: name, start: make(chan struct{})}
}

// Name returns the topology's name.
func (t *Topology) Name() string { return t.name }

// fail records an operator error.
func (t *Topology) fail(op string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errs = append(t.errs, fmt.Errorf("%s/%s: %w", t.name, op, err))
}

// Start releases the sources. Idempotent.
func (t *Topology) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.started = true
		close(t.start)
	}
}

// Wait blocks until every operator has finished (sources exhausted and
// channels drained) and returns the first recorded error.
func (t *Topology) Wait() error {
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	return nil
}

// Run is Start followed by Wait.
func (t *Topology) Run() error {
	t.Start()
	return t.Wait()
}

// Stream is one dataflow edge: the output of an operator, consumable by
// exactly one downstream operator (use Hub or Split for fan-out).
type Stream struct {
	t  *Topology
	ch chan Element
}

func (t *Topology) newStream() *Stream {
	return &Stream{t: t, ch: make(chan Element, chanBuf)}
}

// spawn registers and launches one operator goroutine.
func (t *Topology) spawn(op string, body func()) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		body()
	}()
	_ = op
}

// Source creates a stream fed by gen, which emits elements until it
// returns (nil for exhausted input, or an error). Generation begins when
// the topology starts.
func (t *Topology) Source(name string, gen func(emit func(Element)) error) *Stream {
	out := t.newStream()
	t.spawn(name, func() {
		defer close(out.ch)
		<-t.start
		if err := gen(func(e Element) { out.ch <- e }); err != nil {
			t.fail(name, err)
		}
	})
	return out
}

// SliceSource emits the given tuples as data elements (testing and
// examples convenience).
func (t *Topology) SliceSource(name string, tuples []Tuple) *Stream {
	return t.Source(name, func(emit func(Element)) error {
		for _, tp := range tuples {
			emit(DataElement(tp))
		}
		return nil
	})
}

// Sink consumes the stream, calling fn for every element.
func (s *Stream) Sink(name string, fn func(Element)) {
	s.t.spawn(name, func() {
		for e := range s.ch {
			fn(e)
		}
	})
}

// Collect consumes the stream into a slice delivered on the returned
// channel when the stream closes (testing convenience).
func (s *Stream) Collect() <-chan []Element {
	out := make(chan []Element, 1)
	s.t.spawn("collect", func() {
		var all []Element
		for e := range s.ch {
			all = append(all, e)
		}
		out <- all
	})
	return out
}

// Discard consumes and drops the stream (when only the operator's side
// effects matter, e.g. after ToTable).
func (s *Stream) Discard() {
	s.t.spawn("discard", func() {
		for range s.ch {
		}
	})
}

// Merge fans several streams into one; element order across inputs is
// arbitrary, order within an input is preserved.
func Merge(name string, streams ...*Stream) *Stream {
	if len(streams) == 0 {
		panic("stream: Merge needs at least one input")
	}
	t := streams[0].t
	out := t.newStream()
	var wg sync.WaitGroup
	for _, in := range streams {
		wg.Add(1)
		t.spawn(name, func() {
			defer wg.Done()
			for e := range in.ch {
				out.ch <- e
			}
		})
	}
	t.spawn(name+"/closer", func() {
		wg.Wait()
		close(out.ch)
	})
	return out
}

// Split duplicates the stream into n independent output streams, each
// receiving every element (punctuations included). The transaction
// handle is shared — that is what lets several TO_TABLE operators join
// the same transaction.
func (s *Stream) Split(n int) []*Stream {
	outs := make([]*Stream, n)
	for i := range outs {
		outs[i] = s.t.newStream()
	}
	s.t.spawn("split", func() {
		defer func() {
			for _, o := range outs {
				close(o.ch)
			}
		}()
		for e := range s.ch {
			for _, o := range outs {
				o.ch <- e
			}
		}
	})
	return outs
}

// Hub turns the stream into an attach-point implementing the paper's
// FROM(stream) semantics: subscribers receive all elements from their
// point of attachment onward. Elements arriving while no subscriber is
// attached are dropped (a stream is volatile).
type Hub struct {
	t    *Topology
	mu   sync.Mutex
	subs map[int]*Stream
	next int
	done bool
}

// Hub consumes the stream and returns the attach-point.
func (s *Stream) Hub() *Hub {
	h := &Hub{t: s.t, subs: make(map[int]*Stream)}
	s.t.spawn("hub", func() {
		for e := range s.ch {
			h.mu.Lock()
			for _, sub := range h.subs {
				sub.ch <- e
			}
			h.mu.Unlock()
		}
		h.mu.Lock()
		h.done = true
		for id, sub := range h.subs {
			close(sub.ch)
			delete(h.subs, id)
		}
		h.mu.Unlock()
	})
	return h
}

// Attach subscribes from this point on (FROM(stream)). The returned
// stream closes when the hub's input closes or Detach is called.
func (h *Hub) Attach() (*Stream, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub := h.t.newStream()
	if h.done {
		close(sub.ch)
		return sub, func() {}
	}
	id := h.next
	h.next++
	h.subs[id] = sub
	detach := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if s, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(s.ch)
		}
	}
	return sub, detach
}
