package stream

// Partitioned change feed: the TO_STREAM half of the shared-nothing
// pipeline. The sequential ToStream funnels every downstream consumer
// through one commit-watcher goroutine — however many ingest lanes feed
// the table, the change feed re-serializes behind it. FromTablePartitioned
// removes that stage: the feed is split into P per-partition source nodes
// (each draining only its key range's committed write-set entries from a
// txn.Table.WatchPartitioned feed), exposed as a ParallelRegion whose
// Merge barrier re-serializes the commit punctuations with exactly the
// same cyclic-barrier discipline the ingest lanes use — so a downstream
// Merge observes exactly one BOT/COMMIT pair per transaction, and per-key
// order is preserved end to end: ingest lanes → table → feed partitions →
// downstream lanes is shared-nothing per key from source to sink.

import (
	"fmt"

	"sistream/internal/txn"
)

// FromTablePartitioned is the partitioned TO_STREAM linking operator with
// the per-commit trigger policy: it subscribes to the committed changes
// of tbl split into parts key-hash partitions (keyFn is the routing
// token, nil selecting FNV-1a of the key — the same default the ingest
// lanes use, so matching partition and lane counts agree on key
// placement; a custom token must set KeyFn.Key) and returns the
// partitions as the lanes of a ParallelRegion. The region records the
// token, so a downstream Reparallelize with the SAME token (and count)
// fuses partition-to-lane — see KeyFn.
//
// Each committed transaction that wrote tbl appears on every lane as a
// BOT punctuation, the lane's share of the changed rows as data elements,
// and a COMMIT punctuation; both punctuations carry the commit timestamp
// in Tuple.Ts. Data elements are shaped exactly as ToStream shapes them:
// Key is the row key, Value the committed value as of that commit's own
// snapshot (Num parsed when decimal), Ts the commit timestamp, Delete set
// when the change removed the row. Reading at the commit's snapshot means
// the emitted value is exactly what that transaction installed, even if
// later commits already overwrote it.
//
// The region must be closed with Merge (directly, or after deriving
// per-partition operator chains with Apply — the lane-to-lane hookup that
// lets a downstream pipeline consume the feed without any serialization
// point until its own barrier). The Merge barrier re-serializes the
// punctuations: the merged stream carries each transaction's BOT and
// COMMIT exactly once, every data element of the transaction in between,
// and per-key element order preserved — the same contract the ingest-side
// ParallelRegion provides, because it is the same barrier.
//
// The feed buffers up to txn.DefaultFeedBuf commits; if consumers fall
// that far behind, the committing thread blocks (backpressure) rather
// than dropping committed changes. stop ends the feed: queued commits are
// still delivered, then the lanes close. Punctuation-only transactions
// (commits not writing tbl) do not appear on the feed, matching ToStream.
//
// Unlike ToStream, the partitioned feed participates in garbage
// collection: every undelivered commit is pinned into the context's GC
// horizon (txn.PartitionedFeed), and each partition acknowledges a commit
// only after emitting its rows — read at the commit's snapshot — so an
// aggressively collected table (TableOptions.GCEveryCommits, a hot key's
// version array turning over) can never reclaim a version a lagging
// partition still needs. A stalled consumer therefore pins the horizon
// until it resumes or the feed is stopped and drained.
func FromTablePartitioned(t *Topology, tbl *txn.Table, parts int, keyFn *KeyFn) (*ParallelRegion, func()) {
	feed, err := tbl.WatchPartitioned(parts, 0, keyFn.keyHash())
	if err != nil {
		panic(fmt.Sprintf("stream: FromTablePartitioned: %v", err))
	}
	r := &ParallelRegion{t: t, key: keyFn}
	r.lanes = make([]*Stream, parts)
	for i := range r.lanes {
		lane := t.newStream()
		r.lanes[i] = lane
		part := i
		events := feed.Partitions()[i]
		t.spawn(fmt.Sprintf("from_table/%s/p%d", tbl.ID(), i), func() {
			defer close(lane.ch)
			<-t.start
			for ev := range events {
				emitFeedCommit(lane, tbl, ev)
				// The rows are read (and copied) — release the GC pin for
				// this partition's share of the commit.
				feed.Ack(part)
			}
		})
	}
	return r, feed.Stop
}

// emitFeedCommit ships one commit's changes on a feed lane as an in-band
// [BOT, rows..., COMMIT] run, split at batchCap so a large commit never
// delays delivery of its first rows. Rows are shaped by changeTuple —
// the same constructor the sequential ToStream emits through.
func emitFeedCommit(lane *Stream, tbl *txn.Table, ev txn.FeedEvent) {
	punct := func(k Kind) Element {
		return Element{Kind: k, Tuple: Tuple{Ts: int64(ev.CTS)}}
	}
	b := getBatch()
	b = append(b, punct(KindBOT))
	for _, key := range ev.Keys {
		b = append(b, Element{Kind: KindData, Tuple: changeTuple(tbl, key, ev.CTS)})
		if len(b) >= batchCap {
			lane.ch <- b
			b = getBatch()
		}
	}
	b = append(b, punct(KindCommit))
	lane.ch <- b
}
