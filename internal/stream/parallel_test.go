package stream

import (
	"fmt"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/txn"
)

// parallelEnv builds a two-table topology group over a mem store with the
// SI protocol — the multi-state shape whose commits the lane barrier must
// keep atomic.
type parallelEnv struct {
	ctx    *txn.Context
	p      txn.Protocol
	t1, t2 *txn.Table
}

func newParallelEnv(t *testing.T) *parallelEnv {
	t.Helper()
	ctx := txn.NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	t1, err := ctx.CreateTable("lane1", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ctx.CreateTable("lane2", store, txn.TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("lanes", t1, t2); err != nil {
		t.Fatal(err)
	}
	return &parallelEnv{ctx: ctx, p: txn.NewSI(ctx), t1: t1, t2: t2}
}

// TestParallelKeyedRouting pins the routing contract: every occurrence of
// one key is processed by the same lane, so per-key update order is
// preserved for any lane count.
func TestParallelKeyedRouting(t *testing.T) {
	e := newParallelEnv(t)
	const elements, keys = 4000, 37
	top := New("routing")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < elements; i++ {
			emit(DataElement(Tuple{
				Key:   fmt.Sprintf("k%d", i%keys),
				Value: []byte(fmt.Sprintf("v%d", i)),
			}))
		}
		return nil
	})
	region := src.Punctuate(64).Transactions(e.p).Parallelize(4, nil)
	// Record which lane saw each key.
	laneOf := make([]map[string]int, 4)
	region.Apply(func(lane int, s *Stream) *Stream {
		seen := map[string]int{}
		laneOf[lane] = seen
		return s.Map("observe", func(tp Tuple) Tuple {
			seen[tp.Key]++
			return tp
		})
	})
	stats := region.ToTable(e.p, e.t1)
	region.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	// Each key must appear in exactly one lane, with all its occurrences.
	total := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		owners := 0
		for lane := 0; lane < 4; lane++ {
			if n := laneOf[lane][key]; n > 0 {
				owners++
				total += n
			}
		}
		if owners != 1 {
			t.Errorf("key %s processed by %d lanes", key, owners)
		}
	}
	if total != elements {
		t.Fatalf("lanes saw %d elements, want %d", total, elements)
	}
	if got := stats.Writes.Load(); got != elements {
		t.Fatalf("writes=%d, want %d", got, elements)
	}
	// Per-key order preserved: every key holds its LAST value.
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		var k, last int
		fmt.Sscanf(r.Key, "k%d", &k)
		for i := elements - 1; i >= 0; i-- {
			if i%keys == k {
				last = i
				break
			}
		}
		if want := fmt.Sprintf("v%d", last); string(r.Value) != want {
			t.Fatalf("key %s: got %q want %q (per-key order violated)", r.Key, r.Value, want)
		}
	}
}

// TestStressParallelLaneBarrier is the -race stress for concurrent lane
// flushes at commit barriers: 8 lanes, two chained per-lane TO_TABLE
// write paths on one shared transaction (two concurrent segment merges
// per lane per boundary), thousands of transactions. Verified against a
// sequentially computed expectation: both tables identical, every commit
// atomic, no aborts.
func TestStressParallelLaneBarrier(t *testing.T) {
	e := newParallelEnv(t)
	elements := 30_000
	if testing.Short() {
		elements = 6_000
	}
	const keys, commitEvery, lanes = 211, 37, 8

	top := New("stress")
	src := top.Source("gen", func(emit func(Element)) error {
		for i := 0; i < elements; i++ {
			emit(DataElement(Tuple{
				Key:   fmt.Sprintf("k%03d", i%keys),
				Value: []byte(fmt.Sprintf("v%07d", i)),
			}))
		}
		return nil
	})
	region := src.Punctuate(commitEvery).Transactions(e.p, e.t1, e.t2).Parallelize(lanes, nil)
	s1 := region.ToTable(e.p, e.t1)
	s2 := region.ToTable(e.p, e.t2)
	out := region.Merge("merge")
	collected := out.Collect()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	els := <-collected

	wantCommits := int64((elements + commitEvery - 1) / commitEvery)
	for i, stats := range []*ToTableStats{s1, s2} {
		if stats.Aborts.Load() != 0 {
			t.Fatalf("table %d: %d aborts in a single-writer stream", i+1, stats.Aborts.Load())
		}
		if stats.Writes.Load() != int64(elements) {
			t.Fatalf("table %d: writes=%d want %d", i+1, stats.Writes.Load(), elements)
		}
		if stats.Commits.Load() != wantCommits {
			t.Fatalf("table %d: commits=%d want %d", i+1, stats.Commits.Load(), wantCommits)
		}
	}
	// The merged stream re-serializes punctuations: exactly one BOT and
	// one COMMIT per transaction, all data elements in between.
	var bots, commits, data int
	depth := 0
	for _, el := range els {
		switch el.Kind {
		case KindBOT:
			bots++
			depth++
			if depth != 1 {
				t.Fatal("nested BOT in merged stream")
			}
		case KindCommit:
			commits++
			depth--
			if depth != 0 {
				t.Fatal("COMMIT without matching BOT in merged stream")
			}
		case KindData:
			data++
			if depth != 1 {
				t.Fatal("data element outside transaction in merged stream")
			}
		}
	}
	if int64(bots) != wantCommits || int64(commits) != wantCommits || data != elements {
		t.Fatalf("merged stream: bots=%d commits=%d data=%d, want %d/%d/%d",
			bots, commits, data, wantCommits, wantCommits, elements)
	}
	// Final state: each key holds its last value, in BOTH tables (the
	// barrier commits them atomically through one transaction).
	for _, tbl := range []*txn.Table{e.t1, e.t2} {
		rows, err := TableSnapshot(e.p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != keys {
			t.Fatalf("table %q: %d keys, want %d", tbl.ID(), len(rows), keys)
		}
		for _, r := range rows {
			var k int
			fmt.Sscanf(r.Key, "k%03d", &k)
			last := ((elements - 1 - k) / keys * keys) + k
			if want := fmt.Sprintf("v%07d", last); string(r.Value) != want {
				t.Fatalf("table %q key %s: got %q want %q", tbl.ID(), r.Key, r.Value, want)
			}
		}
	}
}

// TestParallelLane1PoisonSurvivesMixedBatch is the deterministic
// regression for the single-lane poison-wipe bug: one batch carrying
// [BOT d d C BOT d C] flows through Parallelize(1) — all fused-stage
// flushes (including the failing one) run before the collector's barrier
// syncs, so poisoning must be keyed to the transaction, not reset at the
// BOT barrier. The first transaction's flush fails: it must be aborted
// (once), never committed; the second must commit.
func TestParallelLane1PoisonSurvivesMixedBatch(t *testing.T) {
	e := newParallelEnv(t)
	p := &faultProtocol{Protocol: e.p, failAt: 1} // first write op fails
	top := New("poison")
	d := func(key, val string) Element {
		return DataElement(Tuple{Key: key, Value: []byte(val)})
	}
	batches := [][]Element{{
		Punctuation(KindBOT), d("a", "1"), d("b", "2"), Punctuation(KindCommit),
		Punctuation(KindBOT), d("c", "3"), Punctuation(KindCommit),
	}}
	region := batchFeed(top, batches).Transactions(p).Parallelize(1, nil)
	stats := region.ToTable(p, e.t1)
	region.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if c, a := stats.Commits.Load(), stats.Aborts.Load(); c != 1 || a != 1 {
		t.Fatalf("commits=%d aborts=%d, want 1/1 (poisoned txn must not commit, nor double-count)", c, a)
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Key != "c" {
		t.Fatalf("rows=%v, want only key c (failed txn's writes must not surface)", rows)
	}
}

// TestParallelRollbackDiscardsAllLanes: a ROLLBACK punctuation reaching
// the barrier must discard every lane's writes of that transaction.
func TestParallelRollbackDiscardsAllLanes(t *testing.T) {
	e := newParallelEnv(t)
	top := New("rollback")
	src := top.Source("gen", func(emit func(Element)) error {
		emit(Punctuation(KindBOT))
		for i := 0; i < 40; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("a%d", i), Value: []byte("keep")}))
		}
		emit(Punctuation(KindCommit))
		emit(Punctuation(KindBOT))
		for i := 0; i < 40; i++ {
			emit(DataElement(Tuple{Key: fmt.Sprintf("b%d", i), Value: []byte("drop")}))
		}
		emit(Punctuation(KindRollback))
		return nil
	})
	region := src.Transactions(e.p).Parallelize(4, nil)
	stats := region.ToTable(e.p, e.t1)
	region.Merge("merge").Discard()
	if err := top.Run(); err != nil {
		t.Fatal(err)
	}
	if c, a := stats.Commits.Load(), stats.Aborts.Load(); c != 1 || a != 1 {
		t.Fatalf("commits=%d aborts=%d, want 1/1", c, a)
	}
	rows, err := TableSnapshot(e.p, e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40 {
		t.Fatalf("%d rows, want 40 (rolled-back lane writes leaked)", len(rows))
	}
	for _, r := range rows {
		if r.Key[0] != 'a' {
			t.Fatalf("rolled-back key %q visible", r.Key)
		}
	}
}
