package stream

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sistream/internal/txn"
)

// ToTableStats counts the outcomes of a ToTable operator.
type ToTableStats struct {
	// Writes is the number of applied tuple writes (including deletes).
	Writes atomic.Int64
	// Commits counts CommitState calls that succeeded.
	Commits atomic.Int64
	// Aborts counts transactions lost to conflicts or explicit rollback.
	Aborts atomic.Int64
}

// ToTable is the paper's TO_TABLE linking operator: it applies data
// tuples to tbl inside the transaction attached to the elements
// (inserted/updated when Tuple.Delete is false, deleted otherwise) and
// drives the consistency protocol on punctuations — CommitState on
// COMMIT, Abort on ROLLBACK. Elements pass through so further ToTable
// operators can maintain additional states within the same transaction.
//
// The operator is vectorized: consecutive data tuples of one transaction
// form a run that is applied with a single Protocol.WriteBatch call —
// one state-entry resolution, one snapshot pin and one transaction-latch
// acquisition per run instead of per tuple. Runs are cut at punctuations
// and at batch boundaries (so writes are always applied before their
// elements are forwarded downstream, exactly as in the per-element
// engine).
//
// A conflict abort from the protocol (e.g. First-Committer-Wins) poisons
// the rest of the batch: remaining writes up to the next BOT are skipped
// and counted into stats.Aborts. The returned stats object is live.
func (s *Stream) ToTable(p txn.Protocol, tbl *txn.Table) (*Stream, *ToTableStats) {
	out := s.t.newStream()
	stats := &ToTableStats{}
	name := "to_table/" + string(tbl.ID())
	s.t.note("table", name, "protocol="+p.Name()+" lanes=1 (sequential, vectorized runs)", func() string {
		return fmt.Sprintf("writes=%d commits=%d aborts=%d", stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load())
	})

	var (
		poisoned bool
		runTx    *txn.Txn
		ops      = make([]txn.WriteOp, 0, batchCap)
		// groupFailed latches the first fail-stop verdict: a poisoned
		// commit group (txn.ErrGroupFailed) fails the topology exactly
		// once; every later fail-fast commit is counted as an abort so the
		// operator keeps draining deterministically (mirrors the batched
		// spine's accounting).
		groupFailed bool
	)
	// flushRun applies the pending run through the batched write API.
	// Counting matches the per-element engine: every applied write
	// increments Writes; the first failing write poisons the transaction
	// and counts one abort.
	flushRun := func() {
		if len(ops) == 0 {
			return
		}
		n, err := p.WriteBatch(runTx, tbl, ops)
		ops = ops[:0]
		stats.Writes.Add(int64(n))
		if err != nil {
			poisoned = true
			if txn.IsAbort(err) || err == txn.ErrFinished {
				stats.Aborts.Add(1)
			} else {
				s.t.fail(name, err)
			}
		}
	}

	s.consume(name, func(b []Element) {
		for _, e := range b {
			switch e.Kind {
			case KindBOT:
				// A well-formed stream never has a pending run here; flush
				// defensively so a malformed one can't cross transactions.
				flushRun()
				poisoned = false
				runTx = nil
			case KindData:
				if e.Tx == nil || poisoned || e.Tuple.Key == "" {
					continue
				}
				runTx = e.Tx
				ops = append(ops, txn.WriteOp{
					Key:    e.Tuple.Key,
					Value:  e.Tuple.Value,
					Delete: e.Tuple.Delete,
				})
			case KindCommit:
				if e.Tx == nil {
					continue
				}
				flushRun()
				if poisoned {
					// Someone (possibly this operator) already gave up on
					// the transaction; make the abort global.
					if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
						s.t.fail(name, err)
					}
					continue
				}
				if err := p.CommitState(e.Tx, tbl); err != nil {
					switch {
					case errors.Is(err, txn.ErrGroupFailed):
						stats.Aborts.Add(1)
						if !groupFailed {
							groupFailed = true
							s.t.fail(name, err)
						}
					case txn.IsAbort(err) || err == txn.ErrFinished:
						stats.Aborts.Add(1)
					default:
						s.t.fail(name, err)
					}
					continue
				}
				stats.Commits.Add(1)
			case KindRollback:
				if e.Tx == nil {
					continue
				}
				// Apply pending writes first so Writes counts them, as
				// the per-element engine did; Abort discards them anyway.
				flushRun()
				if err := p.Abort(e.Tx); err != nil && err != txn.ErrFinished {
					s.t.fail(name, err)
				}
				stats.Aborts.Add(1)
			}
		}
		// Writes must be applied before downstream operators (a second
		// ToTable, a TableJoin under the same transaction) see the batch.
		flushRun()
		out.ch <- b
	}, func() { close(out.ch) })
	return out, stats
}

// TableChange is one committed row change delivered by ToStream.
type TableChange struct {
	// CTS is the commit timestamp of the transaction.
	CTS txn.Timestamp
	// State is the table the change belongs to.
	State txn.StateID
	// Key is the written (or deleted) row key.
	Key string
	// Value is the row value as of CTS; nil when the row was deleted.
	Value []byte
	// Deleted reports whether the change removed the row.
	Deleted bool
}

// ToStream is the paper's TO_STREAM linking operator with the per-commit
// trigger policy: it subscribes to group commits and emits one data
// element per changed row of tbl, in commit order. The element's Key is
// the row key, Value/Num are the committed value (Num parsed when the
// value is a decimal), Ts is the commit timestamp. The stream closes when
// stop is called. Each commit's changes ship as one batch (split at
// batchCap), so delivery stays prompt — a batch never waits for a later
// commit.
//
// The feed buffers up to feedBuf commits; if a slow consumer falls that
// far behind, the committing thread blocks (backpressure) — a deliberate
// choice over silently dropping committed changes.
func ToStream(t *Topology, tbl *txn.Table, p txn.Protocol) (*Stream, func()) {
	const feedBuf = txn.DefaultFeedBuf
	type commitEvent struct {
		cts  txn.Timestamp
		keys []string
	}
	feed := make(chan commitEvent, feedBuf)
	stopCh := make(chan struct{})
	g := tbl.Group()
	if g == nil {
		panic(fmt.Sprintf("stream: table %q is not in a group", tbl.ID()))
	}
	g.Watch(func(cts txn.Timestamp, writes map[txn.StateID][]string) {
		keys, ok := writes[tbl.ID()]
		if !ok {
			return
		}
		select {
		case <-stopCh:
		case feed <- commitEvent{cts: cts, keys: keys}:
		}
	})

	out := t.newStream()
	emit := func(ev commitEvent) {
		b := getBatch()
		for _, key := range ev.keys {
			b = append(b, Element{Kind: KindData, Tuple: changeTuple(tbl, key, ev.cts)})
			if len(b) >= batchCap {
				out.ch <- b
				b = getBatch()
			}
		}
		if len(b) > 0 {
			out.ch <- b
		} else {
			putBatch(b)
		}
	}
	t.spawn("to_stream/"+string(tbl.ID()), func() {
		defer close(out.ch)
		<-t.start
		for {
			select {
			case <-stopCh:
				// Drain commits already queued so a consumer that stops
				// the feed after its writers finished still sees every
				// committed change.
				for {
					select {
					case ev := <-feed:
						emit(ev)
					default:
						return
					}
				}
			case ev := <-feed:
				emit(ev)
			}
		}
	})
	return out, func() { close(stopCh) }
}

// changeTuple shapes one committed row change as a feed tuple — the
// single definition both TO_STREAM paths (ToStream, FromTablePartitioned)
// emit: Key is the row key, Ts the commit timestamp, Delete set when the
// row is gone at that snapshot, Value a private copy of the committed
// value (Num parsed when decimal). The row is read at the commit's own
// snapshot so the value is exactly what that transaction installed, even
// if later commits already overwrote it.
func changeTuple(tbl *txn.Table, key string, cts txn.Timestamp) Tuple {
	v, ok := tbl.ReadAt(key, cts)
	tuple := Tuple{Key: key, Ts: int64(cts), Delete: !ok}
	if ok {
		tuple.Value = append([]byte(nil), v...)
		var n float64
		if _, err := fmt.Sscanf(string(v), "%g", &n); err == nil {
			tuple.Num = n
		}
	}
	return tuple
}

// FromSnapshot is the analytical FROM(table) source: it scans tbl at the
// given pinned snapshot with `lanes` concurrent stripe scanners (see
// txn.Snapshot.ScanStripe) and emits one data element per visible row —
// Key the row key, Value the row's committed value at the snapshot, Ts
// the snapshot's commit timestamp. With lanes > 1 the per-lane streams
// are merged, so cross-key emission order is arbitrary; every visible
// row is emitted exactly once. The caller owns the snapshot: Release it
// after the topology ran (the scan holds its GC pin for the duration).
func FromSnapshot(t *Topology, snap *txn.Snapshot, tbl *txn.Table, lanes int) *Stream {
	if lanes < 1 {
		lanes = 1
	}
	name := "scan/" + string(tbl.ID())
	mk := func(lane int) *Stream {
		return t.Source(fmt.Sprintf("%s/stripe%d", name, lane), func(emit func(Element)) error {
			return snap.ScanStripe(tbl, lane, lanes, func(key string, value []byte) bool {
				emit(Element{Kind: KindData, Tuple: Tuple{Key: key, Value: value, Ts: int64(snap.CTS())}})
				return true
			})
		})
	}
	t.note("source", name, fmt.Sprintf("snapshot scan, cts=%d lanes=%d", snap.CTS(), lanes), nil)
	if lanes == 1 {
		return mk(0)
	}
	parts := make([]*Stream, lanes)
	for i := range parts {
		parts[i] = mk(i)
	}
	return Merge(name+"/merge", parts...)
}

// KV is one row of a snapshot query result.
type KV struct {
	Key   string
	Value []byte
}

// TableSnapshot is the paper's ad-hoc FROM(table) operator: it runs a
// read-only transaction and materializes every visible row of tbl under
// one consistent snapshot. Under BOCC the query may abort (validation);
// callers retry.
func TableSnapshot(p txn.Protocol, tbl *txn.Table) ([]KV, error) {
	tx, err := p.BeginReadOnly()
	if err != nil {
		return nil, err
	}
	var rows []KV
	var scanErr error
	// Route through the protocol's Read for every key so protocol
	// semantics (locks, read sets) hold; keys are discovered via the
	// version store.
	seen := map[string]bool{}
	tbl.SnapshotScan(^txn.Timestamp(0), func(key string, _ []byte) bool {
		seen[key] = true
		return true
	})
	for key := range seen {
		v, ok, err := p.Read(tx, tbl, key)
		if err != nil {
			scanErr = err
			break
		}
		if ok {
			rows = append(rows, KV{Key: key, Value: append([]byte(nil), v...)})
		}
	}
	if scanErr != nil {
		_ = p.Abort(tx)
		return nil, scanErr
	}
	if err := p.Commit(tx); err != nil {
		return nil, err
	}
	return rows, nil
}

// QueryKeys reads the given keys of one or more tables under a single
// read-only transaction — the ad-hoc query shape of the paper's
// benchmark (N point reads per query). Results align with keys; a nil
// value means the key was not visible. The error may be an abort
// (ErrAborted family) under S2PL/BOCC; callers count and retry.
func QueryKeys(p txn.Protocol, reads []TableKey) ([][]byte, error) {
	tx, err := p.BeginReadOnly()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(reads))
	for i, r := range reads {
		v, ok, err := p.Read(tx, r.Table, r.Key)
		if err != nil {
			if !txn.IsAbort(err) {
				_ = p.Abort(tx)
			}
			return nil, err
		}
		if ok {
			out[i] = v
		}
	}
	if err := p.Commit(tx); err != nil {
		return nil, err
	}
	return out, nil
}

// TableKey addresses one read of QueryKeys.
type TableKey struct {
	Table *txn.Table
	Key   string
}
