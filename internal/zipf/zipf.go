// Package zipf implements the Zipfian key generator of Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases" (SIGMOD 1994),
// which the paper's evaluation (Section 5) uses to control contention.
//
// The generator draws ranks k in [0, n) with probability P(k) proportional
// to 1/(k+1)^theta. theta = 0 degenerates to a uniform distribution; the
// paper sweeps theta in [0, 3] and notes that theta = 2.9 concentrates
// about 82% of all accesses on the single hottest key for n = 1,000,000.
//
// Unlike the textbook Gray approximation (and the YCSB port of it), which
// is only accurate for theta < 1, this implementation is exact for the
// distribution head and uses a continuous inverse-CDF approximation only
// for the far tail, so it remains accurate across the full theta range the
// paper exercises.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// headSize is the number of leading ranks for which the cumulative
// distribution is tabulated exactly. For skewed workloads (theta >= 1)
// the head carries almost the entire probability mass, so nearly every
// draw resolves by binary search over this exact table.
const headSize = 4096

// Generator produces Zipf-distributed ranks in [0, N).
// A Generator is NOT safe for concurrent use; create one per goroutine
// (they can share the same Params, which are immutable after creation).
type Generator struct {
	p   *Params
	rng *rand.Rand
}

// Params holds the precomputed tables for a (n, theta) pair. Params are
// immutable and safe to share across goroutines.
type Params struct {
	n     uint64
	theta float64

	// zetan is zeta(n, theta) = sum_{i=1..n} i^-theta.
	zetan float64
	// cumHead[i] is the cumulative probability of ranks 0..i.
	cumHead []float64
	// headMass is cumHead[len(cumHead)-1].
	headMass float64
}

var (
	paramsMu    sync.Mutex
	paramsCache = map[paramsKey]*Params{}
)

type paramsKey struct {
	n     uint64
	theta float64
}

// NewParams computes (or returns a cached copy of) the distribution tables
// for n keys with skew theta. It panics if n == 0 or theta < 0 because both
// indicate a programming error in workload construction.
func NewParams(n uint64, theta float64) *Params {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	if theta < 0 {
		panic(fmt.Sprintf("zipf: theta must be non-negative, got %g", theta))
	}
	key := paramsKey{n, theta}
	paramsMu.Lock()
	defer paramsMu.Unlock()
	if p, ok := paramsCache[key]; ok {
		return p
	}
	p := computeParams(n, theta)
	paramsCache[key] = p
	return p
}

func computeParams(n uint64, theta float64) *Params {
	p := &Params{n: n, theta: theta}
	h := headSize
	if uint64(h) > n {
		h = int(n)
	}
	// Exact head masses.
	head := make([]float64, h)
	var sum float64
	for i := 0; i < h; i++ {
		head[i] = math.Pow(float64(i+1), -theta)
		sum += head[i]
	}
	// Tail mass approximated by the midpoint-corrected integral
	//   sum_{i=h+1..n} i^-theta  ~=  integral_{h+0.5}^{n+0.5} x^-theta dx,
	// which is accurate to well under 0.1% for h >= 4096.
	tail := tailIntegral(float64(h)+0.5, float64(n)+0.5, theta)
	p.zetan = sum + tail
	p.cumHead = make([]float64, h)
	var cum float64
	for i := 0; i < h; i++ {
		cum += head[i] / p.zetan
		p.cumHead[i] = cum
	}
	p.headMass = cum
	return p
}

// tailIntegral returns integral_a^b x^-theta dx for 0 <= a < b.
func tailIntegral(a, b, theta float64) float64 {
	if b <= a {
		return 0
	}
	if theta == 1 {
		return math.Log(b) - math.Log(a)
	}
	e := 1 - theta
	return (math.Pow(b, e) - math.Pow(a, e)) / e
}

// N returns the size of the key space.
func (p *Params) N() uint64 { return p.n }

// Theta returns the skew parameter.
func (p *Params) Theta() float64 { return p.theta }

// HottestKeyMass returns the probability of rank 0 — the fraction of
// accesses that hit the single hottest key. The paper quotes ~82% for
// theta = 2.9, n = 1e6; TestPaperContentionClaim checks this.
func (p *Params) HottestKeyMass() float64 {
	if len(p.cumHead) == 0 {
		return 0
	}
	return p.cumHead[0]
}

// New creates a Generator over params p seeded with seed.
func New(p *Params, seed int64) *Generator {
	return &Generator{p: p, rng: rand.New(rand.NewSource(seed))}
}

// NewWithRand creates a Generator drawing randomness from rng.
func NewWithRand(p *Params, rng *rand.Rand) *Generator {
	return &Generator{p: p, rng: rng}
}

// Next returns the next rank in [0, N).
func (g *Generator) Next() uint64 {
	p := g.p
	if p.theta == 0 {
		return uint64(g.rng.Int63n(int64(p.n)))
	}
	u := g.rng.Float64()
	if u < p.headMass || uint64(len(p.cumHead)) == p.n {
		// Binary search the exact head table for the smallest index
		// with cumHead[i] >= u.
		lo, hi := 0, len(p.cumHead)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if p.cumHead[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo)
	}
	// Tail: invert the continuous approximation. We need the smallest k
	// with headMass + I(h+0.5, k+1.5)/zetan >= u where I is tailIntegral.
	h := float64(len(p.cumHead))
	target := (u - p.headMass) * p.zetan
	a := h + 0.5
	var x float64
	if p.theta == 1 {
		x = a * math.Exp(target)
	} else {
		e := 1 - p.theta
		x = math.Pow(math.Pow(a, e)+e*target, 1/e)
	}
	k := uint64(math.Ceil(x - 1.5))
	if k < uint64(len(p.cumHead)) {
		k = uint64(len(p.cumHead))
	}
	if k >= p.n {
		k = p.n - 1
	}
	return k
}

// Uniform is a convenience uniform generator with the same interface as
// Generator, used for theta = 0 fast paths and for value payloads.
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a generator of uniform ranks in [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		panic("zipf: n must be positive")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next uniform rank in [0, n).
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }
