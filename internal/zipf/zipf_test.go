package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("n=0", func() { NewParams(0, 1) })
	mustPanic("theta<0", func() { NewParams(10, -0.1) })
	mustPanic("uniform n=0", func() { NewUniform(0, 1) })
}

func TestParamsCached(t *testing.T) {
	a := NewParams(1000, 1.5)
	b := NewParams(1000, 1.5)
	if a != b {
		t.Fatal("expected cached Params pointer to be reused")
	}
	c := NewParams(1000, 1.6)
	if a == c {
		t.Fatal("different theta must not share Params")
	}
}

func TestRangeAndDeterminism(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.99, 1, 1.5, 2, 2.9, 3} {
		p := NewParams(10000, theta)
		g1 := New(p, 42)
		g2 := New(p, 42)
		for i := 0; i < 20000; i++ {
			v1, v2 := g1.Next(), g2.Next()
			if v1 != v2 {
				t.Fatalf("theta=%g: generators with same seed diverged at draw %d: %d vs %d", theta, i, v1, v2)
			}
			if v1 >= 10000 {
				t.Fatalf("theta=%g: rank %d out of range", theta, v1)
			}
		}
	}
}

func TestUniformWhenThetaZero(t *testing.T) {
	const n, draws = 100, 200000
	p := NewParams(n, 0)
	g := New(p, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("rank %d: count %d deviates >15%% from uniform expectation %.0f", k, c, want)
		}
	}
}

// TestPaperContentionClaim verifies the paper's Section 5 statement that
// theta = 2.9 corresponds to ~82% of accesses hitting the same key for a
// 1M-key table.
func TestPaperContentionClaim(t *testing.T) {
	p := NewParams(1_000_000, 2.9)
	mass := p.HottestKeyMass()
	if mass < 0.80 || mass > 0.84 {
		t.Fatalf("hottest-key mass for theta=2.9, n=1e6: got %.4f, paper says ~0.82", mass)
	}
	// And empirically.
	g := New(p, 1)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if g.Next() == 0 {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.79 || frac > 0.85 {
		t.Fatalf("empirical hottest-key fraction %.4f, want ~0.82", frac)
	}
}

// TestHeadMatchesExactDistribution draws many samples and compares the
// empirical frequencies of the top ranks against the exact probabilities.
func TestHeadMatchesExactDistribution(t *testing.T) {
	for _, theta := range []float64{0.5, 1, 1.5, 2.5} {
		const n, draws = 50000, 300000
		p := NewParams(n, theta)
		g := New(p, 99)
		counts := map[uint64]int{}
		for i := 0; i < draws; i++ {
			counts[g.Next()]++
		}
		for k := uint64(0); k < 5; k++ {
			exact := math.Pow(float64(k+1), -theta) / p.zetan
			got := float64(counts[k]) / draws
			if exact > 0.01 && math.Abs(got-exact)/exact > 0.10 {
				t.Errorf("theta=%g rank=%d: empirical %.4f vs exact %.4f", theta, k, got, exact)
			}
		}
	}
}

// TestMonotoneMass checks the defining Zipf property: lower ranks are at
// least as likely as higher ranks (over coarse buckets to tame noise).
func TestMonotoneMass(t *testing.T) {
	const n, draws = 1024, 400000
	p := NewParams(n, 1.2)
	g := New(p, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Next()]++
	}
	bucket := func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		return s
	}
	prev := draws + 1
	for lo := 0; lo < n; lo += 128 {
		b := bucket(lo, lo+128)
		if b > prev+draws/200 { // allow 0.5% noise
			t.Fatalf("bucket starting at %d has mass %d > previous %d", lo, b, prev)
		}
		prev = b
	}
}

// TestZetanAccuracy compares the tabulated+integral zeta against a direct
// summation for moderate n.
func TestZetanAccuracy(t *testing.T) {
	for _, theta := range []float64{0.3, 0.9, 1, 1.7, 2.9} {
		const n = 200000
		exact := 0.0
		for i := 1; i <= n; i++ {
			exact += math.Pow(float64(i), -theta)
		}
		p := computeParams(n, theta)
		if math.Abs(p.zetan-exact)/exact > 1e-3 {
			t.Errorf("theta=%g: zetan %.6f vs exact %.6f", theta, p.zetan, exact)
		}
	}
}

// Property: every draw is in range, for arbitrary (n, theta, seed).
func TestPropertyDrawsInRange(t *testing.T) {
	f := func(nRaw uint32, thetaRaw uint8, seed int64) bool {
		n := uint64(nRaw%100000) + 1
		theta := float64(thetaRaw%31) / 10 // 0.0 .. 3.0
		p := computeParams(n, theta)
		g := NewWithRand(p, rand.New(rand.NewSource(seed)))
		for i := 0; i < 200; i++ {
			if g.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallN(t *testing.T) {
	for _, n := range []uint64{1, 2, 3} {
		p := computeParams(n, 2)
		g := New(p, 5)
		for i := 0; i < 100; i++ {
			if v := g.Next(); v >= n {
				t.Fatalf("n=%d: rank %d out of range", n, v)
			}
		}
	}
}

func TestUniformGenerator(t *testing.T) {
	u := NewUniform(50, 11)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		v := u.Next()
		if v >= 50 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("expected all 50 ranks to appear, got %d", len(seen))
	}
}

func BenchmarkZipfNext(b *testing.B) {
	p := NewParams(1_000_000, 2.0)
	g := New(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
