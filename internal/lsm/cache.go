package lsm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// blockCache is a small LRU over SSTable data blocks, shared by all
// tables of one DB. Point lookups (tableReader.get) consult it so a hot
// read path stops paying one pread per lookup; iterators (scans,
// compactions) bypass it deliberately — their one-shot streaming access
// would only evict the hot blocks.
//
// Entries are keyed by (file number, block index); a cached block is
// immutable (SSTables never change after finish), so hits can be served
// to concurrent readers without copying.
type blockCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[blockKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type blockKey struct {
	file  uint64
	block int
}

type blockEntry struct {
	key  blockKey
	data []byte
}

// newBlockCache returns a cache holding up to capBlocks blocks, or nil
// (caching disabled) when capBlocks <= 0.
func newBlockCache(capBlocks int) *blockCache {
	if capBlocks <= 0 {
		return nil
	}
	return &blockCache{cap: capBlocks, ll: list.New(), m: make(map[blockKey]*list.Element, capBlocks)}
}

// get returns the cached block and promotes it. Safe on a nil cache.
func (c *blockCache) get(k blockKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.m[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	data := el.Value.(*blockEntry).data
	c.mu.Unlock()
	c.hits.Add(1)
	return data, true
}

// put inserts a block, evicting from the LRU tail. Safe on a nil cache.
func (c *blockCache) put(k blockKey, data []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		// Raced with another reader filling the same block; keep the
		// existing entry (identical contents).
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.m[k] = c.ll.PushFront(&blockEntry{key: k, data: data})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.m, tail.Value.(*blockEntry).key)
	}
	c.mu.Unlock()
}

// Stats reports hit/miss counters. Safe on a nil cache.
func (c *blockCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// len reports the number of cached blocks (tests). Safe on a nil cache.
func (c *blockCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
