package lsm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The manifest is the durable record of the tree's file layout. It is an
// append-only sequence of versionEdit records (JSON payloads in the same
// CRC frame the WAL uses). CURRENT names the live manifest file. Recovery
// reads CURRENT, replays the manifest edits to rebuild the version, then
// replays any WAL newer than the recorded logNum.

// versionEdit is one durable state transition.
type versionEdit struct {
	// Comparator sanity tag; constant for this implementation.
	Comparator string `json:"comparator,omitempty"`
	// LogNum is the WAL generation whose contents are NOT yet in tables;
	// logs older than this are obsolete.
	LogNum uint64 `json:"log_num,omitempty"`
	// NextFileNum is the next unallocated file number.
	NextFileNum uint64 `json:"next_file_num,omitempty"`
	// AddFiles lists tables created by this edit.
	AddFiles []editFile `json:"add_files,omitempty"`
	// DelFiles lists tables retired by this edit.
	DelFiles []editFileRef `json:"del_files,omitempty"`
}

type editFile struct {
	Level    int    `json:"level"`
	Num      uint64 `json:"num"`
	Size     uint64 `json:"size"`
	Count    uint64 `json:"count"`
	Smallest []byte `json:"smallest"`
	Largest  []byte `json:"largest"`
}

type editFileRef struct {
	Level int    `json:"level"`
	Num   uint64 `json:"num"`
}

func walPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.wal", num))
}

func sstPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", num))
}

func manifestPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("MANIFEST-%06d", num))
}

func currentPath(dir string) string {
	return filepath.Join(dir, "CURRENT")
}

// manifestWriter appends edits to the live manifest.
type manifestWriter struct {
	f *os.File
}

func newManifestWriter(path string) (*manifestWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: open manifest: %w", err)
	}
	return &manifestWriter{f: f}, nil
}

func (m *manifestWriter) append(e *versionEdit) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := m.f.Write(append(hdr[:], payload...)); err != nil {
		return err
	}
	return m.f.Sync()
}

func (m *manifestWriter) close() error {
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}

// readManifest replays all edits in the manifest at path.
func readManifest(path string, apply func(*versionEdit) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn tail from a crash during append
			}
			return err
		}
		if crc32.Checksum(payload, crcTable) != want {
			return nil
		}
		var e versionEdit
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("lsm: manifest decode: %w", err)
		}
		if err := apply(&e); err != nil {
			return err
		}
	}
}

// writeCurrent atomically points CURRENT at the manifest with number num.
func writeCurrent(dir string, num uint64) error {
	tmp := filepath.Join(dir, "CURRENT.tmp")
	content := fmt.Sprintf("MANIFEST-%06d\n", num)
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, currentPath(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCurrent returns the manifest number CURRENT points at.
func readCurrent(dir string) (uint64, bool, error) {
	data, err := os.ReadFile(currentPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	name := strings.TrimSpace(string(data))
	if !strings.HasPrefix(name, "MANIFEST-") {
		return 0, false, fmt.Errorf("%w: CURRENT content %q", errCorrupt, name)
	}
	num, err := strconv.ParseUint(strings.TrimPrefix(name, "MANIFEST-"), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("%w: CURRENT number: %v", errCorrupt, err)
	}
	return num, true, nil
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// listFiles inventories dir, returning WAL numbers, SSTable numbers and
// manifest numbers found.
func listFiles(dir string) (wals, ssts, manifests []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".wal"):
			if n, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64); err == nil {
				wals = append(wals, n)
			}
		case strings.HasSuffix(name, ".sst"):
			if n, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64); err == nil {
				ssts = append(ssts, n)
			}
		case strings.HasPrefix(name, "MANIFEST-"):
			if n, err := strconv.ParseUint(strings.TrimPrefix(name, "MANIFEST-"), 10, 64); err == nil {
				manifests = append(manifests, n)
			}
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	sort.Slice(ssts, func(i, j int) bool { return ssts[i] < ssts[j] })
	sort.Slice(manifests, func(i, j int) bool { return manifests[i] < manifests[j] })
	return wals, ssts, manifests, nil
}
