package lsm

import (
	"encoding/binary"
	"math"
)

// bloomBitsPerKey controls the filter's false-positive rate; 10 bits/key
// gives ~1% FPR, the same default RocksDB uses.
const bloomBitsPerKey = 10

// bloomFilter is an immutable Bloom filter built over the keys of one
// SSTable. The serialized form is the bit array followed by one byte
// holding the number of probes.
type bloomFilter struct {
	bits []byte
	k    uint8
}

// buildBloom creates a filter for the given key hashes.
func buildBloom(hashes []uint32, bitsPerKey int) bloomFilter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = ln(2) * bits/key, clamped to a sane range.
	k := uint8(math.Round(float64(bitsPerKey) * 0.69))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	bits := make([]byte, nBytes)
	for _, h := range hashes {
		delta := h>>17 | h<<15 // double hashing (Kirsch & Mitzenmacher)
		for i := uint8(0); i < k; i++ {
			pos := h % uint32(nBits)
			bits[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return bloomFilter{bits: bits, k: k}
}

// mayContain reports whether the key with hash h might be in the set.
// False positives are possible; false negatives are not.
func (f bloomFilter) mayContain(h uint32) bool {
	if len(f.bits) == 0 {
		return true // absent filter filters nothing
	}
	nBits := uint32(len(f.bits) * 8)
	delta := h>>17 | h<<15
	for i := uint8(0); i < f.k; i++ {
		pos := h % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// marshal serializes the filter.
func (f bloomFilter) marshal() []byte {
	out := make([]byte, len(f.bits)+1)
	copy(out, f.bits)
	out[len(f.bits)] = f.k
	return out
}

// unmarshalBloom parses a serialized filter.
func unmarshalBloom(data []byte) bloomFilter {
	if len(data) < 2 {
		return bloomFilter{}
	}
	return bloomFilter{bits: data[:len(data)-1], k: data[len(data)-1]}
}

// bloomHash is the hash function applied to user keys before insertion or
// lookup; it must be identical on both paths.
func bloomHash(key []byte) uint32 {
	// Murmur-inspired hash, same shape as LevelDB's.
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(key))*m
	i := 0
	for ; i+4 <= len(key); i += 4 {
		h += binary.LittleEndian.Uint32(key[i:])
		h *= m
		h ^= h >> 16
	}
	switch len(key) - i {
	case 3:
		h += uint32(key[i+2]) << 16
		fallthrough
	case 2:
		h += uint32(key[i+1]) << 8
		fallthrough
	case 1:
		h += uint32(key[i])
		h *= m
		h ^= h >> 24
	}
	return h
}
