package lsm

import (
	"bytes"
	"container/heap"
)

// internalIterator is the common shape of memtable and SSTable iterators
// after adapting: position with seekToFirst/seek, then repeatedly call
// next. key/value/kind are valid until the following next call.
type internalIterator interface {
	seekToFirst()
	seek(k []byte)
	next() bool
	key() []byte
	value() []byte
	kind() entryKind
}

// memtable iterator adaption: the skip-list iterator exposes a
// valid/next protocol; wrap it into the pull protocol.
type memIterAdapter struct {
	it      *memIterator
	started bool
}

func (a *memIterAdapter) seekToFirst() { a.it.seekToFirst(); a.started = false }
func (a *memIterAdapter) seek(k []byte) {
	a.it.seek(k)
	a.started = false
}
func (a *memIterAdapter) next() bool {
	if !a.started {
		a.started = true
	} else if a.it.valid() {
		a.it.next()
	}
	return a.it.valid()
}
func (a *memIterAdapter) key() []byte     { return a.it.key() }
func (a *memIterAdapter) value() []byte   { return a.it.value() }
func (a *memIterAdapter) kind() entryKind { return a.it.kind() }

// mergeSource is one input to the k-way merge, tagged with its age: lower
// age values shadow higher ones when keys collide (age 0 = memtable,
// then immutable memtable, then L0 newest..oldest, then deeper levels).
type mergeSource struct {
	it  internalIterator
	age int
	ok  bool
}

type mergeHeap []*mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].it.key(), h[j].it.key())
	if c != 0 {
		return c < 0
	}
	return h[i].age < h[j].age
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergingIterator yields the newest entry per user key across all sources
// in ascending key order, including tombstones (callers filter them).
type mergingIterator struct {
	h       mergeHeap
	curKey  []byte
	curVal  []byte
	curKind entryKind
}

// newMergingIterator builds a merge over sources positioned by seek or
// seekToFirst; start may be nil for "from the beginning".
func newMergingIterator(sources []*mergeSource, start []byte) *mergingIterator {
	m := &mergingIterator{}
	for _, s := range sources {
		if start == nil {
			s.it.seekToFirst()
		} else {
			s.it.seek(start)
		}
		s.ok = s.it.next()
		if s.ok {
			m.h = append(m.h, s)
		}
	}
	heap.Init(&m.h)
	return m
}

// next advances to the next distinct user key, returning false at the end.
func (m *mergingIterator) next() bool {
	for m.h.Len() > 0 {
		top := m.h[0]
		key := top.it.key()
		if m.curKey != nil && bytes.Equal(key, m.curKey) {
			// Shadowed duplicate of the key we already emitted.
			m.advanceTop()
			continue
		}
		m.curKey = append(m.curKey[:0], key...)
		m.curVal = append(m.curVal[:0], top.it.value()...)
		m.curKind = top.it.kind()
		m.advanceTop()
		return true
	}
	return false
}

func (m *mergingIterator) advanceTop() {
	top := m.h[0]
	if top.it.next() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

func (m *mergingIterator) key() []byte     { return m.curKey }
func (m *mergingIterator) value() []byte   { return m.curVal }
func (m *mergingIterator) kind() entryKind { return m.curKind }
