package lsm

import (
	"bytes"
	"math/rand"
	"sync"
)

// entryKind discriminates live values from tombstones, both in the
// memtable and inside SSTables.
type entryKind byte

const (
	kindPut    entryKind = 1
	kindDelete entryKind = 2
)

const (
	maxSkipHeight = 12
	skipBranching = 4
)

// memtable is a sorted in-memory buffer of the most recent writes,
// implemented as a skip list. Last-writer-wins per key: an insert for an
// existing key overwrites the node's value in place. Deletions are stored
// as tombstones so they shadow older values in SSTables below.
//
// The memtable itself is not synchronized; the DB serializes writers and
// protects readers with its own lock.
type memtable struct {
	head   *skipNode
	height int
	rng    *rand.Rand
	bytes  int // approximate memory footprint of keys+values
	count  int
}

type skipNode struct {
	key  []byte
	val  []byte
	kind entryKind
	next [maxSkipHeight]*skipNode
}

// memtablePool recycles the rand source; memtables themselves are cheap.
var memtableSeed = func() func() int64 {
	var mu sync.Mutex
	var s int64 = 0x5eed
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		s += 0x9e3779b97f4a7c1 // golden-ratio increment keeps seeds distinct
		return s
	}
}()

func newMemtable() *memtable {
	return &memtable{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(memtableSeed())),
	}
}

func (m *memtable) randomHeight() int {
	h := 1
	for h < maxSkipHeight && m.rng.Intn(skipBranching) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= k, filling prev
// with the rightmost node before it on every level when prev != nil.
func (m *memtable) findGreaterOrEqual(k []byte, prev *[maxSkipHeight]*skipNode) *skipNode {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for next := x.next[level]; next != nil && bytes.Compare(next.key, k) < 0; next = x.next[level] {
			x = next
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// set inserts or overwrites key with (kind, value).
func (m *memtable) set(key, value []byte, kind entryKind) {
	var prev [maxSkipHeight]*skipNode
	node := m.findGreaterOrEqual(key, &prev)
	if node != nil && bytes.Equal(node.key, key) {
		m.bytes += len(value) - len(node.val)
		node.val = append(node.val[:0], value...)
		node.kind = kind
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &skipNode{
		key:  append([]byte(nil), key...),
		val:  append([]byte(nil), value...),
		kind: kind,
	}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.bytes += len(key) + len(value) + 48 // node overhead estimate
	m.count++
}

// get looks up key. found=false means the memtable knows nothing about the
// key; found=true with kind==kindDelete means the key is known deleted.
func (m *memtable) get(key []byte) (value []byte, kind entryKind, found bool) {
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.val, n.kind, true
	}
	return nil, 0, false
}

// approximateBytes returns the estimated memory footprint.
func (m *memtable) approximateBytes() int { return m.bytes }

// len returns the number of distinct keys (including tombstones).
func (m *memtable) len() int { return m.count }

// iterator walks the memtable in ascending key order.
type memIterator struct {
	m    *memtable
	node *skipNode
}

func (m *memtable) iterator() *memIterator {
	return &memIterator{m: m}
}

// seekToFirst positions at the smallest key.
func (it *memIterator) seekToFirst() { it.node = it.m.head.next[0] }

// seek positions at the first key >= k.
func (it *memIterator) seek(k []byte) { it.node = it.m.findGreaterOrEqual(k, nil) }

// valid reports whether the iterator is positioned at an entry.
func (it *memIterator) valid() bool { return it.node != nil }

// next advances to the following entry.
func (it *memIterator) next() { it.node = it.node.next[0] }

func (it *memIterator) key() []byte     { return it.node.key }
func (it *memIterator) value() []byte   { return it.node.val }
func (it *memIterator) kind() entryKind { return it.node.kind }
