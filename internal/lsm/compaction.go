package lsm

import (
	"bytes"
	"fmt"
)

// Compaction policy (leveled, LevelDB-style, simplified):
//
//   - Level 0 is compacted into level 1 when it accumulates
//     opts.L0CompactionTrigger tables. All L0 tables participate (they may
//     overlap), together with the overlapping L1 tables.
//   - Level l >= 1 is compacted when its total size exceeds
//     maxBytesForLevel(l). One table is picked round-robin by key range
//     (the compaction pointer) and merged with the overlapping tables of
//     level l+1.
//   - Tombstones are dropped when the compaction writes into the deepest
//     level that contains any data for the key range — at that point no
//     older value can be shadowed.
//
// Compactions run synchronously on the writer path right after a flush;
// this keeps the implementation single-threaded and deterministic, which
// the benchmark harness prefers (no background jitter), at the cost of an
// occasional latency spike on the writer — acknowledged in DESIGN.md.

// maxBytesForLevel returns the size budget of level l (l >= 1).
func (d *DB) maxBytesForLevel(l int) uint64 {
	max := d.opts.BaseLevelBytes
	for i := 1; i < l; i++ {
		max *= uint64(d.opts.LevelMultiplier)
	}
	return max
}

// pickCompaction chooses the next compaction, or level=-1 if none needed.
// Called with d.mu held.
func (d *DB) pickCompaction() (level int) {
	if len(d.cur.levels[0]) >= d.opts.L0CompactionTrigger {
		return 0
	}
	for l := 1; l < numLevels-1; l++ {
		if d.cur.levelBytes(l) > d.maxBytesForLevel(l) {
			return l
		}
	}
	return -1
}

// compact runs one compaction from the given level. Called WITHOUT d.mu;
// only the writer thread calls it, so the level layout can only change
// under our feet by... nobody. Readers share the version via refcounts.
func (d *DB) compact(level int) error {
	d.mu.Lock()
	v := d.cur
	v.ref()

	var inputs, lowerInputs []*fileMeta
	var smallest, largest []byte
	if level == 0 {
		inputs = append(inputs, v.levels[0]...)
		for _, f := range inputs {
			smallest = minKey(smallest, f.smallest)
			largest = maxKey(largest, f.largest)
		}
	} else {
		files := v.levels[level]
		if len(files) == 0 {
			d.mu.Unlock()
			v.unref()
			return nil
		}
		// Round-robin pick: first file with smallest key after the
		// compaction pointer, wrapping around.
		idx := 0
		if ptr := d.compactPtr[level]; ptr != nil {
			for i, f := range files {
				if bytes.Compare(f.smallest, ptr) > 0 {
					idx = i
					break
				}
			}
		}
		f := files[idx]
		inputs = []*fileMeta{f}
		smallest, largest = f.smallest, f.largest
		d.compactPtr[level] = append([]byte(nil), f.smallest...)
	}
	lowerInputs = v.overlapping(level+1, smallest, largest)
	for _, f := range lowerInputs {
		smallest = minKey(smallest, f.smallest)
		largest = maxKey(largest, f.largest)
	}
	// Can tombstones be dropped? Only if no deeper level holds data
	// overlapping the compaction key range.
	dropTombstones := true
	for l := level + 2; l < numLevels; l++ {
		if len(v.overlapping(l, smallest, largest)) > 0 {
			dropTombstones = false
			break
		}
	}
	d.mu.Unlock()

	if len(inputs) == 0 {
		v.unref()
		return nil
	}

	// Build the merge: lower age shadows higher. Inputs from `level` are
	// newer than inputs from level+1. Within L0, newer file numbers are
	// newer data (version keeps them sorted newest-first already).
	var sources []*mergeSource
	age := 0
	for _, f := range inputs {
		sources = append(sources, &mergeSource{it: f.reader.iterator(), age: age})
		age++
	}
	for _, f := range lowerInputs {
		sources = append(sources, &mergeSource{it: f.reader.iterator(), age: age})
		age++
	}
	merge := newMergingIterator(sources, nil)

	outputs, err := d.writeCompactionOutputs(merge, dropTombstones)
	if err != nil {
		v.unref()
		return err
	}

	// Install the edit.
	edit := &versionEdit{}
	for _, f := range inputs {
		edit.DelFiles = append(edit.DelFiles, editFileRef{Level: level, Num: f.num})
	}
	for _, f := range lowerInputs {
		edit.DelFiles = append(edit.DelFiles, editFileRef{Level: level + 1, Num: f.num})
	}
	for _, out := range outputs {
		edit.AddFiles = append(edit.AddFiles, editFile{
			Level: level + 1, Num: out.num, Size: out.size, Count: out.count,
			Smallest: out.smallest, Largest: out.largest,
		})
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	v.unref()
	return d.applyEdit(edit, outputs)
}

// applyEdit installs a compaction/flush edit: appends it to the manifest,
// swaps in the new version, and retires replaced files. Called with d.mu.
func (d *DB) applyEdit(edit *versionEdit, outputs []*fileMeta) error {
	edit.NextFileNum = d.nextFileNum
	if err := d.manifest.append(edit); err != nil {
		return fmt.Errorf("lsm: manifest append: %w", err)
	}
	nv := d.cur.clone()
	drop := func(l int, num uint64) {
		files := nv.levels[l]
		for i, f := range files {
			if f.num == num {
				f.obsolete.Store(true)
				f.unref()
				nv.levels[l] = append(append([]*fileMeta(nil), files[:i]...), files[i+1:]...)
				return
			}
		}
	}
	for _, ref := range edit.DelFiles {
		drop(ref.Level, ref.Num)
	}
	for i, ef := range edit.AddFiles {
		fm := outputs[i]
		fm.ref() // version's reference
		nv.levels[ef.Level] = append(nv.levels[ef.Level], fm)
		nv.sortLevel(ef.Level)
	}
	old := d.cur
	d.cur = nv
	old.unref()
	return nil
}

// writeCompactionOutputs drains the merge into one or more SSTables,
// splitting at opts.MaxOutputBytes.
func (d *DB) writeCompactionOutputs(merge *mergingIterator, dropTombstones bool) ([]*fileMeta, error) {
	var outputs []*fileMeta
	var b *tableBuilder
	var bNum uint64
	closeCurrent := func() error {
		if b == nil {
			return nil
		}
		count, smallest, largest, size, err := b.finish()
		if err != nil {
			return err
		}
		if count == 0 {
			// finish on an empty builder still writes a file; avoid it
			// by never creating empty builders (guarded below).
			return nil
		}
		reader, err := openTable(sstPath(d.dir, bNum), bNum, d.cache)
		if err != nil {
			return err
		}
		fm := &fileMeta{
			num: bNum, size: size, count: count,
			smallest: append([]byte(nil), smallest...),
			largest:  append([]byte(nil), largest...),
			reader:   reader, dir: d.dir,
		}
		outputs = append(outputs, fm)
		b = nil
		return nil
	}
	for merge.next() {
		if dropTombstones && merge.kind() == kindDelete {
			continue
		}
		if b == nil {
			d.mu.Lock()
			bNum = d.nextFileNum
			d.nextFileNum++
			d.mu.Unlock()
			var err error
			b, err = newTableBuilder(sstPath(d.dir, bNum), d.opts.BlockBytes)
			if err != nil {
				return nil, err
			}
		}
		b.add(merge.key(), merge.value(), merge.kind())
		if b.offset+uint64(len(b.block)) >= d.opts.MaxOutputBytes {
			if err := closeCurrent(); err != nil {
				return nil, err
			}
		}
	}
	if err := closeCurrent(); err != nil {
		return nil, err
	}
	return outputs, nil
}

func minKey(a, b []byte) []byte {
	if a == nil || bytes.Compare(b, a) < 0 {
		return b
	}
	return a
}

func maxKey(a, b []byte) []byte {
	if a == nil || bytes.Compare(b, a) > 0 {
		return b
	}
	return a
}
