package lsm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sistream/internal/kv"
)

// TestWALWriterStickyError: after a failed write or sync the WAL writer
// must keep returning the original error — the file's durable contents
// are unknown, so reporting success later would be a lie.
func TestWALWriterStickyError(t *testing.T) {
	dir := t.TempDir()
	w, err := newWALWriter(filepath.Join(dir, "000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the fd so the next write fails like a dying disk.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	first := w.append([]byte("payload"), true)
	if first == nil {
		t.Fatal("append on closed fd succeeded")
	}
	// Sticky: subsequent appends and syncs return the SAME error without
	// touching the file.
	if err := w.append([]byte("more"), false); !errors.Is(err, first) && err.Error() != first.Error() {
		t.Fatalf("second append = %v, want the latched %v", err, first)
	}
	if err := w.sync(); err == nil || err.Error() != first.Error() {
		t.Fatalf("sync after failure = %v, want the latched %v", err, first)
	}
}

// TestWALWriterStickySyncError: a failed fsync (not just a failed write)
// must latch too — the fsyncgate shape, where the write itself succeeded
// into the page cache.
func TestWALWriterStickySyncError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "000001.wal")
	w, err := newWALWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	// Swap the fd for a read-only one: writes hit EBADF, and so does
	// fsync on some platforms; either way the first failure must latch.
	w.f.Close()
	ro, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	w.f = ro
	first := w.append([]byte("doomed"), true)
	if first == nil {
		t.Fatal("append through read-only fd succeeded")
	}
	if err := w.sync(); err == nil || err.Error() != first.Error() {
		t.Fatalf("sync after failure = %v, want latched %v", err, first)
	}
	if w.err == nil {
		t.Fatal("writer error not latched")
	}
}

// TestDBFailStopOnWALError: a WAL failure poisons the DB — writes fail
// fast with a wrapped ErrDBFailed, reads keep serving.
func TestDBFailStopOnWALError(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill the WAL fd underneath the DB: the next write must fail and
	// enter the sticky failed state.
	d.mu.Lock()
	d.wal.f.Close()
	d.mu.Unlock()

	first := d.Put([]byte("k2"), []byte("v2"))
	if first == nil {
		t.Fatal("write on dead WAL succeeded")
	}
	if errors.Is(first, ErrDBFailed) {
		t.Fatalf("first error should be the raw cause, got wrapped: %v", first)
	}
	if err := d.Err(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("DB.Err() = %v, want ErrDBFailed", err)
	}

	// Subsequent writes fail fast with the wrapped sticky error.
	if err := d.Put([]byte("k3"), []byte("v3")); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("write on failed DB = %v, want ErrDBFailed", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("Sync on failed DB = %v, want ErrDBFailed", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("Flush on failed DB = %v, want ErrDBFailed", err)
	}
	if err := d.Compact(); !errors.Is(err, ErrDBFailed) {
		t.Fatalf("Compact on failed DB = %v, want ErrDBFailed", err)
	}

	// Graceful degradation: reads still serve the pre-failure state.
	if v, ok, err := d.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read on failed DB: %q %v %v", v, ok, err)
	}
	n := 0
	if err := d.Scan(nil, nil, func(_, _ []byte) bool { n++; return true }); err != nil {
		t.Fatalf("scan on failed DB: %v", err)
	}
	if n != 1 {
		t.Fatalf("scan saw %d keys, want 1", n)
	}
	_ = d.Stats()

	// The failed write must not be visible (it never reached the WAL).
	if _, ok, _ := d.Get([]byte("k2")); ok {
		t.Fatal("failed write visible to reads")
	}
}

// TestDBFailStopViaFaultStore: the kv.Fault wrapper drives the same
// fail-stop path from outside — an injected sticky sync error on the
// inner store makes Apply fail; the DB is the inner store here, so this
// exercises Fault over lsm (the tentpole requires both backends).
func TestDBFailStopViaFaultStore(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := kv.NewFault(d)
	defer f.Close()

	b := kv.NewBatch(1)
	b.Put([]byte("a"), []byte("1"))
	if err := f.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	badDisk := errors.New("EIO")
	f.FailSyncAt(1, badDisk)
	b2 := kv.NewBatch(1)
	b2.Put([]byte("b"), []byte("2"))
	if err := f.Apply(b2, true); !errors.Is(err, badDisk) {
		t.Fatalf("apply = %v, want injected EIO", err)
	}
	// Crash + reopen: only the synced prefix survives in the LSM.
	re, err := f.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := re.Get([]byte("b")); ok {
		t.Fatal("unsynced write survived the crash")
	}
	if v, ok, _ := re.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("synced write lost: %q %v", v, ok)
	}
}
