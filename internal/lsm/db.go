package lsm

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"sistream/internal/kv"
)

// ErrDBFailed is the sticky fail-stop error of a failed DB: after any
// WAL, flush, manifest, compaction or sync error the durable state is
// unknowable, so every subsequent write returns an error wrapping this
// sentinel (and the original cause) while reads keep serving — graceful
// degradation to read-only until the process restarts and recovery
// rebuilds from what actually reached disk.
var ErrDBFailed = errors.New("lsm: db failed (fail-stop)")

// dbFailure records the first fatal error; wrapped is precomputed so the
// hot-path health check stays allocation-free.
type dbFailure struct {
	cause   error
	wrapped error
}

// Options configures a DB. The zero value is usable; unset fields take the
// defaults below.
type Options struct {
	// SyncWrites makes single-op Put/Delete durable before returning.
	// Batched Apply takes an explicit per-call sync flag, matching the
	// paper's setup where transactional commits are the synchronous unit.
	SyncWrites bool
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int
	// BlockBytes is the SSTable data-block size (default 4 KiB).
	BlockBytes int
	// L0CompactionTrigger is the L0 table count that triggers compaction
	// (default 4).
	L0CompactionTrigger int
	// BaseLevelBytes is the size budget of level 1 (default 8 MiB);
	// level l holds BaseLevelBytes * LevelMultiplier^(l-1).
	BaseLevelBytes uint64
	// LevelMultiplier is the per-level growth factor (default 10).
	LevelMultiplier int
	// MaxOutputBytes caps individual compaction output tables
	// (default 2 MiB).
	MaxOutputBytes uint64
	// DisableAutoCompaction turns off flush-triggered compaction; tests
	// use it to construct specific layouts.
	DisableAutoCompaction bool
	// BlockCacheBlocks is the capacity of the shared data-block LRU cache
	// serving point lookups, in blocks (default 256 — 1 MiB at the
	// default block size). Negative disables caching.
	BlockCacheBlocks int
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes == 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = defaultBlockLen
	}
	if o.L0CompactionTrigger == 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes == 0 {
		o.BaseLevelBytes = 8 << 20
	}
	if o.LevelMultiplier == 0 {
		o.LevelMultiplier = 10
	}
	if o.MaxOutputBytes == 0 {
		o.MaxOutputBytes = 2 << 20
	}
	if o.BlockCacheBlocks == 0 {
		o.BlockCacheBlocks = 256
	}
	return o
}

// DB is a persistent key-value store implementing kv.Store. See the
// package comment for the on-disk architecture.
type DB struct {
	dir  string
	opts Options

	// writeMu serializes the write path (WAL append + memtable insert +
	// flush/compaction). Held for the full duration of Apply.
	writeMu sync.Mutex

	// mu guards the fields below. Readers take RLock briefly to snapshot
	// (memtable, version) and then work lock-free on the snapshot.
	mu          sync.RWMutex
	mem         *memtable
	cur         *version
	wal         *walWriter
	walNum      uint64
	nextFileNum uint64
	manifest    *manifestWriter
	manifestNum uint64
	compactPtr  [numLevels][]byte
	closed      bool

	// failure, when non-nil, is the sticky fail-stop record: a write-path
	// error of unknowable durable effect happened and the DB refuses all
	// further writes (see ErrDBFailed). Set once via CAS; never cleared.
	failure atomic.Pointer[dbFailure]

	// cache is the shared data-block LRU (nil when disabled).
	cache *blockCache

	// stats
	flushes     int
	compactions int
	// WAL recovery counters, set once at Open: durable records replayed
	// and torn final records (partial appends from a crash) discarded.
	walRecovered int
	walTornTails int
}

var _ kv.Store = (*DB)(nil)

// Open opens (creating if necessary) a DB in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DB{dir: dir, opts: opts, mem: newMemtable(), cur: newVersion(), nextFileNum: 1,
		cache: newBlockCache(opts.BlockCacheBlocks)}

	manifestNum, haveCurrent, err := readCurrent(dir)
	if err != nil {
		return nil, err
	}
	var logNum uint64
	if haveCurrent {
		logNum, err = d.recoverManifest(manifestNum)
		if err != nil {
			return nil, err
		}
	}

	// Replay any WALs at or after logNum into the memtable, oldest first.
	wals, ssts, manifests, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	replayed := false
	for _, num := range wals {
		if num < logNum {
			continue
		}
		st, err := replayWAL(walPath(dir, num), func(ops []walOp) error {
			for _, op := range ops {
				d.mem.set(op.key, op.value, op.kind)
			}
			return nil
		})
		d.walRecovered += st.records
		if st.tornTail {
			d.walTornTails++
		}
		if err != nil {
			return nil, fmt.Errorf("lsm: replay wal %d: %w", num, err)
		}
		replayed = true
	}

	// Start a fresh manifest so old edits are compacted away.
	if err := d.rotateManifest(); err != nil {
		return nil, err
	}
	// Fresh WAL for new writes.
	if err := d.rotateWAL(); err != nil {
		return nil, err
	}
	// If recovery found WAL data, persist it as an SSTable now so the old
	// WALs can be removed and the state is clean.
	if replayed && d.mem.len() > 0 {
		if err := d.flushLocked(); err != nil {
			return nil, err
		}
	} else {
		// Record the current log number so recovery ignores older WALs.
		if err := d.manifest.append(&versionEdit{LogNum: d.walNum, NextFileNum: d.nextFileNum}); err != nil {
			return nil, err
		}
	}

	// Garbage-collect files that are not referenced by the live state.
	live := map[uint64]bool{}
	for _, level := range d.cur.levels {
		for _, f := range level {
			live[f.num] = true
		}
	}
	for _, num := range ssts {
		if !live[num] {
			os.Remove(sstPath(dir, num))
		}
	}
	for _, num := range wals {
		if num != d.walNum {
			os.Remove(walPath(dir, num))
		}
	}
	for _, num := range manifests {
		if num != d.manifestNum {
			os.Remove(manifestPath(dir, num))
		}
	}
	return d, nil
}

// recoverManifest rebuilds the version from the manifest and returns the
// recorded log number.
func (d *DB) recoverManifest(num uint64) (logNum uint64, err error) {
	type slot struct {
		ef editFile
	}
	files := map[uint64]slot{}
	levelOf := map[uint64]int{}
	err = readManifest(manifestPath(d.dir, num), func(e *versionEdit) error {
		if e.LogNum > logNum {
			logNum = e.LogNum
		}
		if e.NextFileNum > d.nextFileNum {
			d.nextFileNum = e.NextFileNum
		}
		for _, ref := range e.DelFiles {
			delete(files, ref.Num)
			delete(levelOf, ref.Num)
		}
		for _, ef := range e.AddFiles {
			files[ef.Num] = slot{ef}
			levelOf[ef.Num] = ef.Level
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("lsm: recover manifest: %w", err)
	}
	for fnum, s := range files {
		reader, err := openTable(sstPath(d.dir, fnum), fnum, d.cache)
		if err != nil {
			return 0, fmt.Errorf("lsm: recover table %d: %w", fnum, err)
		}
		fm := &fileMeta{
			num: fnum, size: s.ef.Size, count: s.ef.Count,
			smallest: s.ef.Smallest, largest: s.ef.Largest,
			reader: reader, dir: d.dir,
		}
		fm.ref()
		d.cur.levels[levelOf[fnum]] = append(d.cur.levels[levelOf[fnum]], fm)
	}
	for l := range d.cur.levels {
		d.cur.sortLevel(l)
	}
	return logNum, nil
}

// rotateManifest starts a new manifest containing a full snapshot of the
// current version and repoints CURRENT at it.
func (d *DB) rotateManifest() error {
	num := d.nextFileNum
	d.nextFileNum++
	mw, err := newManifestWriter(manifestPath(d.dir, num))
	if err != nil {
		return err
	}
	snapshot := &versionEdit{Comparator: "bytes", NextFileNum: d.nextFileNum}
	for l, level := range d.cur.levels {
		for _, f := range level {
			snapshot.AddFiles = append(snapshot.AddFiles, editFile{
				Level: l, Num: f.num, Size: f.size, Count: f.count,
				Smallest: f.smallest, Largest: f.largest,
			})
		}
	}
	if err := mw.append(snapshot); err != nil {
		mw.close()
		return err
	}
	if err := writeCurrent(d.dir, num); err != nil {
		mw.close()
		return err
	}
	if d.manifest != nil {
		d.manifest.close()
		os.Remove(manifestPath(d.dir, d.manifestNum))
	}
	d.manifest = mw
	d.manifestNum = num
	return nil
}

// rotateWAL closes the current WAL (if any) and opens a fresh one.
func (d *DB) rotateWAL() error {
	num := d.nextFileNum
	d.nextFileNum++
	w, err := newWALWriter(walPath(d.dir, num))
	if err != nil {
		return err
	}
	if d.wal != nil {
		d.wal.close()
	}
	d.wal = w
	d.walNum = num
	return nil
}

func (d *DB) checkOpen() error {
	if d.closed {
		return kv.ErrClosed
	}
	return nil
}

// Err reports the DB's sticky fail-stop state: nil while healthy,
// otherwise an error wrapping both ErrDBFailed and the original cause.
// Once non-nil it never clears; reads keep serving, writes are refused.
func (d *DB) Err() error {
	if f := d.failure.Load(); f != nil {
		return f.wrapped
	}
	return nil
}

// fail latches err as the DB's fail-stop cause (first error wins) and
// returns it unchanged, so the failing operation surfaces the real error
// while every later write gets the wrapped sticky one.
func (d *DB) fail(err error) error {
	d.failure.CompareAndSwap(nil, &dbFailure{
		cause:   err,
		wrapped: fmt.Errorf("%w: %w", ErrDBFailed, err),
	})
	return err
}

// checkWrite gates the write path: closed beats failed, failed beats
// everything else.
func (d *DB) checkWrite() error {
	d.mu.RLock()
	err := d.checkOpen()
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	return d.Err()
}

// Get implements kv.Store.
func (d *DB) Get(key []byte) ([]byte, bool, error) {
	d.mu.RLock()
	if err := d.checkOpen(); err != nil {
		d.mu.RUnlock()
		return nil, false, err
	}
	if v, kind, found := d.mem.get(key); found {
		// Copy out: the memtable buffer may be overwritten in place.
		var out []byte
		if kind == kindPut {
			out = append([]byte(nil), v...)
		}
		d.mu.RUnlock()
		if kind == kindDelete {
			return nil, false, nil
		}
		return out, true, nil
	}
	v := d.cur
	v.ref()
	d.mu.RUnlock()
	defer v.unref()
	value, kind, found, err := v.get(key)
	if err != nil || !found || kind == kindDelete {
		return nil, false, err
	}
	return value, true, nil
}

// Put implements kv.Store.
func (d *DB) Put(key, value []byte) error {
	b := kv.NewBatch(1)
	b.Put(key, value)
	return d.Apply(b, d.opts.SyncWrites)
}

// Delete implements kv.Store.
func (d *DB) Delete(key []byte) error {
	b := kv.NewBatch(1)
	b.Delete(key)
	return d.Apply(b, d.opts.SyncWrites)
}

// Apply implements kv.Store: one WAL record, then the memtable, then a
// flush + compaction round if the memtable is full. The batch is durable
// on return when sync is true.
func (d *DB) Apply(b *kv.Batch, sync bool) error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()

	if err := d.checkWrite(); err != nil {
		return err
	}

	ops := make([]walOp, 0, b.Len())
	for _, op := range b.Ops() {
		k := kindPut
		if op.Kind == kv.OpDelete {
			k = kindDelete
		}
		ops = append(ops, walOp{kind: k, key: op.Key, value: op.Value})
	}
	payload := encodeBatchPayload(nil, ops)
	if err := d.wal.append(payload, sync); err != nil {
		// Fail-stop: the WAL's durable contents are now unknown (the
		// writer's sticky error, see walWriter); no later write may
		// report success on top of it.
		return d.fail(err)
	}

	d.mu.Lock()
	for _, op := range ops {
		d.mem.set(op.key, op.value, op.kind)
	}
	full := d.mem.approximateBytes() >= d.opts.MemtableBytes
	d.mu.Unlock()

	if full {
		if err := d.flushLocked(); err != nil {
			return d.fail(err)
		}
		if !d.opts.DisableAutoCompaction {
			if err := d.maybeCompact(); err != nil {
				return d.fail(err)
			}
		}
	}
	return nil
}

// flushLocked writes the memtable to an L0 SSTable, rotates the WAL and
// installs the edit. Caller must hold writeMu (or be the only goroutine,
// as during Open).
func (d *DB) flushLocked() error {
	d.mu.Lock()
	mem := d.mem
	if mem.len() == 0 {
		d.mu.Unlock()
		return nil
	}
	num := d.nextFileNum
	d.nextFileNum++
	d.mu.Unlock()

	b, err := newTableBuilder(sstPath(d.dir, num), d.opts.BlockBytes)
	if err != nil {
		return err
	}
	it := mem.iterator()
	for it.seekToFirst(); it.valid(); it.next() {
		b.add(it.key(), it.value(), it.kind())
	}
	count, smallest, largest, size, err := b.finish()
	if err != nil {
		return err
	}
	reader, err := openTable(sstPath(d.dir, num), num, d.cache)
	if err != nil {
		return err
	}
	fm := &fileMeta{
		num: num, size: size, count: count,
		smallest: append([]byte(nil), smallest...),
		largest:  append([]byte(nil), largest...),
		reader:   reader, dir: d.dir,
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	oldWAL := d.walNum
	if err := d.rotateWAL(); err != nil {
		return err
	}
	edit := &versionEdit{
		LogNum: d.walNum,
		AddFiles: []editFile{{
			Level: 0, Num: num, Size: size, Count: count,
			Smallest: fm.smallest, Largest: fm.largest,
		}},
	}
	if err := d.applyEdit(edit, []*fileMeta{fm}); err != nil {
		return err
	}
	d.mem = newMemtable()
	d.flushes++
	os.Remove(walPath(d.dir, oldWAL))
	return nil
}

// maybeCompact runs compactions until the shape invariants hold.
func (d *DB) maybeCompact() error {
	for {
		d.mu.RLock()
		level := d.pickCompaction()
		d.mu.RUnlock()
		if level < 0 {
			return nil
		}
		if err := d.compact(level); err != nil {
			return err
		}
		d.mu.Lock()
		d.compactions++
		d.mu.Unlock()
	}
}

// Flush forces the memtable to disk; exposed for tests and tooling.
func (d *DB) Flush() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.checkWrite(); err != nil {
		return err
	}
	if err := d.flushLocked(); err != nil {
		return d.fail(err)
	}
	if !d.opts.DisableAutoCompaction {
		if err := d.maybeCompact(); err != nil {
			return d.fail(err)
		}
	}
	return nil
}

// Compact forces a full compaction: the memtable is flushed and every
// populated level is merged downward until all data lives in a single
// level, dropping every droppable tombstone. Exposed for tooling
// (lsmtool compact) and tests.
func (d *DB) Compact() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.checkWrite(); err != nil {
		return err
	}
	if err := d.flushLocked(); err != nil {
		return d.fail(err)
	}
	for level := 0; level < numLevels-1; level++ {
		for {
			d.mu.RLock()
			n := len(d.cur.levels[level])
			deeper := false
			for l := level + 1; l < numLevels; l++ {
				if len(d.cur.levels[l]) > 0 {
					deeper = true
				}
			}
			d.mu.RUnlock()
			// Stop when the level is empty, or it is the bottom-most
			// populated level (nothing to merge into).
			if n == 0 || (!deeper && level > 0) {
				break
			}
			if err := d.compact(level); err != nil {
				return d.fail(err)
			}
			d.mu.Lock()
			d.compactions++
			d.mu.Unlock()
		}
	}
	return nil
}

// Scan implements kv.Store. It merges the memtable with all table levels
// and yields live (non-tombstone) entries in ascending key order.
//
// The scan holds the database read lock for its whole duration, so fn must
// not call back into the DB. Transactional reads in this repository are
// served by the MVCC layer above, which maintains its own versioned view;
// base-table scans happen during recovery and tooling only.
func (d *DB) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkOpen(); err != nil {
		return err
	}
	var sources []*mergeSource
	age := 0
	sources = append(sources, &mergeSource{it: &memIterAdapter{it: d.mem.iterator()}, age: age})
	age++
	for _, f := range d.cur.levels[0] {
		sources = append(sources, &mergeSource{it: f.reader.iterator(), age: age})
		age++
	}
	for l := 1; l < numLevels; l++ {
		for _, f := range d.cur.levels[l] {
			sources = append(sources, &mergeSource{it: f.reader.iterator(), age: age})
		}
		age++
	}
	merge := newMergingIterator(sources, start)
	for merge.next() {
		if end != nil && kv.CompareKeys(merge.key(), end) >= 0 {
			break
		}
		if merge.kind() == kindDelete {
			continue
		}
		if !fn(merge.key(), merge.value()) {
			break
		}
	}
	return nil
}

// Sync implements kv.Store: it fsyncs the active WAL. A sync failure is
// fail-stop (see ErrDBFailed) — the kernel may drop dirty pages after
// reporting it, so retrying could silently lose acknowledged writes.
func (d *DB) Sync() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if err := d.checkWrite(); err != nil {
		return err
	}
	d.mu.RLock()
	w := d.wal
	d.mu.RUnlock()
	if err := w.sync(); err != nil {
		return d.fail(err)
	}
	return nil
}

// Close implements kv.Store. It does NOT flush the memtable: unflushed but
// WAL-durable writes are recovered on the next Open, which is exactly the
// crash-consistency path and keeps Close cheap.
func (d *DB) Close() error {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return kv.ErrClosed
	}
	d.closed = true
	d.wal.close()
	d.manifest.close()
	d.cur.unref()
	d.cur = newVersion() // keep pointer valid for stragglers
	return nil
}

// Stats reports operational counters for tooling and tests.
type Stats struct {
	Flushes     int
	Compactions int
	LevelFiles  [numLevels]int
	LevelBytes  [numLevels]uint64
	MemBytes    int
	MemKeys     int
	// BlockCacheHits / BlockCacheMisses count point-lookup block fetches
	// served from / missed by the shared block cache.
	BlockCacheHits   uint64
	BlockCacheMisses uint64
	// BlockCacheBlocks is the current number of cached blocks.
	BlockCacheBlocks int
	// WALRecordsRecovered counts the durable WAL records replayed into
	// the memtable by this Open; WALTornTails counts logs whose final
	// record was torn (a crash mid-append — the partial record was never
	// acknowledged durable and is discarded, which is the expected
	// crash-recovery shape, surfaced here so operators can tell it apart
	// from silence). Mid-file corruption is NOT a counter: it fails the
	// Open (see lsmtool wal-dump --skip-corrupt for salvage).
	WALRecordsRecovered int
	WALTornTails        int
}

// Stats returns a snapshot of internal counters.
func (d *DB) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := Stats{
		Flushes:             d.flushes,
		Compactions:         d.compactions,
		MemBytes:            d.mem.approximateBytes(),
		MemKeys:             d.mem.len(),
		WALRecordsRecovered: d.walRecovered,
		WALTornTails:        d.walTornTails,
	}
	s.BlockCacheHits, s.BlockCacheMisses = d.cache.stats()
	s.BlockCacheBlocks = d.cache.len()
	for l, level := range d.cur.levels {
		s.LevelFiles[l] = len(level)
		s.LevelBytes[l] = d.cur.levelBytes(l)
	}
	return s
}
