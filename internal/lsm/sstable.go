package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// SSTable file format (all integers little-endian):
//
//	data block 0        followed by 4-byte CRC-32C of the block
//	data block 1        followed by 4-byte CRC-32C of the block
//	...
//	filter block        serialized bloom filter over all user keys,
//	                    followed by 4-byte CRC-32C of the block
//	index block         one entry per data block:
//	                      varint len(firstKey), firstKey,
//	                      uvarint offset, uvarint length
//	footer (40 bytes):
//	      8  index offset
//	      4  index length
//	      8  filter offset
//	      4  filter length
//	      8  entry count
//	      4  CRC-32C of the index block
//	      4  magic (0x5354424C "STBL")
//
// Index entries record the offset and length of the block PAYLOAD; the
// trailing CRC is read alongside and verified on every block fetch, so a
// flipped bit in a data block surfaces as errCorrupt instead of a wrong
// answer. The footer carries the index's own CRC; the magic doubles as a
// truncation check.
//
// Each data block is a sequence of entries:
//
//	1 byte kind (kindPut / kindDelete)
//	varint key length, key
//	varint value length, value        (puts only)
//
// Entries are in ascending key order across the whole table with no
// duplicates. Tombstones are retained until compaction decides they can be
// dropped (see compaction.go).

const (
	sstMagic        = 0x5354424c
	footerSize      = 40
	defaultBlockLen = 4096
	// blockTrailerLen is the per-block CRC-32C trailer appended after every
	// data and filter block.
	blockTrailerLen = 4
)

// tableBuilder writes one SSTable to disk.
type tableBuilder struct {
	f        *os.File
	w        *bufio.Writer
	path     string
	offset   uint64
	blockLen int

	block      []byte // current data block under construction
	indexKeys  [][]byte
	indexOffs  []uint64
	indexLens  []uint32
	blockFirst []byte

	hashes   []uint32
	count    uint64
	smallest []byte
	largest  []byte
	err      error
}

func newTableBuilder(path string, blockLen int) (*tableBuilder, error) {
	if blockLen <= 0 {
		blockLen = defaultBlockLen
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: create sstable: %w", err)
	}
	return &tableBuilder{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path, blockLen: blockLen}, nil
}

// add appends an entry; keys must arrive in strictly ascending order.
func (b *tableBuilder) add(key []byte, value []byte, kind entryKind) {
	if b.err != nil {
		return
	}
	if b.largest != nil && bytes.Compare(key, b.largest) <= 0 {
		b.err = fmt.Errorf("lsm: sstable keys out of order: %q after %q", key, b.largest)
		return
	}
	if b.smallest == nil {
		b.smallest = append([]byte(nil), key...)
	}
	b.largest = append(b.largest[:0], key...)
	if len(b.block) == 0 {
		b.blockFirst = append(b.blockFirst[:0], key...)
	}
	b.block = append(b.block, byte(kind))
	b.block = binary.AppendUvarint(b.block, uint64(len(key)))
	b.block = append(b.block, key...)
	if kind == kindPut {
		b.block = binary.AppendUvarint(b.block, uint64(len(value)))
		b.block = append(b.block, value...)
	}
	b.hashes = append(b.hashes, bloomHash(key))
	b.count++
	if len(b.block) >= b.blockLen {
		b.flushBlock()
	}
}

func (b *tableBuilder) flushBlock() {
	if b.err != nil || len(b.block) == 0 {
		return
	}
	b.indexKeys = append(b.indexKeys, append([]byte(nil), b.blockFirst...))
	b.indexOffs = append(b.indexOffs, b.offset)
	b.indexLens = append(b.indexLens, uint32(len(b.block)))
	if err := b.writeChecksummed(b.block); err != nil {
		b.err = err
		return
	}
	b.block = b.block[:0]
}

// writeChecksummed writes block followed by its CRC-32C trailer and
// advances the offset past both.
func (b *tableBuilder) writeChecksummed(block []byte) error {
	if _, err := b.w.Write(block); err != nil {
		return err
	}
	var crc [blockTrailerLen]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(block, crcTable))
	if _, err := b.w.Write(crc[:]); err != nil {
		return err
	}
	b.offset += uint64(len(block)) + blockTrailerLen
	return nil
}

// finish flushes remaining data, writes filter, index and footer, and
// syncs the file. It returns table metadata on success.
func (b *tableBuilder) finish() (count uint64, smallest, largest []byte, size uint64, err error) {
	b.flushBlock()
	if b.err != nil {
		b.abandon()
		return 0, nil, nil, 0, b.err
	}
	// Filter block (checksummed like data blocks: a corrupt filter would
	// silently turn present keys into bloom misses — data loss, not just a
	// slow path).
	filter := buildBloom(b.hashes, bloomBitsPerKey).marshal()
	filterOff := b.offset
	if err := b.writeChecksummed(filter); err != nil {
		b.abandon()
		return 0, nil, nil, 0, err
	}
	// Index block.
	var index []byte
	for i := range b.indexKeys {
		index = binary.AppendUvarint(index, uint64(len(b.indexKeys[i])))
		index = append(index, b.indexKeys[i]...)
		index = binary.AppendUvarint(index, b.indexOffs[i])
		index = binary.AppendUvarint(index, uint64(b.indexLens[i]))
	}
	indexOff := b.offset
	if _, err := b.w.Write(index); err != nil {
		b.abandon()
		return 0, nil, nil, 0, err
	}
	b.offset += uint64(len(index))
	// Footer.
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], indexOff)
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(index)))
	binary.LittleEndian.PutUint64(footer[12:20], filterOff)
	binary.LittleEndian.PutUint32(footer[20:24], uint32(len(filter)))
	binary.LittleEndian.PutUint64(footer[24:32], b.count)
	binary.LittleEndian.PutUint32(footer[32:36], crc32.Checksum(index, crcTable))
	binary.LittleEndian.PutUint32(footer[36:40], sstMagic)
	if _, err := b.w.Write(footer[:]); err != nil {
		b.abandon()
		return 0, nil, nil, 0, err
	}
	b.offset += footerSize
	if err := b.w.Flush(); err != nil {
		b.abandon()
		return 0, nil, nil, 0, err
	}
	if err := b.f.Sync(); err != nil {
		b.abandon()
		return 0, nil, nil, 0, err
	}
	if err := b.f.Close(); err != nil {
		return 0, nil, nil, 0, err
	}
	return b.count, b.smallest, b.largest, b.offset, nil
}

func (b *tableBuilder) abandon() {
	if b.f != nil {
		b.f.Close()
		os.Remove(b.path)
		b.f = nil
	}
}

// tableReader serves point lookups and ordered iteration over one SSTable.
// The index and bloom filter are held in memory; data blocks are read with
// pread so a reader is safe for concurrent use. Point lookups go through
// the DB's shared block cache (when one is configured); iteration reads
// blocks directly to keep streaming scans from evicting hot blocks.
type tableReader struct {
	f      *os.File
	num    uint64
	cache  *blockCache
	filter bloomFilter

	indexKeys [][]byte
	indexOffs []uint64
	indexLens []uint32
	count     uint64
}

func openTable(path string, num uint64, cache *blockCache) (*tableReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: open sstable: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, fmt.Errorf("%w: %s too small", errCorrupt, path)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[36:40]) != sstMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s bad magic", errCorrupt, path)
	}
	indexOff := binary.LittleEndian.Uint64(footer[0:8])
	indexLen := binary.LittleEndian.Uint32(footer[8:12])
	filterOff := binary.LittleEndian.Uint64(footer[12:20])
	filterLen := binary.LittleEndian.Uint32(footer[20:24])
	count := binary.LittleEndian.Uint64(footer[24:32])
	indexCRC := binary.LittleEndian.Uint32(footer[32:36])

	index := make([]byte, indexLen)
	if _, err := f.ReadAt(index, int64(indexOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.Checksum(index, crcTable) != indexCRC {
		f.Close()
		return nil, fmt.Errorf("%w: %s index checksum", errCorrupt, path)
	}
	filterBuf := make([]byte, filterLen+blockTrailerLen)
	if _, err := f.ReadAt(filterBuf, int64(filterOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.Checksum(filterBuf[:filterLen], crcTable) != binary.LittleEndian.Uint32(filterBuf[filterLen:]) {
		f.Close()
		return nil, fmt.Errorf("%w: %s filter checksum", errCorrupt, path)
	}
	filterBuf = filterBuf[:filterLen]
	r := &tableReader{f: f, num: num, cache: cache, filter: unmarshalBloom(filterBuf), count: count}
	for len(index) > 0 {
		klen, n := binary.Uvarint(index)
		if n <= 0 || uint64(len(index)-n) < klen {
			f.Close()
			return nil, fmt.Errorf("%w: %s index entry", errCorrupt, path)
		}
		key := index[n : n+int(klen)]
		index = index[n+int(klen):]
		off, n := binary.Uvarint(index)
		if n <= 0 {
			f.Close()
			return nil, fmt.Errorf("%w: %s index offset", errCorrupt, path)
		}
		index = index[n:]
		blen, n := binary.Uvarint(index)
		if n <= 0 {
			f.Close()
			return nil, fmt.Errorf("%w: %s index length", errCorrupt, path)
		}
		index = index[n:]
		r.indexKeys = append(r.indexKeys, key)
		r.indexOffs = append(r.indexOffs, off)
		r.indexLens = append(r.indexLens, uint32(blen))
	}
	return r, nil
}

func (r *tableReader) close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// blockFor returns the index of the data block that could contain key, or
// -1 when the key precedes the table.
func (r *tableReader) blockFor(key []byte) int {
	// Last block whose first key <= key.
	i := sort.Search(len(r.indexKeys), func(i int) bool {
		return bytes.Compare(r.indexKeys[i], key) > 0
	})
	return i - 1
}

// readBlock fetches one data block and verifies its CRC trailer, so disk
// bit rot surfaces as errCorrupt instead of a silently wrong block.
func (r *tableReader) readBlock(i int) ([]byte, error) {
	n := r.indexLens[i]
	buf := make([]byte, n+blockTrailerLen)
	if _, err := r.f.ReadAt(buf, int64(r.indexOffs[i])); err != nil {
		return nil, err
	}
	if crc32.Checksum(buf[:n], crcTable) != binary.LittleEndian.Uint32(buf[n:]) {
		return nil, fmt.Errorf("%w: sstable %06d block %d checksum", errCorrupt, r.num, i)
	}
	return buf[:n:n], nil
}

// readBlockCached serves a data block through the DB's block cache.
// Cached blocks are immutable and shared between concurrent readers:
// values returned by get() alias them, which is covered by the kv.Store
// contract that values handed out by Get must not be modified — a caller
// violating it would now corrupt the block for later readers instead of
// only its own private copy.
func (r *tableReader) readBlockCached(i int) ([]byte, error) {
	k := blockKey{file: r.num, block: i}
	if b, ok := r.cache.get(k); ok {
		return b, nil
	}
	b, err := r.readBlock(i)
	if err == nil {
		r.cache.put(k, b)
	}
	return b, err
}

// get performs a point lookup. found=false means this table has no entry
// for the key (the search must continue in older tables); found=true with
// kind==kindDelete means the key is authoritatively deleted.
func (r *tableReader) get(key []byte) (value []byte, kind entryKind, found bool, err error) {
	if !r.filter.mayContain(bloomHash(key)) {
		return nil, 0, false, nil
	}
	bi := r.blockFor(key)
	if bi < 0 {
		return nil, 0, false, nil
	}
	block, err := r.readBlockCached(bi)
	if err != nil {
		return nil, 0, false, err
	}
	it := blockIterator{data: block}
	for it.next() {
		c := bytes.Compare(it.curKey, key)
		if c == 0 {
			return it.curVal, it.curKind, true, nil
		}
		if c > 0 {
			break
		}
	}
	if it.err != nil {
		return nil, 0, false, it.err
	}
	return nil, 0, false, nil
}

// blockIterator decodes entries sequentially from one data block.
type blockIterator struct {
	data    []byte
	curKey  []byte
	curVal  []byte
	curKind entryKind
	err     error
}

// next decodes the next entry, returning false at the end or on error.
func (it *blockIterator) next() bool {
	if len(it.data) == 0 || it.err != nil {
		return false
	}
	kind := entryKind(it.data[0])
	it.data = it.data[1:]
	if kind != kindPut && kind != kindDelete {
		it.err = errCorrupt
		return false
	}
	klen, n := binary.Uvarint(it.data)
	if n <= 0 || uint64(len(it.data)-n) < klen {
		it.err = errCorrupt
		return false
	}
	it.curKey = it.data[n : n+int(klen)]
	it.data = it.data[n+int(klen):]
	if kind == kindPut {
		vlen, n := binary.Uvarint(it.data)
		if n <= 0 || uint64(len(it.data)-n) < vlen {
			it.err = errCorrupt
			return false
		}
		it.curVal = it.data[n : n+int(vlen)]
		it.data = it.data[n+int(vlen):]
	} else {
		it.curVal = nil
	}
	it.curKind = kind
	return true
}

// tableIterator iterates a whole SSTable in key order.
type tableIterator struct {
	r        *tableReader
	blockIdx int
	blk      blockIterator
	pending  *pendingEntry // one buffered entry produced by seek
	cur      pendingEntry
	err      error
	exhaust  bool
}

func (r *tableReader) iterator() *tableIterator {
	return &tableIterator{r: r, blockIdx: -1, exhaust: len(r.indexKeys) == 0}
}

// seekToFirst positions before the first entry; call next to advance.
func (it *tableIterator) seekToFirst() {
	it.blockIdx = -1
	it.blk = blockIterator{}
	it.exhaust = len(it.r.indexKeys) == 0
}

// seek positions so that the next call to next() yields the first entry
// with key >= k.
func (it *tableIterator) seek(k []byte) {
	it.exhaust = false
	it.pending = nil
	bi := it.r.blockFor(k)
	if bi < 0 {
		bi = 0
	}
	if bi >= len(it.r.indexKeys) {
		it.exhaust = true
		return
	}
	block, err := it.r.readBlock(bi)
	if err != nil {
		it.err = err
		return
	}
	it.blockIdx = bi
	it.blk = blockIterator{data: block}
	// Skip entries < k by buffering one look-ahead entry.
	it.pending = nil
	for it.blk.next() {
		if bytes.Compare(it.blk.curKey, k) >= 0 {
			it.pending = &pendingEntry{
				key:  append([]byte(nil), it.blk.curKey...),
				val:  append([]byte(nil), it.blk.curVal...),
				kind: it.blk.curKind,
			}
			return
		}
	}
	if it.blk.err != nil {
		it.err = it.blk.err
	}
	// Entire block < k; continue from the next block on next().
}

type pendingEntry struct {
	key, val []byte
	kind     entryKind
}

// next advances and reports whether an entry is available via key/value.
func (it *tableIterator) next() bool {
	if it.err != nil || it.exhaust {
		return false
	}
	if it.pending != nil {
		it.cur = *it.pending
		it.pending = nil
		return true
	}
	for {
		if it.blk.next() {
			it.cur = pendingEntry{key: it.blk.curKey, val: it.blk.curVal, kind: it.blk.curKind}
			return true
		}
		if it.blk.err != nil {
			it.err = it.blk.err
			return false
		}
		it.blockIdx++
		if it.blockIdx >= len(it.r.indexKeys) {
			it.exhaust = true
			return false
		}
		block, err := it.r.readBlock(it.blockIdx)
		if err != nil {
			it.err = err
			return false
		}
		it.blk = blockIterator{data: block}
	}
}

func (it *tableIterator) key() []byte     { return it.cur.key }
func (it *tableIterator) value() []byte   { return it.cur.val }
func (it *tableIterator) kind() entryKind { return it.cur.kind }
