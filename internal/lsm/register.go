package lsm

import (
	"fmt"

	"sistream/internal/kv"
)

// Capabilities: the LSM store is the repository's durable backend — a
// WAL + leveled SSTables rooted in a data directory, with Apply(sync)
// and Sync as real fsync points.
func (db *DB) Capabilities() kv.Capabilities {
	return kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}
}

// The LSM store self-registers as the "lsm" backend driver: specs are
// "lsm:<dir>", or a bare "lsm" rooted at OpenOptions.Dir. Importing
// this package (directly or transitively) is what makes lsm specs
// resolvable through kv.Open.
func init() {
	kv.Register("lsm", kv.Driver{
		Open: func(arg string, opt kv.OpenOptions, _ kv.Store) (kv.Store, error) {
			dir := arg
			if dir == "" {
				dir = opt.Dir
			}
			if dir == "" {
				return nil, fmt.Errorf("lsm driver needs a data directory (spec \"lsm:<dir>\" or OpenOptions.Dir)")
			}
			return Open(dir, Options{})
		},
		Caps: func(kv.Capabilities) kv.Capabilities {
			return kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}
		},
	})
}
