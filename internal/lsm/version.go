package lsm

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// numLevels is the depth of the LSM tree. Level 0 holds freshly flushed,
// possibly overlapping tables (newest first); levels 1+ hold disjoint key
// ranges sorted by smallest key.
const numLevels = 7

// fileMeta describes one SSTable on disk. Instances are shared between
// versions and reference-counted: when the last version referencing an
// obsolete file releases it, the reader is closed and the file removed.
type fileMeta struct {
	num      uint64
	size     uint64
	count    uint64
	smallest []byte
	largest  []byte

	refs     atomic.Int32
	obsolete atomic.Bool
	reader   *tableReader
	dir      string
}

func (f *fileMeta) path() string {
	return sstPath(f.dir, f.num)
}

func (f *fileMeta) ref() { f.refs.Add(1) }

func (f *fileMeta) unref() {
	if n := f.refs.Add(-1); n == 0 && f.obsolete.Load() {
		if f.reader != nil {
			f.reader.close()
			f.reader = nil
		}
		os.Remove(f.path())
	} else if n < 0 {
		panic(fmt.Sprintf("lsm: fileMeta %d refcount underflow", f.num))
	}
}

// overlaps reports whether the file's key range intersects [start, end];
// nil bounds mean unbounded.
func (f *fileMeta) overlaps(start, end []byte) bool {
	if start != nil && bytes.Compare(f.largest, start) < 0 {
		return false
	}
	if end != nil && bytes.Compare(f.smallest, end) > 0 {
		return false
	}
	return true
}

// version is an immutable snapshot of the table layout. Readers hold a
// reference for the duration of an operation so compaction can retire
// files without synchronizing with in-flight reads.
type version struct {
	levels [numLevels][]*fileMeta
	refs   atomic.Int32
}

func newVersion() *version {
	v := &version{}
	v.refs.Store(1)
	return v
}

func (v *version) ref() { v.refs.Add(1) }

func (v *version) unref() {
	if n := v.refs.Add(-1); n == 0 {
		for _, level := range v.levels {
			for _, f := range level {
				f.unref()
			}
		}
	} else if n < 0 {
		panic("lsm: version refcount underflow")
	}
}

// clone produces a mutable copy whose files are re-referenced.
func (v *version) clone() *version {
	nv := newVersion()
	for l := range v.levels {
		nv.levels[l] = append([]*fileMeta(nil), v.levels[l]...)
		for _, f := range nv.levels[l] {
			f.ref()
		}
	}
	return nv
}

// sortLevel restores the level invariant: L0 newest-file-first, deeper
// levels ascending by smallest key.
func (v *version) sortLevel(l int) {
	if l == 0 {
		sort.Slice(v.levels[0], func(i, j int) bool {
			return v.levels[0][i].num > v.levels[0][j].num
		})
		return
	}
	sort.Slice(v.levels[l], func(i, j int) bool {
		return bytes.Compare(v.levels[l][i].smallest, v.levels[l][j].smallest) < 0
	})
}

// get looks key up through the levels, newest data first.
func (v *version) get(key []byte) (value []byte, kind entryKind, found bool, err error) {
	// L0: files may overlap; probe newest-first.
	for _, f := range v.levels[0] {
		if !f.overlaps(key, key) {
			continue
		}
		value, kind, found, err = f.reader.get(key)
		if err != nil || found {
			return value, kind, found, err
		}
	}
	// Deeper levels: at most one candidate file per level.
	for l := 1; l < numLevels; l++ {
		files := v.levels[l]
		i := sort.Search(len(files), func(i int) bool {
			return bytes.Compare(files[i].largest, key) >= 0
		})
		if i >= len(files) || bytes.Compare(files[i].smallest, key) > 0 {
			continue
		}
		value, kind, found, err = files[i].reader.get(key)
		if err != nil || found {
			return value, kind, found, err
		}
	}
	return nil, 0, false, nil
}

// levelBytes returns the total size of tables in level l.
func (v *version) levelBytes(l int) uint64 {
	var n uint64
	for _, f := range v.levels[l] {
		n += f.size
	}
	return n
}

// overlapping returns the files in level l intersecting [start, end].
func (v *version) overlapping(l int, start, end []byte) []*fileMeta {
	var out []*fileMeta
	for _, f := range v.levels[l] {
		if f.overlaps(start, end) {
			out = append(out, f)
		}
	}
	return out
}
