package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeTestWAL appends n single-put records ("k<i>" -> "v<i>") and
// returns the log path plus each record's start offset.
func writeTestWAL(t *testing.T, n int) (path string, offsets []int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "test.wal")
	w, err := newWALWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	for i := 0; i < n; i++ {
		payload := encodeBatchPayload(nil, []walOp{{
			kind:  kindPut,
			key:   []byte(fmt.Sprintf("k%d", i)),
			value: []byte(fmt.Sprintf("v%d", i)),
		}})
		offsets = append(offsets, off)
		if err := w.append(payload, false); err != nil {
			t.Fatal(err)
		}
		off += 8 + int64(len(payload))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return path, offsets
}

// replayKeys replays the log and returns the keys applied, in order.
func replayKeys(path string) ([]string, error) {
	var keys []string
	err := replayWAL(path, func(ops []walOp) error {
		for _, op := range ops {
			keys = append(keys, string(op.key))
		}
		return nil
	})
	return keys, err
}

// flipByte corrupts one byte of the file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestReplayWALInteriorCorruption is the regression for the
// torn-tail/mid-file conflation: a corrupt record with valid,
// acknowledged-durable records AFTER it must surface errCorrupt — not be
// silently treated as a torn tail, which would drop the later records.
func TestReplayWALInteriorCorruption(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	// Flip a payload byte of the MIDDLE record (offset + 8-byte header).
	flipByte(t, path, offsets[1]+8)
	_, err := replayKeys(path)
	if err == nil {
		t.Fatal("interior corruption replayed as a torn tail (durable records dropped silently)")
	}
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("want errCorrupt, got %v", err)
	}
}

// TestReplayWALInteriorBadLength: a corrupted mid-file length field
// (plausible but wrong, so framing shifts and the CRC fails) with real
// records following is corruption, not a torn tail. An IMPLAUSIBLE
// (>1 GiB) length always declares an extent past EOF and is physically
// indistinguishable from a torn header, so only the tail case below
// applies to it.
func TestReplayWALInteriorBadLength(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], offsets[1]); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	binary.LittleEndian.PutUint32(hdr[:], n-1) // shift the framing by one
	if _, err := f.WriteAt(hdr[:], offsets[1]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = replayKeys(path)
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("want errCorrupt for corrupted mid-file length, got %v", err)
	}
}

// TestReplayWALTornTail: a corrupt FINAL record is the torn-tail case the
// log must tolerate — it was never acknowledged durable. Everything
// before it replays.
func TestReplayWALTornTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	flipByte(t, path, offsets[2]+8) // corrupt the last record's payload
	keys, err := replayKeys(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if len(keys) != 2 || keys[0] != "k0" || keys[1] != "k1" {
		t.Fatalf("replayed %v, want [k0 k1]", keys)
	}
}

// TestReplayWALTruncatedTail: a record physically cut short by a crash
// replays cleanly up to it.
func TestReplayWALTruncatedTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	if err := os.Truncate(path, offsets[2]+5); err != nil { // mid-header
		t.Fatal(err)
	}
	keys, err := replayKeys(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if len(keys) != 2 {
		t.Fatalf("replayed %v, want [k0 k1]", keys)
	}
}
