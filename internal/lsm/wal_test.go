package lsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeTestWAL appends n single-put records ("k<i>" -> "v<i>") and
// returns the log path plus each record's start offset.
func writeTestWAL(t *testing.T, n int) (path string, offsets []int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "test.wal")
	w, err := newWALWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	for i := 0; i < n; i++ {
		payload := encodeBatchPayload(nil, []walOp{{
			kind:  kindPut,
			key:   []byte(fmt.Sprintf("k%d", i)),
			value: []byte(fmt.Sprintf("v%d", i)),
		}})
		offsets = append(offsets, off)
		if err := w.append(payload, false); err != nil {
			t.Fatal(err)
		}
		off += 8 + int64(len(payload))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return path, offsets
}

// replayKeys replays the log and returns the keys applied, in order.
func replayKeys(path string) ([]string, error) {
	var keys []string
	_, err := replayWAL(path, func(ops []walOp) error {
		for _, op := range ops {
			keys = append(keys, string(op.key))
		}
		return nil
	})
	return keys, err
}

// flipByte corrupts one byte of the file in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestReplayWALInteriorCorruption is the regression for the
// torn-tail/mid-file conflation: a corrupt record with valid,
// acknowledged-durable records AFTER it must surface errCorrupt — not be
// silently treated as a torn tail, which would drop the later records.
func TestReplayWALInteriorCorruption(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	// Flip a payload byte of the MIDDLE record (offset + 8-byte header).
	flipByte(t, path, offsets[1]+8)
	_, err := replayKeys(path)
	if err == nil {
		t.Fatal("interior corruption replayed as a torn tail (durable records dropped silently)")
	}
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("want errCorrupt, got %v", err)
	}
}

// TestReplayWALInteriorBadLength: a corrupted mid-file length field
// (plausible but wrong, so framing shifts and the CRC fails) with real
// records following is corruption, not a torn tail. An IMPLAUSIBLE
// (>1 GiB) length always declares an extent past EOF and is physically
// indistinguishable from a torn header, so only the tail case below
// applies to it.
func TestReplayWALInteriorBadLength(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], offsets[1]); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	binary.LittleEndian.PutUint32(hdr[:], n-1) // shift the framing by one
	if _, err := f.WriteAt(hdr[:], offsets[1]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = replayKeys(path)
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("want errCorrupt for corrupted mid-file length, got %v", err)
	}
}

// TestReplayWALTornTail: a corrupt FINAL record is the torn-tail case the
// log must tolerate — it was never acknowledged durable. Everything
// before it replays.
func TestReplayWALTornTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	flipByte(t, path, offsets[2]+8) // corrupt the last record's payload
	keys, err := replayKeys(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if len(keys) != 2 || keys[0] != "k0" || keys[1] != "k1" {
		t.Fatalf("replayed %v, want [k0 k1]", keys)
	}
}

// TestReplayWALTruncatedTail: a record physically cut short by a crash
// replays cleanly up to it.
func TestReplayWALTruncatedTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	if err := os.Truncate(path, offsets[2]+5); err != nil { // mid-header
		t.Fatal(err)
	}
	keys, err := replayKeys(path)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if len(keys) != 2 {
		t.Fatalf("replayed %v, want [k0 k1]", keys)
	}
}

// dumpKeys runs DumpWAL and flattens the decoded keys.
func dumpKeys(t *testing.T, path string, skipCorrupt bool) ([]string, WALDumpStats) {
	t.Helper()
	var keys []string
	stats, err := DumpWAL(path, skipCorrupt, func(_ int64, ops []WALEntry) bool {
		for _, op := range ops {
			keys = append(keys, string(op.Key))
		}
		return true
	})
	if err != nil {
		t.Fatalf("DumpWAL(skipCorrupt=%t): %v", skipCorrupt, err)
	}
	return keys, stats
}

// TestDumpWALClean: a well-formed log dumps completely with zeroed
// corruption counters.
func TestDumpWALClean(t *testing.T) {
	path, _ := writeTestWAL(t, 3)
	keys, stats := dumpKeys(t, path, false)
	if fmt.Sprint(keys) != "[k0 k1 k2]" {
		t.Fatalf("dumped %v, want [k0 k1 k2]", keys)
	}
	if stats.Records != 3 || stats.Ops != 3 || stats.CorruptRecords != 0 || stats.TornTail {
		t.Fatalf("stats = %+v, want 3 clean records", stats)
	}
}

// TestDumpWALStrictMirrorsRecovery: without -skip-corrupt the dump stops
// at mid-file corruption with errCorrupt, exactly like replayWAL.
func TestDumpWALStrictMirrorsRecovery(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	flipByte(t, path, offsets[1]+8)
	_, err := DumpWAL(path, false, nil)
	if !errors.Is(err, errCorrupt) {
		t.Fatalf("want errCorrupt, got %v", err)
	}
}

// TestDumpWALSalvageInterior is the salvage contract: with skipCorrupt a
// mid-file corrupt record is skipped, the dump resynchronizes on the
// next valid record, and everything durable around the corruption is
// recovered — the records recovery itself refuses to silently drop.
func TestDumpWALSalvageInterior(t *testing.T) {
	path, offsets := writeTestWAL(t, 5)
	flipByte(t, path, offsets[1]+8) // payload corruption
	flipByte(t, path, offsets[3]+2) // length-field corruption (framing lost)
	keys, stats := dumpKeys(t, path, true)
	if fmt.Sprint(keys) != "[k0 k2 k4]" {
		t.Fatalf("salvaged %v, want [k0 k2 k4]", keys)
	}
	if stats.CorruptRecords != 2 || stats.Records != 3 || stats.SkippedBytes == 0 {
		t.Fatalf("stats = %+v, want 2 corrupt spots and 3 salvaged records", stats)
	}
	if stats.TornTail {
		t.Fatalf("interior corruption misclassified as torn tail: %+v", stats)
	}
}

// TestDumpWALSalvageTornTail: a torn final record is reported as such,
// not counted as corruption, in both modes.
func TestDumpWALSalvageTornTail(t *testing.T) {
	path, offsets := writeTestWAL(t, 3)
	if err := os.Truncate(path, offsets[2]+3); err != nil {
		t.Fatal(err)
	}
	for _, skip := range []bool{false, true} {
		keys, stats := dumpKeys(t, path, skip)
		if fmt.Sprint(keys) != "[k0 k1]" {
			t.Fatalf("skip=%t: dumped %v, want [k0 k1]", skip, keys)
		}
		if !stats.TornTail || stats.CorruptRecords != 0 {
			t.Fatalf("skip=%t: stats = %+v, want torn tail and no corrupt records", skip, stats)
		}
	}
}

// TestDumpWALImplausibleTornHeader: a garbage final header whose length
// field is implausible (>1 GiB) declares an extent past EOF and must be
// treated as a torn tail by BOTH recovery and the strict dump — a strict
// wal-dump exiting nonzero on a log Open accepts would be a false
// corruption report.
func TestDumpWALImplausibleTornHeader(t *testing.T) {
	path, _ := writeTestWAL(t, 2)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := [8]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef}
	if _, err := f.Write(garbage[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	keys, err := replayKeys(path)
	if err != nil || fmt.Sprint(keys) != "[k0 k1]" {
		t.Fatalf("recovery: keys=%v err=%v, want [k0 k1] and nil", keys, err)
	}
	for _, skip := range []bool{false, true} {
		keys, stats := dumpKeys(t, path, skip)
		if fmt.Sprint(keys) != "[k0 k1]" {
			t.Fatalf("skip=%t: dumped %v, want [k0 k1]", skip, keys)
		}
		if !stats.TornTail || stats.CorruptRecords != 0 {
			t.Fatalf("skip=%t: stats=%+v, want torn tail, no corruption", skip, stats)
		}
	}
}

// TestOpenSurfacesWALRecoveryCounters: DB.Stats must report the records
// replayed at Open and the torn tail a crash mid-append leaves behind.
func TestOpenSurfacesWALRecoveryCounters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record of the live WAL.
	wals, err := WALFiles(dir)
	if err != nil || len(wals) == 0 {
		t.Fatalf("wal files: %v (%d)", err, len(wals))
	}
	last := wals[len(wals)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st := db.Stats()
	if st.WALRecordsRecovered != 3 || st.WALTornTails != 1 {
		t.Fatalf("stats = recovered %d / torn %d, want 3 / 1", st.WALRecordsRecovered, st.WALTornTails)
	}
	// The three acknowledged records survived; the torn one is gone.
	for i := 0; i < 3; i++ {
		if _, ok, err := db.Get([]byte(fmt.Sprintf("k%d", i))); err != nil || !ok {
			t.Fatalf("k%d lost after torn-tail recovery (ok=%t err=%v)", i, ok, err)
		}
	}
	if _, ok, _ := db.Get([]byte("k3")); ok {
		t.Fatal("torn (unacknowledged) record resurrected")
	}
}
