package lsm

import (
	"fmt"
	"testing"
)

// TestBlockCacheHitsOnRepeatedGets verifies the point-lookup path fills
// the shared block cache: the first read of a flushed key misses, repeats
// hit, and the counters surface through DB.Stats.
func TestBlockCacheHitsOnRepeatedGets(t *testing.T) {
	db, err := Open(t.TempDir(), Options{BlockBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 64; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := db.Get([]byte("key-007")); err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	st := db.Stats()
	if st.BlockCacheMisses == 0 {
		t.Fatalf("first lookup should miss the cache: %+v", st)
	}
	if st.BlockCacheBlocks == 0 {
		t.Fatal("miss did not populate the cache")
	}
	misses := st.BlockCacheMisses

	for i := 0; i < 10; i++ {
		if _, ok, err := db.Get([]byte("key-007")); err != nil || !ok {
			t.Fatalf("get: %v %v", ok, err)
		}
	}
	st = db.Stats()
	if st.BlockCacheHits < 10 {
		t.Fatalf("repeated lookups should hit the cache: %+v", st)
	}
	if st.BlockCacheMisses != misses {
		t.Fatalf("repeated lookups should not miss again: %+v", st)
	}
}

// TestBlockCacheEviction bounds the cache at its configured capacity.
func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(2)
	c.put(blockKey{1, 0}, []byte("a"))
	c.put(blockKey{1, 1}, []byte("b"))
	if _, ok := c.get(blockKey{1, 0}); !ok {
		t.Fatal("resident block evicted early")
	}
	// Insert a third block: LRU (1,1) must fall out, (1,0) was just used.
	c.put(blockKey{1, 2}, []byte("c"))
	if c.len() != 2 {
		t.Fatalf("cache over capacity: %d", c.len())
	}
	if _, ok := c.get(blockKey{1, 1}); ok {
		t.Fatal("LRU block survived eviction")
	}
	if _, ok := c.get(blockKey{1, 0}); !ok {
		t.Fatal("recently used block evicted")
	}
}

// TestBlockCacheDisabled: negative capacity turns caching off without
// breaking reads.
func TestBlockCacheDisabled(t *testing.T) {
	db, err := Open(t.TempDir(), Options{BlockCacheBlocks: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := db.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("get without cache: %v %v", ok, err)
	}
	st := db.Stats()
	if st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 || st.BlockCacheBlocks != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}
