package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"sistream/internal/kv"
)

func testDB(t *testing.T, opts Options) *DB {
	t.Helper()
	d, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// smallOpts force frequent flushes and compactions so tests exercise the
// whole write path with little data.
func smallOpts() Options {
	return Options{
		MemtableBytes:       4 << 10,
		BlockBytes:          512,
		L0CompactionTrigger: 2,
		BaseLevelBytes:      16 << 10,
		LevelMultiplier:     4,
		MaxOutputBytes:      8 << 10,
	}
}

func TestBasicCRUD(t *testing.T) {
	d := testDB(t, Options{})
	if _, ok, err := d.Get([]byte("a")); err != nil || ok {
		t.Fatalf("empty get: %v %v", ok, err)
	}
	if err := d.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := d.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := d.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite: %q", v)
	}
	if err := d.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Get([]byte("a")); ok {
		t.Fatal("delete did not take")
	}
}

func TestGetAfterFlush(t *testing.T) {
	d := testDB(t, smallOpts())
	for i := 0; i < 500; i++ {
		if err := d.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Flushes == 0 {
		t.Fatal("expected at least one flush")
	}
	for i := 0; i < 500; i++ {
		v, ok, err := d.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d after flush: %q %v %v", i, v, ok, err)
		}
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	d := testDB(t, smallOpts())
	if err := d.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	// Tombstone in memtable must shadow the SSTable value.
	if _, ok, _ := d.Get([]byte("k")); ok {
		t.Fatal("tombstone did not shadow table value")
	}
	if err := d.Flush(); err != nil { // tombstone flushed to its own table
		t.Fatal(err)
	}
	if _, ok, _ := d.Get([]byte("k")); ok {
		t.Fatal("tombstone in L0 did not shadow older table")
	}
}

func TestReopenRecoversWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch(2)
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	if err := d.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close, no flush. The WAL holds the data.
	d.wal.f.Close() // release the handle so reopen's cleanup can proceed on all platforms

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, kvp := range [][2]string{{"x", "1"}, {"y", "2"}} {
		v, ok, err := d2.Get([]byte(kvp[0]))
		if err != nil || !ok || string(v) != kvp[1] {
			t.Fatalf("recovered %s: %q %v %v", kvp[0], v, ok, err)
		}
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("post-flush"), []byte("wal-only")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	n, err := kv.Len(d2)
	if err != nil || n != 101 {
		t.Fatalf("after reopen: %d keys, %v", n, err)
	}
	if v, ok, _ := d2.Get([]byte("post-flush")); !ok || string(v) != "wal-only" {
		t.Fatalf("wal-only key lost: %q %v", v, ok)
	}
}

func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	walFile := walPath(dir, d.walNum)
	d.wal.f.Sync()
	d.wal.f.Close()

	// Truncate mid-record to simulate a crash during the last append.
	st, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// First 9 records must be intact; the torn 10th is discarded.
	for i := 0; i < 9; i++ {
		if _, ok, _ := d2.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("durable record k%d lost", i)
		}
	}
	if _, ok, _ := d2.Get([]byte("k9")); ok {
		t.Fatal("torn record resurrected")
	}
}

func TestCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	walFile := walPath(dir, d.walNum)
	d.wal.f.Sync()
	d.wal.f.Close()
	// Flip a payload byte in the final record.
	data, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 4; i++ {
		if _, ok, _ := d2.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("record k%d before corruption lost", i)
		}
	}
	if _, ok, _ := d2.Get([]byte("k4")); ok {
		t.Fatal("corrupt record resurrected")
	}
}

func TestCompactionReducesL0(t *testing.T) {
	d := testDB(t, smallOpts())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key-%05d", rng.Intn(2000)))
		if err := d.Put(k, bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Compactions == 0 {
		t.Fatal("expected compactions to run")
	}
	if st.LevelFiles[0] >= smallOpts().L0CompactionTrigger {
		t.Fatalf("L0 still has %d files after compaction", st.LevelFiles[0])
	}
	// All data still readable.
	n, err := kv.Len(d)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n > 2000 {
		t.Fatalf("unexpected key count %d", n)
	}
}

func TestLevel1KeyRangesDisjoint(t *testing.T) {
	d := testDB(t, smallOpts())
	for i := 0; i < 8000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte("v"), 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for l := 1; l < numLevels; l++ {
		files := d.cur.levels[l]
		for i := 1; i < len(files); i++ {
			if bytes.Compare(files[i-1].largest, files[i].smallest) >= 0 {
				t.Fatalf("level %d files overlap: %q >= %q", l, files[i-1].largest, files[i].smallest)
			}
		}
	}
}

func TestScanMergedAcrossLevels(t *testing.T) {
	d := testDB(t, smallOpts())
	// Three generations of the same key range to exercise shadowing.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 300; i++ {
			if err := d.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("g%d", gen))); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete([]byte("k0000")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err := d.Scan([]byte("k0000"), []byte("k0010"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		if string(v) != "g2" {
			t.Errorf("key %q: stale value %q", k, v)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 9 // k0001..k0009 (k0000 deleted)
	if len(keys) != want {
		t.Fatalf("scan returned %d keys (%v), want %d", len(keys), keys, want)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %q then %q", keys[i-1], keys[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	d := testDB(t, Options{})
	for i := 0; i < 20; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := d.Scan(nil, nil, func(_, _ []byte) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("visited %d", n)
	}
}

func TestClosedErrors(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != kv.ErrClosed {
		t.Fatalf("double close: %v", err)
	}
	if _, _, err := d.Get([]byte("k")); err != kv.ErrClosed {
		t.Fatalf("get: %v", err)
	}
	if err := d.Put([]byte("k"), nil); err != kv.ErrClosed {
		t.Fatalf("put: %v", err)
	}
	if err := d.Scan(nil, nil, nil); err != kv.ErrClosed {
		t.Fatalf("scan: %v", err)
	}
	if err := d.Sync(); err != kv.ErrClosed {
		t.Fatalf("sync: %v", err)
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	d := testDB(t, smallOpts())
	for i := 0; i < 1000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("init")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("k%04d", rng.Intn(1000)))
				if _, _, err := d.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("k%04d", i%1000))
		if err := d.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPropertyDBMatchesModel runs random operation sequences against the
// DB and an in-memory model, with periodic flush/compact/reopen, and
// verifies full agreement.
func TestPropertyDBMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		d, err := Open(dir, smallOpts())
		if err != nil {
			t.Log(err)
			return false
		}
		model := map[string]string{}
		for step := 0; step < 400; step++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(60))
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				v := fmt.Sprintf("v-%d", rng.Int())
				if err := d.Put([]byte(k), []byte(v)); err != nil {
					t.Log(err)
					return false
				}
				model[k] = v
			case 4, 5:
				if err := d.Delete([]byte(k)); err != nil {
					t.Log(err)
					return false
				}
				delete(model, k)
			case 6:
				if err := d.Flush(); err != nil {
					t.Log(err)
					return false
				}
			case 7:
				if rng.Intn(4) == 0 {
					if err := d.Close(); err != nil {
						t.Log(err)
						return false
					}
					if d, err = Open(dir, smallOpts()); err != nil {
						t.Log(err)
						return false
					}
				}
			default:
				got, ok, err := d.Get([]byte(k))
				if err != nil {
					t.Log(err)
					return false
				}
				want, wok := model[k]
				if ok != wok || (ok && string(got) != want) {
					t.Logf("mismatch on %q: got %q/%v want %q/%v", k, got, ok, want, wok)
					return false
				}
			}
		}
		// Final full comparison via scan.
		seen := map[string]string{}
		err = d.Scan(nil, nil, func(k, v []byte) bool {
			seen[string(k)] = string(v)
			return true
		})
		if err != nil {
			t.Log(err)
			return false
		}
		d.Close()
		if len(seen) != len(model) {
			t.Logf("scan count %d != model %d", len(seen), len(model))
			return false
		}
		for k, v := range model {
			if seen[k] != v {
				t.Logf("scan %q = %q, want %q", k, seen[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilter(t *testing.T) {
	var hashes []uint32
	for i := 0; i < 10000; i++ {
		hashes = append(hashes, bloomHash([]byte(fmt.Sprintf("key-%d", i))))
	}
	f := buildBloom(hashes, bloomBitsPerKey)
	for i := 0; i < 10000; i++ {
		if !f.mayContain(bloomHash([]byte(fmt.Sprintf("key-%d", i)))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.mayContain(bloomHash([]byte(fmt.Sprintf("absent-%d", i)))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("bloom false-positive rate %.4f too high", rate)
	}
}

func TestBloomRoundTrip(t *testing.T) {
	hashes := []uint32{1, 2, 3, 0xdeadbeef}
	f := buildBloom(hashes, 10)
	g := unmarshalBloom(f.marshal())
	for _, h := range hashes {
		if !g.mayContain(h) {
			t.Fatalf("false negative after round trip for %x", h)
		}
	}
	if (bloomFilter{}).mayContain(42) != true {
		t.Fatal("empty filter must not filter")
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sst")
	b, err := newTableBuilder(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		if i%7 == 0 {
			b.add(key, nil, kindDelete)
		} else {
			b.add(key, []byte(fmt.Sprintf("value-%d", i)), kindPut)
		}
	}
	count, smallest, largest, size, err := b.finish()
	if err != nil {
		t.Fatal(err)
	}
	if count != n || string(smallest) != "key-00000" || string(largest) != fmt.Sprintf("key-%05d", n-1) || size == 0 {
		t.Fatalf("meta: count=%d smallest=%q largest=%q size=%d", count, smallest, largest, size)
	}
	r, err := openTable(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, kind, found, err := r.get(key)
		if err != nil || !found {
			t.Fatalf("get %q: found=%v err=%v", key, found, err)
		}
		if i%7 == 0 {
			if kind != kindDelete {
				t.Fatalf("%q should be tombstone", key)
			}
		} else if kind != kindPut || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("%q = %q (%v)", key, v, kind)
		}
	}
	if _, _, found, _ := r.get([]byte("absent")); found {
		t.Fatal("found absent key")
	}
	if _, _, found, _ := r.get([]byte("a")); found {
		t.Fatal("found key before table range")
	}
	// Full iteration in order.
	it := r.iterator()
	it.seekToFirst()
	var prev []byte
	total := 0
	for it.next() {
		if prev != nil && bytes.Compare(prev, it.key()) >= 0 {
			t.Fatalf("iterator out of order: %q then %q", prev, it.key())
		}
		prev = append(prev[:0], it.key()...)
		total++
	}
	if it.err != nil {
		t.Fatal(it.err)
	}
	if total != n {
		t.Fatalf("iterated %d entries, want %d", total, n)
	}
	// Seek semantics.
	it.seek([]byte("key-00500"))
	if !it.next() || string(it.key()) != "key-00500" {
		t.Fatalf("seek landed on %q", it.key())
	}
	it.seek([]byte("key-005001")) // between keys
	if !it.next() || string(it.key()) != "key-00501" {
		t.Fatalf("between-keys seek landed on %q", it.key())
	}
	it.seek([]byte("zzz"))
	if it.next() {
		t.Fatal("seek past end should exhaust")
	}
}

func TestSSTableRejectsOutOfOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	b, err := newTableBuilder(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	b.add([]byte("b"), []byte("1"), kindPut)
	b.add([]byte("a"), []byte("2"), kindPut)
	if _, _, _, _, err := b.finish(); err == nil {
		t.Fatal("expected out-of-order error")
	}
}

func TestSSTableCorruptFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	b, err := newTableBuilder(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	b.add([]byte("a"), []byte("1"), kindPut)
	if _, _, _, _, err := b.finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // clobber magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openTable(path, 0, nil); err == nil {
		t.Fatal("expected corruption error")
	}
}

func TestMemtableOrderAndOverwrite(t *testing.T) {
	m := newMemtable()
	for _, k := range []string{"d", "a", "c", "b"} {
		m.set([]byte(k), []byte("v-"+k), kindPut)
	}
	m.set([]byte("b"), []byte("v2"), kindPut)
	if m.len() != 4 {
		t.Fatalf("len = %d", m.len())
	}
	it := m.iterator()
	var keys []string
	for it.seekToFirst(); it.valid(); it.next() {
		keys = append(keys, string(it.key()))
	}
	if fmt.Sprint(keys) != "[a b c d]" {
		t.Fatalf("order: %v", keys)
	}
	v, kind, found := m.get([]byte("b"))
	if !found || kind != kindPut || string(v) != "v2" {
		t.Fatalf("get b: %q %v %v", v, kind, found)
	}
	m.set([]byte("b"), nil, kindDelete)
	if _, kind, found := m.get([]byte("b")); !found || kind != kindDelete {
		t.Fatal("tombstone lost")
	}
}

func TestPropertyMemtableMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMemtable()
		model := map[string]string{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(30))
			if rng.Intn(3) == 0 {
				m.set([]byte(k), nil, kindDelete)
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				m.set([]byte(k), []byte(v), kindPut)
				model[k] = v
			}
		}
		for k, want := range model {
			v, kind, found := m.get([]byte(k))
			if !found || kind != kindPut || string(v) != want {
				return false
			}
		}
		// Iterator sorted and complete (tombstones included).
		it := m.iterator()
		var prev []byte
		for it.seekToFirst(); it.valid(); it.next() {
			if prev != nil && bytes.Compare(prev, it.key()) >= 0 {
				return false
			}
			prev = append(prev[:0], it.key()...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWALBatchCodec(t *testing.T) {
	ops := []walOp{
		{kind: kindPut, key: []byte("a"), value: []byte("1")},
		{kind: kindDelete, key: []byte("b")},
		{kind: kindPut, key: []byte{}, value: []byte{}},
	}
	payload := encodeBatchPayload(nil, ops)
	got, err := decodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops", len(got))
	}
	for i := range ops {
		if got[i].kind != ops[i].kind || !bytes.Equal(got[i].key, ops[i].key) || !bytes.Equal(got[i].value, ops[i].value) {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
	if _, err := decodeBatchPayload([]byte{0xff}); err == nil {
		t.Fatal("expected decode error on garbage")
	}
}

func TestApplyBatchAtomicityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch(3)
	b.Put([]byte("s1/k"), []byte("v1"))
	b.Put([]byte("s2/k"), []byte("v2"))
	b.Delete([]byte("never-existed"))
	if err := d.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	d.wal.f.Close() // crash
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	v1, ok1, _ := d2.Get([]byte("s1/k"))
	v2, ok2, _ := d2.Get([]byte("s2/k"))
	if !ok1 || !ok2 || string(v1) != "v1" || string(v2) != "v2" {
		t.Fatalf("batch not atomic across recovery: %q/%v %q/%v", v1, ok1, v2, ok2)
	}
}

func TestStatsShape(t *testing.T) {
	d := testDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("x"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Flushes == 0 {
		t.Fatal("expected flushes")
	}
	total := 0
	for _, n := range st.LevelFiles {
		total += n
	}
	if total == 0 {
		t.Fatal("expected table files")
	}
}

func BenchmarkPutAsync(b *testing.B) {
	d, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	key := make([]byte, 8)
	val := bytes.Repeat([]byte("v"), 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		if err := d.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplySync(b *testing.B) {
	d, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := bytes.Repeat([]byte("v"), 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := kv.NewBatch(10)
		for j := 0; j < 10; j++ {
			batch.Put([]byte(fmt.Sprintf("key-%07d", (i*10+j)%100000)), val)
		}
		if err := d.Apply(batch, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetHot(b *testing.B) {
	d, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("v"), 20)); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Get([]byte(fmt.Sprintf("key-%05d", i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}
