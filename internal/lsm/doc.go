// Package lsm implements a persistent log-structured merge-tree key-value
// store: a write-ahead log, a skip-list memtable, block-based sorted
// string tables with bloom filters, leveled compaction, a shared
// data-block LRU cache, and a manifest-based recovery protocol.
//
// It is this repository's substitute for RocksDB, which the paper's
// evaluation (Section 5) uses as the persistent base table with the sync
// option enabled. The property that matters for reproducing the paper's
// results is preserved: committed writes are made durable by a
// synchronous, batched log append (so the continuous writer is
// I/O-bound), while point reads are served from memory-resident
// structures (memtable, table indexes, bloom filters, block cache and
// the OS page cache), so ad-hoc readers are CPU-bound.
//
// # Files and recovery
//
// A database directory holds numbered WAL files (one per memtable
// generation), SSTables, a manifest of version edits, and CURRENT
// pointing at the live manifest. Open rebuilds the level structure from
// the manifest and replays any WAL at or after its recorded log number.
// Replay is strict about corruption: a torn FINAL record — a crash
// mid-append, never acknowledged durable — is discarded (counted in
// Stats.WALTornTails), but mid-file corruption fails the Open, because
// the records after it were acknowledged and silently dropping them
// would be data loss. DumpWAL / `lsmtool wal-dump --skip-corrupt` is the
// salvage path for that situation: it decodes a log read-only and can
// resynchronize past corrupt records.
//
// The concurrency model is single-writer (writeMu serializes Apply,
// flush and compaction) with lock-free snapshot readers: Get/Scan
// briefly take a read latch to snapshot (memtable, version) and then
// work on immutable state. See DESIGN.md for how the transactional
// layers above use the store.
package lsm
