package lsm

import (
	"bytes"
	"fmt"
	"sort"
)

// VerifyReport summarizes an offline VerifyDir pass over an LSM
// directory: what was checked and what recovery would make of it.
type VerifyReport struct {
	// ManifestNum is the manifest CURRENT points at.
	ManifestNum uint64
	// Tables is the number of live SSTables the manifest references.
	Tables int
	// Blocks is the total number of data blocks whose checksums were
	// verified across all live tables.
	Blocks int
	// Entries is the total entry count across all live tables (including
	// tombstones).
	Entries uint64
	// WALs is the number of log files recovery would replay; WALRecords
	// the durable records inside them; WALTornTails the logs ending in a
	// torn final record (a crash mid-append — discarded by recovery,
	// counted here so operators can tell expected tails from silence).
	WALs         int
	WALRecords   int
	WALTornTails int
	// OrphanTables lists .sst files present in the directory but not
	// referenced by the manifest — the footprint of a crash between
	// SSTable creation and the manifest edit. Recovery deletes them; they
	// are reported, not failed.
	OrphanTables []uint64
}

// VerifyDir checks a closed LSM directory offline — without opening the
// database, so it never replays, rotates or deletes anything. It walks
// CURRENT → manifest → every referenced SSTable (footer magic, index
// checksum, filter checksum, every data block's CRC, ascending key order,
// entry count and manifest bounds), checks the sorted-level disjointness
// invariant, and strictly decodes every WAL recovery would replay
// (mid-file corruption is an error; a torn tail is not). The first
// violation aborts with a descriptive error; a nil error means recovery
// from this directory cannot silently lose or invent committed data.
func VerifyDir(dir string) (VerifyReport, error) {
	var rep VerifyReport
	manifestNum, haveCurrent, err := readCurrent(dir)
	if err != nil {
		return rep, err
	}
	if !haveCurrent {
		return rep, fmt.Errorf("lsm: verify %s: no CURRENT file (not an initialized store)", dir)
	}
	rep.ManifestNum = manifestNum

	// Replay the manifest into a file inventory (the same fold recovery
	// performs, minus opening the tables into a live version).
	var logNum uint64
	files := map[uint64]editFile{}
	err = readManifest(manifestPath(dir, manifestNum), func(e *versionEdit) error {
		if e.LogNum > logNum {
			logNum = e.LogNum
		}
		for _, ref := range e.DelFiles {
			delete(files, ref.Num)
		}
		for _, ef := range e.AddFiles {
			files[ef.Num] = ef
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("lsm: verify manifest: %w", err)
	}

	nums := make([]uint64, 0, len(files))
	for num := range files {
		nums = append(nums, num)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	byLevel := map[int][]editFile{}
	for _, num := range nums {
		ef := files[num]
		if err := verifyTable(dir, ef, &rep); err != nil {
			return rep, err
		}
		rep.Tables++
		byLevel[ef.Level] = append(byLevel[ef.Level], ef)
	}

	// Levels below L0 must hold disjoint, ordered key ranges — the
	// invariant compaction maintains and point lookups rely on.
	for level, efs := range byLevel {
		if level == 0 {
			continue
		}
		sort.Slice(efs, func(i, j int) bool {
			return bytes.Compare(efs[i].Smallest, efs[j].Smallest) < 0
		})
		for i := 1; i < len(efs); i++ {
			if bytes.Compare(efs[i].Smallest, efs[i-1].Largest) <= 0 {
				return rep, fmt.Errorf("lsm: verify: level %d tables %06d and %06d overlap (%q..%q vs %q..%q)",
					level, efs[i-1].Num, efs[i].Num,
					efs[i-1].Smallest, efs[i-1].Largest, efs[i].Smallest, efs[i].Largest)
			}
		}
	}

	// WALs recovery would replay: strict decode (errCorrupt on mid-file
	// corruption, torn tails tolerated and counted).
	wals, ssts, _, err := listFiles(dir)
	if err != nil {
		return rep, err
	}
	for _, num := range ssts {
		if _, live := files[num]; !live {
			rep.OrphanTables = append(rep.OrphanTables, num)
		}
	}
	for _, num := range wals {
		if num < logNum {
			continue
		}
		st, err := replayWAL(walPath(dir, num), func([]walOp) error { return nil })
		rep.WALs++
		rep.WALRecords += st.records
		if st.tornTail {
			rep.WALTornTails++
		}
		if err != nil {
			return rep, fmt.Errorf("lsm: verify wal %06d: %w", num, err)
		}
	}
	return rep, nil
}

// verifyTable opens one SSTable (footer magic, index CRC, filter CRC) and
// walks every data block, verifying each block's CRC, global ascending
// key order, the footer's entry count and the manifest's key bounds.
func verifyTable(dir string, ef editFile, rep *VerifyReport) error {
	path := sstPath(dir, ef.Num)
	r, err := openTable(path, ef.Num, nil)
	if err != nil {
		return err
	}
	defer r.close()
	var (
		count    uint64
		prev     []byte
		smallest []byte
		largest  []byte
	)
	for i := range r.indexKeys {
		block, err := r.readBlock(i) // verifies the block CRC
		if err != nil {
			return err
		}
		rep.Blocks++
		it := blockIterator{data: block}
		for it.next() {
			if prev != nil && bytes.Compare(prev, it.curKey) >= 0 {
				return fmt.Errorf("%w: %s keys out of order: %q then %q", errCorrupt, path, prev, it.curKey)
			}
			prev = append(prev[:0], it.curKey...)
			if smallest == nil {
				smallest = append([]byte(nil), it.curKey...)
			}
			largest = append(largest[:0], it.curKey...)
			count++
		}
		if it.err != nil {
			return fmt.Errorf("%w: %s block %d entries", errCorrupt, path, i)
		}
	}
	if count != r.count {
		return fmt.Errorf("%w: %s footer claims %d entries, found %d", errCorrupt, path, r.count, count)
	}
	if count != ef.Count {
		return fmt.Errorf("%w: %s manifest claims %d entries, found %d", errCorrupt, path, ef.Count, count)
	}
	if !bytes.Equal(smallest, ef.Smallest) || !bytes.Equal(largest, ef.Largest) {
		return fmt.Errorf("%w: %s key bounds %q..%q do not match manifest %q..%q",
			errCorrupt, path, smallest, largest, ef.Smallest, ef.Largest)
	}
	rep.Entries += count
	return nil
}
