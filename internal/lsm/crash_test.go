package lsm

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// These tests reconstruct the on-disk footprints a crash leaves at each
// window of the flush/compaction sequence — SSTable written but manifest
// not yet appended, manifest appended but the old WAL not yet unlinked,
// WAL append torn mid-record — and assert that Open recovers exactly the
// committed data: orphans ignored and removed, stale logs not replayed,
// torn tails classified as expected tails rather than corruption.

// crashPut opens a DB, applies the puts durably and closes it — leaving
// the data in the WAL (Close never flushes), the canonical pre-crash
// state for the scenarios below.
func crashPut(t *testing.T, dir string, kvs map[string]string) {
	t.Helper()
	d, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// expectAll asserts that the DB serves exactly the committed map.
func expectAll(t *testing.T, d *DB, want map[string]string) {
	t.Helper()
	got := map[string]string{}
	if err := d.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered %q=%q, want %q", k, got[k], v)
		}
	}
}

// TestCrashBetweenSSTableWriteAndManifest: a crash after flushLocked has
// fully written (and synced) the new SSTable but before the manifest edit
// leaves an orphan .sst next to a WAL that still holds the data. Recovery
// must take the WAL as truth: replay it, ignore the orphan and remove it.
func TestCrashBetweenSSTableWriteAndManifest(t *testing.T) {
	dir := t.TempDir()
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	crashPut(t, dir, want)

	// Forge the orphan: a real, well-formed SSTable under a file number the
	// manifest has never heard of, with DIFFERENT (uncommitted) contents —
	// exactly what a half-completed flush of a later memtable would leave.
	orphan := sstPath(dir, 99)
	b, err := newTableBuilder(orphan, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.add([]byte("zz-uncommitted"), []byte("ghost"), kindPut)
	if _, _, _, _, err := b.finish(); err != nil {
		t.Fatal(err)
	}

	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	expectAll(t, d, want)
	if _, ok, _ := d.Get([]byte("zz-uncommitted")); ok {
		t.Fatal("orphan SSTable's uncommitted data leaked into recovery")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan SSTable not garbage-collected: %v", err)
	}
}

// TestCrashBeforeOldWALRemoval: a crash after the manifest records the
// new log number but before the obsolete WAL is unlinked leaves a stale
// lower-numbered log on disk. Its contents are already in an SSTable (or
// were superseded); recovery must NOT replay it — double-applying old
// deletes or resurrecting overwritten values — and must remove it.
func TestCrashBeforeOldWALRemoval(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Flush moves "k"="old" into an SSTable, rotates the WAL and unlinks
	// the old one; the overwrite below lives only in the new WAL.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	liveWAL := d.walNum
	d.mu.RUnlock()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect a stale log OLDER than the manifest's recorded LogNum,
	// holding a value that must not come back.
	stale, err := newWALWriter(walPath(dir, liveWAL-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.append(encodeBatchPayload(nil, []walOp{
		{kind: kindPut, key: []byte("k"), value: []byte("resurrected")},
		{kind: kindPut, key: []byte("ghost"), value: []byte("x")},
	}), true); err != nil {
		t.Fatal(err)
	}
	stale.close()

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	expectAll(t, d2, map[string]string{"k": "new"})
	if _, err := os.Stat(walPath(dir, liveWAL-1)); !os.IsNotExist(err) {
		t.Fatalf("stale WAL not garbage-collected: %v", err)
	}
	if st := d2.Stats(); st.WALTornTails != 0 {
		t.Fatalf("clean logs misclassified: %d torn tails", st.WALTornTails)
	}
}

// TestCrashTornWALAfterFlush: the full sequence — flushed history in
// SSTables, then fresh commits in the live WAL, then a crash that tears
// the final append. Recovery must keep the tables AND the durable WAL
// prefix, discard only the torn record, and classify it as a torn tail
// (expected crash shape), not corruption.
func TestCrashTornWALAfterFlush(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("flushed"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("walled"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	liveWAL := d.walNum
	d.mu.RUnlock()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear: append a record and chop it mid-payload.
	path := walPath(dir, liveWAL)
	w, err := newWALWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(encodeBatchPayload(nil, []walOp{
		{kind: kindPut, key: []byte("torn"), value: []byte("never-acked")},
	}), true); err != nil {
		t.Fatal(err)
	}
	w.close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	expectAll(t, d2, map[string]string{"flushed": "1", "walled": "2"})
	st := d2.Stats()
	if st.WALTornTails != 1 {
		t.Fatalf("torn tail not classified: %d", st.WALTornTails)
	}
	if st.WALRecordsRecovered == 0 {
		t.Fatal("durable WAL prefix not replayed")
	}
}

// TestCrashDuringCompactionLeavesOrphans: a crash mid-compaction leaves
// fully written output tables that the manifest never adopted. They are
// byte-identical duplicates of live data under unreferenced numbers;
// recovery must ignore and remove them without disturbing the inputs.
func TestCrashDuringCompactionLeavesOrphans(t *testing.T) {
	dir := t.TempDir()
	want := map[string]string{}
	d, err := Open(dir, Options{SyncWrites: true, DisableAutoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		k, v := string(rune('a'+i)), string(rune('0'+i))
		want[k] = v
		if err := d.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := d.Flush(); err != nil { // three L0 tables
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The orphaned compaction output: a merged table of all live data,
	// written under a fresh number but never installed.
	b, err := newTableBuilder(sstPath(dir, 500), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		b.add([]byte(k), []byte(want[k]), kindPut)
	}
	if _, _, _, _, err := b.finish(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	expectAll(t, d2, want)
	if _, err := os.Stat(sstPath(dir, 500)); !os.IsNotExist(err) {
		t.Fatalf("orphan compaction output not removed: %v", err)
	}
	// And the survivor still compacts cleanly afterwards.
	if err := d2.Compact(); err != nil {
		t.Fatal(err)
	}
	expectAll(t, d2, want)
}

// TestBlockCorruptionSurfacesOnRead: a flipped bit inside a data block
// must turn reads of that block into errCorrupt — never a silently wrong
// value — while the DB still opens (the damage is found lazily, exactly
// like a real latent sector error).
func TestBlockCorruptionSurfacesOnRead(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	var sstNum uint64
	d.mu.RLock()
	sstNum = d.cur.levels[0][0].num
	d.mu.RUnlock()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the first data block (offset 0 is inside it).
	path := sstPath(dir, sstNum)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, _, err := d2.Get([]byte("key")); !errors.Is(err, errCorrupt) {
		t.Fatalf("read of corrupt block = %v, want errCorrupt", err)
	}
}

// TestVerifyDirCleanAndCorrupt: the offline verifier passes a healthy
// directory (reporting its shape) and pinpoints a corrupted data block,
// an orphaned table and mid-WAL corruption without ever opening the DB.
func TestVerifyDirCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Put([]byte{byte('a' + i%26), byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put([]byte("in-wal"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	var sstNum uint64
	d.mu.RLock()
	sstNum = d.cur.levels[0][0].num
	d.mu.RUnlock()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("clean dir failed verify: %v", err)
	}
	if rep.Tables != 1 || rep.Blocks == 0 || rep.Entries != 50 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if rep.WALRecords == 0 {
		t.Fatal("live WAL records not counted")
	}
	if len(rep.OrphanTables) != 0 {
		t.Fatalf("phantom orphans: %v", rep.OrphanTables)
	}

	// An orphan is reported, not failed.
	if err := os.WriteFile(sstPath(dir, 777), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OrphanTables) != 1 || rep.OrphanTables[0] != 777 {
		t.Fatalf("orphan not reported: %+v", rep)
	}
	os.Remove(sstPath(dir, 777))

	// Corrupt one byte of the live table's first data block: verify must
	// fail and name the block.
	path := sstPath(dir, sstNum)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); !errors.Is(err, errCorrupt) || !strings.Contains(err.Error(), "block") {
		t.Fatalf("verify of corrupt block = %v, want errCorrupt naming the block", err)
	}
	data[1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Mid-WAL corruption (records after the damage) must fail strictly.
	wals, _, _, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	wal := walPath(dir, wals[len(wals)-1])
	wdata, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWALWriter(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(encodeBatchPayload(nil, []walOp{{kind: kindPut, key: []byte("after"), value: []byte("y")}}), true); err != nil {
		t.Fatal(err)
	}
	w.close()
	wdata2, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	wdata2[len(wdata)-1] ^= 0xff // damage the previously-last record's payload
	if err := os.WriteFile(wal, wdata2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); !errors.Is(err, errCorrupt) {
		t.Fatalf("verify of mid-corrupt WAL = %v, want errCorrupt", err)
	}
}
