package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log makes batched writes durable before they are applied
// to the memtable. One log file corresponds to one memtable generation; it
// is deleted after the memtable has been flushed to an SSTable and the
// manifest records the new table.
//
// Record framing:
//
//	uint32 little-endian payload length
//	uint32 little-endian CRC-32C of the payload
//	payload
//
// The payload is a batch: varint op count, then for each op a kind byte
// (kindPut/kindDelete), varint key length, key bytes, and for puts a
// varint value length plus value bytes. Torn tails (partial records from a
// crash mid-write) are detected by length/CRC mismatch and discarded, which
// is correct because a torn record was never acknowledged as durable.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt reports a malformed WAL or SSTable structure.
var errCorrupt = errors.New("lsm: corrupt file")

// walWriter appends framed records to a log file. Its error is STICKY:
// after a failed (or short) write or a failed fsync the log's durable
// contents are unknown — the kernel may have dropped the dirty pages
// after reporting the fsync error (the fsyncgate behavior), so a later
// append or sync reporting success would be a lie. Every subsequent
// operation returns the original error; only rotating to a fresh log
// file clears the condition.
type walWriter struct {
	f   *os.File
	buf []byte
	err error // first write/sync failure; sticky (see type comment)
}

func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: open wal: %w", err)
	}
	return &walWriter{f: f}, nil
}

// append writes one record, syncing the file when sync is true.
func (w *walWriter) append(payload []byte, sync bool) error {
	if w.err != nil {
		return w.err
	}
	w.buf = w.buf[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("lsm: wal write: %w", err)
		return w.err
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("lsm: wal sync: %w", err)
			return w.err
		}
	}
	return nil
}

// sync fsyncs the log, latching any failure like append does.
func (w *walWriter) sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("lsm: wal sync: %w", err)
		return w.err
	}
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// walReplayStats summarizes one replayWAL pass: how many durable records
// were applied and whether the log ended in a torn final record (a
// partial append from a crash, discarded as never-acknowledged). DB.Open
// accumulates these into the counters DB.Stats reports.
type walReplayStats struct {
	records  int
	tornTail bool
}

// replayWAL reads records from path in order, calling apply for each
// decoded batch. It tolerates (and stops at) a torn FINAL record — a
// partial write from a crash mid-append, which was never acknowledged as
// durable — but a record that fails its CRC (or declares an implausible
// length) with more log data after it is mid-file corruption: records
// beyond it WERE acknowledged durable, so silently dropping them would be
// data loss. That case surfaces errCorrupt with the record's offset; the
// torn-tail test is purely physical — the broken record must extend to
// the end of the file. (DumpWAL is the salvage path for corrupt logs:
// it can skip the broken record and recover what follows.)
func replayWAL(path string, apply func(ops []walOp) error) (walReplayStats, error) {
	var st walReplayStats
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return st, err
	}
	size := fi.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var (
		hdr [8]byte
		off int64 // offset of the current record's header
	)
	// tornTail reports whether a record at off declaring n payload bytes
	// reaches (or overruns) the physical end of the log — the only place
	// a partial append can live.
	tornTail := func(n uint32) bool { return off+8+int64(n) >= size }
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return st, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				st.tornTail = true // torn header: stop
				return st, nil
			}
			return st, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxWALPayload {
			// Implausible length: a torn header at the tail, or garbage in
			// the middle of the log with real records after it.
			if tornTail(n) {
				st.tornTail = true
				return st, nil
			}
			return st, fmt.Errorf("%w: wal record at offset %d: implausible length %d with %d bytes following",
				errCorrupt, off, n, size-off-8)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.tornTail = true // torn payload (reaches EOF by construction)
				return st, nil
			}
			return st, err
		}
		if crc32.Checksum(payload, crcTable) != want {
			if tornTail(n) {
				st.tornTail = true // torn tail; everything durable precedes it
				return st, nil
			}
			return st, fmt.Errorf("%w: wal record at offset %d: crc mismatch with %d bytes of log following",
				errCorrupt, off, size-(off+8+int64(n)))
		}
		ops, err := decodeBatchPayload(payload)
		if err != nil {
			return st, fmt.Errorf("%w: wal record at offset %d: malformed batch payload", errCorrupt, off)
		}
		if err := apply(ops); err != nil {
			return st, err
		}
		st.records++
		off += 8 + int64(n)
	}
}

// maxWALPayload bounds a plausible WAL record payload (1 GiB); larger
// declared lengths are treated as corruption.
const maxWALPayload = 1 << 30

// walOp is one decoded WAL operation.
type walOp struct {
	kind  entryKind
	key   []byte
	value []byte
}

// encodeBatchPayload serializes ops into buf (reused across calls).
func encodeBatchPayload(buf []byte, ops []walOp) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = append(buf, byte(op.kind))
		buf = binary.AppendUvarint(buf, uint64(len(op.key)))
		buf = append(buf, op.key...)
		if op.kind == kindPut {
			buf = binary.AppendUvarint(buf, uint64(len(op.value)))
			buf = append(buf, op.value...)
		}
	}
	return buf
}

func decodeBatchPayload(p []byte) ([]walOp, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errCorrupt
	}
	p = p[n:]
	ops := make([]walOp, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return nil, errCorrupt
		}
		kind := entryKind(p[0])
		p = p[1:]
		if kind != kindPut && kind != kindDelete {
			return nil, errCorrupt
		}
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return nil, errCorrupt
		}
		key := p[n : n+int(klen)]
		p = p[n+int(klen):]
		var val []byte
		if kind == kindPut {
			vlen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < vlen {
				return nil, errCorrupt
			}
			val = p[n : n+int(vlen)]
			p = p[n+int(vlen):]
		}
		ops = append(ops, walOp{kind: kind, key: key, value: val})
	}
	if len(p) != 0 {
		return nil, errCorrupt
	}
	return ops, nil
}
