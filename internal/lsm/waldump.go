package lsm

// WAL salvage tooling (lsmtool wal-dump). Recovery (replayWAL) is
// deliberately strict: mid-file corruption fails the Open, because
// records beyond the broken one were acknowledged durable and silently
// dropping them would be data loss. DumpWAL is the operator's escape
// hatch for exactly that situation — it decodes a log read-only, without
// opening the database, and in salvage mode resynchronizes past corrupt
// records so the surviving operations can be inspected or re-applied by
// hand.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// WALEntry is one decoded operation of a dumped WAL record: an update of
// Key to Value, or a deletion of Key when Delete is set. The byte slices
// alias the dump's read buffer and are only valid during the callback.
type WALEntry struct {
	Key    []byte
	Value  []byte
	Delete bool
}

// WALDumpStats summarizes one DumpWAL pass.
type WALDumpStats struct {
	// Records and Ops count the well-formed records decoded and the
	// operations they carried.
	Records, Ops int
	// CorruptRecords counts corrupt spots: the ones skipped in salvage
	// mode, or the one that stopped a strict dump (whose offset the
	// returned error names). SkippedBytes is the log volume lost to
	// skipped spots and to a torn tail; a strict dump stopped by
	// corruption skips nothing.
	CorruptRecords int
	SkippedBytes   int64
	// TornTail reports a partial final record — a crash mid-append,
	// benign (never acknowledged as durable) and therefore not counted
	// into CorruptRecords.
	TornTail bool
}

// DumpWAL decodes the write-ahead log at path in order, calling fn for
// each well-formed record with the record's byte offset and decoded
// operations; fn returning false stops the dump early. The file is read
// directly — no DB is opened, nothing is modified.
//
// Without skipCorrupt the dump mirrors recovery semantics: a torn final
// record ends the dump cleanly (TornTail), mid-file corruption stops it
// with an error. With skipCorrupt the dump salvages instead: it skips
// the corrupt spot, resynchronizes on the next offset where a whole
// record validates (length plausible, payload present, CRC and batch
// encoding valid — a false positive is practically impossible), counts
// the corruption and continues. The whole file is read into memory, so
// the tool handles the multi-MiB logs one memtable generation produces,
// not arbitrarily large files.
func DumpWAL(path string, skipCorrupt bool, fn func(offset int64, ops []WALEntry) bool) (WALDumpStats, error) {
	var st WALDumpStats
	data, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	// validRecordAt decodes the record starting at off, returning its
	// total framed length and operations, or ok=false when anything about
	// it is broken.
	validRecordAt := func(off int64) (ops []walOp, framed int64, ok bool) {
		if off+8 > int64(len(data)) {
			return nil, 0, false
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxWALPayload || off+8+int64(n) > int64(len(data)) {
			return nil, 0, false
		}
		payload := data[off+8 : off+8+int64(n)]
		// Decode before checksumming: during salvage resynchronization
		// this runs at every candidate offset, and random bytes fail the
		// batch framing within a few bytes (kind must be 1 or 2, varints
		// must fit) while the CRC always walks the whole payload.
		ops, err := decodeBatchPayload(payload)
		if err != nil {
			return nil, 0, false
		}
		if crc32.Checksum(payload, crcTable) != want {
			return nil, 0, false
		}
		return ops, 8 + int64(n), true
	}
	// tornTail reports whether the breakage at off physically extends to
	// the end of the file — the only place a benign partial append lives.
	// The test is purely physical, exactly replayWAL's: an implausible
	// length also declares an extent past EOF, so a garbage final header
	// is torn, not corrupt, and a strict dump accepts every log recovery
	// accepts.
	tornTail := func(off int64) bool {
		if off+8 > int64(len(data)) {
			return true
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		return off+8+int64(n) >= int64(len(data))
	}

	out := make([]WALEntry, 0, 64)
	off := int64(0)
	for off < int64(len(data)) {
		ops, framed, ok := validRecordAt(off)
		if !ok {
			if !skipCorrupt {
				if tornTail(off) {
					st.TornTail = true
					st.SkippedBytes += int64(len(data)) - off
					return st, nil
				}
				st.CorruptRecords++
				return st, fmt.Errorf("%w: wal record at offset %d: %d bytes of log following",
					errCorrupt, off, int64(len(data))-off)
			}
			// Salvage: resynchronize on the next offset holding a fully
			// valid record — even when the breakage LOOKS like a torn tail
			// (garbage length bytes can fake a record overrunning EOF
			// while real records follow). Only a breakage with nothing
			// valid after it is classified by its physical shape.
			next := off + 1
			for ; next < int64(len(data)); next++ {
				if _, _, ok := validRecordAt(next); ok {
					break
				}
			}
			st.SkippedBytes += next - off
			if next >= int64(len(data)) {
				if tornTail(off) {
					st.TornTail = true
				} else {
					st.CorruptRecords++
				}
				return st, nil
			}
			st.CorruptRecords++
			off = next
			continue
		}
		out = out[:0]
		for _, op := range ops {
			out = append(out, WALEntry{Key: op.key, Value: op.value, Delete: op.kind == kindDelete})
		}
		st.Records++
		st.Ops += len(ops)
		if fn != nil && !fn(off, out) {
			return st, nil
		}
		off += framed
	}
	return st, nil
}

// WALFiles lists the write-ahead log files of a database directory,
// oldest first (by file number). It reads only the directory listing; no
// DB is opened.
func WALFiles(dir string) ([]string, error) {
	wals, _, _, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	paths := make([]string, len(wals))
	for i, num := range wals {
		paths[i] = walPath(dir, num)
	}
	return paths, nil
}
