package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"sistream/internal/kv"
)

func TestEmptyAndLargeValues(t *testing.T) {
	d := testDB(t, Options{})
	if err := d.Put([]byte("empty"), []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d.Get([]byte("empty"))
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: %v %v %v", v, ok, err)
	}
	big := bytes.Repeat([]byte("x"), 1<<20) // 1 MiB value, spans many blocks
	if err := d.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(got, big) {
		t.Fatalf("big value corrupted: len=%d ok=%v err=%v", len(got), ok, err)
	}
}

func TestBinaryKeys(t *testing.T) {
	d := testDB(t, smallOpts())
	keys := [][]byte{
		{0},
		{0, 0},
		{0, 1},
		{0xff},
		{0xff, 0xff},
		[]byte("mixed\x00key"),
	}
	for i, k := range keys {
		if err := d.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, err := d.Get(k)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("binary key %x: %v %v %v", k, v, ok, err)
		}
	}
	var got [][]byte
	if err := d.Scan(nil, nil, func(k, _ []byte) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("binary keys out of order: %x then %x", got[i-1], got[i])
		}
	}
}

func TestManifestRotationOnReopen(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 4; round++ {
		d, err := Open(dir, smallOpts())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 300; i++ {
			if err := d.Put([]byte(fmt.Sprintf("r%d-k%03d", round, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		// Exactly one manifest and one CURRENT must remain.
		_, _, manifests, err := listFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(manifests) != 1 {
			t.Fatalf("round %d: %d manifests on disk", round, len(manifests))
		}
	}
	d, err := Open(dir, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	n, err := kv.Len(d)
	if err != nil || n != 1200 {
		t.Fatalf("final count %d, %v", n, err)
	}
}

func TestCurrentFileCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put([]byte("k"), []byte("v"))
	d.Close()
	if err := os.WriteFile(currentPath(dir), []byte("GARBAGE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt CURRENT accepted")
	}
}

func TestOrphanFilesCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put([]byte("k"), []byte("v"))
	d.Flush()
	d.Close()
	// Drop an orphan SSTable and WAL that no manifest references.
	orphanSST := sstPath(dir, 999999)
	if err := os.WriteFile(orphanSST, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphanWAL := walPath(dir, 999998)
	if err := os.WriteFile(orphanWAL, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := os.Stat(orphanSST); !os.IsNotExist(err) {
		t.Fatal("orphan sstable survived open")
	}
	if _, err := os.Stat(orphanWAL); !os.IsNotExist(err) {
		t.Fatal("orphan wal survived open")
	}
	if v, ok, _ := d2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatal("cleanup destroyed live data")
	}
}

// TestPropertyIteratorSeek: table iterator seek agrees with a sorted
// reference for random key sets and probes.
func TestPropertyIteratorSeek(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "t.sst")
		b, err := newTableBuilder(path, 128)
		if err != nil {
			return false
		}
		n := rng.Intn(200) + 1
		keys := make([]string, 0, n)
		seen := map[string]bool{}
		for len(keys) < n {
			k := fmt.Sprintf("key-%04d", rng.Intn(5000))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sortStrings(keys)
		for _, k := range keys {
			b.add([]byte(k), []byte("v"), kindPut)
		}
		if _, _, _, _, err := b.finish(); err != nil {
			return false
		}
		r, err := openTable(path, 0, nil)
		if err != nil {
			return false
		}
		defer r.close()
		it := r.iterator()
		for probe := 0; probe < 30; probe++ {
			target := fmt.Sprintf("key-%04d", rng.Intn(5200))
			it.seek([]byte(target))
			// Reference: first key >= target.
			var want string
			for _, k := range keys {
				if k >= target {
					want = k
					break
				}
			}
			if want == "" {
				if it.next() {
					t.Logf("seek(%q) found %q, want exhausted", target, it.key())
					return false
				}
				continue
			}
			if !it.next() || string(it.key()) != want {
				t.Logf("seek(%q) -> %q, want %q", target, it.key(), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestDeleteHeavyCompaction: tombstones dominate and must be dropped at
// the bottom level, shrinking the store.
func TestDeleteHeavyCompaction(t *testing.T) {
	d := testDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		if err := d.Put([]byte(fmt.Sprintf("k%05d", i)), bytes.Repeat([]byte("v"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := d.Delete([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	n, err := kv.Len(d)
	if err != nil || n != 0 {
		t.Fatalf("store not empty after delete+compact: %d, %v", n, err)
	}
	st := d.Stats()
	var total uint64
	for _, b := range st.LevelBytes {
		total += b
	}
	// A couple of nearly-empty tables may remain but the bulk must be gone.
	if total > 64<<10 {
		t.Fatalf("tombstones not reclaimed: %d bytes on disk", total)
	}
}

func TestWALSyncDurabilityBoundary(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unsynced write followed by synced write: both must be in the WAL
	// (sync flushes everything before it).
	if err := d.Put([]byte("unsynced"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	b := kv.NewBatch(1)
	b.Put([]byte("synced"), []byte("2"))
	if err := d.Apply(b, true); err != nil {
		t.Fatal(err)
	}
	d.wal.f.Close() // crash
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for _, k := range []string{"unsynced", "synced"} {
		if _, ok, _ := d2.Get([]byte(k)); !ok {
			t.Fatalf("%s lost despite preceding fsync", k)
		}
	}
}
