package txn

import (
	"sistream/internal/mvcc"
)

// S2PL is the strict two-phase locking baseline of the paper's
// evaluation [6]: shared locks on read, exclusive locks on write (with
// upgrade), all locks held until the transaction finishes. Reads return
// the latest committed version — there are no snapshots, which is exactly
// why concurrent ad-hoc readers stall behind the continuous writer on hot
// keys as contention rises (Figure 4). Deadlocks are avoided with
// wait-die; a killed transaction returns ErrDeadlock and the caller
// restarts it (counted as an abort by the benchmark).
//
// S2PL shares the consistency protocol and commit machinery with SI: the
// same group latches, durability batches and LastCTS publication. No
// commit-time admission check is needed — the locks already guarantee
// serializability.
type S2PL struct {
	protocolBase
	locks *lockManager
}

// NewS2PL creates the strict-2PL protocol over ctx.
func NewS2PL(ctx *Context) *S2PL {
	return &S2PL{protocolBase: protocolBase{ctx: ctx}, locks: newLockManager()}
}

var (
	_ Protocol       = (*S2PL)(nil)
	_ SegmentWriter  = (*S2PL)(nil)
	_ ChainCommitter = (*S2PL)(nil)
)

// Name implements Protocol.
func (p *S2PL) Name() string { return "s2pl" }

// Begin implements Protocol.
func (p *S2PL) Begin() (*Txn, error) { return p.begin(false) }

// BeginReadOnly implements Protocol.
func (p *S2PL) BeginReadOnly() (*Txn, error) { return p.begin(true) }

// Read implements Protocol: acquire a shared lock, then read the latest
// committed version.
func (p *S2PL) Read(tx *Txn, tbl *Table, key string) ([]byte, bool, error) {
	if err := requireGroup(tbl); err != nil {
		return nil, false, err
	}
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return nil, false, ErrFinished
	}
	if e, ok := tx.states[tbl.id]; ok {
		if op, dirty := e.get(key); dirty {
			v, del := op.value, op.delete
			tx.mu.Unlock()
			if del {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	tx.mu.Unlock()
	if err := p.locks.acquire(tx, tbl.id, key, lockShared); err != nil {
		p.abortInternal(tx)
		return nil, false, err
	}
	v, ok := tbl.readVersion(key, mvcc.Infinity)
	return v, ok, nil
}

// Write implements Protocol: exclusive lock, then buffer the write.
func (p *S2PL) Write(tx *Txn, tbl *Table, key string, value []byte) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	if tx.finished.Load() {
		return ErrFinished
	}
	if err := p.locks.acquire(tx, tbl.id, key, lockExclusive); err != nil {
		p.abortInternal(tx)
		return err
	}
	return bufferWrite(tx, tbl, key, writeOp{value: append([]byte(nil), value...)})
}

// WriteBatch implements Protocol: exclusive locks are still acquired per
// key (that is what S2PL is), but the write-set buffering pays the
// transaction latch once per batch. A wait-die kill at the i-th lock
// aborts the transaction and reports i operations applied, matching the
// per-operation sequence (writes before the failure counted, the write
// set discarded by the abort either way).
func (p *S2PL) WriteBatch(tx *Txn, tbl *Table, ops []WriteOp) (int, error) {
	if err := requireGroup(tbl); err != nil {
		return 0, err
	}
	if tx.finished.Load() {
		return 0, ErrFinished
	}
	for i, op := range ops {
		if err := p.locks.acquire(tx, tbl.id, op.Key, lockExclusive); err != nil {
			p.abortInternal(tx)
			return i, err
		}
	}
	return bufferWriteBatch(tx, tbl, ops, false)
}

// WriteSegment implements SegmentWriter: the lane acquires its exclusive
// locks LANE-SIDE — on the calling goroutine, before the segment merges
// into the shared transaction — and the merge then adopts the segment's
// buffered value copies under one transaction-latch acquisition, exactly
// like SI and BOCC. Without this, S2PL lanes fell back to WriteBatch's
// second value copy. A wait-die kill at the i-th key aborts the
// transaction and reports i operations applied, matching WriteBatch.
// Concurrent calls from the lanes of one transaction are safe: keyed
// routing keeps their key sets disjoint, and lock acquisition is
// re-entrant per transaction for duplicate keys within one lane.
func (p *S2PL) WriteSegment(tx *Txn, tbl *Table, seg *Segment) (int, error) {
	if err := requireGroup(tbl); err != nil {
		return 0, err
	}
	if tx.finished.Load() {
		return 0, ErrFinished
	}
	ops := seg.Ops()
	for i := range ops {
		if err := p.locks.acquire(tx, tbl.id, ops[i].Key, lockExclusive); err != nil {
			p.abortInternal(tx)
			return i, err
		}
	}
	return writeSegment(tx, tbl, seg, false)
}

// CommitChain implements ChainCommitter. S2PL needs no commit-time
// admission (the locks already guarantee serializability); each
// coordinated transaction's locks fall only after its chain run is fully
// installed and visible, preserving strictness across the batch.
func (p *S2PL) CommitChain(txs []*Txn, tbls []*Table) [][]error {
	return p.commitChain(txs, tbls, nil, func(tx *Txn) { p.locks.releaseAll(tx) })
}

// Delete implements Protocol.
func (p *S2PL) Delete(tx *Txn, tbl *Table, key string) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	if tx.finished.Load() {
		return ErrFinished
	}
	if err := p.locks.acquire(tx, tbl.id, key, lockExclusive); err != nil {
		p.abortInternal(tx)
		return err
	}
	return bufferWrite(tx, tbl, key, writeOp{delete: true})
}

// CommitState implements Protocol.
func (p *S2PL) CommitState(tx *Txn, tbl *Table) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	return commitState(tx, tbl, func() error { return p.finishCommit(tx) })
}

// Commit implements Protocol.
func (p *S2PL) Commit(tx *Txn) error {
	return commitAll(tx, func() error { return p.finishCommit(tx) })
}

func (p *S2PL) finishCommit(tx *Txn) error {
	err := p.installCommit(tx, nil)
	// Strictness: locks fall only after the commit is fully installed and
	// visible (or failed).
	p.locks.releaseAll(tx)
	return err
}

// Abort implements Protocol.
func (p *S2PL) Abort(tx *Txn) error {
	err := p.abort(tx)
	p.locks.releaseAll(tx)
	return err
}

// abortInternal cleans up after a wait-die kill; the ErrDeadlock from the
// failed acquire is surfaced to the caller separately.
func (p *S2PL) abortInternal(tx *Txn) {
	_ = p.abort(tx)
	p.locks.releaseAll(tx)
}

// LockCount exposes the live lock-entry count for tests.
func (p *S2PL) LockCount() int { return p.locks.lockCount() }
