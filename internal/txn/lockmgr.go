package txn

import (
	"sync"
)

// lockMode distinguishes shared (read) from exclusive (write) locks.
type lockMode uint8

const (
	lockShared lockMode = iota
	lockExclusive
)

// lockShardCount spreads the lock table; must be a power of two.
const lockShardCount = 64

// lockRef remembers one acquired lock for release at transaction end.
type lockRef struct {
	mgr   *lockManager
	state StateID
	key   string
}

// lockManager is the strict-2PL lock table: one entry per locked
// (state, key), with shared/exclusive modes, FIFO-fair wakeups via a
// condition variable, and wait-die deadlock avoidance — a requester may
// only wait for strictly younger holders (larger IDs); a requester
// younger than any conflicting holder "dies" (ErrDeadlock) and is
// expected to be restarted by the caller with a fresh, younger-still ID.
// Wait-die guarantees freedom from deadlock because waits only ever point
// from older to younger transactions.
//
// One exception is carved out for commit chains (chain.go): a chain
// SUCCESSOR may wait for its predecessor's locks even though it is
// younger. The wait graph stays acyclic because, per table, a chain
// predecessor finishes acquiring before its successor starts (the lane
// barrier orders the window's flushes), so a predecessor never waits on
// a successor; the successor's wait resolves when the spine commits the
// predecessor and its locks fall.
type lockManager struct {
	shards [lockShardCount]lockShard
}

type lockShard struct {
	mu      sync.Mutex
	entries map[string]*lockEntry
}

type lockEntry struct {
	cond    *sync.Cond
	holders map[*Txn]lockMode
	waiters int
	// xWaiters are transactions queued for an exclusive lock. Later
	// requests must not barge past them (anti-starvation: without this,
	// a stream of overlapping shared readers would starve the writer
	// forever and the benchmark would show readers accelerating under
	// contention instead of stalling, inverting the paper's Figure 4).
	xWaiters map[*Txn]bool
}

func newLockManager() *lockManager {
	m := &lockManager{}
	for i := range m.shards {
		m.shards[i].entries = make(map[string]*lockEntry)
	}
	return m
}

func (m *lockManager) shard(k string) *lockShard {
	var h uint32 = 2166136261
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return &m.shards[h&(lockShardCount-1)]
}

func lockKey(state StateID, key string) string {
	return string(state) + "\x00" + key
}

// compatible reports whether tx may take mode given current holders and
// queued exclusive requests. A transaction is always compatible with its
// own locks (re-entrancy and S->X upgrade are resolved by the caller
// loop); it never queues behind its own pending exclusive request.
func compatible(e *lockEntry, tx *Txn, mode lockMode) bool {
	for holder, held := range e.holders {
		if holder == tx {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			return false
		}
	}
	for waiter := range e.xWaiters {
		if waiter != tx {
			return false // no barging past queued exclusive requests
		}
	}
	return true
}

// mayWait applies wait-die: tx may wait only if it is older (smaller ID)
// than every conflicting holder and every queued exclusive requester —
// waits then always point from older to younger transactions, which is
// what makes the wait graph acyclic — OR the conflicting party is tx's
// commit-chain predecessor, whose lock-acquisition phase is provably
// over (see the type comment).
func mayWait(e *lockEntry, tx *Txn, mode lockMode) bool {
	for holder, held := range e.holders {
		if holder == tx {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			if tx.id > holder.id && !sameChainPredecessor(tx, holder) {
				return false
			}
		}
	}
	for waiter := range e.xWaiters {
		if waiter != tx && tx.id > waiter.id && !sameChainPredecessor(tx, waiter) {
			return false
		}
	}
	return true
}

// acquire takes (state, key) in the given mode for tx, blocking when
// wait-die allows and returning ErrDeadlock otherwise. Upgrades from
// shared to exclusive follow the same rules.
func (m *lockManager) acquire(tx *Txn, state StateID, key string, mode lockMode) error {
	k := lockKey(state, key)
	sh := m.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if !ok {
		e = &lockEntry{holders: make(map[*Txn]lockMode), xWaiters: make(map[*Txn]bool)}
		e.cond = sync.NewCond(&sh.mu)
		sh.entries[k] = e
	}
	queuedX := false
	defer func() {
		if queuedX {
			delete(e.xWaiters, tx)
			e.cond.Broadcast()
		}
	}()
	for {
		if held, own := e.holders[tx]; own && (held == lockExclusive || held == mode) {
			return nil // already held in a sufficient mode
		}
		if compatible(e, tx, mode) {
			if _, own := e.holders[tx]; !own {
				tx.mu.Lock()
				tx.locks = append(tx.locks, lockRef{mgr: m, state: state, key: key})
				tx.mu.Unlock()
			}
			e.holders[tx] = mode
			return nil
		}
		if !mayWait(e, tx, mode) {
			if len(e.holders) == 0 && e.waiters == 0 {
				delete(sh.entries, k)
			}
			return ErrDeadlock
		}
		if mode == lockExclusive && !queuedX {
			queuedX = true
			e.xWaiters[tx] = true
		}
		e.waiters++
		e.cond.Wait()
		e.waiters--
	}
}

// release drops tx's lock on (state, key) and wakes waiters.
func (m *lockManager) release(tx *Txn, state StateID, key string) {
	k := lockKey(state, key)
	sh := m.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if !ok {
		return
	}
	delete(e.holders, tx)
	if len(e.holders) == 0 && e.waiters == 0 {
		delete(sh.entries, k)
		return
	}
	e.cond.Broadcast()
}

// releaseAll drops every lock tx holds (strictness: locks are held to
// transaction end).
func (m *lockManager) releaseAll(tx *Txn) {
	tx.mu.Lock()
	refs := tx.locks
	tx.locks = nil
	tx.mu.Unlock()
	for _, ref := range refs {
		m.release(tx, ref.state, ref.key)
	}
}

// lockCount reports the number of live lock entries (diagnostic).
func (m *lockManager) lockCount() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
