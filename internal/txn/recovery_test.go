package txn

import (
	"fmt"
	"testing"

	"sistream/internal/kv"
	"sistream/internal/lsm"
)

// TestRecoveryFromLSM exercises the full persistence loop with the real
// persistent backend: commit synchronously, crash (drop the context,
// reopen the store), recover, verify, continue.
func TestRecoveryFromLSM(t *testing.T) {
	dir := t.TempDir()

	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	a, _ := ctx.CreateTable("a", db, TableOptions{SyncCommits: true})
	b, _ := ctx.CreateTable("b", db, TableOptions{SyncCommits: true})
	if _, err := ctx.CreateGroup("g", a, b); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	for i := 0; i < 20; i++ {
		tx, _ := p.Begin()
		p.Write(tx, a, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("a%d", i)))
		p.Write(tx, b, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("b%d", i)))
		mustCommit(t, p, tx)
	}
	// Delete a few rows transactionally.
	tx, _ := p.Begin()
	p.Delete(tx, a, "k00")
	p.Delete(tx, b, "k00")
	mustCommit(t, p, tx)
	want := a.Group().LastCTS()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart".
	db2, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ctx2 := NewContext()
	a2, _ := ctx2.CreateTable("a", db2, TableOptions{SyncCommits: true})
	b2, _ := ctx2.CreateTable("b", db2, TableOptions{SyncCommits: true})
	g2, err := ctx2.CreateGroup("g", a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.LastCTS() != want {
		t.Fatalf("recovered LastCTS %d, want %d", g2.LastCTS(), want)
	}
	p2 := NewSI(ctx2)
	if _, ok := readOne(t, p2, a2, "k00"); ok {
		t.Fatal("deleted row resurrected")
	}
	for i := 1; i < 20; i++ {
		va, oka := readOne(t, p2, a2, fmt.Sprintf("k%02d", i))
		vb, okb := readOne(t, p2, b2, fmt.Sprintf("k%02d", i))
		if !oka || !okb || va != fmt.Sprintf("a%d", i) || vb != fmt.Sprintf("b%d", i) {
			t.Fatalf("row %d: %q/%v %q/%v", i, va, oka, vb, okb)
		}
	}
	if a2.Keys() != 19 {
		t.Fatalf("recovered key count %d", a2.Keys())
	}
}

// TestRecoveryLaggingStore: states of one group on DIFFERENT stores,
// where one store missed the final commit (simulating a crash between
// per-store batches). Recovery must settle on the max watermark and both
// tables must load what their stores hold — the documented reconciliation
// semantics of CreateGroup.
func TestRecoveryLaggingStore(t *testing.T) {
	s1 := kv.NewMem()
	s2 := kv.NewMem()
	defer s1.Close()
	defer s2.Close()

	ctx := NewContext()
	a, _ := ctx.CreateTable("a", s1, TableOptions{})
	b, _ := ctx.CreateTable("b", s2, TableOptions{})
	if _, err := ctx.CreateGroup("g", a, b); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	tx, _ := p.Begin()
	p.Write(tx, a, "k", []byte("va"))
	p.Write(tx, b, "k", []byte("vb"))
	mustCommit(t, p, tx)
	cts := a.Group().LastCTS()

	// Simulate store s2 lagging: wipe its rows and watermark as if the
	// final batch never reached it.
	if err := s2.Delete([]byte("s/b/k")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete([]byte("m/b/lastcts")); err != nil {
		t.Fatal(err)
	}

	ctx2 := NewContext()
	a2, _ := ctx2.CreateTable("a", s1, TableOptions{})
	b2, _ := ctx2.CreateTable("b", s2, TableOptions{})
	g2, err := ctx2.CreateGroup("g", a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	// Watermark reconciles to the max across members.
	if g2.LastCTS() != cts {
		t.Fatalf("reconciled LastCTS %d, want %d", g2.LastCTS(), cts)
	}
	p2 := NewSI(ctx2)
	if v, ok := readOne(t, p2, a2, "k"); !ok || v != "va" {
		t.Fatalf("a after reconciliation: %q %v", v, ok)
	}
	// b lost its row (the store that missed the batch); the group is
	// usable and new commits repair it.
	if _, ok := readOne(t, p2, b2, "k"); ok {
		t.Fatal("lagging store magically has the row")
	}
	tx2, _ := p2.Begin()
	p2.Write(tx2, b2, "k", []byte("vb-repaired"))
	mustCommit(t, p2, tx2)
	if v, ok := readOne(t, p2, b2, "k"); !ok || v != "vb-repaired" {
		t.Fatalf("repair failed: %q %v", v, ok)
	}
}

func TestRecoveryCorruptWatermarkRejected(t *testing.T) {
	s := kv.NewMem()
	defer s.Close()
	if err := s.Put([]byte("m/t/lastcts"), []byte("bogus")); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	tbl, _ := ctx.CreateTable("t", s, TableOptions{})
	if _, err := ctx.CreateGroup("g", tbl); err == nil {
		t.Fatal("corrupt watermark accepted")
	}
}

func TestWatchers(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	type event struct {
		cts    Timestamp
		states int
		keys   int
	}
	var events []event
	e.group.Watch(func(cts Timestamp, writes map[StateID][]string) {
		n := 0
		for _, ks := range writes {
			n += len(ks)
		}
		events = append(events, event{cts: cts, states: len(writes), keys: n})
	})

	// Multi-state commit: one event covering both states.
	tx, _ := p.Begin()
	p.Write(tx, e.t1, "x", []byte("1"))
	p.Write(tx, e.t1, "y", []byte("2"))
	p.Write(tx, e.t2, "x", []byte("3"))
	mustCommit(t, p, tx)

	// Aborted transaction: no event.
	tx2, _ := p.Begin()
	p.Write(tx2, e.t1, "z", []byte("never"))
	if err := p.Abort(tx2); err != nil {
		t.Fatal(err)
	}

	// Read-only commit: no event.
	r, _ := p.BeginReadOnly()
	p.Read(r, e.t1, "x")
	mustCommit(t, p, r)

	if len(events) != 1 {
		t.Fatalf("watcher fired %d times, want 1", len(events))
	}
	ev := events[0]
	if ev.states != 2 || ev.keys != 3 {
		t.Fatalf("event: %+v", ev)
	}
	if ev.cts != e.group.LastCTS() {
		t.Fatalf("event cts %d != LastCTS %d", ev.cts, e.group.LastCTS())
	}
}

// TestProtocolsEquivalentOnSerialHistories: the same single-threaded
// workload must leave identical final states under SI, S2PL and BOCC —
// the protocols differ in concurrency behavior, not in semantics.
func TestProtocolsEquivalentOnSerialHistories(t *testing.T) {
	type op struct {
		key    string
		value  string
		delete bool
	}
	type batch struct {
		ops   []op
		abort bool
	}
	rng := newRand(7)
	var script []batch
	for i := 0; i < 40; i++ {
		var b batch
		b.abort = rng.Intn(5) == 0
		for j := 0; j < rng.Intn(5)+1; j++ {
			o := op{key: fmt.Sprintf("k%d", rng.Intn(10)), value: fmt.Sprintf("v%d-%d", i, j)}
			o.delete = rng.Intn(5) == 0
			b.ops = append(b.ops, o)
		}
		script = append(script, b)
	}

	finals := map[string]map[string]string{}
	for name, mk := range protocolsUnderTest(t) {
		e := newEnv(t)
		p := mk(e)
		for _, b := range script {
			tx, err := p.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range b.ops {
				if o.delete {
					err = p.Delete(tx, e.t1, o.key)
				} else {
					err = p.Write(tx, e.t1, o.key, []byte(o.value))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if b.abort {
				if err := p.Abort(tx); err != nil {
					t.Fatal(err)
				}
			} else if err := p.Commit(tx); err != nil {
				t.Fatal(err)
			}
		}
		final := map[string]string{}
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("k%d", i)
			if v, ok := readOne(t, p, e.t1, k); ok {
				final[k] = v
			}
		}
		finals[name] = final
	}
	if fmt.Sprint(finals["mvcc"]) != fmt.Sprint(finals["s2pl"]) ||
		fmt.Sprint(finals["mvcc"]) != fmt.Sprint(finals["bocc"]) {
		t.Fatalf("protocols diverged:\nmvcc=%v\ns2pl=%v\nbocc=%v",
			finals["mvcc"], finals["s2pl"], finals["bocc"])
	}
}

// TestTableGCExplicit: table-level GC reclaims dead versions once no
// snapshot pins them.
func TestTableGCExplicit(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	for i := 0; i < 30; i++ {
		write(t, p, e.t1, "k", fmt.Sprintf("v%d", i))
	}
	if n := e.t1.GC(); n < 0 {
		t.Fatalf("GC returned %d", n)
	}
	o := e.t1.object("k", false)
	if o.LiveVersions() != 1 {
		t.Fatalf("after GC with no pins: %d live versions", o.LiveVersions())
	}
	if v, _ := readOne(t, p, e.t1, "k"); v != "v29" {
		t.Fatalf("GC destroyed the live version: %q", v)
	}
}

// TestSnapshotScanConsistentUnderWrites: a scan at a pinned snapshot is
// stable even while new commits land.
func TestSnapshotScanConsistentUnderWrites(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	for i := 0; i < 10; i++ {
		write(t, p, e.t1, fmt.Sprintf("k%d", i), "old")
	}
	reader, _ := p.BeginReadOnly()
	if _, _, err := p.Read(reader, e.t1, "k0"); err != nil { // pin
		t.Fatal(err)
	}
	rts := reader.readCTS[e.group.id]
	for i := 0; i < 10; i++ {
		write(t, p, e.t1, fmt.Sprintf("k%d", i), "new")
	}
	old, new_ := 0, 0
	e.t1.SnapshotScan(rts, func(_ string, v []byte) bool {
		switch string(v) {
		case "old":
			old++
		case "new":
			new_++
		}
		return true
	})
	mustCommit(t, p, reader)
	if old != 10 || new_ != 0 {
		t.Fatalf("pinned scan saw %d old / %d new", old, new_)
	}
}
