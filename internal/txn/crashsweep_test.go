package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sistream/internal/kv"
)

// This file is the crash-recovery property harness of the fail-stop
// durability layer: for random transaction scripts, every protocol and
// both commit-window shapes, it crashes the base store at EVERY write
// boundary, reopens, and asserts PREFIX DURABILITY — the recovered table
// contents equal the effects of exactly the acknowledged-and-durable
// prefix of the committed-transaction sequence, with the per-table
// watermark (Table.metaKey) consistent with that prefix. It is the
// robustness analogue of the spine-equivalence property tests: "recovery
// works" becomes an enforced invariant.

// sweepOp is one scripted write.
type sweepOp struct {
	key string
	val string
	del bool
}

// sweepTxn is one scripted transaction (its ops, applied in order).
type sweepTxn []sweepOp

// makeSweepScript builds a deterministic pseudo-random script of n
// transactions. Keys are partitioned by window position (txns that can
// share a chain window touch disjoint keys — S2PL acquires its locks at
// write time, so same-window overlap would self-deadlock a single-driver
// harness) while txns at the same position across windows overwrite and
// delete each other's keys, exercising version overwrite and tombstones
// in recovery.
func makeSweepScript(rng *rand.Rand, n, window int) []sweepTxn {
	script := make([]sweepTxn, n)
	for i := range script {
		slot := i % window
		nops := 1 + rng.Intn(3)
		tx := make(sweepTxn, 0, nops)
		for j := 0; j < nops; j++ {
			key := fmt.Sprintf("k%02d-%d", slot, rng.Intn(3))
			if rng.Intn(5) == 0 && i > 0 {
				tx = append(tx, sweepOp{key: key, del: true})
			} else {
				tx = append(tx, sweepOp{key: key, val: fmt.Sprintf("v%d.%d", i, j)})
			}
		}
		script[i] = tx
	}
	return script
}

func sweepProtocol(name string, ctx *Context) Protocol {
	switch name {
	case "mvcc":
		return NewSI(ctx)
	case "s2pl":
		return NewS2PL(ctx)
	case "bocc":
		return NewBOCC(ctx)
	}
	panic("unknown protocol " + name)
}

// runSweepScript drives the script against the fault store and reports
// which transactions were acknowledged as committed, in commit order.
// With window > 1 it uses the chain-commit path (CommitChain batches of
// up to window transactions — the fused spine's shape); otherwise plain
// Commit per transaction. Driving continues after a crash so the sweep
// also verifies fail-fast behavior of every post-crash commit.
func runSweepScript(t *testing.T, proto string, window int, script []sweepTxn, fault *kv.Fault) (committed []int, group *Group, p Protocol) {
	t.Helper()
	ctx := NewContext()
	tbl, err := ctx.CreateTable("sweep", fault, TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	group, err = ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	p = sweepProtocol(proto, ctx)

	apply := func(tx *Txn, s sweepTxn) error {
		for _, op := range s {
			var err error
			if op.del {
				err = p.Delete(tx, tbl, op.key)
			} else {
				err = p.Write(tx, tbl, op.key, []byte(op.val))
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	sawFailure := false
	noteErr := func(idx int, err error) {
		if err == nil {
			committed = append(committed, idx)
			if sawFailure {
				t.Fatalf("txn %d acknowledged AFTER a durability failure", idx)
			}
			return
		}
		if sawFailure && !errors.Is(err, ErrGroupFailed) {
			t.Fatalf("txn %d post-failure error = %v, want sticky ErrGroupFailed", idx, err)
		}
		sawFailure = true
	}

	if window <= 1 {
		for i, s := range script {
			tx, err := p.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := apply(tx, s); err != nil {
				t.Fatalf("txn %d write: %v", i, err)
			}
			noteErr(i, p.Commit(tx))
		}
		return committed, group, p
	}

	cc, ok := p.(ChainCommitter)
	if !ok {
		t.Fatalf("protocol %s does not support chain commits", proto)
	}
	ch := NewChain()
	for start := 0; start < len(script); start += window {
		end := start + window
		if end > len(script) {
			end = len(script)
		}
		txs := make([]*Txn, 0, end-start)
		for i := start; i < end; i++ {
			tx, err := p.Begin()
			if err != nil {
				t.Fatal(err)
			}
			tx.SetChain(ch)
			if err := apply(tx, script[i]); err != nil {
				t.Fatalf("txn %d write: %v", i, err)
			}
			txs = append(txs, tx)
		}
		errs := cc.CommitChain(txs, []*Table{tbl})
		for i := range errs {
			noteErr(start+i, errs[i][0])
		}
	}
	return committed, group, p
}

// sweepEffects replays the committed prefix into a flat map.
func sweepEffects(script []sweepTxn, committed []int) map[string]string {
	want := map[string]string{}
	for _, idx := range committed {
		for _, op := range script[idx] {
			if op.del {
				delete(want, op.key)
			} else {
				want[op.key] = op.val
			}
		}
	}
	return want
}

// recoverSweep reopens the crashed store into a fresh context and
// returns the recovered watermark and table contents.
func recoverSweep(t *testing.T, fault *kv.Fault) (Timestamp, map[string]string) {
	t.Helper()
	re, err := fault.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	ctx := NewContext()
	tbl, err := ctx.CreateTable("sweep", re, TableOptions{SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctx.CreateGroup("g", tbl)
	if err != nil {
		t.Fatal(err)
	}
	recovered := g.LastCTS()
	got := map[string]string{}
	tbl.SnapshotScan(ctx.Now(), func(key string, value []byte) bool {
		got[key] = string(value)
		return true
	})
	return recovered, got
}

// TestPropertyCrashRecoveryPrefixDurability is the sweep: for each
// protocol × window shape, first a fault-free counting run fixes the
// number of write boundaries, then one run per boundary crashes the
// store exactly there, reopens, and asserts the prefix-durability
// invariant plus post-crash fail-stop behavior.
func TestPropertyCrashRecoveryPrefixDurability(t *testing.T) {
	const nTxns = 16
	for _, proto := range []string{"mvcc", "s2pl", "bocc"} {
		for _, window := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/window=%d", proto, window), func(t *testing.T) {
				script := makeSweepScript(rand.New(rand.NewSource(0xC0FFEE)), nTxns, window)

				// Counting run: no faults; fixes the number of Apply
				// boundaries and the full committed sequence.
				clean := kv.NewFault(kv.NewMem())
				committedAll, _, _ := runSweepScript(t, proto, window, script, clean)
				if len(committedAll) != nTxns {
					t.Fatalf("fault-free run committed %d/%d txns", len(committedAll), nTxns)
				}
				boundaries := int(clean.Stats().Applies)
				clean.Close()
				if boundaries == 0 {
					t.Fatal("no write boundaries to sweep")
				}

				// The sweep: crash at every boundary (and one past the
				// end — no crash — as a control).
				for k := 1; k <= boundaries+1; k++ {
					fault := kv.NewFault(kv.NewMem())
					fault.CrashAtApply(k)
					committed, group, p := runSweepScript(t, proto, window, script, fault)

					if k <= boundaries {
						if !fault.Crashed() {
							t.Fatalf("crash=%d: store did not crash", k)
						}
						// Fail-stop: the group is poisoned and a fresh
						// commit fails fast while reads still serve the
						// acknowledged in-memory state.
						if group.Err() == nil {
							t.Fatalf("crash=%d: group not poisoned", k)
						}
						tx, err := p.Begin()
						if err != nil {
							t.Fatal(err)
						}
						tbl := group.Tables()[0]
						if err := p.Write(tx, tbl, "post", []byte("x")); err != nil {
							t.Fatalf("crash=%d: buffered write failed: %v", k, err)
						}
						if err := p.Commit(tx); !errors.Is(err, ErrGroupFailed) {
							t.Fatalf("crash=%d: post-crash commit = %v, want ErrGroupFailed", k, err)
						}
						ro, _ := p.BeginReadOnly()
						if _, _, err := p.Read(ro, tbl, "k00-0"); err != nil {
							t.Fatalf("crash=%d: post-crash read = %v", k, err)
						}
						_ = p.Abort(ro)
					} else if len(committed) != nTxns {
						t.Fatalf("control run committed %d/%d", len(committed), nTxns)
					}

					// Prefix durability: what the reopened store recovers
					// is exactly the effects of the acknowledged commits —
					// the acknowledged sequence IS the durable prefix,
					// because acknowledgment follows the synced Apply.
					recovered, got := recoverSweep(t, fault)
					want := sweepEffects(script, committed)
					if len(got) != len(want) {
						t.Fatalf("crash=%d: recovered %d keys (%v), want %d (%v)", k, len(got), got, len(want), want)
					}
					for key, val := range want {
						if got[key] != val {
							t.Fatalf("crash=%d: recovered %q=%q, want %q", k, key, got[key], val)
						}
					}
					// Watermark consistency: zero with no durable commit,
					// otherwise it must not precede any acknowledged commit
					// (the last acked commit's batch carried it).
					if len(committed) == 0 && recovered != 0 {
						t.Fatalf("crash=%d: watermark %d with no committed txn", k, recovered)
					}
					if len(committed) > 0 && recovered == 0 {
						t.Fatalf("crash=%d: watermark lost (%d commits acked)", k, recovered)
					}
					fault.Close()
				}
			})
		}
	}
}

// TestCrashSweepTornBatchDetectable: the harness's store-level batch
// atomicity is what the commit protocol relies on (a WAL record is
// atomic via its CRC framing). A store that tears a batch violates the
// contract, and the watermark makes the violation observable: the torn
// prefix excludes the trailing watermark op, so recovery sees rows newer
// than the watermark claims. This test documents that the tear is NOT
// silently absorbed — the recovered contents differ from every prefix.
func TestCrashSweepTornBatchDetectable(t *testing.T) {
	script := makeSweepScript(rand.New(rand.NewSource(7)), 4, 1)
	fault := kv.NewFault(kv.NewMem())
	// Tear the 3rd commit's batch after a single op: rows of txn 2 leak
	// without its watermark bump.
	fault.TearApplyAt(3, 1)
	committed, _, _ := runSweepScript(t, "mvcc", 1, script, fault)

	_, got := recoverSweep(t, fault)
	want := sweepEffects(script, committed)
	match := len(got) == len(want)
	if match {
		for key, val := range want {
			if got[key] != val {
				match = false
				break
			}
		}
	}
	if match {
		// The torn op happened to coincide with the acknowledged prefix
		// (e.g. it overwrote an existing value identically) — that would
		// make this test vacuous; the fixed seed avoids it.
		t.Fatal("torn batch was indistinguishable from a clean prefix; pick a different seed")
	}
}
