package txn

import (
	"strings"
	"testing"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusActive: "Active",
		StatusCommit: "Commit",
		StatusAbort:  "Abort",
		Status(9):    "Status(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	for _, err := range []error{ErrAborted, ErrConflict, ErrValidation, ErrDeadlock} {
		if !IsAbort(err) {
			t.Fatalf("%v not classified as abort", err)
		}
	}
	for _, err := range []error{ErrFinished, ErrUnknownState, ErrTooManyTxns, nil} {
		if IsAbort(err) {
			t.Fatalf("%v wrongly classified as abort", err)
		}
	}
	if !strings.Contains(ErrConflict.Error(), "first-committer-wins") {
		t.Fatalf("conflict error message: %v", ErrConflict)
	}
}

func TestTxnAccessors(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() == 0 {
		t.Fatal("zero transaction id")
	}
	if tx.ReadOnly() {
		t.Fatal("read-write txn reports read-only")
	}
	select {
	case <-tx.Done():
		t.Fatal("done before finish")
	default:
	}
	mustCommit(t, p, tx)
	select {
	case <-tx.Done():
	default:
		t.Fatal("done not closed after commit")
	}

	r, err := p.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	if !r.ReadOnly() {
		t.Fatal("read-only txn reports read-write")
	}
	if err := p.Abort(r); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r.Done():
	default:
		t.Fatal("done not closed after abort")
	}
}

func TestGroupAccessors(t *testing.T) {
	e := newEnv(t)
	if e.group.ID() != "g" {
		t.Fatalf("group id %q", e.group.ID())
	}
	if len(e.group.Tables()) != 2 {
		t.Fatalf("group tables: %d", len(e.group.Tables()))
	}
	if e.t1.Group() != e.group || e.t1.ID() != "state1" {
		t.Fatal("table accessors broken")
	}
}

func TestDeclareValidation(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	orphan, err := e.ctx.CreateTable("orphan2", e.store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := p.Begin()
	if err := tx.Declare(orphan); err == nil {
		t.Fatal("declared a group-less table")
	}
	if err := tx.Declare(e.t1, e.t2); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx)
	if err := tx.Declare(e.t1); err != ErrFinished {
		t.Fatalf("declare after finish: %v", err)
	}
}

// TestCommitStateOnUntouchedTable: flagging a state the transaction never
// wrote registers an empty entry and participates in coordination.
func TestCommitStateOnUntouchedTable(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Flag t2 first (untouched): not the last state, so no commit yet.
	if err := p.CommitState(tx, e.t2); err != nil {
		t.Fatal(err)
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("committed early")
	}
	if err := p.CommitState(tx, e.t1); err != nil {
		t.Fatal(err)
	}
	if v, ok := readOne(t, p, e.t1, "k"); !ok || v != "v" {
		t.Fatalf("after full commit: %q %v", v, ok)
	}
}

// TestReadAtSnapshots: the exported snapshot reader used by TO_STREAM.
func TestReadAt(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "v1")
	cts1 := e.group.LastCTS()
	write(t, p, e.t1, "k", "v2")
	cts2 := e.group.LastCTS()
	if v, ok := e.t1.ReadAt("k", cts1); !ok || string(v) != "v1" {
		t.Fatalf("ReadAt(cts1) = %q %v", v, ok)
	}
	if v, ok := e.t1.ReadAt("k", cts2); !ok || string(v) != "v2" {
		t.Fatalf("ReadAt(cts2) = %q %v", v, ok)
	}
	if _, ok := e.t1.ReadAt("k", cts1-1); ok {
		t.Fatal("ReadAt before first commit returned a version")
	}
	if _, ok := e.t1.ReadAt("absent", cts2); ok {
		t.Fatal("ReadAt on absent key returned a version")
	}
}
