package txn

// This file implements per-lane write-set segments: the transaction-layer
// half of the parallel keyed ingest lanes in internal/stream. A stream
// query partitioned into P lanes runs P concurrent TO_TABLE write paths
// that all contribute to ONE open transaction. Routing is keyed (hash of
// the tuple key), so the lanes' key sets are disjoint — but the write set
// lives on the shared Txn, and naive per-tuple writes from P goroutines
// would serialize on the transaction latch for every element.
//
// A Segment moves that work off the shared latch: each lane appends its
// tuples (value copies included — the allocation-heavy part) into its own
// private segment with no synchronization at all, and merges the whole
// segment into the transaction's write set in a single latch acquisition
// at the commit barrier. Protocols that can adopt the segment's buffered
// values directly implement SegmentWriter (SI and BOCC do — neither
// write path has per-key side effects); the others go through the
// generic Protocol.WriteBatch, which re-copies values but keeps protocol
// semantics (S2PL's per-key exclusive locks) intact.
// Either way the concurrent calls of the P lanes are serialized by the
// transaction latch (tx.mu) — per-lane latching, paid once per lane per
// transaction instead of once per tuple.

// Segment is one lane's private write-set buffer for the currently open
// transaction: a sequence of operations against a single table, in lane
// arrival order. Append methods copy values, so the producer may reuse
// its buffers immediately; the segment itself is single-goroutine (one
// lane) until it is handed to WriteSegment or Ops.
type Segment struct {
	ops []WriteOp
}

// NewSegment creates an empty segment with room for n operations.
func NewSegment(n int) *Segment {
	if n < 1 {
		n = 16
	}
	return &Segment{ops: make([]WriteOp, 0, n)}
}

// Put buffers an update of key to value. The value is copied.
func (s *Segment) Put(key string, value []byte) {
	s.ops = append(s.ops, WriteOp{Key: key, Value: append([]byte(nil), value...)})
}

// Delete buffers a deletion of key.
func (s *Segment) Delete(key string) {
	s.ops = append(s.ops, WriteOp{Key: key, Delete: true})
}

// Len returns the number of buffered operations.
func (s *Segment) Len() int { return len(s.ops) }

// Reset empties the segment, keeping its backing array. Values previously
// handed over through WriteSegment are not touched (every Put allocates a
// private copy), so resetting after a merge is always safe.
func (s *Segment) Reset() { s.ops = s.ops[:0] }

// Ops exposes the buffered operations for the generic Protocol.WriteBatch
// fallback. The caller must not retain the slice across a Reset.
func (s *Segment) Ops() []WriteOp { return s.ops }

// SegmentWriter is implemented by protocols whose write path can adopt a
// segment's buffered values directly — ownership transfer instead of a
// second copy. WriteSegment is equivalent to WriteBatch(tx, tbl,
// seg.Ops()) and is safe to call concurrently from several lanes of one
// transaction: calls serialize on the transaction latch.
type SegmentWriter interface {
	WriteSegment(tx *Txn, tbl *Table, seg *Segment) (int, error)
}

// writeSegment merges seg into tx's write set under one latch
// acquisition, transferring ownership of the buffered values (no copy —
// Segment.Put already made the private copy bufferWriteBatch would make).
// When pin is set the table's group snapshot is pinned first (SI
// semantics, see SI.Write).
func writeSegment(tx *Txn, tbl *Table, seg *Segment, pin bool) (int, error) {
	if tx.readOnly {
		return 0, errReadOnlyWrite(tx)
	}
	if err := requireGroup(tbl); err != nil {
		return 0, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.finished.Load() {
		return 0, ErrFinished
	}
	if pin {
		tx.pin(tbl)
	}
	e := tx.entry(tbl)
	e.grow(len(seg.ops))
	for i := range seg.ops {
		op := &seg.ops[i]
		if op.Delete {
			e.write(op.Key, writeOp{delete: true})
		} else {
			e.write(op.Key, writeOp{value: op.Value})
		}
	}
	return len(seg.ops), nil
}
