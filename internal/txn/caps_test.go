package txn

import (
	"sync"
	"testing"

	"sistream/internal/kv"
)

// syncRecorder is a kv.Store + kv.Capable that records the sync flag of
// every Apply, to pin down the group-commit leader's capability gate.
type syncRecorder struct {
	kv.Store
	caps kv.Capabilities

	mu        sync.Mutex
	applies   int
	syncFlags []bool
	syncCalls int
}

func newSyncRecorder(caps kv.Capabilities) *syncRecorder {
	return &syncRecorder{Store: kv.NewMem(), caps: caps}
}

func (r *syncRecorder) Capabilities() kv.Capabilities { return r.caps }

func (r *syncRecorder) Apply(b *kv.Batch, sync bool) error {
	r.mu.Lock()
	r.applies++
	r.syncFlags = append(r.syncFlags, sync)
	r.mu.Unlock()
	return r.Store.Apply(b, sync)
}

func (r *syncRecorder) Sync() error {
	r.mu.Lock()
	r.syncCalls++
	r.mu.Unlock()
	return r.Store.Sync()
}

func (r *syncRecorder) observed() (applies int, anySync bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.syncFlags {
		anySync = anySync || s
	}
	return r.applies, anySync
}

func commitThrough(t *testing.T, store kv.Store, opts TableOptions) {
	t.Helper()
	ctx := NewContext()
	tbl, err := ctx.CreateTable("caps", store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("caps", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	for i := 0; i < 3; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		p.Write(tx, tbl, "k", []byte{byte(i)})
		mustCommit(t, p, tx)
	}
}

// TestSyncCommitsGatedOnCapabilities: with SyncCommits requested, the
// group-commit leader asks the store for a sync point only when the
// store declares SupportsSync.
func TestSyncCommitsGatedOnCapabilities(t *testing.T) {
	supports := newSyncRecorder(kv.Capabilities{Durable: true, SupportsSync: true})
	commitThrough(t, supports, TableOptions{SyncCommits: true})
	if applies, anySync := supports.observed(); applies == 0 || !anySync {
		t.Errorf("SupportsSync store: applies=%d anySync=%v, want synced applies", applies, anySync)
	}

	volatileStore := newSyncRecorder(kv.Capabilities{})
	commitThrough(t, volatileStore, TableOptions{SyncCommits: true})
	if applies, anySync := volatileStore.observed(); applies == 0 || anySync {
		t.Errorf("volatile store: applies=%d anySync=%v, want applies with no sync request", applies, anySync)
	}

	// Without SyncCommits no sync point is requested either way.
	quiet := newSyncRecorder(kv.Capabilities{Durable: true, SupportsSync: true})
	commitThrough(t, quiet, TableOptions{})
	if _, anySync := quiet.observed(); anySync {
		t.Error("sync point requested without SyncCommits")
	}
}

// TestTableCapabilities: CreateTable captures the store's flags, with
// the conservative default for stores that do not declare any.
func TestTableCapabilities(t *testing.T) {
	ctx := NewContext()
	memTbl, err := ctx.CreateTable("m", kv.NewMem(), TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := memTbl.Capabilities(); got != (kv.Capabilities{}) {
		t.Errorf("mem table caps = %+v, want zero", got)
	}
	anon := struct{ kv.Store }{kv.NewMem()}
	anonTbl, err := ctx.CreateTable("a", anon, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := kv.Capabilities{Durable: true, Persistent: true, SupportsSync: true}
	if got := anonTbl.Capabilities(); got != want {
		t.Errorf("undeclared table caps = %+v, want %+v", got, want)
	}
}
