package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sistream/internal/kv"
	"sistream/internal/mvcc"
)

// Transactional secondary indexes. An index maps a derived key (the
// "index key", computed by a user extractor from a row's key and value)
// to the set of row keys currently carrying it. Maintenance happens in
// the SAME write path as the table itself: the group-commit leader (and
// the multi-group slow path) derives index mutations from every admitted
// row write, appends them to the SAME coalesced durability batch, and
// installs them into the index's version store at the SAME commit
// timestamp as the row — so an index is never ahead of or behind its
// table, under all three concurrency-control protocols, and aborted
// transactions never touch it (only admitted requests are processed).
//
// Each (index key, row key) posting is an mvcc.Object holding presence
// versions: visible at rts exactly when the row carried that index key
// at rts. Lookups therefore compose with snapshot reads for free — an
// index read at a Snapshot's CTS returns exactly the rows a filtered
// full-table scan at that CTS would.

// indexShards spreads the posting lists over independently locked maps,
// mirroring the table's key shards. Must be a power of two.
const indexShards = 16

// IndexKeyFunc derives the index key of one row. ok=false excludes the
// row from the index (a partial index). The function must be pure — it
// is re-evaluated on the commit path for both the old and the new row
// image — and must not retain key or value. Index keys must not contain
// NUL bytes (the persisted posting-row encoding uses NUL as separator).
type IndexKeyFunc func(key string, value []byte) (ikey string, ok bool)

// Index is a transactionally maintained secondary index over one table
// (Table.CreateIndex). All methods are safe for concurrent use; reads
// are wait-free against the commit path (RCU posting versions).
type Index struct {
	name    string
	tbl     *Table
	extract IndexKeyFunc

	shards [indexShards]indexShard

	gcCursor atomic.Uint32

	puts, deletes, lookups, hits atomic.Uint64
}

// indexShard is one latch-striped slice of the posting map:
// ikey -> row key -> presence versions. Posting objects are never
// removed once created (installers cache pointers to them, exactly as
// table rows do); reclamation compacts their version arrays instead.
type indexShard struct {
	mu sync.RWMutex
	m  map[string]map[string]*mvcc.Object
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Table returns the indexed table.
func (ix *Index) Table() *Table { return ix.tbl }

// IndexStats are an index's lifetime counters (Index.Stats).
type IndexStats struct {
	// Puts / Deletes count posting insertions and removals installed by
	// the commit path (backfill included).
	Puts, Deletes uint64
	// Lookups counts Lookup calls; Hits the rows they returned.
	Lookups, Hits uint64
}

// Stats returns the index's counters.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		Puts:    ix.puts.Load(),
		Deletes: ix.deletes.Load(),
		Lookups: ix.lookups.Load(),
		Hits:    ix.hits.Load(),
	}
}

func (ix *Index) shard(ikey string) *indexShard {
	var h uint32 = 2166136261
	for i := 0; i < len(ikey); i++ {
		h ^= uint32(ikey[i])
		h *= 16777619
	}
	return &ix.shards[h&(indexShards-1)]
}

// posting returns the presence-version object of (ikey, pkey), creating
// it when create is set.
func (ix *Index) posting(ikey, pkey string, create bool) *mvcc.Object {
	sh := ix.shard(ikey)
	sh.mu.RLock()
	o := sh.m[ikey][pkey]
	sh.mu.RUnlock()
	if o != nil || !create {
		return o
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	post := sh.m[ikey]
	if post == nil {
		post = make(map[string]*mvcc.Object)
		sh.m[ikey] = post
	}
	if o = post[pkey]; o == nil {
		o = mvcc.NewObject(0)
		post[pkey] = o
	}
	return o
}

// install applies one posting mutation at cts: presence when delete is
// false, removal otherwise. Called under the owning group's commit latch
// (backfill holds it too), so installs per posting are cts-monotonic.
func (ix *Index) install(ikey, pkey string, cts Timestamp, delete bool, horizon Timestamp) error {
	if err := ix.posting(ikey, pkey, true).Install(cts, nil, delete, horizon); err != nil {
		return fmt.Errorf("index %q: %w", ix.name, err)
	}
	if delete {
		ix.deletes.Add(1)
	} else {
		ix.puts.Add(1)
	}
	return nil
}

// appendRowKey appends the persisted posting-row key for (ikey, pkey) to
// dst: "i/<table>/<index>/<ikey>\x00<pkey>". Posting rows ride the same
// per-store durability batch as the table rows of their commit.
func (ix *Index) appendRowKey(dst []byte, ikey, pkey string) []byte {
	dst = append(dst, 'i', '/')
	dst = append(dst, ix.tbl.id...)
	dst = append(dst, '/')
	dst = append(dst, ix.name...)
	dst = append(dst, '/')
	dst = append(dst, ikey...)
	dst = append(dst, 0)
	return append(dst, pkey...)
}

// rowPrefix namespaces this index's posting rows in the base store.
func (ix *Index) rowPrefix() []byte {
	return []byte("i/" + string(ix.tbl.id) + "/" + ix.name + "/")
}

// Lookup calls fn for every row whose index key equals ikey at snapshot
// rts, with the row's value at that same snapshot, until fn returns
// false. Posting visibility and row visibility are installed at the same
// commit timestamp, so the result equals a full-table scan at rts
// filtered by the same extractor. Iteration order is unspecified.
func (ix *Index) Lookup(rts Timestamp, ikey string, fn func(key string, value []byte) bool) {
	ix.lookups.Add(1)
	sh := ix.shard(ikey)
	type pair struct {
		k string
		o *mvcc.Object
	}
	sh.mu.RLock()
	post := sh.m[ikey]
	pairs := make([]pair, 0, len(post))
	for k, o := range post {
		pairs = append(pairs, pair{k, o})
	}
	sh.mu.RUnlock()
	for _, p := range pairs {
		if _, ok := p.o.Read(rts); !ok {
			continue
		}
		v, ok := ix.tbl.readVersion(p.k, rts)
		if !ok {
			// Unreachable when the write-path invariant holds (posting and
			// row install at one cts); skipping keeps a lookup from ever
			// fabricating a row.
			continue
		}
		ix.hits.Add(1)
		if !fn(p.k, v) {
			return
		}
	}
}

// ResidentPostings counts posting version slots currently occupied —
// the index-side analogue of Table.ResidentVersions (diagnostic).
func (ix *Index) ResidentPostings() int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		for _, post := range sh.m {
			for _, o := range post {
				n += o.LiveVersions()
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// gc reclaims dead posting versions in count index shards from the
// cursor (wrapping), returning reclaimed slots. Invoked by the table
// sweeps so index residency is bounded by the same policy as row
// residency.
func (ix *Index) gc(horizon Timestamp, count int) int {
	if count < 1 {
		count = 1
	}
	if count > indexShards {
		count = indexShards
	}
	from := int(ix.gcCursor.Load()) % indexShards
	ix.gcCursor.Store(uint32((from + count) % indexShards))
	n := 0
	for j := 0; j < count; j++ {
		sh := &ix.shards[(from+j)%indexShards]
		sh.mu.RLock()
		objs := make([]*mvcc.Object, 0, len(sh.m))
		for _, post := range sh.m {
			for _, o := range post {
				objs = append(objs, o)
			}
		}
		sh.mu.RUnlock()
		for _, o := range objs {
			n += o.GC(horizon)
		}
	}
	return n
}

// indexDelta is one posting mutation derived from an admitted row write,
// installed at the writing transaction's commit timestamp.
type indexDelta struct {
	ix   *Index
	ikey string
	pkey string
	del  bool
}

// indexDeltasFor appends the posting mutations implied by writing key
// with newVal (or deleting it when del is set), given the row's
// pre-image: oldVal/hadOld describe the latest value the key holds
// before this write installs (earlier same-batch admissions included).
func indexDeltasFor(dst []indexDelta, ixs []*Index, key string, newVal []byte, del bool, oldVal []byte, hadOld bool) []indexDelta {
	for _, ix := range ixs {
		var (
			oldIK, newIK string
			oldOK, newOK bool
		)
		if hadOld {
			oldIK, oldOK = ix.extract(key, oldVal)
		}
		if !del {
			newIK, newOK = ix.extract(key, newVal)
		}
		if oldOK && newOK && oldIK == newIK {
			continue // index key unchanged: nothing to maintain
		}
		if oldOK {
			dst = append(dst, indexDelta{ix: ix, ikey: oldIK, pkey: key, del: true})
		}
		if newOK {
			dst = append(dst, indexDelta{ix: ix, ikey: newIK, pkey: key, del: false})
		}
	}
	return dst
}

// indexSet returns the table's registered indexes (nil when none) — one
// atomic load on the commit path.
func (t *Table) indexSet() []*Index {
	p := t.indexes.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Index returns the named index, nil when absent.
func (t *Table) Index(name string) *Index {
	for _, ix := range t.indexSet() {
		if ix.name == name {
			return ix
		}
	}
	return nil
}

// Indexes returns the table's secondary indexes (do not modify).
func (t *Table) Indexes() []*Index { return t.indexSet() }

// CreateIndex registers a secondary index named name over the table,
// derived by extract, and backfills it from the committed state at the
// group's current LastCTS. The table must already belong to a group
// (CreateIndex after CreateGroup — recovery has run, so the backfill
// sees recovered rows too). Creation quiesces the group's commit
// pipeline for the duration of the backfill; from the first commit after
// it returns, the index is maintained transactionally in the write path.
//
// Persisted posting rows from a previous process run are cleared before
// the backfill, so a changed extractor can never leave stale postings in
// the base store.
func (t *Table) CreateIndex(name string, extract IndexKeyFunc) (*Index, error) {
	if name == "" || extract == nil {
		return nil, fmt.Errorf("txn: CreateIndex needs a name and an extractor")
	}
	g := t.group
	if g == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownState, t.id)
	}
	// Quiesce the commit pipeline: no transaction can commit into the
	// table while the backfill scans, so the index is exact at LastCTS
	// and every later commit maintains it incrementally.
	g.commitMu.Lock()
	defer g.commitMu.Unlock()
	if t.Index(name) != nil {
		return nil, fmt.Errorf("txn: table %q already has index %q", t.id, name)
	}
	ix := &Index{name: name, tbl: t, extract: extract}
	for i := range ix.shards {
		ix.shards[i].m = make(map[string]map[string]*mvcc.Object)
	}

	// Drop stale persisted postings, then persist the backfill in one
	// batch (same sync gate as commits: only where the backend has one).
	batch := kv.NewBatch(0)
	prefix := ix.rowPrefix()
	end := append(append([]byte(nil), prefix...), 0xff)
	if err := t.store.Scan(prefix, end, func(k, _ []byte) bool {
		batch.Delete(k)
		return true
	}); err != nil {
		return nil, fmt.Errorf("txn: index %q: clear postings: %w", name, err)
	}

	rts := g.LastCTS()
	var installErr error
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		type pair struct {
			k string
			o *mvcc.Object
		}
		pairs := make([]pair, 0, len(sh.m))
		for k, o := range sh.m {
			pairs = append(pairs, pair{k, o})
		}
		sh.mu.RUnlock()
		for _, p := range pairs {
			v, ok := p.o.Read(rts)
			if !ok {
				continue
			}
			ikey, ok := extract(p.k, v)
			if !ok {
				continue
			}
			// Under the quiesced latch the visible version is the newest,
			// so its commit timestamp is the object's LatestCTS; installing
			// the posting there makes it visible to every snapshot that can
			// see the row — including ones pinned before the index existed.
			if err := ix.install(ikey, p.k, p.o.LatestCTS(), false, 0); err != nil {
				installErr = err
				break
			}
			batch.Put(ix.appendRowKey(nil, ikey, p.k), nil)
		}
		if installErr != nil {
			break
		}
	}
	if installErr != nil {
		return nil, installErr
	}
	if batch.Len() > 0 {
		sync := t.opts.SyncCommits && t.caps.SupportsSync
		if err := t.store.Apply(batch, sync); err != nil {
			return nil, fmt.Errorf("txn: index %q: persist backfill: %w", name, err)
		}
	}

	// Publish (copy-on-write): the NEXT leader tenure sees the index and
	// maintains it from the first post-backfill commit on.
	var next []*Index
	if cur := t.indexes.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, ix)
	t.indexes.Store(&next)
	return ix, nil
}

// rowImage tracks a key's pending post-write image within one commit
// batch: later same-batch admissions must compute their index deltas
// against it, not against the installed version store (those earlier
// writes install only in phase 4).
type rowImage struct {
	val []byte
	del bool
}

// latestImage returns the latest installed live value of key in tbl —
// the index pre-image when no earlier same-batch admission rewrote the
// key. o, when non-nil, is the key's already-resolved version object.
func latestImage(tbl *Table, o *mvcc.Object, key string) ([]byte, bool) {
	if o == nil {
		o = tbl.object(key, false)
	}
	if o == nil {
		return nil, false
	}
	return o.Read(mvcc.Infinity)
}
