package txn

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sistream/internal/kv"
)

// chainEnv builds a one-table SI group over a mem store.
func chainEnv(t *testing.T) (*Context, *SI, *Table) {
	t.Helper()
	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("chained", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	return ctx, NewSI(ctx), tbl
}

// beginChained starts a transaction on chain c with one buffered write.
func beginChained(t *testing.T, p Protocol, tbl *Table, c *Chain, key, val string) *Txn {
	t.Helper()
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.SetChain(c)
	if err := p.Write(tx, tbl, key, []byte(val)); err != nil {
		t.Fatal(err)
	}
	return tx
}

// TestCommitChainOneBatch: a chain of disjoint-key transactions submitted
// together must globally commit through ONE group-commit batch — the
// cross-transaction fan-in the fused spine exists for — with all values
// visible and the commit timestamps ascending in chain order.
func TestCommitChainOneBatch(t *testing.T) {
	_, p, tbl := chainEnv(t)
	c := NewChain()
	const n = 5
	txs := make([]*Txn, n)
	for i := range txs {
		txs[i] = beginChained(t, p, tbl, c, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	g := tbl.Group()
	txns0, batches0 := g.CommitStats()

	errs := p.CommitChain(txs, []*Table{tbl})
	for i := range errs {
		for j, err := range errs[i] {
			if err != nil {
				t.Fatalf("tx %d table %d: %v", i, j, err)
			}
		}
	}
	txns1, batches1 := g.CommitStats()
	if txns1-txns0 != n {
		t.Fatalf("committed %d transactions, want %d", txns1-txns0, n)
	}
	if batches1-batches0 != 1 {
		t.Fatalf("chain used %d group-commit batches, want 1", batches1-batches0)
	}
	for i := 0; i < n; i++ {
		v, ok := tbl.ReadAt(fmt.Sprintf("k%d", i), g.LastCTS())
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q (ok=%t) after chain commit", i, v, ok)
		}
	}
}

// TestCommitChainSerialOverwrite: two chain members writing the SAME key
// must both commit — the successor's First-Committer-Wins check treats
// the predecessor as serial history, exactly as if it had begun after the
// predecessor's commit — and the final value is the successor's. The
// control half shows the same shape WITHOUT a chain aborts the successor.
func TestCommitChainSerialOverwrite(t *testing.T) {
	_, p, tbl := chainEnv(t)
	c := NewChain()
	t1 := beginChained(t, p, tbl, c, "hot", "first")
	t2 := beginChained(t, p, tbl, c, "hot", "second")
	errs := p.CommitChain([]*Txn{t1, t2}, []*Table{tbl})
	if errs[0][0] != nil || errs[1][0] != nil {
		t.Fatalf("chained same-key commits: %v / %v", errs[0][0], errs[1][0])
	}
	if v, ok := tbl.ReadAt("hot", tbl.Group().LastCTS()); !ok || string(v) != "second" {
		t.Fatalf("hot = %q (ok=%t), want successor's value", v, ok)
	}

	// Control: unchained concurrent writers of one key conflict.
	u1, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	u2, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(u1, tbl, "cold", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(u2, tbl, "cold", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(u1); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(u2); !errors.Is(err, ErrConflict) {
		t.Fatalf("unchained overlap committed with err=%v, want FCW conflict", err)
	}
}

// TestCommitChainAbortSplitsBatch: a chain member that genuinely
// conflicts with a FOREIGN writer aborts alone; its chain neighbors
// commit unaffected and the foreign value survives. The conflicting
// member leads the chain — a LATER member cannot foreign-conflict by
// construction, because its snapshot is raised to its predecessor's
// commit timestamp, which already postdates the foreign commit (exactly
// the serial-execution outcome: the successor "ran" after the foreign
// writer and legitimately overwrites).
func TestCommitChainAbortSplitsBatch(t *testing.T) {
	_, p, tbl := chainEnv(t)
	c := NewChain()
	tc := beginChained(t, p, tbl, c, "x", "stale") // pins before the foreign commit
	t1 := beginChained(t, p, tbl, c, "a", "v1")
	t2 := beginChained(t, p, tbl, c, "b", "v2")

	// Foreign writer commits x after tc pinned its snapshot: tc has no
	// committed chain predecessor, so its FCW floor is its own pin and
	// the conflict is real.
	f, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(f, tbl, "x", []byte("foreign")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(f); err != nil {
		t.Fatal(err)
	}

	errs := p.CommitChain([]*Txn{tc, t1, t2}, []*Table{tbl})
	if !errors.Is(errs[0][0], ErrConflict) {
		t.Fatalf("tc err = %v, want FCW conflict with the foreign writer", errs[0][0])
	}
	if errs[1][0] != nil {
		t.Fatalf("t1 must not be poisoned by its neighbor's abort: %v", errs[1][0])
	}
	if errs[2][0] != nil {
		t.Fatalf("t2 must not be poisoned by its neighbor's abort: %v", errs[2][0])
	}
	cts := tbl.Group().LastCTS()
	if v, _ := tbl.ReadAt("x", cts); string(v) != "foreign" {
		t.Fatalf("x = %q, want the foreign writer's value", v)
	}
	if v, _ := tbl.ReadAt("a", cts); string(v) != "v1" {
		t.Fatalf("a = %q", v)
	}
	if v, _ := tbl.ReadAt("b", cts); string(v) != "v2" {
		t.Fatalf("b = %q", v)
	}
}

// TestCommitChainAllProtocols drives the chain entry point of every
// protocol with disjoint-key members: all must commit, in one batch.
func TestCommitChainAllProtocols(t *testing.T) {
	protos := map[string]func(*Context) Protocol{
		"mvcc": func(c *Context) Protocol { return NewSI(c) },
		"s2pl": func(c *Context) Protocol { return NewS2PL(c) },
		"bocc": func(c *Context) Protocol { return NewBOCC(c) },
	}
	for name, mk := range protos {
		t.Run(name, func(t *testing.T) {
			ctx := NewContext()
			store := kv.NewMem()
			t.Cleanup(func() { store.Close() })
			tbl, err := ctx.CreateTable("chained", store, TableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ctx.CreateGroup("g", tbl); err != nil {
				t.Fatal(err)
			}
			p := mk(ctx)
			cc, ok := p.(ChainCommitter)
			if !ok {
				t.Fatalf("%s does not implement ChainCommitter", name)
			}
			c := NewChain()
			txs := make([]*Txn, 3)
			for i := range txs {
				txs[i] = beginChained(t, p, tbl, c, fmt.Sprintf("k%d", i), "v")
			}
			g := tbl.Group()
			_, b0 := g.CommitStats()
			errs := cc.CommitChain(txs, []*Table{tbl})
			for i := range errs {
				if errs[i][0] != nil {
					t.Fatalf("tx %d: %v", i, errs[i][0])
				}
			}
			if _, b1 := g.CommitStats(); b1-b0 != 1 {
				t.Fatalf("chain used %d batches, want 1", b1-b0)
			}
			if s2, ok := p.(*S2PL); ok {
				if n := s2.LockCount(); n != 0 {
					t.Fatalf("%d live lock entries after chain commit", n)
				}
			}
		})
	}
}

// TestS2PLWriteSegmentLaneSideLocks: the S2PL SegmentWriter fast path
// acquires its exclusive locks on the calling (lane) goroutine before the
// merge and adopts the segment's values; locks fall at commit.
func TestS2PLWriteSegmentLaneSideLocks(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("locked", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewS2PL(ctx)
	var _ SegmentWriter = p

	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	seg := NewSegment(4)
	seg.Put("a", []byte("1"))
	seg.Put("b", []byte("2"))
	seg.Delete("c")
	n, err := p.WriteSegment(tx, tbl, seg)
	if err != nil || n != 3 {
		t.Fatalf("WriteSegment = (%d, %v)", n, err)
	}
	if got := p.LockCount(); got != 3 {
		t.Fatalf("lane-side lock entries = %d, want 3", got)
	}
	if v, ok, err := p.Read(tx, tbl, "a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("read-your-segment-writes: %q %t %v", v, ok, err)
	}
	if err := p.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if got := p.LockCount(); got != 0 {
		t.Fatalf("%d live lock entries after commit", got)
	}
	if v, ok := tbl.ReadAt("a", tbl.Group().LastCTS()); !ok || string(v) != "1" {
		t.Fatalf("a = %q (ok=%t) after commit", v, ok)
	}
}

// TestS2PLChainSuccessorWaitsOutPredecessor: wait-die normally kills a
// younger requester, but a chain successor must be allowed to WAIT for
// its predecessor's lock and proceed once the spine commits the
// predecessor.
func TestS2PLChainSuccessorWaitsOutPredecessor(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("waity", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewS2PL(ctx)
	c := NewChain()

	t1, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t1.SetChain(c)
	if err := p.Write(t1, tbl, "k", []byte("old")); err != nil {
		t.Fatal(err)
	}

	t2, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	t2.SetChain(c)
	acquired := make(chan error, 1)
	go func() {
		// Younger chain successor requests the predecessor's lock: plain
		// wait-die would return ErrDeadlock; the chain exception waits.
		acquired <- p.Write(t2, tbl, "k", []byte("new"))
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("successor acquired/died without waiting: %v", err)
	default:
	}
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := <-acquired; err != nil {
		t.Fatalf("successor write after predecessor commit: %v", err)
	}
	if err := p.Commit(t2); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.ReadAt("k", tbl.Group().LastCTS()); string(v) != "new" {
		t.Fatalf("k = %q, want successor's value", v)
	}
}
