package txn

import (
	"errors"
	"sync/atomic"
	"testing"

	"sistream/internal/kv"
)

// failingStore wraps a kv.Store and fails Apply once armed, simulating a
// disk error at the worst moment of the commit protocol (the durability
// phase).
type failingStore struct {
	kv.Store
	fail atomic.Bool
}

var errDiskFull = errors.New("injected: disk full")

func (f *failingStore) Apply(b *kv.Batch, sync bool) error {
	if f.fail.Load() {
		return errDiskFull
	}
	return f.Store.Apply(b, sync)
}

// TestCommitDurabilityFailureAbortsCleanly: if the base store rejects the
// commit batch, the transaction aborts with no visible effect — memory
// versions untouched, LastCTS unchanged — and the group enters the sticky
// fail-stop state: even after the store "heals", commits are refused
// (the page cache's state after a failed durability point is unknowable)
// while reads keep serving.
func TestCommitDurabilityFailureAbortsCleanly(t *testing.T) {
	inner := kv.NewMem()
	defer inner.Close()
	fs := &failingStore{Store: inner}

	ctx := NewContext()
	a, err := ctx.CreateTable("a", fs, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.CreateTable("b", fs, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", a, b); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	// Healthy baseline commit.
	tx, _ := p.Begin()
	p.Write(tx, a, "k", []byte("good"))
	p.Write(tx, b, "k", []byte("good"))
	mustCommit(t, p, tx)
	baseCTS := a.Group().LastCTS()

	// Armed failure: the commit must surface the error and abort.
	fs.fail.Store(true)
	tx2, _ := p.Begin()
	p.Write(tx2, a, "k", []byte("doomed"))
	p.Write(tx2, b, "k", []byte("doomed"))
	err = p.Commit(tx2)
	if err == nil || !errors.Is(err, errDiskFull) {
		t.Fatalf("commit error = %v, want injected disk error", err)
	}

	// Nothing leaked: snapshot and watermark unchanged.
	if a.Group().LastCTS() != baseCTS {
		t.Fatalf("LastCTS moved: %d -> %d", baseCTS, a.Group().LastCTS())
	}
	if v, ok := readOne(t, p, a, "k"); !ok || v != "good" {
		t.Fatalf("a after failed commit: %q %v", v, ok)
	}
	if v, ok := readOne(t, p, b, "k"); !ok || v != "good" {
		t.Fatalf("b after failed commit: %q %v", v, ok)
	}
	// The handle is dead.
	if err := p.Commit(tx2); err != ErrFinished {
		t.Fatalf("re-commit of failed txn: %v", err)
	}
	if ctx.ActiveCount() != 0 {
		t.Fatalf("failed txn leaked a slot: %d active", ctx.ActiveCount())
	}

	// Fail-stop: the group is poisoned with the original cause.
	if gerr := a.Group().Err(); !errors.Is(gerr, ErrGroupFailed) || !errors.Is(gerr, errDiskFull) {
		t.Fatalf("Group.Err() = %v, want ErrGroupFailed wrapping the disk error", gerr)
	}

	// Even a healed store does not resurrect the group: a later commit
	// fails fast with the sticky error, before touching the store.
	fs.fail.Store(false)
	tx3, _ := p.Begin()
	p.Write(tx3, a, "k", []byte("after"))
	if err := p.Commit(tx3); !errors.Is(err, ErrGroupFailed) || !errors.Is(err, errDiskFull) {
		t.Fatalf("commit on poisoned group = %v, want sticky ErrGroupFailed", err)
	}
	if a.Group().LastCTS() != baseCTS {
		t.Fatal("watermark moved on a poisoned group")
	}

	// Graceful degradation: reads and read-only transactions still serve.
	if v, ok := readOne(t, p, a, "k"); !ok || v != "good" {
		t.Fatalf("read on poisoned group: %q %v", v, ok)
	}
	ro, _ := p.BeginReadOnly()
	if _, _, err := p.Read(ro, a, "k"); err != nil {
		t.Fatalf("read-only txn on poisoned group: %v", err)
	}
	if err := p.Commit(ro); err != nil {
		t.Fatalf("read-only commit on poisoned group: %v", err)
	}
	if ctx.ActiveCount() != 0 {
		t.Fatalf("fail-fast commits leaked slots: %d active", ctx.ActiveCount())
	}
}

// TestDurabilityFailureUnderS2PLReleasesLocks: the locking protocol must
// release all locks when the durability phase fails, or the system would
// wedge.
func TestDurabilityFailureUnderS2PLReleasesLocks(t *testing.T) {
	inner := kv.NewMem()
	defer inner.Close()
	fs := &failingStore{Store: inner}
	ctx := NewContext()
	a, _ := ctx.CreateTable("a", fs, TableOptions{})
	if _, err := ctx.CreateGroup("g", a); err != nil {
		t.Fatal(err)
	}
	p := NewS2PL(ctx)

	fs.fail.Store(true)
	tx, _ := p.Begin()
	if err := p.Write(tx, a, "k", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(tx); err == nil {
		t.Fatal("expected commit failure")
	}
	if p.LockCount() != 0 {
		t.Fatalf("locks leaked after failed commit: %d", p.LockCount())
	}
	fs.fail.Store(false)
	// The key is immediately writable by another transaction (no stuck
	// locks); its commit fails fast on the poisoned group and must
	// release the locks again.
	tx2, _ := p.Begin()
	if err := p.Write(tx2, a, "k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(tx2); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("commit on poisoned group = %v, want ErrGroupFailed", err)
	}
	if p.LockCount() != 0 {
		t.Fatalf("locks leaked after fail-fast commit: %d", p.LockCount())
	}
}

// TestDurabilityFailureUnderBOCCNotRegistered: a failed BOCC commit must
// not enter the validation history (it never became visible).
func TestDurabilityFailureUnderBOCCNotRegistered(t *testing.T) {
	inner := kv.NewMem()
	defer inner.Close()
	fs := &failingStore{Store: inner}
	ctx := NewContext()
	a, _ := ctx.CreateTable("a", fs, TableOptions{})
	if _, err := ctx.CreateGroup("g", a); err != nil {
		t.Fatal(err)
	}
	p := NewBOCC(ctx)

	// A reader starts before the doomed writer commits.
	reader, _ := p.BeginReadOnly()
	if _, _, err := p.Read(reader, a, "k"); err != nil {
		t.Fatal(err)
	}

	fs.fail.Store(true)
	w, _ := p.Begin()
	p.Write(w, a, "k", []byte("doomed"))
	if err := p.Commit(w); err == nil {
		t.Fatal("expected commit failure")
	}
	fs.fail.Store(false)

	// The reader validates cleanly: the failed writer left no record.
	if err := p.Commit(reader); err != nil {
		t.Fatalf("reader aborted against a never-visible commit: %v", err)
	}
	if n := ctx.recent.Len(); n != 0 {
		t.Fatalf("failed commit entered the history: %d records", n)
	}
}
