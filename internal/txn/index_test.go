package txn

import (
	"fmt"
	"testing"

	"sistream/internal/kv"
)

// valueBucket indexes rows by the first byte of their value; values
// starting with 'x' are excluded (a partial index), so rewrites can move
// rows in and out of the index, not just between buckets.
func valueBucket(_ string, v []byte) (string, bool) {
	if len(v) == 0 || v[0] == 'x' {
		return "", false
	}
	return string(v[:1]), true
}

// lookupAll collects an index lookup at rts into a key→value map.
func lookupAll(t *testing.T, ix *Index, rts Timestamp, ikey string) map[string]string {
	t.Helper()
	out := map[string]string{}
	ix.Lookup(rts, ikey, func(k string, v []byte) bool {
		if _, dup := out[k]; dup {
			t.Fatalf("lookup(%q) returned key %q twice", ikey, k)
		}
		out[k] = string(v)
		return true
	})
	return out
}

// TestIndexCreateValidation pins the CreateIndex contract: arguments,
// group membership, duplicate names, and the accessors.
func TestIndexCreateValidation(t *testing.T) {
	e := newEnv(t)
	if _, err := e.t1.CreateIndex("", valueBucket); err == nil {
		t.Fatal("empty index name accepted")
	}
	if _, err := e.t1.CreateIndex("b", nil); err == nil {
		t.Fatal("nil extractor accepted")
	}

	// A table outside any group has no commit pipeline to hook into.
	loose := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	orphan, err := loose.CreateTable("orphan", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orphan.CreateIndex("b", valueBucket); err == nil {
		t.Fatal("CreateIndex on an ungrouped table accepted")
	}

	ix, err := e.t1.CreateIndex("b", valueBucket)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.t1.CreateIndex("b", valueBucket); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if got := e.t1.Index("b"); got != ix {
		t.Fatalf("Index(b) = %v, want the created index", got)
	}
	if e.t1.Index("nope") != nil {
		t.Fatal("Index(nope) returned an index")
	}
	if got := len(e.t1.Indexes()); got != 1 {
		t.Fatalf("Indexes() has %d entries, want 1", got)
	}
	if ix.Name() != "b" || ix.Table() != e.t1 {
		t.Fatalf("accessors: name=%q table=%v", ix.Name(), ix.Table())
	}
}

// TestIndexBackfillMaintenanceAndTimeTravel covers the index lifecycle:
// the backfill over pre-existing committed rows, commit-path maintenance
// (bucket moves, partial-index entry/exit, deletes), and MVCC reads —
// a lookup at an old snapshot returns the old buckets.
func TestIndexBackfillMaintenanceAndTimeTravel(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)

	// Committed before the index exists: the backfill must cover these,
	// excluding the partial-index 'x' row.
	write(t, p, e.t1, "k1", "a1", "k2", "a2", "k3", "b3", "k4", "x4")
	ix, err := e.t1.CreateIndex("bucket", valueBucket)
	if err != nil {
		t.Fatal(err)
	}
	cts0 := e.group.LastCTS()
	if got := lookupAll(t, ix, cts0, "a"); len(got) != 2 || got["k1"] != "a1" || got["k2"] != "a2" {
		t.Fatalf("backfilled bucket a = %v, want k1:a1 k2:a2", got)
	}
	if got := lookupAll(t, ix, cts0, "b"); len(got) != 1 || got["k3"] != "b3" {
		t.Fatalf("backfilled bucket b = %v, want k3:b3", got)
	}
	if got := lookupAll(t, ix, cts0, "x"); len(got) != 0 {
		t.Fatalf("partial index holds excluded rows: %v", got)
	}

	// Maintenance in one transaction: k1 moves a→b, k2 leaves the index
	// (→ 'x'), k4 enters it (x→'a'), k3 is deleted, k5 is born in 'a'.
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"k1", "b1"}, {"k2", "x2"}, {"k4", "a4"}, {"k5", "a5"}} {
		if err := p.Write(tx, e.t1, kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete(tx, e.t1, "k3"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx)
	cts1 := e.group.LastCTS()

	if got := lookupAll(t, ix, cts1, "a"); len(got) != 2 || got["k4"] != "a4" || got["k5"] != "a5" {
		t.Fatalf("bucket a after churn = %v, want k4:a4 k5:a5", got)
	}
	if got := lookupAll(t, ix, cts1, "b"); len(got) != 1 || got["k1"] != "b1" {
		t.Fatalf("bucket b after churn = %v, want k1:b1", got)
	}

	// Time travel: the same lookups at cts0 still see the old world.
	if got := lookupAll(t, ix, cts0, "a"); len(got) != 2 || got["k1"] != "a1" || got["k2"] != "a2" {
		t.Fatalf("bucket a at old snapshot = %v, want k1:a1 k2:a2", got)
	}
	if got := lookupAll(t, ix, cts0, "b"); len(got) != 1 || got["k3"] != "b3" {
		t.Fatalf("bucket b at old snapshot = %v, want k3:b3", got)
	}

	st := ix.Stats()
	if st.Puts == 0 || st.Deletes == 0 || st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// TestIndexPostingRowsPersisted pins the durability contract: posting
// rows live in the base store under "i/<table>/<index>/<ikey>\x00<pkey>"
// and track the live postings — the backfill writes them, maintenance
// adds and removes them in the same batch as the rows.
func TestIndexPostingRowsPersisted(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k1", "a1", "k2", "b2")
	if _, err := e.t1.CreateIndex("bucket", valueBucket); err != nil {
		t.Fatal(err)
	}

	postings := func() map[string]bool {
		t.Helper()
		prefix := []byte("i/state1/bucket/")
		end := append(append([]byte(nil), prefix...), 0xff)
		out := map[string]bool{}
		if err := e.store.Scan(prefix, end, func(k, _ []byte) bool {
			out[string(k[len(prefix):])] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := postings(); len(got) != 2 || !got["a\x00k1"] || !got["b\x00k2"] {
		t.Fatalf("backfilled posting rows = %v, want a\\x00k1 and b\\x00k2", got)
	}

	// A bucket move must delete the old posting row and put the new one
	// within the same commit; leaving the index removes the row outright.
	write(t, p, e.t1, "k1", "b1", "k2", "x2")
	if got := postings(); len(got) != 1 || !got["b\x00k1"] {
		t.Fatalf("posting rows after churn = %v, want only b\\x00k1", got)
	}
}

// TestIndexGCBoundsResidentPostings churns one batch of keys across
// buckets under no pins and checks a sweep collapses posting residency
// to the live posting per key — dead postings are reclaimed by the same
// horizon policy as dead row versions.
func TestIndexGCBoundsResidentPostings(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	ix, err := e.t1.CreateIndex("bucket", valueBucket)
	if err != nil {
		t.Fatal(err)
	}

	const keys, rewrites = 16, 12
	for r := 0; r < rewrites; r++ {
		for i := 0; i < keys; i++ {
			// Cycle every key through buckets a..d.
			write(t, p, e.t1, fmt.Sprintf("k%02d", i), fmt.Sprintf("%c%d", 'a'+r%4, r))
		}
	}
	// Sweep the whole table a few times: the cursor-based index sweep
	// covers all index shards across full-table GC passes. (Residency
	// before the sweep is not asserted — the commit path already
	// reclaims lazily on slot pressure.)
	for s := 0; s < 4; s++ {
		e.t1.GC()
	}
	if got := ix.ResidentPostings(); got > keys {
		t.Fatalf("resident postings %d after GC, want <= %d (one live posting per key)", got, keys)
	}

	// The surviving postings are exactly the live bucket contents.
	cts := e.group.LastCTS()
	last := fmt.Sprintf("%c%d", 'a'+(rewrites-1)%4, rewrites-1)
	if got := lookupAll(t, ix, cts, last[:1]); len(got) != keys {
		t.Fatalf("live bucket %q has %d keys after GC, want %d", last[:1], len(got), keys)
	}
}
