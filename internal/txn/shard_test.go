package txn

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sistream/internal/kv"
)

// pickCrossShardIDs returns two state IDs that hash to DIFFERENT registry
// shards, so tests exercising multi-state commits across the sharded
// registry are guaranteed to actually cross a shard boundary.
func pickCrossShardIDs(t *testing.T) (StateID, StateID) {
	t.Helper()
	first := StateID("xshard-0")
	for i := 1; i < 10_000; i++ {
		id := StateID(fmt.Sprintf("xshard-%d", i))
		if registryIndex(string(id)) != registryIndex(string(first)) {
			return first, id
		}
	}
	t.Fatal("no cross-shard ID pair found (hash degenerate?)")
	return "", ""
}

// TestRegistryShardLookup sanity-checks the sharded registry: tables and
// groups registered under IDs spread over every shard resolve correctly,
// and duplicate creation is rejected per shard.
func TestRegistryShardLookup(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })

	shardsHit := map[int]bool{}
	var ids []StateID
	for i := 0; len(shardsHit) < registryShards && i < 10_000; i++ {
		id := StateID(fmt.Sprintf("s%d", i))
		shardsHit[registryIndex(string(id))] = true
		ids = append(ids, id)
		if _, err := ctx.CreateTable(id, store, TableOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(shardsHit) < registryShards {
		t.Fatalf("only %d/%d shards exercised", len(shardsHit), registryShards)
	}
	for _, id := range ids {
		tbl, ok := ctx.Table(id)
		if !ok || tbl.ID() != id {
			t.Fatalf("lookup of %q failed", id)
		}
	}
	if _, ok := ctx.Table("never-created"); ok {
		t.Fatal("phantom table resolved")
	}
	if _, err := ctx.CreateTable(ids[0], store, TableOptions{}); err == nil {
		t.Fatal("duplicate table admitted")
	}
	if _, err := ctx.CreateGroup("g", mustTable(t, ctx, ids[0]), mustTable(t, ctx, ids[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", mustTable(t, ctx, ids[2])); err == nil {
		t.Fatal("duplicate group admitted")
	}
	if _, ok := ctx.group("g"); !ok {
		t.Fatal("group lookup failed")
	}
}

func mustTable(t *testing.T, ctx *Context, id StateID) *Table {
	t.Helper()
	tbl, ok := ctx.Table(id)
	if !ok {
		t.Fatalf("table %q missing", id)
	}
	return tbl
}

// TestCrossShardMultiStateAtomicity pins the shard-boundary atomicity
// guarantee: a multi-state transaction whose tables hash to different
// registry shards must become visible all-or-nothing to a concurrent
// snapshot reader. The registry sharding and the group-commit pipeline
// must not be able to tear what the consistency protocol promises —
// visibility is a single LastCTS publish regardless of where the states
// live in the registry.
func TestCrossShardMultiStateAtomicity(t *testing.T) {
	idA, idB := pickCrossShardIDs(t)
	if registryIndex(string(idA)) == registryIndex(string(idB)) {
		t.Fatal("test ids collapsed onto one shard")
	}

	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	ta, err := ctx.CreateTable(idA, store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ctx.CreateTable(idB, store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("xg", ta, tb); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	seed, _ := p.Begin()
	if err := p.Write(seed, ta, "pair", encodeU64(0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(seed, tb, "pair", encodeU64(0)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, seed)

	h := newHammer(t)
	var checked atomic.Int64
	h.spawn(4, func(int) bool {
		tx, err := p.BeginReadOnly()
		if err != nil {
			t.Error(err)
			return false
		}
		// Resolve the tables through the sharded registry on every
		// iteration, like an ad-hoc query would.
		rta, ok1 := ctx.Table(idA)
		rtb, ok2 := ctx.Table(idB)
		if !ok1 || !ok2 {
			t.Error("registry lookup failed mid-run")
			return false
		}
		va, oka, erra := p.Read(tx, rta, "pair")
		vb, okb, errb := p.Read(tx, rtb, "pair")
		if erra != nil || errb != nil {
			t.Errorf("snapshot reads: %v %v", erra, errb)
			return false
		}
		a, b := decodeU64(va), decodeU64(vb)
		if err := p.Commit(tx); err != nil {
			t.Errorf("read-only commit: %v", err)
			return false
		}
		if !oka || !okb || a != b {
			t.Errorf("torn cross-shard commit observed: %q=%d %q=%d", idA, a, idB, b)
			return false
		}
		checked.Add(1)
		return true
	})

	// Writer: bump both states in one transaction, some via Commit and
	// some via the per-state CommitState coordination.
	for i := uint64(1); i <= 400; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, ta, "pair", encodeU64(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tb, "pair", encodeU64(i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			mustCommit(t, p, tx)
		} else {
			if err := p.CommitState(tx, ta); err != nil {
				t.Fatal(err)
			}
			if err := p.CommitState(tx, tb); err != nil {
				t.Fatal(err)
			}
		}
		if i%32 == 0 {
			time.Sleep(time.Millisecond) // let readers interleave
		}
	}
	h.finish()
	if checked.Load() == 0 {
		t.Fatal("no reader ever validated a snapshot; test proved nothing")
	}
	t.Logf("cross-shard: %d consistent snapshot checks (%s in shard %d, %s in shard %d)",
		checked.Load(), idA, registryIndex(string(idA)), idB, registryIndex(string(idB)))
}
