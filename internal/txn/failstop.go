package txn

import (
	"errors"
	"fmt"

	"sistream/internal/kv"
)

// This file implements the engine's fail-stop failure model. The commit
// protocol's correctness rests on one rule: the in-memory version store
// must never diverge from what a restart would recover from the base
// stores. Any failure that could break that rule — a durability Apply
// error (the fsyncgate hazard: after a failed fsync the page cache's
// state is unknowable) or an install invariant trip mid-batch — poisons
// every affected Group instead of being retried or papered over. A
// poisoned group refuses all further commits with a sticky wrapped
// ErrGroupFailed while reads (and read-only transactions) keep serving —
// graceful degradation to read-only until the process restarts and
// recovery reconciles from the durable watermarks.

// ErrGroupFailed is the sticky fail-stop error of a poisoned commit
// group: after a durability or install failure, every subsequent commit
// touching the group fails fast wrapping this sentinel (errors.Is). The
// original cause stays in the chain — Group.Err returns the full wrapped
// error. Reads are unaffected.
var ErrGroupFailed = errors.New("txn: commit group failed (fail-stop)")

// groupFailure is the immutable record of a group's first fatal error.
// wrapped is precomputed so the hot-path Err check stays allocation-free.
type groupFailure struct {
	cause   error
	wrapped error
}

// Err reports the group's sticky fail-stop state: nil while healthy,
// otherwise an error wrapping both ErrGroupFailed and the original cause
// (durability failure, install invariant trip). Once non-nil it never
// becomes nil again; the only way forward is restart + recovery.
func (g *Group) Err() error {
	if f := g.failure.Load(); f != nil {
		return f.wrapped
	}
	return nil
}

// fail poisons the group with cause. The first cause wins; later calls
// are no-ops, so Err always reports the error that actually broke the
// group.
func (g *Group) fail(cause error) {
	g.failure.CompareAndSwap(nil, &groupFailure{
		cause:   cause,
		wrapped: fmt.Errorf("%w: %w", ErrGroupFailed, cause),
	})
}

// failGroupsOnStores poisons every group with a member table on any of
// the given base stores. It closes the multi-store tear window: when a
// commit batch spans stores and the Nth Apply fails, stores applied
// earlier already hold the batch durably while the failed one does not —
// any group sharing ANY touched store must stop committing, or a later
// commit would re-diverge memory from disk. The registry shards are
// scanned under their read latches; group membership is immutable after
// CreateGroup, so the scan is race-free.
func (c *Context) failGroupsOnStores(stores []kv.Store, cause error) {
	touched := func(g *Group) bool {
		for _, t := range g.tables {
			for _, st := range stores {
				if t.store == st {
					return true
				}
			}
		}
		return false
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, g := range sh.groups {
			if touched(g) {
				g.fail(cause)
			}
		}
		sh.mu.RUnlock()
	}
}

// failReqs records the fail-stop verdict on a slice of commit requests:
// each transaction is aborted and its owner woken with err. Versions a
// partially processed batch may already have installed stay invisible
// forever — LastCTS is never published for a failed batch and the group
// is poisoned, so no later publish can expose them.
func (p *protocolBase) failReqs(reqs []*commitReq, err error) {
	for _, req := range reqs {
		req.err = err
		p.abortLocked(req.tx)
		close(req.ready)
	}
}
