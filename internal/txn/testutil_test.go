package txn

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// hammer is the reusable concurrency-test harness: it runs worker loops
// from many goroutines until stopped, funnels failures through t.Error
// (test-safe from any goroutine), and joins everything on finish. The
// ad-hoc stop-channel/WaitGroup loops of the concurrency tests are all
// expressed through it, as is the -race stress test below.
type hammer struct {
	t    testing.TB
	stop chan struct{}
	wg   sync.WaitGroup
}

func newHammer(t testing.TB) *hammer {
	h := &hammer{t: t, stop: make(chan struct{})}
	t.Cleanup(h.finish) // idempotent safety net
	return h
}

// stopped reports whether finish has been called; worker loops poll it.
func (h *hammer) stopped() bool {
	select {
	case <-h.stop:
		return true
	default:
		return false
	}
}

// spawn starts n goroutines, each looping body(id) until the hammer stops
// or body returns false (worker gives up; it must have reported its own
// failure). id is unique per worker across all spawn calls... not quite:
// id is the index within this spawn call.
func (h *hammer) spawn(n int, body func(id int) bool) {
	for i := 0; i < n; i++ {
		h.wg.Add(1)
		go func(id int) {
			defer h.wg.Done()
			for !h.stopped() {
				if !body(id) {
					return
				}
			}
		}(i)
	}
}

// run starts one goroutine executing body exactly once (setup-style
// worker that manages its own loop).
func (h *hammer) run(body func()) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		body()
	}()
}

// finish stops all workers and waits for them. Safe to call repeatedly.
func (h *hammer) finish() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	h.wg.Wait()
}

// stressWorkers sizes the stress hammer: enough goroutines to
// oversubscribe every core so the scheduler interleaves aggressively.
func stressWorkers() int {
	w := 4 * runtime.GOMAXPROCS(0)
	if w < 8 {
		w = 8
	}
	return w
}

// TestStressCommitPipeline hammers Begin/Write/Commit/SnapshotScan from
// oversubscribed goroutines for ~2 seconds, checking SI's invariants the
// whole time:
//
//   - multi-state atomicity: the "seq" key is always written to both
//     tables in one transaction; any committed snapshot read must see
//     equal values,
//   - no lost updates: each writer counts its committed increments of a
//     private key and the final value must match exactly,
//   - snapshot scans run against a pinned timestamp and must see the seq
//     pair consistently too.
//
// Run it under -race (CI does); it is skipped with -short.
func TestStressCommitPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("stress hammer skipped in -short mode")
	}
	e := newEnv(t)
	p := NewSI(e.ctx)

	// Seed the invariant pair and the per-writer counters.
	seed, _ := p.Begin()
	if err := p.Write(seed, e.t1, "seq", encodeU64(0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(seed, e.t2, "seq", encodeU64(0)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, seed)

	workers := stressWorkers()
	writers := workers / 4
	if writers < 2 {
		writers = 2
	}
	committed := make([]uint64, writers)

	h := newHammer(t)

	// Writers: bump the shared seq pair (FCW conflicts expected, retried)
	// and a private per-writer counter in the same transaction.
	for w := 0; w < writers; w++ {
		w := w
		key := "w" + string(rune('a'+w%26)) + encodeKeySuffix(w)
		h.run(func() {
			for !h.stopped() {
				tx, err := p.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				v, _, err := p.Read(tx, e.t1, "seq")
				if err != nil {
					t.Error(err)
					return
				}
				next := encodeU64(decodeU64(v) + 1)
				ok := p.Write(tx, e.t1, "seq", next) == nil &&
					p.Write(tx, e.t2, "seq", next) == nil &&
					p.Write(tx, e.t1, key, encodeU64(committed[w]+1)) == nil
				if !ok {
					t.Error("buffered write failed")
					return
				}
				if err := p.Commit(tx); err != nil {
					if IsAbort(err) {
						continue // FCW loss; retry
					}
					t.Error(err)
					return
				}
				committed[w]++
			}
		})
	}

	// Readers: one read-only transaction over both states; committed
	// snapshots must agree on seq.
	h.spawn(workers/2, func(int) bool {
		tx, err := p.BeginReadOnly()
		if err != nil {
			h.t.Error(err)
			return false
		}
		v1, ok1, err1 := p.Read(tx, e.t1, "seq")
		v2, ok2, err2 := p.Read(tx, e.t2, "seq")
		if err1 != nil || err2 != nil {
			h.t.Errorf("snapshot read: %v %v", err1, err2)
			return false
		}
		a, b := decodeU64(v1), decodeU64(v2)
		if err := p.Commit(tx); err != nil {
			h.t.Errorf("read-only commit: %v", err)
			return false
		}
		if !ok1 || !ok2 || a != b {
			h.t.Errorf("torn multi-state snapshot: %d vs %d", a, b)
			return false
		}
		return true
	})

	// Scanners: full snapshot scans at a pinned timestamp, checking the
	// seq pair through the scan as well.
	h.spawn(workers-writers-workers/2, func(int) bool {
		tx, err := p.BeginReadOnly()
		if err != nil {
			h.t.Error(err)
			return false
		}
		tx.mu.Lock()
		rts := tx.pin(e.t1)
		tx.mu.Unlock()
		var seqSeen []byte
		e.t1.SnapshotScan(rts, func(key string, value []byte) bool {
			if key == "seq" {
				seqSeen = append([]byte(nil), value...)
			}
			return true
		})
		if v2, ok := e.t2.ReadAt("seq", rts); ok && seqSeen != nil {
			if decodeU64(seqSeen) != decodeU64(v2) {
				h.t.Errorf("scan saw torn pair: %d vs %d", decodeU64(seqSeen), decodeU64(v2))
				return false
			}
		}
		return p.Commit(tx) == nil
	})

	time.Sleep(2 * time.Second)
	h.finish()

	// No lost updates: every writer's private counter holds exactly its
	// committed increment count.
	for w := 0; w < writers; w++ {
		key := "w" + string(rune('a'+w%26)) + encodeKeySuffix(w)
		v, ok := readOne(t, p, e.t1, key)
		if committed[w] == 0 {
			continue
		}
		if !ok || decodeU64([]byte(v)) != committed[w] {
			t.Fatalf("writer %d: counter %d, want %d", w, decodeU64([]byte(v)), committed[w])
		}
	}
	t.Logf("stress: %d workers, per-writer commits %v", workers, committed)
}

func encodeKeySuffix(w int) string {
	return string(rune('0'+w/10)) + string(rune('0'+w%10))
}
