// Package txn implements the paper's transactional state management
// (Section 4): the global state context, the transactional table wrapper
// over a key-value base table, three concurrency-control protocols —
// snapshot isolation via MVCC (the paper's contribution), strict
// two-phase locking (S2PL) and backward-oriented optimistic concurrency
// control (BOCC) as evaluation baselines — and the consistency protocol
// that makes commits spanning multiple states of one topology group
// atomically visible (Section 4.3).
//
// # Layout
//
// The package splits along the paper's Figure 3:
//
//	context.go      Context (registry shards, active-transaction table,
//	                logical clock), Group and the commit-watcher hooks
//	txn.go          Txn handles, write sets, snapshot pins
//	table.go        Table: the MVCC dictionary over a kv.Store base table
//	consistency.go  the shared commit machinery: per-state flags,
//	                group-commit pipeline, multi-group slow path
//	si.go           snapshot isolation (First-Committer-Wins)
//	s2pl.go         strict two-phase locking (wait-die)
//	bocc.go         backward-oriented optimistic validation
//	segment.go      per-lane write-set segments for parallel ingest
//	feed.go         partitioned change-feed fan-out (WatchPartitioned)
//	                and the feed's GC-horizon pin
//	chain.go        cross-transaction commit chains (the fused spine)
//	lockmgr.go      the S2PL lock table (chain-aware wait-die)
//
// # Scaling machinery
//
// Four mechanisms lift the paper's single-latch design to multi-core
// scale without changing its semantics: the registry and each table's
// key dictionary are striped over 64 latch shards; commits of one group
// flow through an adaptive leader/follower group-commit pipeline (one
// coalesced durability batch and one LastCTS publish per batch);
// parallel stream queries move per-tuple work off the shared transaction
// latch with Segments on the write side and WatchPartitioned fan-out on
// the change-feed side; and a windowed query's consecutive small
// transactions commit through one pipeline batch via commit chains
// (ChainCommitter), raising fan-in without giving up serial-order
// semantics. DESIGN.md walks through each with its correctness
// invariants.
package txn
