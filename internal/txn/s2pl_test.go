package txn

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestS2PLBasicCommit(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "a", "1")
	if v, ok := readOne(t, p, e.t1, "a"); !ok || v != "1" {
		t.Fatalf("read: %q %v", v, ok)
	}
	if p.LockCount() != 0 {
		t.Fatalf("locks leaked: %d", p.LockCount())
	}
}

func TestS2PLReadYourWritesAndDelete(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := p.Read(tx, e.t1, "k"); !ok || string(v) != "v" {
		t.Fatalf("own write: %q %v", v, ok)
	}
	if err := p.Delete(tx, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.Read(tx, e.t1, "k"); ok {
		t.Fatal("own delete invisible")
	}
	mustCommit(t, p, tx)
}

func TestS2PLAbortReleasesLocks(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if p.LockCount() == 0 {
		t.Fatal("no lock held after write")
	}
	if err := p.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if p.LockCount() != 0 {
		t.Fatalf("locks leaked after abort: %d", p.LockCount())
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("aborted write visible")
	}
}

// TestS2PLWriterBlocksReader shows the defining behavioral difference
// from SI: a reader stalls on a key the writer has locked until the
// writer commits.
func TestS2PLWriterBlocksReader(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "k", "v0")

	writer, _ := p.Begin() // older (smaller ID)
	if err := p.Write(writer, e.t1, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	readerDone := make(chan string, 1)
	readerStarted := make(chan struct{})
	go func() {
		// Younger reader: wait-die says a younger requester dies rather
		// than waits, so retry until the writer releases.
		close(readerStarted)
		for {
			r, err := p.BeginReadOnly()
			if err != nil {
				readerDone <- "begin: " + err.Error()
				return
			}
			v, _, err := p.Read(r, e.t1, "k")
			if err == nil {
				p.Commit(r)
				readerDone <- string(v)
				return
			}
			if !IsAbort(err) {
				readerDone <- "read: " + err.Error()
				return
			}
			p.Abort(r) // already aborted internally; ignore result
		}
	}()
	<-readerStarted
	time.Sleep(20 * time.Millisecond) // give the reader time to collide
	select {
	case v := <-readerDone:
		t.Fatalf("reader finished while writer held the lock: %q", v)
	default:
	}
	mustCommit(t, p, writer)
	select {
	case v := <-readerDone:
		if v != "v1" {
			t.Fatalf("reader saw %q, want v1", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never finished after writer commit")
	}
}

// TestS2PLOlderWaitsYoungerDies pins down wait-die: the older transaction
// blocks, the younger is killed with ErrDeadlock.
func TestS2PLOlderWaitsYoungerDies(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "k", "v0")

	older, _ := p.Begin()
	younger, _ := p.Begin()
	if older.ID() >= younger.ID() {
		t.Fatal("test setup: IDs must be ordered")
	}
	// Younger takes the lock first.
	if err := p.Write(younger, e.t1, "k", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Older requests it: must WAIT (not die). Run in goroutine.
	olderDone := make(chan error, 1)
	go func() {
		err := p.Write(older, e.t1, "k", []byte("o"))
		if err == nil {
			err = p.Commit(older)
		}
		olderDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-olderDone:
		t.Fatalf("older transaction should be waiting, finished with %v", err)
	default:
	}
	mustCommit(t, p, younger)
	if err := <-olderDone; err != nil {
		t.Fatalf("older transaction failed after wait: %v", err)
	}
	if v, _ := readOne(t, p, e.t1, "k"); v != "o" {
		t.Fatalf("final value %q, want o (older committed last)", v)
	}

	// And the reverse: younger requesting older's lock dies immediately.
	holder, _ := p.Begin()
	if err := p.Write(holder, e.t1, "k", []byte("h")); err != nil {
		t.Fatal(err)
	}
	victim, _ := p.Begin()
	err := p.Write(victim, e.t1, "k", []byte("v"))
	if err == nil || !IsAbort(err) {
		t.Fatalf("younger requester should die, got %v", err)
	}
	mustCommit(t, p, holder)
}

func TestS2PLSharedReadersCoexist(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "k", "v")
	r1, _ := p.BeginReadOnly()
	r2, _ := p.BeginReadOnly()
	if _, _, err := p.Read(r1, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Read(r2, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, r1)
	mustCommit(t, p, r2)
}

func TestS2PLUpgrade(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "k", "v0")
	tx, _ := p.Begin()
	if _, _, err := p.Read(tx, e.t1, "k"); err != nil { // S lock
		t.Fatal(err)
	}
	if err := p.Write(tx, e.t1, "k", []byte("v1")); err != nil { // upgrade to X
		t.Fatal(err)
	}
	mustCommit(t, p, tx)
	if v, _ := readOne(t, p, e.t1, "k"); v != "v1" {
		t.Fatalf("upgrade commit lost: %q", v)
	}
}

// TestS2PLNoLostUpdate runs concurrent increments; S2PL must serialize
// them perfectly (retrying wait-die victims).
func TestS2PLNoLostUpdate(t *testing.T) {
	e := newEnv(t)
	p := NewS2PL(e.ctx)
	write(t, p, e.t1, "ctr", "0")
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for { // retry loop for wait-die victims
					tx, err := p.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					v, _, err := p.Read(tx, e.t1, "ctr")
					if err != nil {
						if IsAbort(err) {
							continue
						}
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(string(v), "%d", &n)
					if err := p.Write(tx, e.t1, "ctr", []byte(fmt.Sprintf("%d", n+1))); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Error(err)
						return
					}
					if err := p.Commit(tx); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Error(err)
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	v, _ := readOne(t, p, e.t1, "ctr")
	if v != fmt.Sprintf("%d", workers*perWorker) {
		t.Fatalf("lost updates: counter = %q, want %d", v, workers*perWorker)
	}
	if p.LockCount() != 0 {
		t.Fatalf("locks leaked: %d", p.LockCount())
	}
}

func TestLockManagerBasics(t *testing.T) {
	m := newLockManager()
	tx1 := &Txn{id: 1}
	tx2 := &Txn{id: 2}
	// Two shared locks coexist.
	if err := m.acquire(tx1, "s", "k", lockShared); err != nil {
		t.Fatal(err)
	}
	if err := m.acquire(tx2, "s", "k", lockShared); err != nil {
		t.Fatal(err)
	}
	// Re-entrant acquire is a no-op.
	if err := m.acquire(tx1, "s", "k", lockShared); err != nil {
		t.Fatal(err)
	}
	if len(tx1.locks) != 1 {
		t.Fatalf("duplicate lockRef recorded: %d", len(tx1.locks))
	}
	// Younger tx2 upgrading while older tx1 holds S: dies.
	if err := m.acquire(tx2, "s", "k", lockExclusive); err != ErrDeadlock {
		t.Fatalf("upgrade conflict: %v", err)
	}
	m.releaseAll(tx2)
	// Now tx1 upgrades alone: fine.
	if err := m.acquire(tx1, "s", "k", lockExclusive); err != nil {
		t.Fatal(err)
	}
	m.releaseAll(tx1)
	if m.lockCount() != 0 {
		t.Fatalf("entries leaked: %d", m.lockCount())
	}
}

func TestLockManagerExclusiveIsHeldOnce(t *testing.T) {
	m := newLockManager()
	tx1 := &Txn{id: 1}
	tx3 := &Txn{id: 3}
	if err := m.acquire(tx1, "s", "k", lockExclusive); err != nil {
		t.Fatal(err)
	}
	// X lock is re-entrant for shared requests by the same owner.
	if err := m.acquire(tx1, "s", "k", lockShared); err != nil {
		t.Fatal(err)
	}
	// Younger conflicting requester dies.
	if err := m.acquire(tx3, "s", "k", lockShared); err != ErrDeadlock {
		t.Fatalf("expected deadlock kill, got %v", err)
	}
	m.releaseAll(tx1)
}
