package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sistream/internal/mvcc"
)

// ID is a transaction identifier. IDs are logical timestamps drawn from
// the context's global atomic counter, so they are totally ordered with
// commit timestamps — the First-Committer-Wins rule and the wait-die
// deadlock-avoidance policy both rely on this ordering.
type ID = uint64

// Timestamp aliases the MVCC logical timestamp.
type Timestamp = mvcc.Timestamp

// StateID names a transactional state (table).
type StateID string

// GroupID names a topology group: the set of states one continuous query
// writes together and whose updates must become visible atomically.
type GroupID string

// Status is the per-(transaction, state) flag driving the consistency
// protocol: the coordinator role falls to whoever flips the last state of
// a transaction to StatusCommit.
type Status uint8

// Per-state transaction statuses.
const (
	StatusActive Status = iota
	StatusCommit
	StatusAbort
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "Active"
	case StatusCommit:
		return "Commit"
	case StatusAbort:
		return "Abort"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Errors reported by the protocols. ErrAborted wraps the specific cause
// where one exists; IsAbort recognizes every variant.
var (
	// ErrAborted is returned when a transaction was aborted (explicitly,
	// or by a conflict rule).
	ErrAborted = errors.New("txn: transaction aborted")
	// ErrConflict signals a First-Committer-Wins violation under SI: a
	// concurrent transaction committed a newer version of a written key.
	ErrConflict = fmt.Errorf("%w: first-committer-wins conflict", ErrAborted)
	// ErrValidation signals a failed BOCC backward validation: a
	// transaction that committed during our read phase wrote something we
	// read.
	ErrValidation = fmt.Errorf("%w: backward validation failed", ErrAborted)
	// ErrDeadlock signals a wait-die kill under S2PL: a younger
	// transaction requested a lock held by an older one.
	ErrDeadlock = fmt.Errorf("%w: wait-die deadlock avoidance", ErrAborted)
	// ErrFinished is returned when operating on a committed or aborted
	// transaction handle.
	ErrFinished = errors.New("txn: transaction already finished")
	// ErrUnknownState is returned for tables not registered in a group.
	ErrUnknownState = errors.New("txn: state not registered in any group")
	// ErrTooManyTxns is returned when the active-transaction table is
	// full.
	ErrTooManyTxns = errors.New("txn: active transaction table full")
)

// IsAbort reports whether err indicates the transaction was aborted (for
// any reason) and should be retried by the caller.
func IsAbort(err error) bool { return errors.Is(err, ErrAborted) }

// writeOp is one buffered, uncommitted modification. obj caches the
// key's MVCC object once a commit phase has resolved it (admission does,
// under the commit latch), so the install phase skips a second registry
// lookup; objects are never replaced once created, so the cache cannot
// go stale.
type writeOp struct {
	value  []byte
	delete bool
	obj    *mvcc.Object
}

// WriteOp is one operation of a batched write (Protocol.WriteBatch): an
// update of Key to Value, or a deletion of Key when Delete is set.
type WriteOp struct {
	Key    string
	Value  []byte
	Delete bool
}

// stateEntry is a transaction's per-state bookkeeping: the status flag of
// the consistency protocol plus the uncommitted write set ("dirty array"
// in the paper's Figure 3). The write set is laid out as parallel slices
// in first-write order — the layout every commit phase iterates — with a
// key index map used only for deduplication and read-your-own-writes
// lookups, so the commit path never pays a map access per key.
type stateEntry struct {
	table  *Table
	status Status
	// idx maps a key to its position in order/ops.
	idx map[string]int
	// order preserves first-write order for deterministic batch layout;
	// ops is parallel to it.
	order []string
	ops   []writeOp
}

// entryPool recycles write-set storage across transactions: a recycled
// entry keeps its map buckets (clear() preserves them) and slice backing
// arrays, so a steady-state stream query allocates no write-set storage
// per transaction at all.
var entryPool = sync.Pool{New: func() any { return new(stateEntry) }}

func newStateEntry(tbl *Table) *stateEntry {
	e := entryPool.Get().(*stateEntry)
	e.table = tbl
	e.status = StatusActive
	return e
}

// recycle returns the entry's storage to the pool. orderRetained marks
// entries whose order slice escaped through a commit watcher (TO_STREAM
// holds it asynchronously); those lose the slice instead of reusing it.
// Callers must guarantee the owning transaction is finished and no other
// goroutine can reach the entry anymore.
func (e *stateEntry) recycle(orderRetained bool) {
	clear(e.idx) // keeps the buckets
	if orderRetained {
		e.order = nil
	} else {
		clear(e.order)
		e.order = e.order[:0]
	}
	clear(e.ops) // drop value references
	e.ops = e.ops[:0]
	e.table = nil
	e.status = StatusActive
	entryPool.Put(e)
}

// grow presizes the write set for at least n upcoming writes, avoiding
// incremental map/slice growth on the batched write path.
func (e *stateEntry) grow(n int) {
	if e.idx == nil {
		if n < 8 {
			n = 8
		}
		e.idx = make(map[string]int, n)
		e.order = make([]string, 0, n)
		e.ops = make([]writeOp, 0, n)
	}
}

func (e *stateEntry) write(key string, op writeOp) {
	if i, seen := e.idx[key]; seen {
		e.ops[i] = op
		return
	}
	e.grow(0)
	e.idx[key] = len(e.order)
	e.order = append(e.order, key)
	e.ops = append(e.ops, op)
}

// get returns the buffered operation for key, if any (read-your-writes).
func (e *stateEntry) get(key string) (writeOp, bool) {
	i, ok := e.idx[key]
	if !ok {
		return writeOp{}, false
	}
	return e.ops[i], true
}

// Txn is a transaction handle. A Txn is owned by the goroutines of one
// transaction context; the consistency protocol synchronizes the commit
// hand-off internally, and operators of one stream query may call
// CommitState from different goroutines. All other concurrent use of a
// single Txn is not supported, matching the paper's model where a
// transaction is one unit of stream progress.
type Txn struct {
	id   ID
	slot int
	ctx  *Context

	// mu guards the per-state entries (status flags and write sets), the
	// snapshot pins and the lock list. Operators of one stream query
	// share the Txn from different goroutines: several TO_TABLE
	// operators write and flag states concurrently, and one of them (or
	// the Transactions operator, on rollback) may abort while another is
	// still writing.
	mu sync.Mutex

	readOnly bool
	// finished flips once at commit/abort; atomic so hot-path checks need
	// no lock (mu is additionally held wherever finished is set together
	// with dependent state).
	finished atomic.Bool

	// states tracks every state the transaction touched.
	states map[StateID]*stateEntry

	// readCTS pins the snapshot per topology group at first read
	// (paper Section 4.2/4.3).
	readCTS map[GroupID]Timestamp

	// reads is the BOCC read set (keys per state); nil for other
	// protocols.
	reads map[StateID]map[string]struct{}

	// startTS is the counter value at Begin; BOCC validates against
	// transactions committed after it.
	startTS Timestamp

	// locks tracks S2PL lock ownership for release at commit/abort.
	locks []lockRef

	// chain links the transaction into the serial commit chain of its
	// windowed stream query (nil outside a window). Set once before the
	// first write (SetChain); read by commit admission and wait-die.
	chain *Chain

	// pinnedOldest is what this transaction forces OldestActiveVersion
	// to: the minimum snapshot it may still read. 0 = no pin yet. It is
	// read concurrently by the GC horizon scan, hence atomic.
	pinnedOldest atomic.Uint64

	// done closes when the transaction finishes (commit or abort). The
	// stream layer uses it to serialize the consecutive transactions of
	// one continuous query: batch N+1 must not begin until batch N is
	// decided, because the paper's model treats a stream query as a
	// SEQUENCE of transactions, not a set of concurrent ones.
	done chan struct{}
}

// Done returns a channel closed when the transaction has committed or
// aborted.
func (t *Txn) Done() <-chan struct{} { return t.done }

// ID returns the transaction's logical timestamp identifier.
func (t *Txn) ID() ID { return t.id }

// ReadOnly reports whether the transaction was started read-only.
func (t *Txn) ReadOnly() bool { return t.readOnly }

func (t *Txn) entry(tbl *Table) *stateEntry {
	e, ok := t.states[tbl.id]
	if !ok {
		e = newStateEntry(tbl)
		t.states[tbl.id] = e
	}
	return e
}

// Declare registers tables this transaction is going to access before it
// commits, mirroring the paper's per-transaction "list of accessed
// states" in the context (Figure 3). Declaration matters for the
// consistency protocol in pipelined dataflows: the coordinator is
// whoever flips the LAST state to Commit, so every state of the query
// must be on the list before the first CommitState arrives — otherwise
// an upstream TO_TABLE could commit the transaction before a downstream
// operator ever saw it. stream.Transactions declares automatically.
func (t *Txn) Declare(tables ...*Table) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished.Load() {
		return ErrFinished
	}
	for _, tbl := range tables {
		if tbl.group == nil {
			return fmt.Errorf("%w: %q", ErrUnknownState, tbl.id)
		}
		t.entry(tbl)
	}
	return nil
}

// pin returns the snapshot timestamp to read table tbl at, pinning the
// group's LastCTS on first contact. When the transaction has pinned
// multiple groups that share states, the oldest pinned snapshot wins
// (the paper's overlap rule: "the older version must be read").
func (t *Txn) pin(tbl *Table) Timestamp {
	g := tbl.group
	rts, ok := t.readCTS[g.id]
	if !ok {
		// Store-then-validate: publish the GC pin, then confirm no commit
		// slipped in between. A commit that computed its GC horizon before
		// our pin became visible could reclaim versions still visible at
		// rts — but any such commit publishes a LastCTS greater than rts,
		// so re-reading LastCTS detects the race and we retry with the
		// newer snapshot. On exit, every version with dts > rts is
		// protected: commits whose horizon predates our pin have
		// cts <= rts, and all later commits see the pin.
		for {
			rts = g.LastCTS()
			if p := t.pinnedOldest.Load(); p == 0 || rts < p {
				t.pinnedOldest.Store(rts)
			}
			if g.LastCTS() == rts {
				break
			}
		}
		t.readCTS[g.id] = rts
	}
	// Overlap rule: if any *other* pinned group contains this state, the
	// effective snapshot is the minimum of the pins.
	if len(t.readCTS) > 1 {
		for gid, other := range t.readCTS {
			if gid == g.id {
				continue
			}
			og, found := t.ctx.group(gid)
			if found && og.contains(tbl.id) && other < rts {
				rts = other
			}
		}
	}
	return rts
}

// trackRead records key into the BOCC read set.
func (t *Txn) trackRead(st StateID, key string) {
	if t.reads == nil {
		return
	}
	m, ok := t.reads[st]
	if !ok {
		m = make(map[string]struct{})
		t.reads[st] = m
	}
	m[key] = struct{}{}
}
