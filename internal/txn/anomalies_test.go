package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// This file pins down the isolation level the paper's MVCC protocol
// provides — snapshot isolation, no more and no less — as a table of
// anomaly scenarios run through the group-commit pipeline. Lost updates
// and write-write races must abort (First-Committer-Wins); write skew is
// permitted, because SI validates write sets only and the paper claims
// exactly SI, not serializability.
func TestSIAnomalyMatrix(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, p *SI, e *env)
	}{
		{
			// Classic lost update: both transactions read the same
			// counter, both write it back. The second committer must
			// abort with ErrConflict, so no increment is ever lost.
			name: "lost update aborts second committer",
			run: func(t *testing.T, p *SI, e *env) {
				write(t, p, e.t1, "ctr", "10")
				tx1, _ := p.Begin()
				tx2, _ := p.Begin()
				for _, tx := range []*Txn{tx1, tx2} {
					if _, _, err := p.Read(tx, e.t1, "ctr"); err != nil {
						t.Fatal(err)
					}
					if err := p.Write(tx, e.t1, "ctr", []byte("11")); err != nil {
						t.Fatal(err)
					}
				}
				mustCommit(t, p, tx1)
				err := p.Commit(tx2)
				if !errors.Is(err, ErrConflict) {
					t.Fatalf("lost update admitted: %v", err)
				}
				if v, _ := readOne(t, p, e.t1, "ctr"); v != "11" {
					t.Fatalf("counter = %q, want winner's 11", v)
				}
			},
		},
		{
			// First-Committer-Wins applies to blind writes too: neither
			// transaction read the key, but their write sets overlap and
			// they ran concurrently.
			name: "first-committer-wins on blind writes",
			run: func(t *testing.T, p *SI, e *env) {
				tx1, _ := p.Begin()
				tx2, _ := p.Begin()
				if err := p.Write(tx1, e.t1, "k", []byte("one")); err != nil {
					t.Fatal(err)
				}
				if err := p.Write(tx2, e.t1, "k", []byte("two")); err != nil {
					t.Fatal(err)
				}
				mustCommit(t, p, tx1)
				if err := p.Commit(tx2); !errors.Is(err, ErrConflict) {
					t.Fatalf("blind write-write race admitted: %v", err)
				}
				if v, _ := readOne(t, p, e.t1, "k"); v != "one" {
					t.Fatalf("k = %q, want one", v)
				}
			},
		},
		{
			// Write skew IS permitted: tx1 reads x and writes y, tx2
			// reads y and writes x. Write sets are disjoint, so both
			// commit — a serializable system would abort one. This
			// documents that the protocol is exactly SI (the paper's
			// claim), not serializable.
			name: "write skew permitted (SI, not serializable)",
			run: func(t *testing.T, p *SI, e *env) {
				tx, _ := p.Begin()
				p.Write(tx, e.t1, "x", []byte("1"))
				p.Write(tx, e.t1, "y", []byte("1"))
				mustCommit(t, p, tx)

				tx1, _ := p.Begin()
				tx2, _ := p.Begin()
				if _, _, err := p.Read(tx1, e.t1, "x"); err != nil {
					t.Fatal(err)
				}
				if _, _, err := p.Read(tx2, e.t1, "y"); err != nil {
					t.Fatal(err)
				}
				if err := p.Write(tx1, e.t1, "y", []byte("0")); err != nil {
					t.Fatal(err)
				}
				if err := p.Write(tx2, e.t1, "x", []byte("0")); err != nil {
					t.Fatal(err)
				}
				if err := p.Commit(tx1); err != nil {
					t.Fatalf("write-skew tx1 aborted, SI must admit it: %v", err)
				}
				if err := p.Commit(tx2); err != nil {
					t.Fatalf("write-skew tx2 aborted, SI must admit it: %v", err)
				}
				// Both zeroed: the skew happened, as SI semantics dictate.
				x, _ := readOne(t, p, e.t1, "x")
				y, _ := readOne(t, p, e.t1, "y")
				if x != "0" || y != "0" {
					t.Fatalf("x=%q y=%q, want both 0", x, y)
				}
			},
		},
		{
			// Read-only transactions never conflict, no matter how much
			// churn commits around their snapshot.
			name: "read-only snapshot never aborts",
			run: func(t *testing.T, p *SI, e *env) {
				write(t, p, e.t1, "k", "v0")
				r, _ := p.BeginReadOnly()
				if _, _, err := p.Read(r, e.t1, "k"); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 20; i++ {
					write(t, p, e.t1, "k", fmt.Sprintf("v%d", i+1))
				}
				if v, _, _ := p.Read(r, e.t1, "k"); string(v) != "v0" {
					t.Fatalf("snapshot moved: %q", v)
				}
				if err := p.Commit(r); err != nil {
					t.Fatalf("read-only commit aborted: %v", err)
				}
			},
		},
		{
			// Same-batch First-Committer-Wins: many writers of one key
			// commit concurrently, so several of them land in the same
			// group-commit batch and are admitted against the batch
			// overlay, not just installed versions. Exactly one writer
			// per round may win; every loser must see ErrConflict.
			name: "concurrent single-key writers: one winner per round",
			run: func(t *testing.T, p *SI, e *env) {
				const writers = 8
				for round := 0; round < 25; round++ {
					// Begin and write (pinning every snapshot) BEFORE any
					// commit, so all eight transactions are pairwise
					// concurrent: exactly one may win. The commits then
					// race, so several land in one group-commit batch and
					// are admitted against the batch overlay, not just
					// installed versions.
					txns := make([]*Txn, writers)
					for w := range txns {
						tx, err := p.Begin()
						if err != nil {
							t.Fatal(err)
						}
						if err := p.Write(tx, e.t1, "hot", []byte{byte(w)}); err != nil {
							t.Fatal(err)
						}
						txns[w] = tx
					}
					var wg sync.WaitGroup
					var wins, conflicts int
					var mu sync.Mutex
					for _, tx := range txns {
						wg.Add(1)
						go func(tx *Txn) {
							defer wg.Done()
							err := p.Commit(tx)
							mu.Lock()
							defer mu.Unlock()
							switch {
							case err == nil:
								wins++
							case errors.Is(err, ErrConflict):
								conflicts++
							default:
								t.Errorf("unexpected commit error: %v", err)
							}
						}(tx)
					}
					wg.Wait()
					if wins != 1 || conflicts != writers-1 {
						t.Fatalf("round %d: %d winners, %d conflicts (want 1/%d)",
							round, wins, conflicts, writers-1)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			tc.run(t, NewSI(e.ctx), e)
		})
	}
}
