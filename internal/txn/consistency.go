package txn

import (
	"fmt"
	"sort"
	"time"

	"sistream/internal/kv"
)

// This file implements the consistency protocol of the paper's
// Section 4.3 — the lightweight 2-phase-commit variant coordinating
// commits across the multiple states of a topology group — together with
// the commit machinery shared by all three concurrency-control protocols
// ("All concurrency control protocols use fundamentally the same
// consistency protocol", Section 5).
//
// Protocol recap: every operator maintaining a state flags its
// (transaction, state) pair with StatusCommit when its part of the
// transaction is done. The caller that flips the LAST flag becomes the
// coordinator and performs the global commit: installing all versions,
// persisting one batch per base store, and finally publishing the
// group's LastCTS in a single atomic store — the instant the whole
// multi-state commit becomes visible. One StatusAbort flag anywhere
// aborts the transaction globally.

// Protocol is the common interface of the three concurrency-control
// protocols. All methods returning an error may return an ErrAborted
// variant, after which the transaction is finished and the caller decides
// whether to retry with a fresh Begin.
type Protocol interface {
	// Name identifies the protocol in benchmark reports: "mvcc",
	// "s2pl" or "bocc".
	Name() string
	// Begin starts a read-write transaction.
	Begin() (*Txn, error)
	// BeginReadOnly starts a read-only transaction (ad-hoc queries).
	BeginReadOnly() (*Txn, error)
	// Read returns the value of key in tbl visible to tx.
	Read(tx *Txn, tbl *Table, key string) ([]byte, bool, error)
	// Write buffers an update of key in tbl into tx's write set.
	Write(tx *Txn, tbl *Table, key string, value []byte) error
	// Delete buffers a deletion of key in tbl.
	Delete(tx *Txn, tbl *Table, key string) error
	// WriteBatch buffers a batch of updates/deletions of one table,
	// equivalent to the same sequence of Write/Delete calls but with the
	// per-call overhead — state-entry resolution, snapshot pinning, the
	// transaction latch — paid once per batch. It returns the number of
	// operations applied; on error the transaction is aborted exactly as
	// the corresponding single-operation call would have aborted it, and
	// operations from the failing one onward are not applied.
	WriteBatch(tx *Txn, tbl *Table, ops []WriteOp) (int, error)
	// CommitState flags tbl as ready to commit for tx; when it is the
	// last accessed state, the caller executes the global commit
	// (consistency protocol, Section 4.3).
	CommitState(tx *Txn, tbl *Table) error
	// Commit flags all states and executes the global commit.
	Commit(tx *Txn) error
	// Abort aborts tx globally, dropping all uncommitted writes.
	Abort(tx *Txn) error
	// Context returns the state context the protocol operates on.
	Context() *Context
}

// protocolBase carries the machinery shared by the three protocols.
type protocolBase struct {
	ctx *Context
}

// Context returns the protocol's state context.
func (p *protocolBase) Context() *Context { return p.ctx }

func (p *protocolBase) begin(readOnly bool) (*Txn, error) {
	t := &Txn{
		id:       p.ctx.next(),
		ctx:      p.ctx,
		readOnly: readOnly,
		states:   make(map[StateID]*stateEntry),
		readCTS:  make(map[GroupID]Timestamp),
		done:     make(chan struct{}),
	}
	t.startTS = t.id
	if err := p.ctx.register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// requireGroup validates that tbl is usable transactionally.
func requireGroup(tbl *Table) error {
	if tbl.group == nil {
		return fmt.Errorf("%w: %q", ErrUnknownState, tbl.id)
	}
	return nil
}

// errReadOnlyWrite reports a write attempted in a read-only transaction.
func errReadOnlyWrite(tx *Txn) error {
	return fmt.Errorf("txn: write in read-only transaction %d", tx.id)
}

// bufferWrite records a write into tx's uncommitted write set. Writes
// "are merely appended to the write set" and never block (Section 4.2).
func bufferWrite(tx *Txn, tbl *Table, key string, op writeOp) error {
	if tx.readOnly {
		return errReadOnlyWrite(tx)
	}
	if err := requireGroup(tbl); err != nil {
		return err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.finished.Load() {
		return ErrFinished
	}
	tx.entry(tbl).write(key, op)
	return nil
}

// bufferWriteBatch appends a whole batch of operations to tx's write set
// under a single latch acquisition — the batched analogue of bufferWrite.
// Values are copied, as with single writes. When pin is set the table's
// group snapshot is pinned first (SI semantics; see SI.Write).
func bufferWriteBatch(tx *Txn, tbl *Table, ops []WriteOp, pin bool) (int, error) {
	if tx.readOnly {
		return 0, errReadOnlyWrite(tx)
	}
	if err := requireGroup(tbl); err != nil {
		return 0, err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.finished.Load() {
		return 0, ErrFinished
	}
	if pin {
		tx.pin(tbl)
	}
	e := tx.entry(tbl)
	e.grow(len(ops))
	for _, op := range ops {
		if op.Delete {
			e.write(op.Key, writeOp{delete: true})
		} else {
			e.write(op.Key, writeOp{value: append([]byte(nil), op.Value...)})
		}
	}
	return len(ops), nil
}

// storeBatch is the per-base-store coalesced durability batch built by a
// commit: all row writes plus the LastCTS watermark, applied with one
// (optionally synchronous) Apply. The group-commit leader caches one per
// store on the Group (leader-owned under commitMu), so the ops array and
// the row-key arena are reused across tenures instead of reallocated per
// batch.
type storeBatch struct {
	store kv.Store
	batch *kv.Batch
	sync  bool
	arena []byte // backing for all row keys of this batch
}

// storeScratch returns the group's cached scratch batch for st, reset for
// a new tenure. Caller holds g.commitMu.
func (g *Group) storeScratch(st kv.Store) *storeBatch {
	if g.sbCache == nil {
		g.sbCache = make(map[kv.Store]*storeBatch, 1)
	}
	sb := g.sbCache[st]
	if sb == nil {
		sb = &storeBatch{store: st, batch: kv.NewBatch(0)}
		g.sbCache[st] = sb
	}
	sb.batch.Reset()
	sb.arena = sb.arena[:0]
	sb.sync = false
	return sb
}

// recycleTxn returns a finished transaction's write-set storage to the
// entry pool. orderRetained marks entries whose key order escaped to a
// commit watcher (TO_STREAM holds those slices asynchronously). Safe only
// once the transaction is finished: the finished flag (checked under
// tx.mu by every accessor) guarantees no goroutine reaches the entries.
func recycleTxn(tx *Txn, orderRetained bool) {
	tx.mu.Lock()
	for _, e := range tx.states {
		e.recycle(orderRetained && len(e.order) > 0)
	}
	tx.states = nil
	tx.mu.Unlock()
}

// commitState implements the per-state flag protocol. finishFn runs the
// protocol-specific global commit when this call flipped the last flag.
func commitState(tx *Txn, tbl *Table, finishFn func() error) error {
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	e, ok := tx.states[tbl.id]
	if !ok {
		// Committing a state the transaction never touched: register an
		// empty entry so the accounting still works (a TO_TABLE operator
		// may see only punctuations for some batch).
		e = tx.entry(tbl)
	}
	if e.status == StatusAbort {
		tx.mu.Unlock()
		return ErrAborted
	}
	e.status = StatusCommit
	for _, other := range tx.states {
		if other.status != StatusCommit {
			// Not the last flag: another operator will coordinate.
			tx.mu.Unlock()
			return nil
		}
	}
	// This caller flipped the last flag: it becomes the coordinator
	// (Section 4.3) and must perform the global commit.
	tx.mu.Unlock()
	return finishFn()
}

// commitAll flags every touched state and runs the global commit.
func commitAll(tx *Txn, finishFn func() error) error {
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	for _, e := range tx.states {
		if e.status == StatusAbort {
			tx.mu.Unlock()
			return ErrAborted
		}
		e.status = StatusCommit
	}
	tx.mu.Unlock()
	return finishFn()
}

// flagState flips tx's commit flag for tbl without running the global
// commit, reporting whether this flip completed the transaction's flag set
// (the caller became the coordinator). It is commitState with the
// finishFn decoupled — the chain commit path flags several transactions
// before performing their global commits as one batch.
func flagState(tx *Txn, tbl *Table) (coordinator bool, err error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.finished.Load() {
		return false, ErrFinished
	}
	e, ok := tx.states[tbl.id]
	if !ok {
		e = tx.entry(tbl)
	}
	if e.status == StatusAbort {
		return false, ErrAborted
	}
	e.status = StatusCommit
	for _, other := range tx.states {
		if other.status != StatusCommit {
			return false, nil
		}
	}
	return true, nil
}

// commitChain is the shared implementation of ChainCommitter (see
// chain.go): flag tbls on every transaction in order, then globally
// commit the transactions whose flag set completed, submitting maximal
// consecutive runs that commit into the SAME single topology group as one
// multi-request pipeline submission (groupCommitMany) — one leader tenure
// and one coalesced durability batch for the whole run. Transactions
// spanning groups, or with nothing written, break the run and commit
// individually, preserving chain order (and thus ascending commit
// timestamps per key) throughout. admitFor supplies the protocol's
// admission check per transaction (nil for none); after, when non-nil,
// runs once per coordinated transaction after its commit attempt (S2PL
// releases its locks there).
func (p *protocolBase) commitChain(txs []*Txn, tbls []*Table, admitFor func(*Txn) func(*commitOverlay) error, after func(*Txn)) [][]error {
	errs := make([][]error, len(txs))
	type coord struct {
		tx     *Txn
		txIdx  int
		tblIdx int
	}
	var coords []coord
	for i, tx := range txs {
		errs[i] = make([]error, len(tbls))
		for j, tbl := range tbls {
			if err := requireGroup(tbl); err != nil {
				errs[i][j] = err
				continue
			}
			became, err := flagState(tx, tbl)
			errs[i][j] = err
			if became {
				coords = append(coords, coord{tx: tx, txIdx: i, tblIdx: j})
			}
		}
	}

	// Global commits, in chain order. runReqs accumulates the current
	// same-group run; flush submits it as one pipeline unit, records the
	// verdicts and runs the per-transaction epilogue for exactly that run
	// — so S2PL locks fall as soon as their run is installed and visible,
	// never held across a later run's durability.
	var (
		runReqs   []*commitReq
		runCoords []coord
		runGroup  *Group
	)
	flush := func() {
		if len(runReqs) == 0 {
			return
		}
		p.groupCommitMany(runGroup, runReqs)
		for i, c := range runCoords {
			errs[c.txIdx][c.tblIdx] = runReqs[i].err
			if after != nil {
				after(c.tx)
			}
		}
		runReqs, runCoords, runGroup = nil, nil, nil
	}
	for _, c := range coords {
		admit := func(*commitOverlay) error { return nil }
		if admitFor != nil {
			if a := admitFor(c.tx); a != nil {
				admit = a
			}
		}
		groups := txGroups(c.tx)
		switch len(groups) {
		case 0:
			// Nothing written: finish inline (no timestamp consumed, so
			// order relative to the run is immaterial).
			p.finish(c.tx)
			recycleTxn(c.tx, false)
			if after != nil {
				after(c.tx)
			}
		case 1:
			g := groups[0]
			if runGroup != nil && g != runGroup {
				flush()
			}
			runGroup = g
			runReqs = append(runReqs, &commitReq{tx: c.tx, admit: admit, ready: make(chan struct{})})
			runCoords = append(runCoords, c)
		default:
			flush()
			errs[c.txIdx][c.tblIdx] = p.multiGroupCommit(groups, c.tx, admit)
			if after != nil {
				after(c.tx)
			}
		}
	}
	flush()
	return errs
}

// groupCommitMany submits several already-ordered commit requests of one
// chain to g's pipeline as a unit: all requests enter the queue in a
// single append, so one leader tenure drains them together (the whole
// point of cross-transaction batching — one coalesced store batch and one
// fsync for the run). The caller then leads or parks exactly as a single
// committer does in groupCommit, handling the leadership baton on any of
// its requests.
func (p *protocolBase) groupCommitMany(g *Group, reqs []*commitReq) {
	if err := g.Err(); err != nil {
		// Fail-stop fast path: the group is poisoned, nothing may be
		// enqueued. Every request is decided here with the sticky error.
		p.failReqs(reqs, err)
		return
	}
	g.qmu.Lock()
	g.pending = append(g.pending, reqs...)
	lead := !g.leaderActive
	if lead {
		g.leaderActive = true
	}
	g.qmu.Unlock()
	if lead {
		p.leadGroup(g)
	} else {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	for _, req := range reqs {
		<-req.ready
		if req.promoted {
			// Retiring leader handed us the baton with this request (and
			// therefore every later one of ours) still pending: lead the
			// batch containing it; leaderCommit decides it synchronously.
			req.promoted = false
			req.ready = make(chan struct{})
			p.leadGroup(g)
			<-req.ready
		}
	}
}

// finish releases the transaction's slot exactly once.
func (p *protocolBase) finish(tx *Txn) {
	tx.mu.Lock()
	already := tx.finished.Swap(true)
	tx.mu.Unlock()
	if !already {
		close(tx.done)
		p.ctx.unregister(tx)
	}
}

// abort drops all write sets and releases the slot. "It is enough ... to
// simply clear the corresponding write set and release the memory"
// (Section 4.2).
func (p *protocolBase) abort(tx *Txn) error {
	tx.mu.Lock()
	if tx.finished.Swap(true) {
		tx.mu.Unlock()
		return ErrFinished
	}
	for _, e := range tx.states {
		e.recycle(false)
	}
	tx.states = nil
	tx.mu.Unlock()
	close(tx.done)
	p.ctx.unregister(tx)
	return nil
}

// txGroups returns the distinct groups of the transaction's states.
func txGroups(tx *Txn) []*Group {
	seen := map[GroupID]*Group{}
	for _, e := range tx.states {
		g := e.table.group
		seen[g.id] = g
	}
	out := make([]*Group, 0, len(seen))
	for _, g := range seen {
		out = append(out, g)
	}
	return out
}

// sortedEntries returns the transaction's state entries in StateID order
// for deterministic install and batch layout.
func sortedEntries(tx *Txn) []*stateEntry {
	out := make([]*stateEntry, 0, len(tx.states))
	for _, e := range tx.states {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].table.id < out[j].table.id })
	return out
}

// commitReq is one validated transaction parked on a group's commit
// queue. err is written by the batch leader before it closes ready and
// read by the owning goroutine only after ready is closed, so the channel
// orders the accesses.
type commitReq struct {
	tx      *Txn
	admit   func(ov *commitOverlay) error
	entries []*stateEntry // filled by the leader once admitted
	cts     Timestamp
	err     error
	// promoted marks a leadership handoff instead of a decision: the
	// retiring leader closes ready with promoted set, and the owner —
	// whose request is still pending — leads the next batch itself.
	promoted bool
	ready    chan struct{}
}

// commitOverlay exposes the writes admitted earlier in the same
// group-commit batch. Admission checks (First-Committer-Wins) must see
// those writes even though their versions are not installed yet —
// otherwise two same-batch writers of one key would both pass. Outside a
// batch (multi-group slow path) the overlay is nil and latestCTS falls
// back to the installed version store alone.
type commitOverlay struct {
	pending map[*Table]map[string]Timestamp
}

// latestCTS returns the newest commit timestamp of key in tbl, combining
// installed versions with writes admitted earlier in this batch.
func (ov *commitOverlay) latestCTS(tbl *Table, key string) Timestamp {
	var latest Timestamp
	if o := tbl.object(key, false); o != nil {
		latest = o.LatestCTS()
	}
	if ov != nil {
		if ts := ov.pending[tbl][key]; ts > latest {
			latest = ts
		}
	}
	return latest
}

// record notes an admitted write at cts for later admission checks in the
// same batch.
func (ov *commitOverlay) record(tbl *Table, key string, cts Timestamp) {
	if ov.pending == nil {
		ov.pending = make(map[*Table]map[string]Timestamp)
	}
	m := ov.pending[tbl]
	if m == nil {
		m = make(map[string]Timestamp)
		ov.pending[tbl] = m
	}
	m[key] = cts
}

// installCommit is the coordinator's global commit, shared by all
// protocols. Transactions whose states all belong to one topology group —
// the continuous-query common case — go through the group-commit pipeline
// (groupCommit); transactions spanning groups take the slow path under
// the commit latches of every involved group (multiGroupCommit). The
// caller (via commitState/commitAll) has already established that it is
// the coordinator.
func (p *protocolBase) installCommit(tx *Txn, admit func(*commitOverlay) error) error {
	groups := txGroups(tx)
	switch len(groups) {
	case 0:
		// Nothing written (read-only or empty transaction).
		p.finish(tx)
		recycleTxn(tx, false)
		return nil
	case 1:
		return p.groupCommit(groups[0], tx, admit)
	}
	return p.multiGroupCommit(groups, tx, admit)
}

// groupCommitLinger bounds how long a batch leader collects followers for
// the next batch once commit pressure is established. The collection is
// wake-driven — each enqueue nudges the leader, and it stops as soon as
// the queue has reached the previous batch's size — so under steady
// pressure the timer never fires; it is the fallback that bounds the wait
// when the offered load drops below the previous batch size.
const groupCommitLinger = 200 * time.Microsecond

// groupCommit runs the group-commit pipeline for a transaction confined
// to one topology group. The committer enqueues its validated request; if
// a batch leader is already active the committer nudges it (wake) and
// parks on the request's ready channel — either the leader commits the
// request in its batch, or it hands the parked committer the leadership
// baton on retirement (promoted). Otherwise the committer claims
// leadership itself. A leader's tenure is exactly ONE batch (leadGroup),
// so a committer is never conscripted into serving other transactions
// indefinitely — in particular an S2PL committer's row locks are released
// after one batch, as with the original per-commit latch.
func (p *protocolBase) groupCommit(g *Group, tx *Txn, admit func(*commitOverlay) error) error {
	if err := g.Err(); err != nil {
		// Fail-stop fast path: a poisoned group rejects commits before
		// they queue (leaderCommit re-checks for requests that raced in).
		p.abortLocked(tx)
		return err
	}
	req := &commitReq{tx: tx, admit: admit, ready: make(chan struct{})}
	g.qmu.Lock()
	g.pending = append(g.pending, req)
	if g.leaderActive {
		g.qmu.Unlock()
		// Nudge a collecting leader. The send never blocks (capacity 1);
		// a stale token at worst costs the leader one extra queue check.
		select {
		case g.wake <- struct{}{}:
		default:
		}
		<-req.ready
		if !req.promoted {
			return req.err
		}
		// Retiring leader handed us the baton: our request is still
		// pending, so lead the batch that will contain it.
		req.promoted = false
		req.ready = make(chan struct{})
	} else {
		g.leaderActive = true
		g.qmu.Unlock()
	}

	p.leadGroup(g)
	// The leader's own request was part of the batch it led; err is set
	// (and ready closed) by leaderCommit.
	return req.err
}

// leadGroup serves one leader tenure: collect a batch, commit it, then
// hand leadership to a parked committer (if any are pending) or release
// it. The claimant's own request is always in the queue, so the drained
// batch is never empty.
//
// Batch formation is adaptive: the previous batch's size (g.batchTarget,
// leader-owned under commitMu) estimates the number of concurrently
// active committers, and the leader collects arrivals until the queue
// reaches that estimate — parking between wakes, so unrelated goroutines
// keep the CPU — or the linger timer expires. A lone committer (previous
// batch of one) never collects and never pays the linger. Leadership is
// released only with the queue observably empty (checked under qmu), so
// no request is ever stranded: an enqueuer that finds no active leader IS
// the leader for the batch containing its request, and a retiring leader
// that leaves requests behind promotes one of their owners.
func (p *protocolBase) leadGroup(g *Group) {
	g.commitMu.Lock()
	if g.batchTarget > 1 {
		// Collect up to the previous batch's size before draining.
		timer := time.NewTimer(groupCommitLinger)
	collect:
		for {
			g.qmu.Lock()
			n := len(g.pending)
			g.qmu.Unlock()
			if n >= g.batchTarget {
				break
			}
			select {
			case <-g.wake:
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	g.qmu.Lock()
	batch := g.pending
	g.pending = nil
	g.qmu.Unlock()
	// Drain a stale wake token so the next tenure's collection starts
	// clean.
	select {
	case <-g.wake:
	default:
	}
	g.batchTarget = len(batch)
	p.leaderCommit(g, batch)

	// Retire: pass the baton to a parked committer, or release.
	g.qmu.Lock()
	if len(g.pending) > 0 {
		next := g.pending[0]
		next.promoted = true
		close(next.ready)
	} else {
		g.leaderActive = false
	}
	g.qmu.Unlock()
	g.commitMu.Unlock()

	// Housekeeping off the latch: the retiring leader sweeps any member
	// table whose opt-in GC threshold was reached. New commits proceed
	// concurrently (the next leader holds commitMu; the sweep takes only
	// per-object writer mutexes).
	for _, tbl := range g.tables {
		tbl.maybeGC()
	}
}

// leaderCommit commits one batch of enqueued transactions. Caller holds
// g.commitMu. The pipeline:
//
//  1. snapshot the GC horizon, then reserve a contiguous commit-timestamp
//     range — one timestamp per request, assigned in arrival order. The
//     horizon is taken BEFORE the range, so every version this batch
//     terminates has dts greater than the horizon and can never be
//     reclaimed by the batch's own installs (see Txn.pin).
//  2. admit each request in arrival order against a batch overlay so
//     First-Committer-Wins sees writes of earlier same-batch admissions;
//     a rejected request aborts immediately with no state modified.
//  3. durability: ONE coalesced batch per distinct base store — all
//     admitted rows plus one LastCTS watermark per touched table — with a
//     single (optionally synchronous) Apply. This is where group commit
//     pays: N transactions share one fsync. A failed store aborts the
//     whole batch; nothing was installed yet, so memory is untouched and
//     partially persisted stores reconcile at recovery via the watermark
//     (see CreateGroup).
//  4. install all versions in commit-timestamp order (cannot fail:
//     version arrays grow on demand and installers of one group are
//     serialized by the latch).
//  5. publish LastCTS once for the batch — the single atomic store that
//     makes every member transaction visible, completely or not at all —
//     then notify watchers per transaction in commit order.
func (p *protocolBase) leaderCommit(g *Group, batch []*commitReq) {
	if err := g.Err(); err != nil {
		// The group was poisoned after these requests passed the enqueue
		// fast path; decide them all with the sticky error.
		p.failReqs(batch, err)
		return
	}
	tenureStart := time.Now()
	horizon := p.ctx.OldestActiveVersion()
	n := uint64(len(batch))
	base := p.ctx.counter.Add(n) - n

	// Phase 2: admission in arrival order.
	var (
		admitted []*commitReq
		overlay  commitOverlay
		maxCTS   Timestamp
	)
	for i, req := range batch {
		if req.admit != nil {
			if err := req.admit(&overlay); err != nil {
				req.err = err
				p.abortLocked(req.tx)
				close(req.ready)
				continue
			}
		}
		req.cts = base + uint64(i) + 1
		req.entries = sortedEntries(req.tx)
		if ch := req.tx.chain; ch != nil {
			// Raise the chain's committed floor BEFORE later requests are
			// admitted: a chain successor in this very batch must see its
			// predecessor's writes as serial history, not as a conflict.
			ch.raise(req.cts)
		}
		if i+1 < len(batch) {
			// Later requests in this batch must see these writes in
			// their admission check; the final request has no successors,
			// so recording its writes would be dead work.
			for _, e := range req.entries {
				for _, key := range e.order {
					overlay.record(e.table, key, req.cts)
				}
			}
		}
		admitted = append(admitted, req)
		maxCTS = req.cts
	}
	if len(admitted) == 0 {
		return
	}
	admitDone := time.Now()

	// Phase 3: durability, one coalesced batch per distinct base store.
	// The scratch batches (ops array, row-key arena) are cached on the
	// group across tenures, so coalescing allocates nothing steady-state.
	var (
		batches []*storeBatch
		tables  []*Table
		// Secondary-index maintenance: posting mutations per admitted
		// request (installed in phase 4 at the request's cts), and the
		// pending post-write images of keys already visited in this batch
		// (the pre-image of a later same-batch write of the same key).
		// Both stay nil while no touched table has indexes.
		reqDeltas [][]indexDelta
		preimage  map[*Table]map[string]rowImage
	)
	getSB := func(st kv.Store) *storeBatch {
		for _, sb := range batches {
			if sb.store == st {
				return sb
			}
		}
		sb := g.storeScratch(st)
		batches = append(batches, sb)
		return sb
	}
	for ri, req := range admitted {
		var deltas []indexDelta
		for _, e := range req.entries {
			sb := getSB(e.table.store)
			ixs := e.table.indexSet()
			for i, key := range e.order {
				op := &e.ops[i]
				off := len(sb.arena)
				sb.arena = e.table.appendRowKey(sb.arena, key)
				rk := sb.arena[off:len(sb.arena):len(sb.arena)]
				// Owned variants: the arena outlives the Apply, and the
				// write-set values are immutable private copies.
				if op.delete {
					sb.batch.DeleteOwned(rk)
				} else {
					sb.batch.PutOwned(rk, op.value)
				}
				if len(ixs) > 0 {
					// Index mutations join the SAME durability batch as the
					// row (posting rows share its arena) and are stashed for
					// install at the SAME commit timestamp in phase 4 — the
					// index is never ahead of or behind its table.
					img, found := rowImage{}, false
					if m := preimage[e.table]; m != nil {
						img, found = m[key]
					}
					oldVal, hadOld := img.val, found && !img.del
					if !found {
						oldVal, hadOld = latestImage(e.table, op.obj, key)
					}
					start := len(deltas)
					deltas = indexDeltasFor(deltas, ixs, key, op.value, op.delete, oldVal, hadOld)
					for _, d := range deltas[start:] {
						ioff := len(sb.arena)
						sb.arena = d.ix.appendRowKey(sb.arena, d.ikey, d.pkey)
						irk := sb.arena[ioff:len(sb.arena):len(sb.arena)]
						if d.del {
							sb.batch.DeleteOwned(irk)
						} else {
							sb.batch.PutOwned(irk, nil)
						}
					}
					if preimage == nil {
						preimage = make(map[*Table]map[string]rowImage)
					}
					m := preimage[e.table]
					if m == nil {
						m = make(map[string]rowImage)
						preimage[e.table] = m
					}
					m[key] = rowImage{val: op.value, del: op.delete}
				}
			}
			// The sync point is requested only where the backend declares
			// SupportsSync: a volatile backend has nothing to fsync, so
			// the leader skips the request instead of issuing one the
			// store would silently ignore.
			if e.table.opts.SyncCommits && e.table.caps.SupportsSync {
				sb.sync = true
			}
			seen := false
			for _, t := range tables {
				if t == e.table {
					seen = true
					break
				}
			}
			if !seen {
				tables = append(tables, e.table)
			}
		}
		if deltas != nil {
			if reqDeltas == nil {
				reqDeltas = make([][]indexDelta, len(admitted))
			}
			reqDeltas[ri] = deltas
		}
	}
	// One watermark per touched table: everything below maxCTS in this
	// store is durable together with it.
	for _, tbl := range tables {
		getSB(tbl.store).batch.PutOwned(tbl.metaKey(), encodeTS(maxCTS))
	}
	for _, sb := range batches {
		if err := sb.store.Apply(sb.batch, sb.sync); err != nil {
			// Fail-stop: after a durability error the batch's persistence
			// is unknowable (stores applied earlier in this loop already
			// hold it durably, the failed one may hold any prefix). No
			// version was installed yet, so memory is clean — but ONLY a
			// restart can reconcile disk, so every group with a table on
			// any touched store is poisoned before the requests are
			// decided. Recovery resolves the divergence via the per-store
			// watermark (see CreateGroup).
			cause := fmt.Errorf("txn: commit durability: %w", err)
			stores := make([]kv.Store, len(batches))
			for i, b := range batches {
				stores[i] = b.store
			}
			g.fail(cause)
			p.ctx.failGroupsOnStores(stores, cause)
			p.failReqs(admitted, g.Err())
			return
		}
	}
	syncDone := time.Now()
	g.syncHist.Record(syncDone.Sub(admitDone).Nanoseconds())

	// Phase 4: in-memory version install, ascending commit timestamps.
	// Admission already resolved most objects (op.obj); only keys created
	// by this very batch still need the registry. Install cannot fail in
	// normal operation (version arrays grow on demand, installers are
	// serialized by the latch); an invariant trip is handled fail-stop —
	// the group is poisoned with the diagnostic and the whole batch stays
	// invisible (LastCTS is never published) — instead of killing the
	// embedding process.
	for ri, req := range admitted {
		for _, e := range req.entries {
			for i, key := range e.order {
				op := &e.ops[i]
				o := op.obj
				if o == nil {
					o = e.table.object(key, true)
				}
				if err := o.Install(req.cts, op.value, op.delete, horizon); err != nil {
					g.fail(fmt.Errorf("txn: install invariant violated: %w", err))
					p.failReqs(admitted, g.Err())
					return
				}
			}
		}
		if reqDeltas != nil {
			// Posting installs at the row's cts, right after the rows: a
			// snapshot sees the index mutation exactly when it sees the row.
			for _, d := range reqDeltas[ri] {
				if err := d.ix.install(d.ikey, d.pkey, req.cts, d.del, horizon); err != nil {
					g.fail(fmt.Errorf("txn: install invariant violated: %w", err))
					p.failReqs(admitted, g.Err())
					return
				}
			}
		}
	}

	// Phase 5: atomic visibility for the whole batch, then per-commit
	// watcher notifications (TO_STREAM triggers) in commit order.
	g.lastCTS.Store(maxCTS)
	g.commitTxns.Add(uint64(len(admitted)))
	g.commitBatches.Add(1)
	// Install latency excludes the durability Apply — it is the in-memory
	// half of the batch (admission + version install + publish). Watcher
	// notifications are excluded too: they run downstream consumers'
	// code and can block on feed backpressure, which is occupancy, not
	// commit cost.
	g.installHist.Record(admitDone.Sub(tenureStart).Nanoseconds() + time.Since(syncDone).Nanoseconds())
	g.batchEWMA.Observe(float64(len(admitted)))
	nowNs := syncDone.UnixNano()
	for _, tbl := range tables {
		tbl.lastCommitNanos.Store(nowNs)
	}
	for _, req := range admitted {
		var writes map[StateID][]string
		for _, e := range req.entries {
			if len(e.order) == 0 {
				continue
			}
			e.table.commitsSinceGC.Add(1)
			if writes == nil {
				writes = make(map[StateID][]string)
			}
			writes[e.table.id] = e.order
		}
		retained := false
		if writes != nil {
			retained = g.notify(req.cts, writes)
		}
		p.finish(req.tx)
		recycleTxn(req.tx, retained)
		close(req.ready)
	}
}

// multiGroupCommit is the slow path for transactions spanning topology
// groups: it takes the commit latch of every involved group in canonical
// ID order (quiescing their pipelines — a leader holds its group's latch
// for the whole batch) and commits the single transaction exactly as the
// original protocol did: admit, one durability batch per store, install,
// then one LastCTS publish per group so the cross-group commit is
// all-or-nothing for snapshot readers of any involved group.
func (p *protocolBase) multiGroupCommit(groups []*Group, tx *Txn, admit func(*commitOverlay) error) error {
	lockGroups(groups)
	defer func() {
		unlockGroups(groups)
		// Threshold-driven sweeps run after the latches are released so
		// they never extend the cross-group critical section.
		for _, g := range groups {
			for _, tbl := range g.tables {
				tbl.maybeGC()
			}
		}
	}()

	// Fail-stop: a poisoned group anywhere in the span rejects the whole
	// cross-group commit (checked under the latches so no failure can
	// race in between check and install).
	for _, g := range groups {
		if err := g.Err(); err != nil {
			p.abortLocked(tx)
			return err
		}
	}

	if admit != nil {
		if err := admit(nil); err != nil {
			p.abortLocked(tx)
			return err
		}
	}

	tenureStart := time.Now()
	entries := sortedEntries(tx)
	horizon := p.ctx.OldestActiveVersion()

	cts := p.ctx.next()
	if ch := tx.chain; ch != nil {
		ch.raise(cts)
	}

	// Durability precedes the in-memory install so a failed store leaves
	// no memory state behind: the transaction aborts as if it never
	// happened.
	type storeBatch struct {
		store kv.Store
		batch *kv.Batch
		sync  bool
	}
	var batches []*storeBatch
	var deltas []indexDelta
	byStore := map[kv.Store]*storeBatch{}
	for _, e := range entries {
		sb, ok := byStore[e.table.store]
		if !ok {
			sb = &storeBatch{store: e.table.store, batch: kv.NewBatch(len(e.order) + 1)}
			byStore[e.table.store] = sb
			batches = append(batches, sb)
		}
		ixs := e.table.indexSet()
		for i, key := range e.order {
			op := &e.ops[i]
			if op.delete {
				sb.batch.Delete(e.table.rowKey(key))
			} else {
				sb.batch.Put(e.table.rowKey(key), op.value)
			}
			if len(ixs) > 0 {
				// Single transaction: the pre-image is always the installed
				// state (a write set holds one op per key). Posting rows join
				// the same per-store durability batch as the rows.
				oldVal, hadOld := latestImage(e.table, op.obj, key)
				start := len(deltas)
				deltas = indexDeltasFor(deltas, ixs, key, op.value, op.delete, oldVal, hadOld)
				for _, d := range deltas[start:] {
					if d.del {
						sb.batch.Delete(d.ix.appendRowKey(nil, d.ikey, d.pkey))
					} else {
						sb.batch.Put(d.ix.appendRowKey(nil, d.ikey, d.pkey), nil)
					}
				}
			}
		}
		sb.batch.Put(e.table.metaKey(), encodeTS(cts))
		// Same capability gate as the single-group leader: no sync point
		// over backends that do not support one.
		if e.table.opts.SyncCommits && e.table.caps.SupportsSync {
			sb.sync = true
		}
	}
	applyStart := time.Now()
	for _, sb := range batches {
		if err := sb.store.Apply(sb.batch, sb.sync); err != nil {
			// No version was installed yet, so aborting here is clean in
			// memory — but stores applied earlier in this loop already
			// hold the batch durably (the multi-store tear window), so
			// every group with a table on any touched store is poisoned:
			// only restart + recovery (per-store watermark, see
			// CreateGroup) can reconcile the divergence.
			cause := fmt.Errorf("txn: commit durability: %w", err)
			stores := make([]kv.Store, len(batches))
			for i, b := range batches {
				stores[i] = b.store
			}
			p.ctx.failGroupsOnStores(stores, cause)
			p.abortLocked(tx)
			return cause
		}
	}
	syncDone := time.Now()

	// In-memory version install. An invariant trip is fail-stop: every
	// involved group is poisoned with the diagnostic and the commit stays
	// invisible (no LastCTS publish), instead of panicking the process.
	for _, e := range entries {
		for i, key := range e.order {
			op := &e.ops[i]
			if err := e.table.object(key, true).Install(cts, op.value, op.delete, horizon); err != nil {
				cause := fmt.Errorf("txn: install invariant violated: %w", err)
				for _, g := range groups {
					g.fail(cause)
				}
				p.abortLocked(tx)
				return fmt.Errorf("%w: %w", ErrGroupFailed, cause)
			}
		}
	}
	for _, d := range deltas {
		if err := d.ix.install(d.ikey, d.pkey, cts, d.del, horizon); err != nil {
			cause := fmt.Errorf("txn: install invariant violated: %w", err)
			for _, g := range groups {
				g.fail(cause)
			}
			p.abortLocked(tx)
			return fmt.Errorf("%w: %w", ErrGroupFailed, cause)
		}
	}

	// Atomic visibility, then commit watchers per group. The slow path is
	// a batch of one: each involved group records the same durability and
	// install latencies under its own profile.
	syncNs := syncDone.Sub(applyStart).Nanoseconds()
	installNs := applyStart.Sub(tenureStart).Nanoseconds() + time.Since(syncDone).Nanoseconds()
	retained := false
	for _, g := range groups {
		g.lastCTS.Store(cts)
		g.commitTxns.Add(1)
		g.commitBatches.Add(1)
		g.syncHist.Record(syncNs)
		g.installHist.Record(installNs)
		g.batchEWMA.Observe(1)
	}
	nowNs := syncDone.UnixNano()
	for _, g := range groups {
		var writes map[StateID][]string
		for _, e := range entries {
			if e.table.group != g || len(e.order) == 0 {
				continue
			}
			e.table.commitsSinceGC.Add(1)
			e.table.lastCommitNanos.Store(nowNs)
			if writes == nil {
				writes = make(map[StateID][]string)
			}
			writes[e.table.id] = e.order
		}
		if writes != nil && g.notify(cts, writes) {
			retained = true
		}
	}
	p.finish(tx)
	recycleTxn(tx, retained)
	return nil
}

// abortLocked marks the transaction aborted without needing group locks
// released first (write sets are private, so dropping them is safe).
func (p *protocolBase) abortLocked(tx *Txn) {
	tx.mu.Lock()
	if tx.finished.Swap(true) {
		tx.mu.Unlock()
		return
	}
	for _, e := range tx.states {
		e.recycle(false)
	}
	tx.states = nil
	tx.mu.Unlock()
	close(tx.done)
	p.ctx.unregister(tx)
}
