package txn

import (
	"fmt"
	"sort"

	"sistream/internal/kv"
)

// This file implements the consistency protocol of the paper's
// Section 4.3 — the lightweight 2-phase-commit variant coordinating
// commits across the multiple states of a topology group — together with
// the commit machinery shared by all three concurrency-control protocols
// ("All concurrency control protocols use fundamentally the same
// consistency protocol", Section 5).
//
// Protocol recap: every operator maintaining a state flags its
// (transaction, state) pair with StatusCommit when its part of the
// transaction is done. The caller that flips the LAST flag becomes the
// coordinator and performs the global commit: installing all versions,
// persisting one batch per base store, and finally publishing the
// group's LastCTS in a single atomic store — the instant the whole
// multi-state commit becomes visible. One StatusAbort flag anywhere
// aborts the transaction globally.

// Protocol is the common interface of the three concurrency-control
// protocols. All methods returning an error may return an ErrAborted
// variant, after which the transaction is finished and the caller decides
// whether to retry with a fresh Begin.
type Protocol interface {
	// Name identifies the protocol in benchmark reports: "mvcc",
	// "s2pl" or "bocc".
	Name() string
	// Begin starts a read-write transaction.
	Begin() (*Txn, error)
	// BeginReadOnly starts a read-only transaction (ad-hoc queries).
	BeginReadOnly() (*Txn, error)
	// Read returns the value of key in tbl visible to tx.
	Read(tx *Txn, tbl *Table, key string) ([]byte, bool, error)
	// Write buffers an update of key in tbl into tx's write set.
	Write(tx *Txn, tbl *Table, key string, value []byte) error
	// Delete buffers a deletion of key in tbl.
	Delete(tx *Txn, tbl *Table, key string) error
	// CommitState flags tbl as ready to commit for tx; when it is the
	// last accessed state, the caller executes the global commit
	// (consistency protocol, Section 4.3).
	CommitState(tx *Txn, tbl *Table) error
	// Commit flags all states and executes the global commit.
	Commit(tx *Txn) error
	// Abort aborts tx globally, dropping all uncommitted writes.
	Abort(tx *Txn) error
	// Context returns the state context the protocol operates on.
	Context() *Context
}

// protocolBase carries the machinery shared by the three protocols.
type protocolBase struct {
	ctx *Context
}

// Context returns the protocol's state context.
func (p *protocolBase) Context() *Context { return p.ctx }

func (p *protocolBase) begin(readOnly bool) (*Txn, error) {
	t := &Txn{
		id:       p.ctx.next(),
		ctx:      p.ctx,
		readOnly: readOnly,
		states:   make(map[StateID]*stateEntry),
		readCTS:  make(map[GroupID]Timestamp),
		done:     make(chan struct{}),
	}
	t.startTS = t.id
	if err := p.ctx.register(t); err != nil {
		return nil, err
	}
	return t, nil
}

// requireGroup validates that tbl is usable transactionally.
func requireGroup(tbl *Table) error {
	if tbl.group == nil {
		return fmt.Errorf("%w: %q", ErrUnknownState, tbl.id)
	}
	return nil
}

// bufferWrite records a write into tx's uncommitted write set. Writes
// "are merely appended to the write set" and never block (Section 4.2).
func bufferWrite(tx *Txn, tbl *Table, key string, op writeOp) error {
	if tx.readOnly {
		return fmt.Errorf("txn: write in read-only transaction %d", tx.id)
	}
	if err := requireGroup(tbl); err != nil {
		return err
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.finished.Load() {
		return ErrFinished
	}
	tx.entry(tbl).write(key, op)
	return nil
}

// commitState implements the per-state flag protocol. finishFn runs the
// protocol-specific global commit when this call flipped the last flag.
func commitState(tx *Txn, tbl *Table, finishFn func() error) error {
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	e, ok := tx.states[tbl.id]
	if !ok {
		// Committing a state the transaction never touched: register an
		// empty entry so the accounting still works (a TO_TABLE operator
		// may see only punctuations for some batch).
		e = tx.entry(tbl)
	}
	if e.status == StatusAbort {
		tx.mu.Unlock()
		return ErrAborted
	}
	e.status = StatusCommit
	for _, other := range tx.states {
		if other.status != StatusCommit {
			// Not the last flag: another operator will coordinate.
			tx.mu.Unlock()
			return nil
		}
	}
	// This caller flipped the last flag: it becomes the coordinator
	// (Section 4.3) and must perform the global commit.
	tx.mu.Unlock()
	return finishFn()
}

// commitAll flags every touched state and runs the global commit.
func commitAll(tx *Txn, finishFn func() error) error {
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	for _, e := range tx.states {
		if e.status == StatusAbort {
			tx.mu.Unlock()
			return ErrAborted
		}
		e.status = StatusCommit
	}
	tx.mu.Unlock()
	return finishFn()
}

// finish releases the transaction's slot exactly once.
func (p *protocolBase) finish(tx *Txn) {
	tx.mu.Lock()
	already := tx.finished.Swap(true)
	tx.mu.Unlock()
	if !already {
		close(tx.done)
		p.ctx.unregister(tx)
	}
}

// abort drops all write sets and releases the slot. "It is enough ... to
// simply clear the corresponding write set and release the memory"
// (Section 4.2).
func (p *protocolBase) abort(tx *Txn) error {
	tx.mu.Lock()
	if tx.finished.Swap(true) {
		tx.mu.Unlock()
		return ErrFinished
	}
	for _, e := range tx.states {
		e.status = StatusAbort
		e.writes = nil
		e.order = nil
	}
	tx.mu.Unlock()
	close(tx.done)
	p.ctx.unregister(tx)
	return nil
}

// txGroups returns the distinct groups of the transaction's states.
func txGroups(tx *Txn) []*Group {
	seen := map[GroupID]*Group{}
	for _, e := range tx.states {
		g := e.table.group
		seen[g.id] = g
	}
	out := make([]*Group, 0, len(seen))
	for _, g := range seen {
		out = append(out, g)
	}
	return out
}

// sortedEntries returns the transaction's state entries in StateID order
// for deterministic install and batch layout.
func sortedEntries(tx *Txn) []*stateEntry {
	out := make([]*stateEntry, 0, len(tx.states))
	for _, e := range tx.states {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].table.id < out[j].table.id })
	return out
}

// installCommit is the coordinator's global commit, shared by all
// protocols. It runs under the commit latches of every involved group:
//
//  1. admit: the protocol-specific admission check (First-Committer-Wins
//     for SI, backward validation for BOCC, nothing for S2PL). Returning
//     an error aborts with no state modified.
//  2. draw the commit timestamp and persist one batch per base store —
//     rows plus the LastCTS watermark — synchronously when any table
//     demands it (failure atomicity). A failed store aborts cleanly: no
//     in-memory state has changed yet.
//  3. install all versions in memory (cannot fail: version arrays grow
//     on demand and commits per group are serialized by the latch).
//  4. publish LastCTS on every involved group: the single atomic store
//     that makes the transaction visible, completely or not at all.
//
// The caller (via commitState/commitAll) has already established that it
// is the coordinator.
func (p *protocolBase) installCommit(tx *Txn, admit func() error) error {
	groups := txGroups(tx)
	if len(groups) == 0 {
		// Nothing written (read-only or empty transaction).
		p.finish(tx)
		return nil
	}
	lockGroups(groups)
	defer unlockGroups(groups)

	if admit != nil {
		if err := admit(); err != nil {
			p.abortLocked(tx)
			return err
		}
	}

	entries := sortedEntries(tx)
	horizon := p.ctx.OldestActiveVersion()

	cts := p.ctx.next()

	// Phase 2: durability, one batch per distinct base store. Durability
	// precedes the in-memory install so a failed store leaves no memory
	// state behind: the transaction aborts as if it never happened.
	type storeBatch struct {
		store kv.Store
		batch *kv.Batch
		sync  bool
	}
	var batches []*storeBatch
	byStore := map[kv.Store]*storeBatch{}
	for _, e := range entries {
		sb, ok := byStore[e.table.store]
		if !ok {
			sb = &storeBatch{store: e.table.store, batch: kv.NewBatch(len(e.order) + 1)}
			byStore[e.table.store] = sb
			batches = append(batches, sb)
		}
		for _, key := range e.order {
			op := e.writes[key]
			if op.delete {
				sb.batch.Delete(e.table.rowKey(key))
			} else {
				sb.batch.Put(e.table.rowKey(key), op.value)
			}
		}
		sb.batch.Put(e.table.metaKey(), encodeTS(cts))
		if e.table.opts.SyncCommits {
			sb.sync = true
		}
	}
	for _, sb := range batches {
		if err := sb.store.Apply(sb.batch, sb.sync); err != nil {
			// No version was installed yet, so aborting here is clean in
			// memory. A store that failed after persisting part of the
			// batch is reconciled at recovery via the per-store watermark
			// (see CreateGroup).
			p.abortLocked(tx)
			return fmt.Errorf("txn: commit durability: %w", err)
		}
	}

	// Phase 3: in-memory version install.
	for _, e := range entries {
		for _, key := range e.order {
			op := e.writes[key]
			if err := e.table.object(key, true).Install(cts, op.value, op.delete, horizon); err != nil {
				panic(fmt.Sprintf("txn: install invariant violated: %v", err))
			}
		}
	}

	// Phase 4: atomic visibility.
	for _, g := range groups {
		g.lastCTS.Store(cts)
	}

	// Notify commit watchers (TO_STREAM per-commit triggers) with the
	// per-state write sets, grouped by topology group.
	for _, g := range groups {
		var writes map[StateID][]string
		for _, e := range entries {
			if e.table.group != g || len(e.order) == 0 {
				continue
			}
			if writes == nil {
				writes = make(map[StateID][]string)
			}
			writes[e.table.id] = e.order
		}
		if writes != nil {
			g.notify(cts, writes)
		}
	}
	p.finish(tx)
	return nil
}

// abortLocked marks the transaction aborted without needing group locks
// released first (write sets are private, so dropping them is safe).
func (p *protocolBase) abortLocked(tx *Txn) {
	tx.mu.Lock()
	if tx.finished.Swap(true) {
		tx.mu.Unlock()
		return
	}
	for _, e := range tx.states {
		e.status = StatusAbort
		e.writes = nil
		e.order = nil
	}
	tx.mu.Unlock()
	close(tx.done)
	p.ctx.unregister(tx)
}
