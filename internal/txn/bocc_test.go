package txn

import (
	"fmt"
	"sync"
	"testing"
)

func TestBOCCBasicCommit(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	write(t, p, e.t1, "a", "1")
	if v, ok := readOne(t, p, e.t1, "a"); !ok || v != "1" {
		t.Fatalf("read: %q %v", v, ok)
	}
}

func TestBOCCReadYourWrites(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := p.Read(tx, e.t1, "k"); !ok || string(v) != "v" {
		t.Fatalf("own write: %q %v", v, ok)
	}
	mustCommit(t, p, tx)
}

// TestBOCCValidationAbort is the canonical backward-validation case: a
// transaction reads a key, a concurrent transaction commits a write to
// that key, the reader-writer must abort at validation.
func TestBOCCValidationAbort(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	write(t, p, e.t1, "k", "v0")

	tx, _ := p.Begin()
	if _, _, err := p.Read(tx, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx, e.t1, "other", []byte("x")); err != nil {
		t.Fatal(err)
	}

	write(t, p, e.t1, "k", "v1") // concurrent committer

	err := p.Commit(tx)
	if !IsAbort(err) {
		t.Fatalf("validation should abort, got %v", err)
	}
	if _, ok := readOne(t, p, e.t1, "other"); ok {
		t.Fatal("aborted write leaked")
	}
}

// TestBOCCReadOnlyValidates: even pure readers abort when a conflicting
// commit lands during their read phase — that is BOCC's consistency
// guarantee for ad-hoc queries.
func TestBOCCReadOnlyValidates(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	write(t, p, e.t1, "k", "v0")

	r, _ := p.BeginReadOnly()
	if _, _, err := p.Read(r, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	write(t, p, e.t1, "k", "v1")
	if err := p.Commit(r); !IsAbort(err) {
		t.Fatalf("read-only validation should abort, got %v", err)
	}

	// Without a conflicting commit the reader passes.
	r2, _ := p.BeginReadOnly()
	if _, _, err := p.Read(r2, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, r2)
}

func TestBOCCDisjointKeysNoConflict(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	write(t, p, e.t1, "a", "1")
	write(t, p, e.t1, "b", "2")

	tx, _ := p.Begin()
	if _, _, err := p.Read(tx, e.t1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx, e.t1, "a", []byte("1x")); err != nil {
		t.Fatal(err)
	}
	write(t, p, e.t1, "b", "2x") // concurrent commit to a DIFFERENT key
	if err := p.Commit(tx); err != nil {
		t.Fatalf("disjoint commit should pass validation: %v", err)
	}
}

func TestBOCCBlindWritersBothCommit(t *testing.T) {
	// BOCC validates read sets only; two blind writers do not conflict.
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	tx1, _ := p.Begin()
	tx2, _ := p.Begin()
	if err := p.Write(tx1, e.t1, "k", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx2, e.t1, "k", []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx1)
	mustCommit(t, p, tx2)
	if v, _ := readOne(t, p, e.t1, "k"); v != "2" {
		t.Fatalf("last committer should win: %q", v)
	}
}

func TestBOCCAbortDiscards(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestBOCCHistoryPruned(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	// Many sequential committers with no concurrent transactions: the
	// history must stay bounded (pruning runs every 64 commits).
	for i := 0; i < 500; i++ {
		write(t, p, e.t1, fmt.Sprintf("k%d", i%10), "v")
	}
	if n := e.ctx.recent.Len(); n > 128 {
		t.Fatalf("BOCC history grew to %d records despite pruning", n)
	}
}

// TestBOCCNoLostUpdateUnderRetry: optimistic increments with retry must
// serialize exactly like S2PL.
func TestBOCCNoLostUpdateUnderRetry(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	write(t, p, e.t1, "ctr", "0")
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					tx, err := p.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					v, _, err := p.Read(tx, e.t1, "ctr")
					if err != nil {
						t.Error(err)
						return
					}
					var n int
					fmt.Sscanf(string(v), "%d", &n)
					if err := p.Write(tx, e.t1, "ctr", []byte(fmt.Sprintf("%d", n+1))); err != nil {
						t.Error(err)
						return
					}
					if err := p.Commit(tx); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Error(err)
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	v, _ := readOne(t, p, e.t1, "ctr")
	if v != fmt.Sprintf("%d", workers*perWorker) {
		t.Fatalf("lost updates: counter = %q, want %d", v, workers*perWorker)
	}
}

func TestBOCCMultiStateAtomicity(t *testing.T) {
	e := newEnv(t)
	p := NewBOCC(e.ctx)
	tx, _ := p.Begin()
	p.Write(tx, e.t1, "x", []byte("A"))
	p.Write(tx, e.t2, "x", []byte("A"))
	mustCommit(t, p, tx)

	// A reader across both states either sees the pair or aborts — never
	// a torn pair, thanks to read-only validation.
	for round := 0; round < 20; round++ {
		val := []byte(fmt.Sprintf("%d", round))
		w, _ := p.Begin()
		p.Write(w, e.t1, "x", val)
		p.Write(w, e.t2, "x", val)

		r, _ := p.BeginReadOnly()
		v1, _, _ := p.Read(r, e.t1, "x")
		v2, _, _ := p.Read(r, e.t2, "x")

		mustCommit(t, p, w)

		if err := p.Commit(r); err == nil {
			if string(v1) != string(v2) {
				t.Fatalf("round %d: validated torn read %q/%q", round, v1, v2)
			}
		} else if !IsAbort(err) {
			t.Fatal(err)
		}
	}
}
