package txn

import (
	"fmt"
	"testing"
	"time"

	"sistream/internal/kv"
)

// TestSnapshotBasics pins the Snapshot API contract: coverage gating,
// consistent Get/Scan, stripe partitioning, and idempotent release.
func TestSnapshotBasics(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "a", "1", "b", "2", "c", "3")
	write(t, p, e.t2, "x", "9")

	snap, err := e.ctx.Snapshot(e.t1)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := snap.Get(e.t1, "a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q %v %v, want 1", v, ok, err)
	}
	// t2 was not declared: every accessor must refuse it.
	if _, _, err := snap.Get(e.t2, "x"); err == nil {
		t.Fatal("Get on undeclared table succeeded")
	}
	if err := snap.Scan(e.t2, func(string, []byte) bool { return true }); err == nil {
		t.Fatal("Scan on undeclared table succeeded")
	}

	// A commit AFTER the pin must stay invisible to the snapshot.
	write(t, p, e.t1, "d", "4", "a", "10")
	seen := map[string]string{}
	if err := snap.Scan(e.t1, func(k string, v []byte) bool {
		seen[k] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen["a"] != "1" {
		t.Fatalf("snapshot scan saw %v, want the 3 pre-pin rows with a=1", seen)
	}

	// Stripes partition: union over stripes == full scan, no overlap.
	union := map[string]bool{}
	for stripe := 0; stripe < 4; stripe++ {
		if err := snap.ScanStripe(e.t1, stripe, 4, func(k string, _ []byte) bool {
			if union[k] {
				t.Fatalf("key %s seen in two stripes", k)
			}
			union[k] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(union) != 3 {
		t.Fatalf("stripe union has %d keys, want 3", len(union))
	}
	if err := snap.ScanStripe(e.t1, 4, 4, nil); err == nil {
		t.Fatal("out-of-range stripe accepted")
	}

	// Range scan honors [start, end).
	var ranged []string
	if err := snap.ScanRange(e.t1, "a", "c", func(k string, _ []byte) bool {
		ranged = append(ranged, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 2 {
		t.Fatalf("ScanRange[a,c) saw %v, want a and b", ranged)
	}

	snap.Release()
	snap.Release() // idempotent
	if _, _, err := snap.Get(e.t1, "a"); err != ErrFinished {
		t.Fatalf("Get after Release = %v, want ErrFinished", err)
	}
}

// TestStressSnapshotNoPartialTxn hammers multi-table snapshots against
// concurrent writers: every writer transaction writes the SAME value to
// both tables, so any snapshot — point reads or a lane-parallel scan —
// observing two different values has seen a partial transaction. Run
// under -race (CI does); skipped with -short.
func TestStressSnapshotNoPartialTxn(t *testing.T) {
	if testing.Short() {
		t.Skip("stress hammer skipped in -short mode")
	}
	e := newEnv(t)
	p := NewSI(e.ctx)
	const pairs = 16
	key := func(i int) string { return fmt.Sprintf("pair%02d", i) }
	for i := 0; i < pairs; i++ {
		write(t, p, e.t1, key(i), "0")
		write(t, p, e.t2, key(i), "0")
	}

	h := newHammer(t)
	workers := stressWorkers()
	writers := workers / 4
	if writers < 2 {
		writers = 2
	}

	// Writers: pick a pair, bump it in BOTH tables within one transaction.
	for w := 0; w < writers; w++ {
		rng := newRand(int64(w))
		h.spawn(1, func(int) bool {
			tx, err := p.Begin()
			if err != nil {
				h.t.Error(err)
				return false
			}
			k := key(rng.Intn(pairs))
			v, _, err := p.Read(tx, e.t1, k)
			if err != nil {
				h.t.Error(err)
				return false
			}
			next := encodeU64(decodeU64(v) + 1)
			if p.Write(tx, e.t1, k, next) != nil || p.Write(tx, e.t2, k, next) != nil {
				h.t.Error("buffered write failed")
				return false
			}
			if err := p.Commit(tx); err != nil && !IsAbort(err) {
				h.t.Error(err)
				return false
			}
			return true
		})
	}

	// Point readers: one multi-table snapshot, Get the pair from both
	// tables — values must match exactly.
	h.spawn(workers/2, func(id int) bool {
		snap, err := e.ctx.Snapshot(e.t1, e.t2)
		if err != nil {
			h.t.Error(err)
			return false
		}
		defer snap.Release()
		k := key(id % pairs)
		v1, ok1, err1 := snap.Get(e.t1, k)
		v2, ok2, err2 := snap.Get(e.t2, k)
		if err1 != nil || err2 != nil {
			h.t.Errorf("snapshot get: %v %v", err1, err2)
			return false
		}
		if ok1 != ok2 || decodeU64(v1) != decodeU64(v2) {
			h.t.Errorf("torn snapshot at cts %d: %s = %d vs %d", snap.CTS(), k, decodeU64(v1), decodeU64(v2))
			return false
		}
		return true
	})

	// Scanners: lane-parallel scan of t1 under the same snapshot, then
	// verify every scanned pair against t2 point reads at the same cut.
	h.spawn(workers-writers-workers/2, func(int) bool {
		snap, err := e.ctx.Snapshot(e.t1, e.t2)
		if err != nil {
			h.t.Error(err)
			return false
		}
		defer snap.Release()
		type kvpair struct {
			k string
			v uint64
		}
		rows := make(chan kvpair, pairs)
		if err := snap.ParallelScan(e.t1, 4, func(k string, v []byte) bool {
			rows <- kvpair{k, decodeU64(v)}
			return true
		}); err != nil {
			h.t.Error(err)
			return false
		}
		close(rows)
		for r := range rows {
			v2, ok, err := snap.Get(e.t2, r.k)
			if err != nil {
				h.t.Error(err)
				return false
			}
			if !ok || decodeU64(v2) != r.v {
				h.t.Errorf("torn parallel scan at cts %d: %s = %d in t1, %d in t2", snap.CTS(), r.k, r.v, decodeU64(v2))
				return false
			}
		}
		return true
	})

	time.Sleep(2 * time.Second)
	h.finish()
}

// TestSnapshotReleaseBoundsResidentVersions is the GC-pin regression: a
// long-held snapshot must pin every version it can see (a scan mid-way
// through the table cannot have rows reclaimed under it), and releasing
// it must make those versions reclaimable again — residency is bounded
// by the pin's lifetime, not leaked forever.
func TestSnapshotReleaseBoundsResidentVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("rows", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("rows", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	const keys, rewrites = 32, 20
	key := func(i int) string { return fmt.Sprintf("k%02d", i) }
	for i := 0; i < keys; i++ {
		write(t, p, tbl, key(i), "seed")
	}

	// Pin a snapshot (a stalled analytical scan), then churn versions.
	snap, err := ctx.Snapshot(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rewrites; r++ {
		for i := 0; i < keys; i++ {
			write(t, p, tbl, key(i), fmt.Sprintf("v%d", r))
		}
	}

	// While pinned, GC may reclaim nothing visible to the snapshot: the
	// seed versions must survive a full sweep, and the snapshot must
	// still read them.
	tbl.GC()
	held := tbl.ResidentVersions()
	if held < keys*2 {
		t.Fatalf("resident versions %d while pinned, want at least seed+latest per key (%d)", held, keys*2)
	}
	for i := 0; i < keys; i++ {
		v, ok, err := snap.Get(tbl, key(i))
		if err != nil || !ok || string(v) != "seed" {
			t.Fatalf("pinned snapshot read %q %v %v, want seed", v, ok, err)
		}
	}

	// Release: the horizon advances past the churn, and one sweep must
	// collapse residency to the live row per key.
	snap.Release()
	tbl.GC()
	if got := tbl.ResidentVersions(); got > keys {
		t.Fatalf("resident versions %d after release+GC, want <= %d (one live version per key)", got, keys)
	}
}
