package txn

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"sistream/internal/kv"
)

func TestRegistrySlots(t *testing.T) {
	ctx := NewContext()
	p := NewSI(ctx)
	var txns []*Txn
	for i := 0; i < 100; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		txns = append(txns, tx)
	}
	if ctx.ActiveCount() != 100 {
		t.Fatalf("active = %d", ctx.ActiveCount())
	}
	for _, tx := range txns {
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.ActiveCount() != 0 {
		t.Fatalf("active after commits = %d", ctx.ActiveCount())
	}
}

func TestSlotExhaustion(t *testing.T) {
	ctx := NewContext()
	p := NewSI(ctx)
	var txns []*Txn
	for i := 0; i < maxActiveTxns; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatalf("begin %d: %v", i, err)
		}
		txns = append(txns, tx)
	}
	if _, err := p.Begin(); err != ErrTooManyTxns {
		t.Fatalf("expected ErrTooManyTxns, got %v", err)
	}
	// Freeing one slot re-enables Begin.
	if err := p.Abort(txns[0]); err != nil {
		t.Fatal(err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	p.Abort(tx)
	for _, old := range txns[1:] {
		p.Abort(old)
	}
}

func TestConcurrentSlotChurn(t *testing.T) {
	ctx := NewContext()
	p := NewSI(ctx)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tx, err := p.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ctx.ActiveCount() != 0 {
		t.Fatalf("slots leaked: %d", ctx.ActiveCount())
	}
}

func TestOldestActiveVersionHorizon(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "v")

	// With no active pins, horizon == clock.
	if got, now := e.ctx.OldestActiveVersion(), e.ctx.Now(); got != now {
		t.Fatalf("idle horizon %d != clock %d", got, now)
	}

	r, _ := p.BeginReadOnly()
	if _, _, err := p.Read(r, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	pinned := r.readCTS[e.group.id]
	write(t, p, e.t1, "k", "v2")
	if got := e.ctx.OldestActiveVersion(); got != pinned {
		t.Fatalf("horizon %d, want pinned %d", got, pinned)
	}
	mustCommit(t, p, r)
	if got, now := e.ctx.OldestActiveVersion(), e.ctx.Now(); got != now {
		t.Fatalf("horizon after release %d != clock %d", got, now)
	}
}

func TestMonotonicClock(t *testing.T) {
	ctx := NewContext()
	var prev Timestamp
	for i := 0; i < 1000; i++ {
		ts := ctx.next()
		if ts <= prev {
			t.Fatalf("clock went backwards: %d after %d", ts, prev)
		}
		prev = ts
	}
	ctx.advanceTo(5000)
	if ctx.Now() != 5000 {
		t.Fatalf("advanceTo: %d", ctx.Now())
	}
	ctx.advanceTo(100) // never backwards
	if ctx.Now() != 5000 {
		t.Fatalf("advanceTo went backwards: %d", ctx.Now())
	}
}

func TestDuplicateRegistration(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("t", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateTable("t", store, TableOptions{}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := ctx.CreateGroup("g"); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g2", tbl); err == nil {
		t.Fatal("table admitted to two groups")
	}
	if _, err := ctx.CreateGroup("g", tbl); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if got, ok := ctx.Table("t"); !ok || got != tbl {
		t.Fatal("table lookup broken")
	}
	if _, ok := ctx.Table("absent"); ok {
		t.Fatal("phantom table")
	}
}

// TestOverlapRuleOlderVersionWins: a query reading tables from two groups
// takes the OLDER pinned snapshot for states both groups cover.
func TestOverlapRuleAcrossGroups(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	a, _ := ctx.CreateTable("a", store, TableOptions{})
	b, _ := ctx.CreateTable("b", store, TableOptions{})
	if _, err := ctx.CreateGroup("ga", a); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("gb", b); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	write(t, p, a, "k", "a1")
	write(t, p, b, "k", "b1")

	r, _ := p.BeginReadOnly()
	if _, _, err := p.Read(r, a, "k"); err != nil { // pins ga
		t.Fatal(err)
	}
	write(t, p, b, "k", "b2") // gb advances after ga was pinned
	v, _, err := p.Read(r, b, "k")
	if err != nil {
		t.Fatal(err)
	}
	// gb pinned at its own first read: b2 is legal (groups are disjoint,
	// so no overlap constraint applies).
	if string(v) != "b2" {
		t.Fatalf("disjoint group read: %q", v)
	}
	mustCommit(t, p, r)
}

// TestPropertySISerialHistoryMatchesMap replays a random single-threaded
// history of transactions (with aborts) against SI and a reference map.
func TestPropertySISerialHistoryMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		e := newEnv(t)
		p := NewSI(e.ctx)
		rng := newRand(seed)
		model := map[string]string{}
		for step := 0; step < 60; step++ {
			tx, err := p.Begin()
			if err != nil {
				return false
			}
			staged := map[string]*string{}
			nOps := rng.Intn(6) + 1
			for i := 0; i < nOps; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(12))
				switch rng.Intn(3) {
				case 0:
					v := fmt.Sprintf("v%d-%d", step, i)
					if err := p.Write(tx, e.t1, k, []byte(v)); err != nil {
						return false
					}
					vc := v
					staged[k] = &vc
				case 1:
					if err := p.Delete(tx, e.t1, k); err != nil {
						return false
					}
					staged[k] = nil
				default:
					got, ok, err := p.Read(tx, e.t1, k)
					if err != nil {
						return false
					}
					var want *string
					if s, inTx := staged[k]; inTx {
						want = s
					} else if mv, inModel := model[k]; inModel {
						want = &mv
					}
					if (want == nil) != !ok {
						t.Logf("step %d read %q: ok=%v want-nil=%v", step, k, ok, want == nil)
						return false
					}
					if want != nil && string(got) != *want {
						t.Logf("step %d read %q: %q want %q", step, k, got, *want)
						return false
					}
				}
			}
			if rng.Intn(4) == 0 {
				if err := p.Abort(tx); err != nil {
					return false
				}
			} else {
				if err := p.Commit(tx); err != nil {
					return false
				}
				for k, v := range staged {
					if v == nil {
						delete(model, k)
					} else {
						model[k] = *v
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
