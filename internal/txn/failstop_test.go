package txn

import (
	"errors"
	"testing"

	"sistream/internal/kv"
)

// TestMultiStoreFailurePoisonsAllTouchedGroups closes the tear window of
// the durability phase: a commit batch spanning two stores where the
// second Apply fails leaves the first store's data durable (it was
// already fsynced) with nothing installed in memory. Every group with a
// table on ANY touched store must be poisoned — including groups that
// were not part of the failing commit — or a later commit on the shared
// store would re-diverge memory from disk.
func TestMultiStoreFailurePoisonsAllTouchedGroups(t *testing.T) {
	good := kv.NewMem()
	defer good.Close()
	badInner := kv.NewMem()
	defer badInner.Close()
	bad := &failingStore{Store: badInner}

	ctx := NewContext()
	// Group g1 spans both stores; group g2 lives entirely on the healthy
	// store that g1's failing commit also touches.
	a, _ := ctx.CreateTable("a", good, TableOptions{})
	b, _ := ctx.CreateTable("b", bad, TableOptions{})
	c, _ := ctx.CreateTable("c", good, TableOptions{})
	g1, err := ctx.CreateGroup("g1", a, b)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ctx.CreateGroup("g2", c)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	// Seed g2 so we can verify reads survive the poisoning.
	tx, _ := p.Begin()
	p.Write(tx, c, "k", []byte("seed"))
	mustCommit(t, p, tx)

	// The doomed commit: table "a" (store `good`) applies first — its
	// rows and watermark become durable — then table "b"'s store fails.
	bad.fail.Store(true)
	tx2, _ := p.Begin()
	p.Write(tx2, a, "k", []byte("torn"))
	p.Write(tx2, b, "k", []byte("torn"))
	if err := p.Commit(tx2); !errors.Is(err, errDiskFull) {
		t.Fatalf("commit = %v, want the injected disk error", err)
	}

	// The tear is real: the healthy store holds the aborted row durably.
	if _, found, _ := good.Get([]byte("s/a/k")); !found {
		t.Fatal("expected the first store to hold the torn batch durably")
	}
	// ... but memory never saw it.
	if _, ok, _ := p.Read(mustBegin(t, p), a, "k"); ok {
		t.Fatal("torn write visible in memory")
	}

	// Both groups are poisoned: g1 directly, g2 because it shares the
	// touched store `good`.
	if err := g1.Err(); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("g1.Err() = %v, want ErrGroupFailed", err)
	}
	if err := g2.Err(); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("g2.Err() = %v, want ErrGroupFailed (shared store)", err)
	}

	// A commit confined to g2 fails fast even though its own store never
	// returned an error.
	tx3, _ := p.Begin()
	p.Write(tx3, c, "k", []byte("later"))
	if err := p.Commit(tx3); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("g2 commit = %v, want fail-fast ErrGroupFailed", err)
	}

	// Reads still serve on both groups.
	if v, ok := readOne(t, p, c, "k"); !ok || v != "seed" {
		t.Fatalf("read on poisoned g2: %q %v", v, ok)
	}
}

// TestMultiGroupCommitFailurePoisonsSpan exercises the slow path: a
// transaction spanning two groups whose durability fails must poison
// both groups, and later commits on either fail fast.
func TestMultiGroupCommitFailurePoisonsSpan(t *testing.T) {
	inner := kv.NewMem()
	defer inner.Close()
	fs := &failingStore{Store: inner}
	ctx := NewContext()
	a, _ := ctx.CreateTable("a", fs, TableOptions{})
	b, _ := ctx.CreateTable("b", fs, TableOptions{})
	g1, _ := ctx.CreateGroup("g1", a)
	g2, _ := ctx.CreateGroup("g2", b)
	p := NewSI(ctx)

	fs.fail.Store(true)
	tx, _ := p.Begin()
	p.Write(tx, a, "k", []byte("doomed"))
	p.Write(tx, b, "k", []byte("doomed"))
	if err := p.Commit(tx); !errors.Is(err, errDiskFull) {
		t.Fatalf("cross-group commit = %v, want the injected disk error", err)
	}
	if err := g1.Err(); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("g1.Err() = %v, want ErrGroupFailed", err)
	}
	if err := g2.Err(); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("g2.Err() = %v, want ErrGroupFailed", err)
	}

	// The cross-group slow path rejects a spanning transaction too.
	fs.fail.Store(false)
	tx2, _ := p.Begin()
	p.Write(tx2, a, "k", []byte("later"))
	p.Write(tx2, b, "k", []byte("later"))
	if err := p.Commit(tx2); !errors.Is(err, ErrGroupFailed) {
		t.Fatalf("spanning commit on poisoned groups = %v, want ErrGroupFailed", err)
	}
	if ctx.ActiveCount() != 0 {
		t.Fatalf("leaked slots: %d active", ctx.ActiveCount())
	}
}

// TestChainCommitFailsFastOnPoisonedGroup: the batched chain-commit path
// (groupCommitMany) must decide every request of a run with the sticky
// error without wedging any committer.
func TestChainCommitFailsFastOnPoisonedGroup(t *testing.T) {
	inner := kv.NewMem()
	defer inner.Close()
	fs := &failingStore{Store: inner}
	ctx := NewContext()
	a, _ := ctx.CreateTable("a", fs, TableOptions{})
	g, _ := ctx.CreateGroup("g", a)
	p := NewSI(ctx)

	fs.fail.Store(true)
	tx, _ := p.Begin()
	p.Write(tx, a, "k", []byte("doomed"))
	if err := p.Commit(tx); err == nil {
		t.Fatal("expected durability failure")
	}
	if g.Err() == nil {
		t.Fatal("group not poisoned")
	}

	ch := NewChain()
	txs := make([]*Txn, 4)
	for i := range txs {
		txs[i], _ = p.Begin()
		txs[i].SetChain(ch)
		p.Write(txs[i], a, "k", []byte{byte(i)})
	}
	errs := p.CommitChain(txs, []*Table{a})
	for i, row := range errs {
		if !errors.Is(row[0], ErrGroupFailed) {
			t.Fatalf("chain commit %d = %v, want ErrGroupFailed", i, row[0])
		}
	}
	if ctx.ActiveCount() != 0 {
		t.Fatalf("chain fail-fast leaked slots: %d active", ctx.ActiveCount())
	}
}

func mustBegin(t *testing.T, p Protocol) *Txn {
	t.Helper()
	tx, err := p.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Abort(tx) })
	return tx
}
