package txn

import (
	"fmt"
	"testing"

	"sistream/internal/kv"
)

// hammerKey commits n sequential single-key blind writes through p.
func hammerKey(t *testing.T, p Protocol, tbl *Table, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGCSweeperReclaimsDeadVersions: with the opt-in threshold sweeper, a
// read-mostly overwritten key does not retain dead versions until its
// array fills — the retiring group-commit leader sweeps every
// GCEveryCommits commits, and the counters report it.
func TestGCSweeperReclaimsDeadVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	// VersionSlots far above the write count: Install-time lazy GC (which
	// only fires on a full array) never runs, isolating the sweeper.
	tbl, err := ctx.CreateTable("swept", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	stats := tbl.GCStats()
	if stats.Runs == 0 {
		t.Fatal("sweeper never ran despite GCEveryCommits=10 over 100 commits")
	}
	if stats.ReclaimedSlots == 0 {
		t.Fatal("sweeper ran but reclaimed nothing")
	}
	if stats.SweptShards == 0 {
		t.Fatal("sweeper reported no swept shards")
	}
	// Incremental sweeps: threshold-driven slices must visit fewer shards
	// per run than a whole-table scan.
	if perRun := stats.SweptShards / stats.Runs; perRun >= tableShards {
		t.Fatalf("per-sweep shard count %d, want < %d (incremental slices)", perRun, tableShards)
	}
	// 100 installs, one live version; the sweeper bounds residency to at
	// most one threshold interval of dead versions.
	if rv := tbl.ResidentVersions(); rv > 11 {
		t.Fatalf("resident versions = %d after sweeps, want <= 11", rv)
	}
}

// TestGCFeedPinProtectsLaggingFeed is the regression for the GC vs. feed
// ReadAt race: a partitioned feed reads rows at HISTORICAL commit
// snapshots, and with GCEveryCommits=1 every retiring leader sweeps —
// so without the feed's horizon pin, the versions a stalled consumer
// still needs would be reclaimed and the drain would report wrong
// values. The feed's oldest undelivered CTS must pin the horizon while
// the consumer stalls, every drained event must read exactly the value
// its commit installed, and once drained and acknowledged the pin must
// release and the sweeper reclaim.
func TestGCFeedPinProtectsLaggingFeed(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("pinned", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 1, // most aggressive threshold sweeping
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	const parts, commits = 2, 60
	feed, err := tbl.WatchPartitioned(parts, commits+8, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The stalled phase: commit many updates of one hot key while no
	// consumer drains the feed.
	var wantCTS []Timestamp
	for i := 0; i < commits; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, "hot", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		wantCTS = append(wantCTS, tbl.Group().LastCTS())
	}
	if pinned := feed.PinnedCTS(); pinned == 0 || pinned > wantCTS[0] {
		t.Fatalf("stalled feed pins %d, want <= first undelivered cts %d (and non-zero)", pinned, wantCTS[0])
	}
	if stats := tbl.GCStats(); stats.Runs == 0 {
		t.Fatal("sweeper never ran (test needs active sweeping to prove the pin)")
	}
	// The hot key's dead versions are above the pinned horizon: retained.
	if rv := tbl.ResidentVersions(); rv != commits {
		t.Fatalf("resident versions = %d during the stall, want %d (pin must block reclamation)", rv, commits)
	}

	// Drain: every event's rows must read exactly as its commit installed
	// them, at the commit's own snapshot.
	feed.Stop()
	for part, events := range feed.Partitions() {
		n := 0
		for ev := range events {
			if ev.CTS != wantCTS[n] {
				t.Fatalf("partition %d event %d: cts %d want %d", part, n, ev.CTS, wantCTS[n])
			}
			for _, k := range ev.Keys {
				v, ok := tbl.ReadAt(k, ev.CTS)
				if !ok || string(v) != fmt.Sprintf("v%d", n) {
					t.Fatalf("commit %d: ReadAt(%q) = %q (ok=%t), want v%d — historical version reclaimed under the pin", n, k, v, ok, n)
				}
			}
			feed.Ack(part)
			n++
		}
		if n != commits {
			t.Fatalf("partition %d drained %d events, want %d", part, n, commits)
		}
	}
	if pinned := feed.PinnedCTS(); pinned != 0 {
		t.Fatalf("drained+acked feed still pins %d", pinned)
	}
	// With the pin gone, reclamation proceeds.
	tbl.GC()
	if rv := tbl.ResidentVersions(); rv != 1 {
		t.Fatalf("resident versions = %d after unpinned GC, want 1", rv)
	}
}

// TestGCSweeperDisabledRetainsVersions is the control: without the
// sweeper (and with a version array large enough that lazy GC never
// fires), every dead version stays resident — the leak the sweeper fixes.
func TestGCSweeperDisabledRetainsVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("unswept", store, TableOptions{VersionSlots: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	if stats := tbl.GCStats(); stats.Runs != 0 {
		t.Fatalf("sweeper ran %d times with GCEveryCommits=0", stats.Runs)
	}
	if rv := tbl.ResidentVersions(); rv != 100 {
		t.Fatalf("resident versions = %d, want 100 (all versions retained without the sweeper)", rv)
	}
}
