package txn

import (
	"fmt"
	"testing"
	"time"

	"sistream/internal/kv"
)

// hammerKey commits n sequential single-key blind writes through p.
func hammerKey(t *testing.T, p Protocol, tbl *Table, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGCSweeperReclaimsDeadVersions: with the opt-in threshold sweeper, a
// read-mostly overwritten key does not retain dead versions until its
// array fills — the retiring group-commit leader sweeps every
// GCEveryCommits commits, and the counters report it.
func TestGCSweeperReclaimsDeadVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	// VersionSlots far above the write count: Install-time lazy GC (which
	// only fires on a full array) never runs, isolating the sweeper.
	tbl, err := ctx.CreateTable("swept", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	stats := tbl.GCStats()
	if stats.Runs == 0 {
		t.Fatal("sweeper never ran despite GCEveryCommits=10 over 100 commits")
	}
	if stats.ReclaimedSlots == 0 {
		t.Fatal("sweeper ran but reclaimed nothing")
	}
	if stats.SweptShards == 0 {
		t.Fatal("sweeper reported no swept shards")
	}
	// Incremental sweeps: threshold-driven slices must visit fewer shards
	// per run than a whole-table scan.
	if perRun := stats.SweptShards / stats.Runs; perRun >= tableShards {
		t.Fatalf("per-sweep shard count %d, want < %d (incremental slices)", perRun, tableShards)
	}
	// 100 installs, one live version; the sweeper bounds residency to at
	// most one threshold interval of dead versions.
	if rv := tbl.ResidentVersions(); rv > 11 {
		t.Fatalf("resident versions = %d after sweeps, want <= 11", rv)
	}
}

// TestGCFeedPinProtectsLaggingFeed is the regression for the GC vs. feed
// ReadAt race: a partitioned feed reads rows at HISTORICAL commit
// snapshots, and with GCEveryCommits=1 every retiring leader sweeps —
// so without the feed's horizon pin, the versions a stalled consumer
// still needs would be reclaimed and the drain would report wrong
// values. The feed's oldest undelivered CTS must pin the horizon while
// the consumer stalls, every drained event must read exactly the value
// its commit installed, and once drained and acknowledged the pin must
// release and the sweeper reclaim.
func TestGCFeedPinProtectsLaggingFeed(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("pinned", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 1, // most aggressive threshold sweeping
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	const parts, commits = 2, 60
	feed, err := tbl.WatchPartitioned(parts, commits+8, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The stalled phase: commit many updates of one hot key while no
	// consumer drains the feed.
	var wantCTS []Timestamp
	for i := 0; i < commits; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, "hot", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		wantCTS = append(wantCTS, tbl.Group().LastCTS())
	}
	if pinned := feed.PinnedCTS(); pinned == 0 || pinned > wantCTS[0] {
		t.Fatalf("stalled feed pins %d, want <= first undelivered cts %d (and non-zero)", pinned, wantCTS[0])
	}
	if stats := tbl.GCStats(); stats.Runs == 0 {
		t.Fatal("sweeper never ran (test needs active sweeping to prove the pin)")
	}
	// The hot key's dead versions are above the pinned horizon: retained.
	if rv := tbl.ResidentVersions(); rv != commits {
		t.Fatalf("resident versions = %d during the stall, want %d (pin must block reclamation)", rv, commits)
	}

	// Drain: every event's rows must read exactly as its commit installed
	// them, at the commit's own snapshot.
	feed.Stop()
	for part, events := range feed.Partitions() {
		n := 0
		for ev := range events {
			if ev.CTS != wantCTS[n] {
				t.Fatalf("partition %d event %d: cts %d want %d", part, n, ev.CTS, wantCTS[n])
			}
			for _, k := range ev.Keys {
				v, ok := tbl.ReadAt(k, ev.CTS)
				if !ok || string(v) != fmt.Sprintf("v%d", n) {
					t.Fatalf("commit %d: ReadAt(%q) = %q (ok=%t), want v%d — historical version reclaimed under the pin", n, k, v, ok, n)
				}
			}
			feed.Ack(part)
			n++
		}
		if n != commits {
			t.Fatalf("partition %d drained %d events, want %d", part, n, commits)
		}
	}
	if pinned := feed.PinnedCTS(); pinned != 0 {
		t.Fatalf("drained+acked feed still pins %d", pinned)
	}
	// With the pin gone, reclamation proceeds.
	tbl.GC()
	if rv := tbl.ResidentVersions(); rv != 1 {
		t.Fatalf("resident versions = %d after unpinned GC, want 1", rv)
	}
}

// TestGCCoalescedFeedDoesNotPinHorizon is the regression for the
// stalled-consumer horizon leak: an aligned partitioned feed pins its
// oldest undelivered commit, so a consumer that never drains (or never
// acks) pins the GC horizon FOREVER and the table's residency grows with
// every commit — TestGCFeedPinProtectsLaggingFeed shows exactly that,
// deliberately. A coalescing feed (FeedOptions.Coalesce) must not: it
// holds no pin, so with the most aggressive sweeping (GCEveryCommits=1) a
// long write burst against a never-draining, never-acking consumer keeps
// ResidentVersions bounded, and the folded backlog still delivers the
// final state on drain.
func TestGCCoalescedFeedDoesNotPinHorizon(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("changelog", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)

	// Tiny buffers and NO consumer: the aligned feed would leave every
	// commit pinned here.
	feed, err := tbl.WatchPartitionedOpts(1, FeedOptions{Buf: 2, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !feed.Coalesced() {
		t.Fatal("feed does not report changelog mode")
	}

	const commits = 200
	for i := 0; i < commits; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, "hot", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if pinned := feed.PinnedCTS(); pinned != 0 {
			t.Fatalf("coalescing feed pins cts %d at commit %d, want no pin ever", pinned, i)
		}
	}
	feed.Ack(0) // no-op, must not panic or move anything
	if pinned := feed.PinnedCTS(); pinned != 0 {
		t.Fatalf("PinnedCTS = %d after no-op Ack, want 0", pinned)
	}
	// The unpinned horizon lets the per-commit sweeper reclaim: residency
	// stays bounded by one incremental sweep-coverage interval, nowhere
	// near the burst length. (The aligned-feed control above holds all
	// `commits` versions at this point.)
	if rv := tbl.ResidentVersions(); rv > 32 {
		t.Fatalf("resident versions = %d during the stall, want bounded (<= 32)", rv)
	}

	// Drain after stop: the folded backlog must surface the FINAL state —
	// newest CTS, each key once — and reading at that CTS yields the last
	// committed value (the latest version is never reclaimed).
	feed.Stop()
	lastCTS := tbl.Group().LastCTS()
	var got []FeedEvent
	for ev := range feed.Partitions()[0] {
		got = append(got, ev)
	}
	if len(got) == 0 {
		t.Fatal("no events drained from the coalesced backlog")
	}
	final := got[len(got)-1]
	if final.CTS != lastCTS {
		t.Fatalf("final event cts = %d, want newest commit %d", final.CTS, lastCTS)
	}
	seen := 0
	for _, k := range final.Keys {
		if k == "hot" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("final event carries %q %d times, want exactly once (newest-wins dedup)", "hot", seen)
	}
	v, ok := tbl.ReadAt("hot", final.CTS)
	if !ok || string(v) != fmt.Sprintf("v%d", commits-1) {
		t.Fatalf("ReadAt(hot, %d) = %q (ok=%t), want v%d", final.CTS, v, ok, commits-1)
	}
}

// TestGCIdleSweeperReclaimsAfterQuiesce is the regression for the
// idle-table leak: threshold sweeps only run on retiring commit leaders,
// so a table whose writer stops after a burst retains every dead version
// until the NEXT commit — which may never come. With GCIdleInterval set,
// the background sweeper must detect the stall and reclaim without any
// further commit; and once reclaimed, a permanently idle table must not
// be rescanned (no unreclaimed commits remain).
func TestGCIdleSweeperReclaimsAfterQuiesce(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	const idle = 10 * time.Millisecond
	// GCEveryCommits stays 0 and VersionSlots exceeds the write count:
	// neither the threshold sweeper nor Install-time lazy GC can reclaim,
	// isolating the idle trigger.
	tbl, err := ctx.CreateTable("idle", store, TableOptions{
		VersionSlots:   256,
		GCIdleInterval: idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	defer tbl.StopIdleGC()
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	// The burst is over; within about two intervals the idle sweeper must
	// fire a full sweep and collapse residency to the one live version.
	deadline := time.Now().Add(100 * idle)
	for tbl.ResidentVersions() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("resident versions = %d long after quiesce, want 1 (idle sweeper never fired)", tbl.ResidentVersions())
		}
		time.Sleep(idle / 2)
	}
	runsAfterSweep := tbl.GCStats().Runs
	if runsAfterSweep == 0 {
		t.Fatal("residency collapsed but no sweep was recorded")
	}

	// Idle steady state: with nothing newly committed, the ticker must not
	// keep burning full-table scans.
	time.Sleep(5 * idle)
	if runs := tbl.GCStats().Runs; runs != runsAfterSweep {
		t.Fatalf("idle sweeper kept running on a reclaimed table: %d runs, want %d", runs, runsAfterSweep)
	}

	// StopIdleGC is idempotent and ends the goroutine: a fresh burst after
	// stopping must leak (proving the loop is gone, not just idle).
	tbl.StopIdleGC()
	tbl.StopIdleGC()
	hammerKey(t, p, tbl, "hot", 50)
	time.Sleep(5 * idle)
	// The surviving pre-burst version plus 50 fresh installs, all retained.
	if rv := tbl.ResidentVersions(); rv != 51 {
		t.Fatalf("resident versions = %d after StopIdleGC burst, want 51 (stopped sweeper must not reclaim)", rv)
	}
}

// TestGCSweeperDisabledRetainsVersions is the control: without the
// sweeper (and with a version array large enough that lazy GC never
// fires), every dead version stays resident — the leak the sweeper fixes.
func TestGCSweeperDisabledRetainsVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("unswept", store, TableOptions{VersionSlots: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	if stats := tbl.GCStats(); stats.Runs != 0 {
		t.Fatalf("sweeper ran %d times with GCEveryCommits=0", stats.Runs)
	}
	if rv := tbl.ResidentVersions(); rv != 100 {
		t.Fatalf("resident versions = %d, want 100 (all versions retained without the sweeper)", rv)
	}
}
