package txn

import (
	"testing"

	"sistream/internal/kv"
)

// hammerKey commits n sequential single-key blind writes through p.
func hammerKey(t *testing.T, p Protocol, tbl *Table, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGCSweeperReclaimsDeadVersions: with the opt-in threshold sweeper, a
// read-mostly overwritten key does not retain dead versions until its
// array fills — the retiring group-commit leader sweeps every
// GCEveryCommits commits, and the counters report it.
func TestGCSweeperReclaimsDeadVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	// VersionSlots far above the write count: Install-time lazy GC (which
	// only fires on a full array) never runs, isolating the sweeper.
	tbl, err := ctx.CreateTable("swept", store, TableOptions{
		VersionSlots:   256,
		GCEveryCommits: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	runs, reclaimed := tbl.GCStats()
	if runs == 0 {
		t.Fatal("sweeper never ran despite GCEveryCommits=10 over 100 commits")
	}
	if reclaimed == 0 {
		t.Fatal("sweeper ran but reclaimed nothing")
	}
	// 100 installs, one live version; the sweeper bounds residency to at
	// most one threshold interval of dead versions.
	if rv := tbl.ResidentVersions(); rv > 11 {
		t.Fatalf("resident versions = %d after sweeps, want <= 11", rv)
	}
}

// TestGCSweeperDisabledRetainsVersions is the control: without the
// sweeper (and with a version array large enough that lazy GC never
// fires), every dead version stays resident — the leak the sweeper fixes.
func TestGCSweeperDisabledRetainsVersions(t *testing.T) {
	ctx := NewContext()
	store := kv.NewMem()
	defer store.Close()
	tbl, err := ctx.CreateTable("unswept", store, TableOptions{VersionSlots: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	hammerKey(t, p, tbl, "hot", 100)

	if runs, _ := tbl.GCStats(); runs != 0 {
		t.Fatalf("sweeper ran %d times with GCEveryCommits=0", runs)
	}
	if rv := tbl.ResidentVersions(); rv != 100 {
		t.Fatalf("resident versions = %d, want 100 (all versions retained without the sweeper)", rv)
	}
}
