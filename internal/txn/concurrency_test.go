package txn

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// protocolsUnderTest builds one instance of each protocol over a fresh
// environment.
func protocolsUnderTest(t *testing.T) map[string]func(e *env) Protocol {
	t.Helper()
	return map[string]func(e *env) Protocol{
		"mvcc": func(e *env) Protocol { return NewSI(e.ctx) },
		"s2pl": func(e *env) Protocol { return NewS2PL(e.ctx) },
		"bocc": func(e *env) Protocol { return NewBOCC(e.ctx) },
	}
}

// TestNoTornMultiStateReads is the paper's central consistency claim
// under concurrency, checked for all three protocols: one writer keeps
// both states of a group at an identical sequence number; readers must
// never successfully observe two different numbers.
func TestNoTornMultiStateReads(t *testing.T) {
	for name, mk := range protocolsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			e := newEnv(t)
			p := mk(e)

			// Seed.
			seedTx, _ := p.Begin()
			p.Write(seedTx, e.t1, "seq", encodeU64(0))
			p.Write(seedTx, e.t2, "seq", encodeU64(0))
			mustCommit(t, p, seedTx)

			var torn, committedReads, abortedReads int64
			var mu sync.Mutex

			h := newHammer(t)
			h.spawn(4, func(int) bool {
				tx, err := p.BeginReadOnly()
				if err != nil {
					t.Error(err)
					return false
				}
				v1, ok1, err1 := p.Read(tx, e.t1, "seq")
				if err1 != nil {
					p.Abort(tx)
					return true
				}
				v2, ok2, err2 := p.Read(tx, e.t2, "seq")
				if err2 != nil {
					p.Abort(tx)
					return true
				}
				a := append([]byte(nil), v1...)
				b := append([]byte(nil), v2...)
				err = p.Commit(tx)
				mu.Lock()
				if err == nil {
					committedReads++
					if !ok1 || !ok2 || decodeU64(a) != decodeU64(b) {
						torn++
					}
				} else if IsAbort(err) {
					abortedReads++
				} else {
					t.Error(err)
				}
				mu.Unlock()
				return true
			})

			// Writer: monotonically bump both states in one transaction.
			// Run until the readers have demonstrably made progress (the
			// single-CPU scheduler can otherwise starve them), with a
			// hard cap as a safety net.
			deadline := time.Now().Add(5 * time.Second)
			for seq := uint64(1); ; seq++ {
				for {
					tx, err := p.Begin()
					if err != nil {
						t.Fatal(err)
					}
					if err := p.Write(tx, e.t1, "seq", encodeU64(seq)); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Fatal(err)
					}
					if err := p.Write(tx, e.t2, "seq", encodeU64(seq)); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Fatal(err)
					}
					if err := p.Commit(tx); err != nil {
						if IsAbort(err) {
							continue
						}
						t.Fatal(err)
					}
					break
				}
				if seq%16 == 0 {
					time.Sleep(time.Millisecond) // let readers run
					mu.Lock()
					done := committedReads >= 50
					mu.Unlock()
					if (seq >= 300 && done) || time.Now().After(deadline) {
						break
					}
				}
			}
			h.finish()

			if torn > 0 {
				t.Fatalf("%d torn multi-state reads (of %d committed)", torn, committedReads)
			}
			if committedReads == 0 {
				t.Fatal("no reader ever committed; test proved nothing")
			}
			t.Logf("%s: %d committed reads, %d aborted reads", name, committedReads, abortedReads)
		})
	}
}

// TestSIReadersNeverAbortNeverBlock checks SI's headline property: with a
// single writer, concurrent snapshot readers always commit (no aborts),
// unlike S2PL/BOCC.
func TestSIReadersNeverAbortNeverBlock(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	seedTx, _ := p.Begin()
	p.Write(seedTx, e.t1, "k", []byte("0"))
	mustCommit(t, p, seedTx)

	h := newHammer(t)
	h.spawn(4, func(int) bool {
		tx, err := p.BeginReadOnly()
		if err != nil {
			t.Error(err)
			return false
		}
		if _, _, err := p.Read(tx, e.t1, "k"); err != nil {
			t.Errorf("SI reader hit error: %v", err)
			return false
		}
		if err := p.Commit(tx); err != nil {
			t.Errorf("SI reader aborted: %v", err)
			return false
		}
		return true
	})
	for i := 0; i < 500; i++ {
		write(t, p, e.t1, "k", "v")
	}
	h.finish()
}

// TestConcurrentCommitStateCoordination drives the consistency protocol
// from two goroutines per transaction — the stream scenario where each
// TO_TABLE operator independently flags its state. Exactly one becomes
// the coordinator; the commit must be atomic and exactly-once.
func TestConcurrentCommitStateCoordination(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	for round := 0; round < 200; round++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		val := encodeU64(uint64(round))
		if err := p.Write(tx, e.t1, "k", val); err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, e.t2, "k", val); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i, tbl := range []*Table{e.t1, e.t2} {
			wg.Add(1)
			go func(i int, tbl *Table) {
				defer wg.Done()
				errs[i] = p.CommitState(tx, tbl)
			}(i, tbl)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d: CommitState[%d]: %v", round, i, err)
			}
		}
		v1, ok := readOne(t, p, e.t1, "k")
		if !ok || decodeU64([]byte(v1)) != uint64(round) {
			t.Fatalf("round %d: state1 = %q %v", round, v1, ok)
		}
	}
}

// TestMixedWritersAllProtocols: several read-modify-write workers per
// protocol must never lose an update.
func TestMixedWritersAllProtocols(t *testing.T) {
	for name, mk := range protocolsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			e := newEnv(t)
			p := mk(e)
			seedTx, _ := p.Begin()
			p.Write(seedTx, e.t1, "ctr", encodeU64(0))
			mustCommit(t, p, seedTx)

			const workers, per = 3, 30
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						for {
							tx, err := p.Begin()
							if err != nil {
								t.Error(err)
								return
							}
							v, _, err := p.Read(tx, e.t1, "ctr")
							if err != nil {
								if IsAbort(err) {
									continue
								}
								t.Error(err)
								return
							}
							n := decodeU64(v)
							if err := p.Write(tx, e.t1, "ctr", encodeU64(n+1)); err != nil {
								if IsAbort(err) {
									continue
								}
								t.Error(err)
								return
							}
							if err := p.Commit(tx); err != nil {
								if IsAbort(err) {
									continue
								}
								t.Error(err)
								return
							}
							break
						}
					}
				}()
			}
			wg.Wait()
			v, _ := readOne(t, p, e.t1, "ctr")
			if decodeU64([]byte(v)) != workers*per {
				t.Fatalf("counter = %d, want %d", decodeU64([]byte(v)), workers*per)
			}
		})
	}
}

// TestHotKeyChurnWithPinnedReaders stresses GC: long-lived pinned readers
// coexist with a hot-key writer; snapshots must stay intact.
func TestHotKeyChurnWithPinnedReaders(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "hot", "init")

	h := newHammer(t)
	var iter atomic.Int64
	h.spawn(3, func(int) bool {
		tx, err := p.BeginReadOnly()
		if err != nil {
			t.Error(err)
			return false
		}
		v1, ok, err := p.Read(tx, e.t1, "hot")
		if err != nil || !ok {
			t.Errorf("first read: %v %v", ok, err)
			return false
		}
		first := append([]byte(nil), v1...)
		// Hold the snapshot a while, then re-read: must be identical.
		time.Sleep(time.Duration(iter.Add(1)%3) * time.Millisecond)
		v2, ok, err := p.Read(tx, e.t1, "hot")
		if err != nil || !ok {
			t.Errorf("re-read: %v %v", ok, err)
			return false
		}
		if string(first) != string(v2) {
			t.Errorf("snapshot drifted: %q -> %q", first, v2)
			return false
		}
		if err := p.Commit(tx); err != nil {
			t.Error(err)
			return false
		}
		return true
	})
	for i := 0; i < 2000; i++ {
		// Retry loop: with pinned reader snapshots holding the GC horizon
		// back, a hot key's version array can fill up; the writer then
		// aborts by design and retries once readers release their pins.
		for {
			tx, err := p.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Write(tx, e.t1, "hot", encodeU64(uint64(i))); err != nil {
				t.Fatal(err)
			}
			err = p.Commit(tx)
			if err == nil {
				break
			}
			if !IsAbort(err) {
				t.Fatal(err)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	h.finish()
}

func encodeU64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

func decodeU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
