package txn

import (
	"fmt"
	"testing"

	"sistream/internal/kv"
)

// env bundles a context with two tables in one group over a shared
// in-memory store — the same shape as the paper's benchmark scenario.
type env struct {
	ctx   *Context
	store kv.Store
	t1    *Table
	t2    *Table
	group *Group
}

func newEnv(t testing.TB) *env {
	t.Helper()
	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	t1, err := ctx.CreateTable("state1", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ctx.CreateTable("state2", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ctx.CreateGroup("g", t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	return &env{ctx: ctx, store: store, t1: t1, t2: t2, group: g}
}

func mustCommit(t testing.TB, p Protocol, tx *Txn) {
	t.Helper()
	if err := p.Commit(tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func write(t testing.TB, p Protocol, tbl *Table, kvs ...string) {
	t.Helper()
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(kvs); i += 2 {
		if err := p.Write(tx, tbl, kvs[i], []byte(kvs[i+1])); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, p, tx)
}

func readOne(t testing.TB, p Protocol, tbl *Table, key string) (string, bool) {
	t.Helper()
	tx, err := p.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.Read(tx, tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx)
	return string(v), ok
}

func TestSIBasicCommitVisibility(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "a", "1")
	if v, ok := readOne(t, p, e.t1, "a"); !ok || v != "1" {
		t.Fatalf("read after commit: %q %v", v, ok)
	}
	if _, ok := readOne(t, p, e.t1, "missing"); ok {
		t.Fatal("read of missing key succeeded")
	}
}

func TestSIReadYourOwnWrites(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.Read(tx, e.t1, "k")
	if err != nil || !ok || string(v) != "mine" {
		t.Fatalf("own write invisible: %q %v %v", v, ok, err)
	}
	if err := p.Delete(tx, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.Read(tx, e.t1, "k"); ok {
		t.Fatal("own delete invisible")
	}
	mustCommit(t, p, tx)
}

func TestSIUncommittedInvisible(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("uncommitted write visible to other transaction")
	}
	mustCommit(t, p, tx)
	if v, ok := readOne(t, p, e.t1, "k"); !ok || v != "dirty" {
		t.Fatalf("committed write not visible: %q %v", v, ok)
	}
}

func TestSISnapshotStability(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "v1")

	reader, _ := p.BeginReadOnly()
	v, ok, err := p.Read(reader, e.t1, "k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("first read: %q %v %v", v, ok, err)
	}

	write(t, p, e.t1, "k", "v2") // concurrent commit

	// The reader's snapshot is pinned: it must keep seeing v1.
	v, ok, err = p.Read(reader, e.t1, "k")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("snapshot unstable: %q %v %v", v, ok, err)
	}
	mustCommit(t, p, reader)

	if v, _ := readOne(t, p, e.t1, "k"); v != "v2" {
		t.Fatalf("new reader should see v2, got %q", v)
	}
}

func TestSIAbortDiscardsWrites(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "orig")
	tx, _ := p.Begin()
	if err := p.Write(tx, e.t1, "k", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if v, _ := readOne(t, p, e.t1, "k"); v != "orig" {
		t.Fatalf("abort leaked: %q", v)
	}
	// Operations on the dead handle fail.
	if _, _, err := p.Read(tx, e.t1, "k"); err != ErrFinished {
		t.Fatalf("read after abort: %v", err)
	}
	if err := p.Write(tx, e.t1, "k", nil); err != ErrFinished {
		t.Fatalf("write after abort: %v", err)
	}
	if err := p.Commit(tx); err != ErrFinished {
		t.Fatalf("commit after abort: %v", err)
	}
	if err := p.Abort(tx); err != ErrFinished {
		t.Fatalf("double abort: %v", err)
	}
}

func TestSIFirstCommitterWins(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "base")

	tx1, _ := p.Begin()
	tx2, _ := p.Begin()
	// Both read (pinning their snapshots), both write the same key.
	if _, _, err := p.Read(tx1, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Read(tx2, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx1, e.t1, "k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx2, e.t1, "k", []byte("two")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx1) // first committer wins
	err := p.Commit(tx2)
	if !IsAbort(err) {
		t.Fatalf("second committer must abort, got %v", err)
	}
	if v, _ := readOne(t, p, e.t1, "k"); v != "one" {
		t.Fatalf("winner's value lost: %q", v)
	}
}

func TestSIWriteWriteNoReadStillConflicts(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx1, _ := p.Begin()
	tx2, _ := p.Begin()
	if err := p.Write(tx1, e.t1, "blind", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(tx2, e.t1, "blind", []byte("2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx1)
	// tx2 began before tx1 committed; FCW (latest > tx2's begin ts) fires.
	if err := p.Commit(tx2); !IsAbort(err) {
		t.Fatalf("blind write conflict missed: %v", err)
	}
}

func TestSISequentialWritersNoConflict(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	for i := 0; i < 10; i++ {
		write(t, p, e.t1, "k", fmt.Sprintf("v%d", i))
	}
	if v, _ := readOne(t, p, e.t1, "k"); v != "v9" {
		t.Fatalf("sequential writes broken: %q", v)
	}
}

func TestSIDeleteCommit(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "k", "v")

	reader, _ := p.BeginReadOnly()
	if _, ok, _ := p.Read(reader, e.t1, "k"); !ok {
		t.Fatal("pre-delete read failed")
	}

	tx, _ := p.Begin()
	if err := p.Delete(tx, e.t1, "k"); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, p, tx)

	// Old snapshot still sees it; new snapshot does not.
	if _, ok, _ := p.Read(reader, e.t1, "k"); !ok {
		t.Fatal("old snapshot lost deleted key")
	}
	mustCommit(t, p, reader)
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("delete not effective")
	}
	// Base store row is gone too.
	if _, found, _ := e.store.Get(e.t1.rowKey("k")); found {
		t.Fatal("base-table row survived the delete")
	}
}

// TestSIMultiStateAtomicVisibility is the heart of the consistency
// protocol (Section 4.3): a transaction writing both states must become
// visible in both at once — a reader pinned to one snapshot never sees
// state1's update without state2's.
func TestSIMultiStateAtomicVisibility(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	// Initial consistent pair.
	tx, _ := p.Begin()
	p.Write(tx, e.t1, "x", []byte("0"))
	p.Write(tx, e.t2, "x", []byte("0"))
	mustCommit(t, p, tx)

	for round := 1; round <= 5; round++ {
		val := []byte(fmt.Sprintf("%d", round))
		tx, _ := p.Begin()
		if err := p.Write(tx, e.t1, "x", val); err != nil {
			t.Fatal(err)
		}

		// A reader starting mid-transaction must see the OLD pair.
		r, _ := p.BeginReadOnly()
		v1, _, _ := p.Read(r, e.t1, "x")
		v2, _, _ := p.Read(r, e.t2, "x")
		if string(v1) != string(v2) {
			t.Fatalf("round %d: torn read %q vs %q", round, v1, v2)
		}
		mustCommit(t, p, r)

		if err := p.Write(tx, e.t2, "x", val); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, p, tx)

		// After commit both move together.
		r2, _ := p.BeginReadOnly()
		v1, _, _ = p.Read(r2, e.t1, "x")
		v2, _, _ = p.Read(r2, e.t2, "x")
		if string(v1) != string(v2) || string(v1) != string(val) {
			t.Fatalf("round %d: post-commit pair %q/%q want %q", round, v1, v2, val)
		}
		mustCommit(t, p, r2)
	}
}

// TestSICommitStateCoordinator exercises the per-state flag protocol: the
// operator that flips the last flag performs the global commit.
func TestSICommitStateCoordinator(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.Begin()
	p.Write(tx, e.t1, "k", []byte("v1"))
	p.Write(tx, e.t2, "k", []byte("v2"))

	// First state flagged: nothing visible yet.
	if err := p.CommitState(tx, e.t1); err != nil {
		t.Fatal(err)
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("partial commit visible after first flag")
	}
	// Second (last) flag: this call coordinates the global commit.
	if err := p.CommitState(tx, e.t2); err != nil {
		t.Fatal(err)
	}
	if v, ok := readOne(t, p, e.t1, "k"); !ok || v != "v1" {
		t.Fatalf("state1 after global commit: %q %v", v, ok)
	}
	if v, ok := readOne(t, p, e.t2, "k"); !ok || v != "v2" {
		t.Fatalf("state2 after global commit: %q %v", v, ok)
	}
}

func TestSIAbortFlagAbortsGlobally(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.Begin()
	p.Write(tx, e.t1, "k", []byte("v1"))
	p.Write(tx, e.t2, "k", []byte("v2"))
	if err := p.CommitState(tx, e.t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(tx); err != nil {
		t.Fatal(err)
	}
	// CommitState on the aborted transaction fails, nothing visible.
	if err := p.CommitState(tx, e.t2); err != ErrFinished {
		t.Fatalf("commit-state after abort: %v", err)
	}
	if _, ok := readOne(t, p, e.t1, "k"); ok {
		t.Fatal("aborted write visible")
	}
}

func TestSIReadOnlyCannotWrite(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	tx, _ := p.BeginReadOnly()
	if err := p.Write(tx, e.t1, "k", []byte("v")); err == nil {
		t.Fatal("write in read-only transaction allowed")
	}
	mustCommit(t, p, tx)
}

func TestUnregisteredTableRejected(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	orphan, err := e.ctx.CreateTable("orphan", e.store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := p.Begin()
	if err := p.Write(tx, orphan, "k", nil); err == nil {
		t.Fatal("write to group-less table allowed")
	}
	if _, _, err := p.Read(tx, orphan, "k"); err == nil {
		t.Fatal("read from group-less table allowed")
	}
	mustCommit(t, p, tx)
}

func TestSIPersistenceAndRecovery(t *testing.T) {
	store := kv.NewMem() // shared across "restarts" (memory store stands in for disk)
	defer store.Close()

	// First incarnation: write and commit.
	ctx := NewContext()
	t1, _ := ctx.CreateTable("s1", store, TableOptions{SyncCommits: true})
	t2, _ := ctx.CreateTable("s2", store, TableOptions{SyncCommits: true})
	if _, err := ctx.CreateGroup("g", t1, t2); err != nil {
		t.Fatal(err)
	}
	p := NewSI(ctx)
	tx, _ := p.Begin()
	p.Write(tx, t1, "k1", []byte("v1"))
	p.Write(tx, t2, "k2", []byte("v2"))
	mustCommit(t, p, tx)
	lastCTS := t1.Group().LastCTS()

	// Second incarnation over the same base store.
	ctx2 := NewContext()
	r1, _ := ctx2.CreateTable("s1", store, TableOptions{})
	r2, _ := ctx2.CreateTable("s2", store, TableOptions{})
	g2, err := ctx2.CreateGroup("g", r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.LastCTS() != lastCTS {
		t.Fatalf("recovered LastCTS %d, want %d", g2.LastCTS(), lastCTS)
	}
	p2 := NewSI(ctx2)
	if v, ok := readOne(t, p2, r1, "k1"); !ok || v != "v1" {
		t.Fatalf("recovered k1: %q %v", v, ok)
	}
	if v, ok := readOne(t, p2, r2, "k2"); !ok || v != "v2" {
		t.Fatalf("recovered k2: %q %v", v, ok)
	}
	// New commits continue with larger timestamps.
	tx2, _ := p2.Begin()
	if tx2.ID() <= lastCTS {
		t.Fatalf("clock not advanced past recovery: %d <= %d", tx2.ID(), lastCTS)
	}
	p2.Write(tx2, r1, "k1", []byte("v1b"))
	mustCommit(t, p2, tx2)
	if v, _ := readOne(t, p2, r1, "k1"); v != "v1b" {
		t.Fatalf("post-recovery write: %q", v)
	}
}

func TestSIGarbageCollection(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	// Many updates of one key with no concurrent readers: GC keeps the
	// version array from growing without bound.
	for i := 0; i < 200; i++ {
		write(t, p, e.t1, "hot", fmt.Sprintf("v%d", i))
	}
	o := e.t1.object("hot", false)
	if o == nil {
		t.Fatal("object missing")
	}
	if o.Capacity() > 16 {
		t.Fatalf("version array grew to %d despite GC", o.Capacity())
	}
	if v, _ := readOne(t, p, e.t1, "hot"); v != "v199" {
		t.Fatalf("latest value lost: %q", v)
	}
}

func TestSIPinnedReaderBlocksGC(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	write(t, p, e.t1, "hot", "pinned")
	reader, _ := p.BeginReadOnly()
	if _, _, err := p.Read(reader, e.t1, "hot"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		write(t, p, e.t1, "hot", fmt.Sprintf("v%d", i))
	}
	// The reader's snapshot must have survived all that churn.
	v, ok, err := p.Read(reader, e.t1, "hot")
	if err != nil || !ok || string(v) != "pinned" {
		t.Fatalf("pinned snapshot lost: %q %v %v", v, ok, err)
	}
	mustCommit(t, p, reader)
}

func TestSnapshotScan(t *testing.T) {
	e := newEnv(t)
	p := NewSI(e.ctx)
	for i := 0; i < 10; i++ {
		write(t, p, e.t1, fmt.Sprintf("k%d", i), "v")
	}
	tx, _ := p.BeginReadOnly()
	rts := tx.pin(e.t1)
	n := 0
	e.t1.SnapshotScan(rts, func(_ string, _ []byte) bool { n++; return true })
	if n != 10 {
		t.Fatalf("scan saw %d keys", n)
	}
	// Early stop.
	n = 0
	e.t1.SnapshotScan(rts, func(_ string, _ []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	mustCommit(t, p, tx)
}
