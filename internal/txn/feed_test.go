package txn

import (
	"fmt"
	"testing"
	"time"

	"sistream/internal/kv"
)

// feedEnv is a one-table group over a mem store with the SI protocol.
func feedEnv(t *testing.T) (*Context, Protocol, *Table) {
	t.Helper()
	ctx := NewContext()
	store := kv.NewMem()
	t.Cleanup(func() { store.Close() })
	tbl, err := ctx.CreateTable("feed", store, TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CreateGroup("g", tbl); err != nil {
		t.Fatal(err)
	}
	return ctx, NewSI(ctx), tbl
}

// TestWatchPartitionedFanOut pins the fan-out contract: every commit that
// wrote the table produces exactly one event per partition, in commit
// order, with the write-set keys split disjointly by hash and per-key
// order preserved; untouched partitions receive the event with no keys.
func TestWatchPartitionedFanOut(t *testing.T) {
	_, p, tbl := feedEnv(t)
	const parts = 3
	const commits, keysPerCommit = 20, 5
	// The buffer must hold every commit: this test drains the feed only
	// after all commits are done, and an undersized feed would (by
	// design) backpressure the commit path into a deadlock here.
	feed, err := tbl.WatchPartitioned(parts, 2*commits, nil)
	if err != nil {
		t.Fatal(err)
	}
	feeds, stop := feed.Partitions(), feed.Stop

	var wantCTS []Timestamp
	for c := 0; c < commits; c++ {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < keysPerCommit; k++ {
			key := fmt.Sprintf("k%d", (c+k)%7)
			if err := p.Write(tx, tbl, key, []byte(fmt.Sprintf("v%d.%d", c, k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		wantCTS = append(wantCTS, tbl.Group().LastCTS())
	}
	stop()

	partOf := map[string]int{}
	for i := 0; i < parts; i++ {
		n := 0
		var perPart [][]string
		for ev := range feeds[i] {
			if ev.CTS != wantCTS[n] {
				t.Fatalf("partition %d event %d: cts=%d want %d", i, n, ev.CTS, wantCTS[n])
			}
			perPart = append(perPart, ev.Keys)
			for _, k := range ev.Keys {
				if owner, seen := partOf[k]; seen && owner != i {
					t.Fatalf("key %q delivered to partitions %d and %d", k, owner, i)
				}
				partOf[k] = i
			}
			n++
		}
		if n != commits {
			t.Fatalf("partition %d: %d events, want %d (every commit on every partition)", i, n, commits)
		}
	}
	if len(partOf) != 7 {
		t.Fatalf("%d distinct keys seen, want 7", len(partOf))
	}
}

// TestWatchPartitionedCoalesce pins the changelog-mode contract: events
// for a keeping-up partition are delivered per commit; a stalled
// partition's backlog folds into one newest-wins bucket (newest CTS, each
// key once, no growth with stall length); untouched partitions receive NO
// event (no empty-Keys alignment); per-key routing is still stable.
func TestWatchPartitionedCoalesce(t *testing.T) {
	_, p, tbl := feedEnv(t)
	// Route by the key's digit suffix so the test controls partition
	// placement exactly.
	route := func(k string) uint64 { return uint64(k[len(k)-1] - '0') }
	feed, err := tbl.WatchPartitionedOpts(2, FeedOptions{Buf: 1, KeyFn: route, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	commit := func(keys ...string) Timestamp {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := p.Write(tx, tbl, k, []byte("v-"+k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
		return tbl.Group().LastCTS()
	}

	// Partition 0 only: the first commit lands in the (size-1) channel;
	// the next three MUST fold into one pending bucket.
	cts1 := commit("a0")
	commit("a0", "b0")
	commit("c0")
	ctsFold := commit("a0")
	// Partition 1 only: fits the channel, delivered as-is; partition 0
	// must NOT see an empty alignment event for it.
	ctsOther := commit("x1")

	feed.Stop()
	var part0, part1 []FeedEvent
	for ev := range feed.Partitions()[0] {
		part0 = append(part0, ev)
	}
	for ev := range feed.Partitions()[1] {
		part1 = append(part1, ev)
	}

	if len(part0) != 2 {
		t.Fatalf("partition 0: %d events, want 2 (direct + one folded bucket), got %+v", len(part0), part0)
	}
	if part0[0].CTS != cts1 || len(part0[0].Keys) != 1 || part0[0].Keys[0] != "a0" {
		t.Fatalf("partition 0 direct event = %+v, want cts %d keys [a0]", part0[0], cts1)
	}
	folded := part0[1]
	if folded.CTS != ctsFold {
		t.Fatalf("folded bucket cts = %d, want newest folded commit %d", folded.CTS, ctsFold)
	}
	// Newest-wins: a0 written in three folded commits appears once, in
	// first-appearance order relative to b0 and c0.
	want := []string{"a0", "b0", "c0"}
	if len(folded.Keys) != len(want) {
		t.Fatalf("folded keys = %v, want %v", folded.Keys, want)
	}
	for i := range want {
		if folded.Keys[i] != want[i] {
			t.Fatalf("folded keys = %v, want %v", folded.Keys, want)
		}
	}
	if len(part1) != 1 || part1[0].CTS != ctsOther || len(part1[0].Keys) != 1 || part1[0].Keys[0] != "x1" {
		t.Fatalf("partition 1 = %+v, want one event cts %d keys [x1]", part1, ctsOther)
	}
}

// TestWatchPartitionedStopDrain: commits queued before stop are still
// delivered afterwards; commits after stop are dropped; channels close.
func TestWatchPartitionedStopDrain(t *testing.T) {
	_, p, tbl := feedEnv(t)
	feed, err := tbl.WatchPartitioned(2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	feeds, stop := feed.Partitions(), feed.Stop
	commit := func(key string) {
		tx, err := p.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(tx, tbl, key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	commit("a")
	commit("b")
	stop()
	stop() // idempotent
	commit("c")

	for i := 0; i < 2; i++ {
		total := 0
		events := 0
		for ev := range feeds[i] {
			events++
			total += len(ev.Keys)
			for _, k := range ev.Keys {
				if k == "c" {
					t.Fatal("post-stop commit leaked into the feed")
				}
			}
		}
		// The two pre-stop commits may or may not have been routed before
		// stop closed; drain semantics guarantee they were (queued before
		// stop returned), so both events must arrive.
		if events != 2 {
			t.Fatalf("partition %d: %d events after drain, want 2", i, events)
		}
		_ = total
	}
}

// TestWatchPartitionedStopUnblocksBackpressuredCommit: with a stalled
// consumer and a tiny buffer, a committing watcher eventually blocks on
// the feed (the documented backpressure). Stop must still return
// promptly, release the blocked commit, and leave no commit pinned into
// the GC horizon once the drained events are acknowledged — a commit
// abandoned by stop unpins itself.
func TestWatchPartitionedStopUnblocksBackpressuredCommit(t *testing.T) {
	_, p, tbl := feedEnv(t)
	feed, err := tbl.WatchPartitioned(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const commits = 10
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < commits; i++ {
			tx, err := p.Begin()
			if err != nil {
				writerDone <- err
				return
			}
			if err := p.Write(tx, tbl, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				writerDone <- err
				return
			}
			if err := p.Commit(tx); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()
	// Let the writer run into the backpressure wall (buffer 1, nobody
	// consuming), then stop the feed.
	time.Sleep(30 * time.Millisecond)
	stopped := make(chan struct{})
	go func() {
		feed.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked against a backpressured commit watcher")
	}
	select {
	case err := <-writerDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("committer still blocked after Stop")
	}
	// Drain and acknowledge whatever was delivered; afterwards nothing
	// may remain pinned (undelivered commits unpinned themselves).
	n := 0
	for range feed.Partitions()[0] {
		feed.Ack(0)
		n++
	}
	if n > commits {
		t.Fatalf("drained %d events of %d commits", n, commits)
	}
	if pinned := feed.PinnedCTS(); pinned != 0 {
		t.Fatalf("stopped+drained feed still pins cts %d", pinned)
	}
}

// TestWatchPartitionedValidation: bad partition counts and tables outside
// any group are rejected.
func TestWatchPartitionedValidation(t *testing.T) {
	ctx, _, tbl := feedEnv(t)
	if _, err := tbl.WatchPartitioned(0, 0, nil); err == nil {
		t.Fatal("parts=0 accepted")
	}
	orphan, err := ctx.CreateTable("orphan", kv.NewMem(), TableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orphan.WatchPartitioned(2, 0, nil); err == nil {
		t.Fatal("group-less table accepted")
	}
}
