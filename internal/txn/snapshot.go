package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sistream/internal/mvcc"
)

// Snapshot is a consistent analytical read view: one commit timestamp
// pinned across one or more tables (possibly of different topology
// groups), under which every read — point lookups, full scans, striped
// lane-parallel scans, and secondary-index lookups — observes whole
// transactions or nothing. A Snapshot holds a transaction slot and a GC
// pin (the same OldestActiveVersion machinery protecting feeds and
// read-write transactions), so version reclamation respects even very
// long scans; Release the snapshot when done to unpin the horizon.
//
// Reads never block writers and writers never block reads: every method
// is an RCU version-store read at the pinned timestamp. All methods are
// safe for concurrent use, so one Snapshot may serve many query lanes.
type Snapshot struct {
	ctx    *Context
	tx     *Txn
	rts    Timestamp
	tables map[StateID]*Table

	released atomic.Bool
}

// Snapshot pins a consistent read timestamp across the given tables and
// returns the read view. Every table must already belong to a topology
// group. The pinned timestamp is the minimum of the involved groups'
// LastCTS — a consistent cross-group cut, because a multi-group commit
// publishes its timestamp to every involved group under all their commit
// latches: the minimum either precedes such a commit everywhere or
// includes it everywhere.
func (c *Context) Snapshot(tables ...*Table) (*Snapshot, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("txn: Snapshot needs at least one table")
	}
	byID := make(map[StateID]*Table, len(tables))
	var groups []*Group
	for _, tbl := range tables {
		if tbl.group == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownState, tbl.id)
		}
		byID[tbl.id] = tbl
		seen := false
		for _, g := range groups {
			if g == tbl.group {
				seen = true
				break
			}
		}
		if !seen {
			groups = append(groups, tbl.group)
		}
	}

	// The snapshot occupies a transaction slot so the GC horizon scan
	// (OldestActiveVersion) sees its pin; it never enters a commit path.
	tx := &Txn{id: c.next(), ctx: c, readOnly: true, done: make(chan struct{})}
	if err := c.register(tx); err != nil {
		return nil, err
	}

	minCTS := func() Timestamp {
		rts := groups[0].LastCTS()
		for _, g := range groups[1:] {
			if cts := g.LastCTS(); cts < rts {
				rts = cts
			}
		}
		return rts
	}
	// Store-then-validate, exactly as Txn.pin: publish the GC pin, then
	// confirm no commit raced past it. A racing commit raises some
	// LastCTS, so re-reading the minimum detects it and we retry with the
	// newer cut; on exit every version visible at rts is protected.
	var rts Timestamp
	for {
		rts = minCTS()
		if p := tx.pinnedOldest.Load(); p == 0 || rts < p {
			tx.pinnedOldest.Store(rts)
		}
		if minCTS() == rts {
			break
		}
	}
	return &Snapshot{ctx: c, tx: tx, rts: rts, tables: byID}, nil
}

// CTS returns the snapshot's pinned commit timestamp.
func (s *Snapshot) CTS() Timestamp { return s.rts }

// table validates that tbl was declared when the snapshot was taken —
// only declared tables are covered by the consistency argument (their
// groups participated in the pinned cut).
func (s *Snapshot) table(tbl *Table) error {
	if s.released.Load() {
		return ErrFinished
	}
	if _, ok := s.tables[tbl.id]; !ok {
		return fmt.Errorf("txn: table %q not covered by this snapshot", tbl.id)
	}
	return nil
}

// Get returns the value of key in tbl at the snapshot.
func (s *Snapshot) Get(tbl *Table, key string) ([]byte, bool, error) {
	if err := s.table(tbl); err != nil {
		return nil, false, err
	}
	v, ok := tbl.readVersion(key, s.rts)
	return v, ok, nil
}

// Scan iterates every key of tbl visible at the snapshot in unspecified
// order, calling fn until it returns false.
func (s *Snapshot) Scan(tbl *Table, fn func(key string, value []byte) bool) error {
	if err := s.table(tbl); err != nil {
		return err
	}
	tbl.SnapshotScan(s.rts, fn)
	return nil
}

// ScanRange iterates the keys of tbl in [start, end) visible at the
// snapshot (lexicographic bounds; end == "" means unbounded), in
// unspecified order, calling fn until it returns false.
func (s *Snapshot) ScanRange(tbl *Table, start, end string, fn func(key string, value []byte) bool) error {
	if err := s.table(tbl); err != nil {
		return err
	}
	scanStripe(tbl, s.rts, 0, 1, func(key string, value []byte) bool {
		if key < start || (end != "" && key >= end) {
			return true
		}
		return fn(key, value)
	})
	return nil
}

// ScanStripe iterates stripe number `stripe` of `stripes` equal slices
// of tbl's key shards at the snapshot — the unit of lane-parallel scans:
// the stripes partition the table, so `stripes` goroutines each scanning
// one stripe cover every visible key exactly once (ParallelScan wires
// exactly that).
func (s *Snapshot) ScanStripe(tbl *Table, stripe, stripes int, fn func(key string, value []byte) bool) error {
	if err := s.table(tbl); err != nil {
		return err
	}
	if stripes < 1 || stripe < 0 || stripe >= stripes {
		return fmt.Errorf("txn: ScanStripe: invalid stripe %d of %d", stripe, stripes)
	}
	scanStripe(tbl, s.rts, stripe, stripes, fn)
	return nil
}

// ParallelScan scans tbl at the snapshot with `lanes` concurrent
// goroutines, one stripe of the key shards each. fn is called
// concurrently from all lanes and must be safe for that; returning false
// from any invocation stops every lane promptly. The scan observes the
// same consistent cut as a sequential Scan — lanes share one pinned
// timestamp.
func (s *Snapshot) ParallelScan(tbl *Table, lanes int, fn func(key string, value []byte) bool) error {
	if err := s.table(tbl); err != nil {
		return err
	}
	if lanes < 1 {
		lanes = 1
	}
	if lanes > tableShards {
		lanes = tableShards
	}
	if lanes == 1 {
		tbl.SnapshotScan(s.rts, fn)
		return nil
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			scanStripe(tbl, s.rts, stripe, lanes, func(key string, value []byte) bool {
				if stop.Load() {
					return false
				}
				if !fn(key, value) {
					stop.Store(true)
					return false
				}
				return true
			})
		}(lane)
	}
	wg.Wait()
	return nil
}

// Lookup reads rows of ix's table through the secondary index at the
// snapshot: fn is called for every row whose index key equals ikey at
// the pinned timestamp, with the row value at that same timestamp. The
// index write-path invariant (postings install at their row's commit
// timestamp) makes this equal to a filtered full scan of the table.
func (s *Snapshot) Lookup(ix *Index, ikey string, fn func(key string, value []byte) bool) error {
	if err := s.table(ix.tbl); err != nil {
		return err
	}
	ix.Lookup(s.rts, ikey, fn)
	return nil
}

// Release drops the snapshot's GC pin and transaction slot. Idempotent.
// After Release every read method fails with ErrFinished; versions the
// snapshot alone kept alive become reclaimable by the next sweep.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	s.tx.finished.Store(true)
	close(s.tx.done)
	s.ctx.unregister(s.tx)
}

// scanStripe iterates the visible keys of shard stripe `stripe` of
// `stripes` at rts: the shards i with i % stripes == stripe. Collect
// pairs under the shard read lock, read versions outside it (RCU), as
// SnapshotScan does.
func scanStripe(t *Table, rts Timestamp, stripe, stripes int, fn func(key string, value []byte) bool) {
	type pair struct {
		k string
		o *mvcc.Object
	}
	for i := stripe; i < tableShards; i += stripes {
		sh := &t.shards[i]
		sh.mu.RLock()
		pairs := make([]pair, 0, len(sh.m))
		for k, o := range sh.m {
			pairs = append(pairs, pair{k, o})
		}
		sh.mu.RUnlock()
		for _, p := range pairs {
			if v, ok := p.o.Read(rts); ok {
				if !fn(p.k, v) {
					return
				}
			}
		}
	}
}
