package txn

import (
	"fmt"
)

// SI is the paper's snapshot-isolation protocol over MVCC tables
// (Section 4.2):
//
//   - Reads first consult the transaction's own uncommitted write set,
//     then the latest version visible at the snapshot pinned on the
//     transaction's first read of the group (ReadCTS). Reads never block
//     writes and vice versa.
//   - Writes only append to the write set ("Dirty Array"); with a single
//     writer they never block, and with multiple writers conflicts are
//     resolved at commit time by the First-Committer-Wins rule.
//   - Commit runs the shared consistency protocol through the group-commit
//     pipeline: the committer enqueues its validated write set, and a batch
//     leader admits it (First-Committer-Wins, against installed versions
//     plus earlier same-batch admissions), persists one coalesced
//     (optionally synchronous) batch per base store, installs the versions
//     and publishes LastCTS once per batch (see leaderCommit).
//   - Abort just discards the write set — no undo is ever needed inside
//     the table.
type SI struct {
	protocolBase
}

// NewSI creates the snapshot-isolation protocol over ctx.
func NewSI(ctx *Context) *SI {
	return &SI{protocolBase{ctx: ctx}}
}

var (
	_ Protocol       = (*SI)(nil)
	_ SegmentWriter  = (*SI)(nil)
	_ ChainCommitter = (*SI)(nil)
)

// Name implements Protocol.
func (p *SI) Name() string { return "mvcc" }

// Begin implements Protocol.
func (p *SI) Begin() (*Txn, error) { return p.begin(false) }

// BeginReadOnly implements Protocol.
func (p *SI) BeginReadOnly() (*Txn, error) { return p.begin(true) }

// Read implements Protocol: write set first, then the snapshot version.
func (p *SI) Read(tx *Txn, tbl *Table, key string) ([]byte, bool, error) {
	if err := requireGroup(tbl); err != nil {
		return nil, false, err
	}
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return nil, false, ErrFinished
	}
	if e, ok := tx.states[tbl.id]; ok {
		if op, dirty := e.get(key); dirty {
			v, del := op.value, op.delete
			tx.mu.Unlock()
			if del {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	rts := tx.pin(tbl)
	tx.mu.Unlock()
	v, ok := tbl.readVersion(key, rts)
	return v, ok, nil
}

// Write implements Protocol. The write pins the transaction's snapshot
// for the table's group (first access wins): the First-Committer-Wins
// check compares committed versions against this pin, so strictly
// sequential transactions — e.g. the batches of one continuous stream
// query, whose Begin may race ahead of the previous batch's commit in a
// pipelined dataflow — never conflict with themselves, while genuinely
// concurrent writers of one key still abort.
func (p *SI) Write(tx *Txn, tbl *Table, key string, value []byte) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	tx.pin(tbl)
	tx.mu.Unlock()
	return bufferWrite(tx, tbl, key, writeOp{value: append([]byte(nil), value...)})
}

// WriteBatch implements Protocol: one snapshot pin, one state-entry
// resolution and one latch acquisition for the whole batch. This is the
// fast path of the vectorized TO_TABLE operator — per-tuple cost reduces
// to appending to the write set.
func (p *SI) WriteBatch(tx *Txn, tbl *Table, ops []WriteOp) (int, error) {
	return bufferWriteBatch(tx, tbl, ops, true)
}

// WriteSegment implements SegmentWriter: it merges a lane's private
// write-set segment into the transaction under one latch acquisition,
// adopting the segment's value copies instead of re-copying them. Safe
// for concurrent calls from the lanes of one parallel region — the
// transaction latch serializes the merges, and keyed routing keeps the
// lanes' key sets disjoint, so merge order cannot change the write set's
// contents.
func (p *SI) WriteSegment(tx *Txn, tbl *Table, seg *Segment) (int, error) {
	return writeSegment(tx, tbl, seg, true)
}

// Delete implements Protocol (see Write for snapshot pinning).
func (p *SI) Delete(tx *Txn, tbl *Table, key string) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return ErrFinished
	}
	tx.pin(tbl)
	tx.mu.Unlock()
	return bufferWrite(tx, tbl, key, writeOp{delete: true})
}

// admitFCW is the First-Committer-Wins check: the transaction must abort
// if any written key has a committed version newer than the transaction's
// snapshot — "if the current version is greater than the timestamp of
// the transaction, it must abort" (Section 4.2). The snapshot is the
// ReadCTS pinned at the transaction's first access of the group (Write
// pins it too, so it always exists for written states); the begin
// timestamp is a defensive fallback. The overlay carries writes admitted
// earlier in the same group-commit batch, whose versions are not
// installed yet but must conflict all the same.
//
// A transaction on a commit chain raises its snapshot to the chain's
// committed floor: its predecessors' writes are serial history, not
// conflicts (it is admitted strictly after them — exactly as if it had
// begun right after the predecessor's commit), while a foreign writer
// that committed after the floor still conflicts. See chain.go.
func (p *SI) admitFCW(tx *Txn, ov *commitOverlay) error {
	for _, e := range tx.states {
		snapshot := tx.id
		if pinned, ok := tx.readCTS[e.table.group.id]; ok {
			snapshot = pinned
		}
		if ch := tx.chain; ch != nil {
			if f := ch.floor(); f > snapshot {
				snapshot = f
			}
		}
		for i, key := range e.order {
			// Resolve the MVCC object once here and cache it for the
			// install phase (both run under the commit latch).
			o := e.table.object(key, false)
			e.ops[i].obj = o
			var latest Timestamp
			if o != nil {
				latest = o.LatestCTS()
			}
			if ov != nil {
				if ts := ov.pending[e.table][key]; ts > latest {
					latest = ts
				}
			}
			if latest > snapshot {
				return fmt.Errorf("%w: state %q key %q (latest %d > snapshot %d)",
					ErrConflict, e.table.id, key, latest, snapshot)
			}
		}
	}
	return nil
}

// CommitState implements Protocol (the consistency protocol's per-state
// flag; see Section 4.3).
func (p *SI) CommitState(tx *Txn, tbl *Table) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	return commitState(tx, tbl, func() error {
		return p.installCommit(tx, func(ov *commitOverlay) error { return p.admitFCW(tx, ov) })
	})
}

// Commit implements Protocol.
func (p *SI) Commit(tx *Txn) error {
	return commitAll(tx, func() error {
		return p.installCommit(tx, func(ov *commitOverlay) error { return p.admitFCW(tx, ov) })
	})
}

// CommitChain implements ChainCommitter: the chain's transactions are
// flagged in order and the completed ones are admitted (First-Committer-
// Wins, chain-floor aware) and committed through the group-commit
// pipeline as one multi-request submission per consecutive same-group
// run — one leader tenure, one coalesced store batch and fsync, one
// LastCTS publish for the whole run.
func (p *SI) CommitChain(txs []*Txn, tbls []*Table) [][]error {
	return p.commitChain(txs, tbls, func(tx *Txn) func(*commitOverlay) error {
		return func(ov *commitOverlay) error { return p.admitFCW(tx, ov) }
	}, nil)
}

// Abort implements Protocol.
func (p *SI) Abort(tx *Txn) error { return p.abort(tx) }
