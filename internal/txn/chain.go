package txn

// This file implements cross-transaction commit chains: the transaction-
// layer half of the fused commit spine. A continuous stream query is a
// SEQUENCE of transactions; with the sequential spine the query's next
// transaction begins only after the previous one committed, so the
// group-commit pipeline sees at most one of the query's transactions at a
// time and every small transaction pays its own leader tenure, store batch
// and fsync. A Chain makes the sequence explicit so the stream layer can
// run a bounded WINDOW of the query's transactions concurrently and submit
// several consecutive, already-decided transactions to the pipeline as ONE
// batch — one leader tenure, one coalesced store batch + fsync, one
// LastCTS publish for N small transactions — without giving up the
// serial-order semantics the sequence had:
//
//   - First-Committer-Wins stays honest: a chain member admitted at
//     commit time raises the chain's committed floor to its commit
//     timestamp, and a later member's FCW snapshot is raised to that
//     floor. Conflicts between chain members therefore never abort (the
//     successor is, by construction, the next transaction of the same
//     serial query — exactly as if it had begun right after its
//     predecessor committed), while conflicts with FOREIGN writers that
//     committed after the floor still do.
//   - Wait-die stays deadlock-free: a chain successor may wait for a
//     predecessor's locks even though it is younger, because a
//     predecessor past its decision point never waits on a successor
//     (see lockmgr.go mayWait).
//
// What a window deliberately does NOT preserve is read visibility between
// the windowed transactions: member N+1 begins (and pins its snapshot)
// before member N commits, so reads inside the window may observe the
// pre-window state. The fused spine targets the blind-write TO_TABLE
// ingest path, where transactions carry no reads; see DESIGN.md "Fused
// commit spine" for the full argument.

import "sync/atomic"

// Chain is the serial-commit token shared by the transactions of one
// windowed stream query. Attach each transaction with Txn.SetChain before
// its first write; the commit machinery maintains the chain's committed
// floor. The zero value is ready to use; NewChain is the conventional
// constructor.
type Chain struct {
	// lastCTS is the chain's committed floor: the newest commit timestamp
	// admitted by a chain member. Later members' FCW snapshots are raised
	// to it.
	lastCTS atomic.Uint64
}

// NewChain creates an empty commit chain.
func NewChain() *Chain { return &Chain{} }

// floor returns the chain's committed floor (0 before the first member
// commits).
func (c *Chain) floor() Timestamp { return c.lastCTS.Load() }

// raise lifts the committed floor to at least cts. Admissions of one
// chain are ordered (the spine submits members in order and admissions
// serialize under the group commit latch), but distinct groups of a
// multi-state chain may race, hence the CAS-max.
func (c *Chain) raise(cts Timestamp) {
	for {
		cur := c.lastCTS.Load()
		if cur >= cts || c.lastCTS.CompareAndSwap(cur, cts) {
			return
		}
	}
}

// SetChain attaches t to a serial commit chain. The caller asserts that
// the chain's transactions are totally ordered — each is submitted for
// commit only after its predecessor — which is exactly what the stream
// layer's windowed Transactions operator plus the barrier's commit spine
// guarantee. Must be called before the transaction's first write.
func (t *Txn) SetChain(c *Chain) { t.chain = c }

// sameChainPredecessor reports whether hold is an earlier member of the
// same commit chain as req — the one younger-waits-for-older exception
// wait-die grants (see lockmgr.go).
func sameChainPredecessor(req, hold *Txn) bool {
	return req.chain != nil && req.chain == hold.chain && hold.id < req.id
}

// ChainCommitter is implemented by protocols whose commit path can take a
// whole chain window at once. CommitChain flags every table in tbls on
// every transaction in txs, in order — exactly as per-transaction
// CommitState calls in that order would — and globally commits every
// transaction whose flag set this completed, batching consecutive
// single-group members through ONE group-commit pipeline submission. An
// abort (admission rejection, validation failure, prior poisoning) splits
// the batch: the rejected member aborts alone and its neighbors commit
// unaffected.
//
// The returned matrix is indexed [transaction][table] and mirrors what
// the equivalent CommitState call would have returned: nil for a
// successful flag (or for the final flag of a successfully committed
// transaction), an ErrAborted variant when the transaction failed, with
// the global-commit verdict attributed to the table whose flag completed
// the set.
type ChainCommitter interface {
	CommitChain(txs []*Txn, tbls []*Table) [][]error
}
