package txn

import (
	"fmt"
	"math/bits"
	"sync"
)

// BOCC is the backward-oriented optimistic concurrency control baseline
// of the paper's evaluation [8]. Transactions run in three phases:
//
//	read phase      reads go straight to the latest committed version
//	                (no locks, no snapshot) while a read set is recorded;
//	                writes are buffered in the write set.
//	validation      at commit, the transaction is checked backward
//	                against every transaction that committed during its
//	                read phase: any overlap between our read set and
//	                their write sets forces an abort (ErrValidation).
//	write phase     on success, the shared commit machinery installs the
//	                versions and publishes LastCTS.
//
// Following Härder's original scheme, validation and the write phase form
// one critical section (the global validation mutex), and the commit
// record enters the history with a timestamp drawn AFTER the write phase
// completes. Both points matter for correctness with lock-free readers:
// because reads are unsynchronized, a reader can observe a torn subset of
// a concurrent commit — but any such reader necessarily began before that
// commit's record timestamp, so its own validation will find the record
// and abort it. With few conflicts BOCC is the cheapest protocol (no lock
// table, no snapshot bookkeeping) — the paper measures it ~5% ahead of
// MVCC at low contention with many readers — but aborts explode once
// contention rises (Figure 4).
type BOCC struct {
	protocolBase
}

// NewBOCC creates the optimistic protocol over ctx.
func NewBOCC(ctx *Context) *BOCC {
	return &BOCC{protocolBase{ctx: ctx}}
}

var (
	_ Protocol       = (*BOCC)(nil)
	_ SegmentWriter  = (*BOCC)(nil)
	_ ChainCommitter = (*BOCC)(nil)
)

// Name implements Protocol.
func (p *BOCC) Name() string { return "bocc" }

// Begin implements Protocol.
func (p *BOCC) Begin() (*Txn, error) {
	t, err := p.begin(false)
	if err != nil {
		return nil, err
	}
	t.reads = make(map[StateID]map[string]struct{})
	return t, nil
}

// BeginReadOnly implements Protocol. Read-only transactions still
// validate: that is what guarantees an ad-hoc query saw a consistent
// state under BOCC.
func (p *BOCC) BeginReadOnly() (*Txn, error) {
	t, err := p.begin(true)
	if err != nil {
		return nil, err
	}
	t.reads = make(map[StateID]map[string]struct{})
	return t, nil
}

// Read implements Protocol: latest committed version, read set recorded.
func (p *BOCC) Read(tx *Txn, tbl *Table, key string) ([]byte, bool, error) {
	if err := requireGroup(tbl); err != nil {
		return nil, false, err
	}
	tx.mu.Lock()
	if tx.finished.Load() {
		tx.mu.Unlock()
		return nil, false, ErrFinished
	}
	if e, ok := tx.states[tbl.id]; ok {
		if op, dirty := e.get(key); dirty {
			v, del := op.value, op.delete
			tx.mu.Unlock()
			if del {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	tx.trackRead(tbl.id, key)
	tx.mu.Unlock()
	v, ok := tbl.readVersion(key, ^Timestamp(0))
	return v, ok, nil
}

// Write implements Protocol.
func (p *BOCC) Write(tx *Txn, tbl *Table, key string, value []byte) error {
	return bufferWrite(tx, tbl, key, writeOp{value: append([]byte(nil), value...)})
}

// Delete implements Protocol.
func (p *BOCC) Delete(tx *Txn, tbl *Table, key string) error {
	return bufferWrite(tx, tbl, key, writeOp{delete: true})
}

// WriteBatch implements Protocol: pure write-set appends (BOCC takes no
// locks and pins no snapshot on write), one latch acquisition per batch.
func (p *BOCC) WriteBatch(tx *Txn, tbl *Table, ops []WriteOp) (int, error) {
	return bufferWriteBatch(tx, tbl, ops, false)
}

// WriteSegment implements SegmentWriter: BOCC's write path has no
// per-key side effects (no locks, no snapshot pin — writes are pure
// write-set appends), so a lane's segment can be adopted wholesale,
// transferring ownership of the buffered value copies instead of taking
// the second copy the generic WriteBatch fallback pays.
func (p *BOCC) WriteSegment(tx *Txn, tbl *Table, seg *Segment) (int, error) {
	return writeSegment(tx, tbl, seg, false)
}

// CommitState implements Protocol.
func (p *BOCC) CommitState(tx *Txn, tbl *Table) error {
	if err := requireGroup(tbl); err != nil {
		return err
	}
	return commitState(tx, tbl, func() error { return p.finishCommit(tx) })
}

// Commit implements Protocol.
func (p *BOCC) Commit(tx *Txn) error {
	return commitAll(tx, func() error { return p.finishCommit(tx) })
}

// finishCommit runs validation plus the write phase inside the global
// validation critical section (see the type comment for why the whole
// write phase is covered).
func (p *BOCC) finishCommit(tx *Txn) error {
	r := &p.ctx.recent
	r.mu.Lock()
	defer r.mu.Unlock()

	if err := r.validateLocked(tx); err != nil {
		p.abortLocked(tx)
		return err
	}

	// Collect the write set before installCommit consumes the entries.
	writes := make(map[StateID]map[string]struct{}, len(tx.states))
	for id, e := range tx.states {
		if len(e.order) == 0 {
			continue
		}
		ks := make(map[string]struct{}, len(e.order))
		for _, k := range e.order {
			ks[k] = struct{}{}
		}
		writes[id] = ks
	}

	if len(writes) == 0 {
		// Pure reader: validation was the whole commit.
		p.finish(tx)
		return nil
	}

	if err := p.installCommit(tx, nil); err != nil {
		return err
	}
	// Write phase done: register with a post-install timestamp so every
	// transaction that could have observed a torn prefix of this commit
	// (it must have begun before now) will validate against this record.
	r.registerLocked(p.ctx.next(), writes)
	if r.commits%64 == 0 {
		r.prune(p.ctx.oldestActiveStart())
	}
	return nil
}

// Abort implements Protocol.
func (p *BOCC) Abort(tx *Txn) error { return p.abort(tx) }

// chainRecord is one chain member's write set collected at admission,
// used for chain-internal backward validation and for post-install
// registration.
type chainRecord struct {
	tx     *Txn
	writes map[StateID]map[string]struct{}
}

// CommitChain implements ChainCommitter. The whole chain window runs
// inside ONE validation critical section (Härder's scheme extends
// naturally: validation and write phase of the batch form one critical
// section). Each member is validated backward against the committed
// history AND against the write sets of its chain predecessors admitted
// in the same call — a member that read what its predecessor wrote reads
// a pre-window value and must abort, exactly as it would have had the
// predecessor's commit been registered before its validation. Survivors
// install through one pipeline submission per consecutive same-group run
// and register with post-install timestamps, in chain order.
func (p *BOCC) CommitChain(txs []*Txn, tbls []*Table) [][]error {
	r := &p.ctx.recent
	r.mu.Lock()
	defer r.mu.Unlock()

	var admitted []chainRecord
	errs := p.commitChain(txs, tbls, func(tx *Txn) func(*commitOverlay) error {
		return func(*commitOverlay) error {
			// Admissions of this chain are serialized (run by run, request
			// by request under the group latch), so admitted needs no
			// extra synchronization; cross-goroutine visibility rides the
			// pipeline's ready-channel edges.
			if err := r.validateLocked(tx); err != nil {
				return err
			}
			for i := range admitted {
				if err := conflicts(tx, admitted[i].writes); err != nil {
					return err
				}
			}
			// Collect the write set now: the install phase consumes the
			// entries before this call returns to the submitter.
			writes := make(map[StateID]map[string]struct{}, len(tx.states))
			for id, e := range tx.states {
				if len(e.order) == 0 {
					continue
				}
				ks := make(map[string]struct{}, len(e.order))
				for _, k := range e.order {
					ks[k] = struct{}{}
				}
				writes[id] = ks
			}
			admitted = append(admitted, chainRecord{tx: tx, writes: writes})
			return nil
		}
	}, nil)

	// Register the survivors' write sets with post-install timestamps so
	// every contemporary that could have observed a torn prefix validates
	// against them.
	failed := make(map[*Txn]bool)
	for i := range errs {
		for _, err := range errs[i] {
			if err != nil {
				failed[txs[i]] = true
			}
		}
	}
	for i := range admitted {
		rec := &admitted[i]
		if failed[rec.tx] || len(rec.writes) == 0 {
			continue
		}
		r.registerLocked(p.ctx.next(), rec.writes)
		if r.commits%64 == 0 {
			r.prune(p.ctx.oldestActiveStart())
		}
	}
	return errs
}

// conflicts reports a backward-validation failure of tx's read set
// against one write set.
func conflicts(tx *Txn, writes map[StateID]map[string]struct{}) error {
	for st, keys := range tx.reads {
		wr, ok := writes[st]
		if !ok {
			continue
		}
		for k := range keys {
			if _, hit := wr[k]; hit {
				return fmt.Errorf("%w: state %q key %q written by a chain predecessor", ErrValidation, st, k)
			}
		}
	}
	return nil
}

// commitRecord remembers one committed transaction's write set for
// backward validation of its contemporaries.
type commitRecord struct {
	cts    Timestamp
	writes map[StateID]map[string]struct{}
}

// recentCommits is the pruned history of committed write sets, ascending
// by cts. Pruning removes records no active transaction can conflict
// with (cts at or below the oldest active transaction's begin timestamp).
type recentCommits struct {
	mu      sync.Mutex
	records []commitRecord
	commits int
}

// validateLocked checks tx's read set backward against transactions
// committed after tx began. Caller holds r.mu.
func (r *recentCommits) validateLocked(tx *Txn) error {
	for i := len(r.records) - 1; i >= 0; i-- {
		rec := &r.records[i]
		if rec.cts <= tx.startTS {
			break // older records cannot conflict (list is cts-ascending)
		}
		for st, keys := range tx.reads {
			wr, ok := rec.writes[st]
			if !ok {
				continue
			}
			for k := range keys {
				if _, hit := wr[k]; hit {
					return fmt.Errorf("%w: state %q key %q written by txn committed at %d",
						ErrValidation, st, k, rec.cts)
				}
			}
		}
	}
	return nil
}

// registerLocked appends a commit record. Caller holds r.mu.
func (r *recentCommits) registerLocked(cts Timestamp, writes map[StateID]map[string]struct{}) {
	r.records = append(r.records, commitRecord{cts: cts, writes: writes})
	r.commits++
}

// prune drops records that no active transaction can conflict with.
// Caller holds r.mu.
func (r *recentCommits) prune(oldestStart Timestamp) {
	cut := 0
	for cut < len(r.records) && r.records[cut].cts <= oldestStart {
		cut++
	}
	if cut > 0 {
		r.records = append([]commitRecord(nil), r.records[cut:]...)
	}
}

// Len reports the number of retained records (diagnostic).
func (r *recentCommits) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records)
}

// oldestActiveStart returns the minimum begin timestamp among active
// transactions, or the current clock when none are active; it bounds how
// much BOCC history must be retained.
func (c *Context) oldestActiveStart() Timestamp {
	oldest := c.counter.Load()
	for w := range c.slotWords {
		word := c.slotWords[w].Load()
		for ; word != 0; word &= word - 1 {
			slot := w*64 + bits.TrailingZeros64(word)
			t := c.slots[slot].Load()
			if t == nil {
				continue
			}
			if t.startTS < oldest {
				oldest = t.startTS
			}
		}
	}
	return oldest
}
