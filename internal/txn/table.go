package txn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sistream/internal/kv"
	"sistream/internal/mvcc"
)

// tableShards spreads the per-key MVCC objects over independently locked
// maps so the continuous writer and many ad-hoc readers rarely contend on
// the same shard. Must be a power of two.
const tableShards = 64

// TableOptions configures a transactional table.
type TableOptions struct {
	// VersionSlots is the initial version-array capacity per key
	// (default mvcc.DefaultSlots). The slot-size ablation (experiment A1)
	// sweeps this.
	VersionSlots int
	// SyncCommits makes commits durable (fsync) before they become
	// visible. The paper's evaluation enables it ("we ... only set the
	// sync option to true to guarantee failure atomicity").
	SyncCommits bool
	// GCEveryCommits opts into threshold-driven version reclamation: the
	// table's version arrays are swept once per N transactions committed
	// into it, by the retiring group-commit leaders (off the commit
	// latch, concurrent with new commits). The sweep is INCREMENTAL: each
	// retiring leader visits only the next 1/gcSweepSlices of the key
	// shards, so the full table is covered once per threshold interval
	// while no single commit path pays a whole-table pause. 0 disables
	// the sweeper, leaving only the Install-time lazy GC — which only
	// fires when a key's version array fills, so read-mostly keys would
	// retain dead versions indefinitely. See Table.GCStats.
	GCEveryCommits int
	// GCIdleInterval opts into time-based reclamation for tables that go
	// QUIET: threshold sweeps run only on retiring commit leaders, so a
	// table that stops committing after a write burst retains its dead
	// versions until the next commit — forever, if none comes. With a
	// non-zero interval, a background sweeper (one goroutine per table,
	// started when the table's group is created) runs a FULL sweep once
	// commits have stalled for at least the interval and unreclaimed
	// commits remain, detected within about two intervals. 0 (the
	// default) disables it. Long-lived processes that tear a topology
	// down should call Table.StopIdleGC to end the goroutine.
	GCIdleInterval time.Duration
}

// Table is the transactional table wrapper of the paper's Figure 3: a
// dictionary from keys to MVCC objects layered over an arbitrary
// key-value base table (the "base table" holding the durable image of the
// latest committed version of every key).
//
// Tables must be registered in a topology group before transactional use.
// Several tables may share one base store — keys are namespaced by state
// ID — and states of one group sharing a store get atomic multi-state
// durability for free (a single batch); states on different stores rely
// on recovery reconciliation via the per-store LastCTS (see CreateGroup).
type Table struct {
	id    StateID
	ctx   *Context
	group *Group
	store kv.Store
	caps  kv.Capabilities
	opts  TableOptions

	shards [tableShards]tableShard

	// Secondary indexes (Table.CreateIndex), copy-on-write so the
	// group-commit leader reads the set with one atomic load per entry.
	indexes atomic.Pointer[[]*Index]

	// Sweeper bookkeeping (see TableOptions.GCEveryCommits): commits into
	// this table since the last sweep, a single-flight guard, the next
	// shard the incremental sweeper visits, and the cumulative counters
	// GCStats reports.
	commitsSinceGC atomic.Uint64
	gcActive       atomic.Bool
	gcCursor       atomic.Uint32
	gcRuns         atomic.Uint64
	gcReclaimed    atomic.Uint64
	gcShards       atomic.Uint64

	// Idle-sweeper bookkeeping (see TableOptions.GCIdleInterval): the
	// UnixNano of the last commit that touched this table (stamped by the
	// group-commit leader, 0 before the first), and the stop control of
	// the per-table idle goroutine.
	lastCommitNanos atomic.Int64
	idleStop        chan struct{}
	idleStopOnce    sync.Once
}

type tableShard struct {
	mu sync.RWMutex
	m  map[string]*mvcc.Object
}

// CreateTable registers a transactional table named id over the given
// base store. The table is empty in memory until its group is created,
// which performs recovery of persisted rows.
func (c *Context) CreateTable(id StateID, store kv.Store, opts TableOptions) (*Table, error) {
	sh := &c.shards[registryIndex(string(id))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.states[id]; dup {
		return nil, fmt.Errorf("txn: table %q already exists", id)
	}
	t := &Table{id: id, ctx: c, store: store, caps: kv.CapabilitiesOf(store), opts: opts}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*mvcc.Object)
	}
	sh.states[id] = t
	return t, nil
}

// ID returns the table's state identifier.
func (t *Table) ID() StateID { return t.id }

// Capabilities returns the capability flags of the table's base store,
// captured at CreateTable. The group-commit leader consults them:
// SyncCommits requests a sync point only where the backend declares
// SupportsSync — over a volatile backend the fsync is skipped honestly
// instead of requested and silently ignored.
func (t *Table) Capabilities() kv.Capabilities { return t.caps }

// Group returns the topology group the table belongs to (nil before
// CreateGroup).
func (t *Table) Group() *Group { return t.group }

// rowPrefix namespaces this table's rows in the shared base store.
func (t *Table) rowKey(key string) []byte {
	return []byte("s/" + string(t.id) + "/" + key)
}

// appendRowKey appends the namespaced row key for key to dst and returns
// the extended slice — the allocation-free variant of rowKey used by the
// group-commit batch builder, which lays all row keys of one durability
// batch into a single arena.
func (t *Table) appendRowKey(dst []byte, key string) []byte {
	dst = append(dst, 's', '/')
	dst = append(dst, t.id...)
	dst = append(dst, '/')
	return append(dst, key...)
}

// metaKey holds the group's LastCTS in this table's base store; written
// as part of every commit batch so that durability of data and of the
// visibility watermark are a single atomic unit per store.
func (t *Table) metaKey() []byte {
	return []byte("m/" + string(t.id) + "/lastcts")
}

func (t *Table) shard(key string) *tableShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &t.shards[h&(tableShards-1)]
}

// object returns the MVCC object for key, creating it when create is set.
func (t *Table) object(key string, create bool) *mvcc.Object {
	sh := t.shard(key)
	sh.mu.RLock()
	o := sh.m[key]
	sh.mu.RUnlock()
	if o != nil || !create {
		return o
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if o = sh.m[key]; o == nil {
		o = mvcc.NewObject(t.opts.VersionSlots)
		sh.m[key] = o
	}
	return o
}

// readVersion returns the value of key visible at rts.
func (t *Table) readVersion(key string, rts Timestamp) ([]byte, bool) {
	o := t.object(key, false)
	if o == nil {
		return nil, false
	}
	return o.Read(rts)
}

// ReadAt returns the value of key visible at snapshot rts, bypassing any
// protocol bookkeeping. It serves change feeds (TO_STREAM) that must
// report a row exactly as a given commit installed it, and diagnostics.
// The returned slice must not be modified.
func (t *Table) ReadAt(key string, rts Timestamp) ([]byte, bool) {
	return t.readVersion(key, rts)
}

// Keys returns the number of keys with at least one live or dead version
// (diagnostic).
func (t *Table) Keys() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// gcSweepSlices is the number of increments a full threshold-driven
// table sweep is split into: each retiring group-commit leader that
// crosses the (scaled) threshold sweeps tableShards/gcSweepSlices shards
// from the cursor, so the commit-path housekeeping pause is 1/8 of a
// whole-table scan while full coverage still completes once per
// GCEveryCommits interval.
const gcSweepSlices = 8

// GC reclaims versions invisible at the context's current
// OldestActiveVersion across all keys, returning reclaimed slots. Safe
// to run concurrently with commits (per-object GC synchronizes with
// Install on the object's writer mutex; readers are RCU and never
// blocked).
func (t *Table) GC() int {
	return t.sweep(0, tableShards)
}

// sweep reclaims dead versions in count shards starting at shard `from`
// (wrapping), recording one sweeper run.
func (t *Table) sweep(from, count int) int {
	horizon := t.ctx.OldestActiveVersion()
	n := 0
	for j := 0; j < count; j++ {
		sh := &t.shards[(from+j)%tableShards]
		sh.mu.RLock()
		objs := make([]*mvcc.Object, 0, len(sh.m))
		for _, o := range sh.m {
			objs = append(objs, o)
		}
		sh.mu.RUnlock()
		for _, o := range objs {
			n += o.GC(horizon)
		}
	}
	// Index postings age with their rows: each sweep also reclaims a
	// proportional slice of every secondary index's posting versions.
	if ixs := t.indexSet(); len(ixs) > 0 {
		ic := count * indexShards / tableShards
		for _, ix := range ixs {
			n += ix.gc(horizon, ic)
		}
	}
	t.gcRuns.Add(1)
	t.gcReclaimed.Add(uint64(n))
	t.gcShards.Add(uint64(count))
	return n
}

// maybeGC runs one sweep increment when the opt-in commit threshold has
// been reached. It is called by the retiring group-commit leader after
// the commit latch is released, so the sweep overlaps new commits; the
// single-flight guard keeps back-to-back leaders from stacking sweeps.
// The configured GCEveryCommits interval is divided across gcSweepSlices
// increments — each crossing of the scaled threshold sweeps the next
// slice of shards — so residency stays bounded by one full interval
// while each leader pays only a fraction of the scan.
func (t *Table) maybeGC() {
	n := t.opts.GCEveryCommits
	if n <= 0 {
		return
	}
	step := uint64(n / gcSweepSlices)
	if step < 1 {
		step = 1
	}
	if t.commitsSinceGC.Load() < step {
		return
	}
	if !t.gcActive.CompareAndSwap(false, true) {
		return
	}
	t.commitsSinceGC.Store(0)
	from := int(t.gcCursor.Load())
	chunk := tableShards / gcSweepSlices
	t.gcCursor.Store(uint32((from + chunk) % tableShards))
	t.sweep(from, chunk)
	t.gcActive.Store(false)
}

// startIdleGC launches the idle sweeper when the table opted in via
// GCIdleInterval. Called once per table by CreateGroup — before the group
// exists the table cannot commit, so there is nothing to reclaim and no
// goroutine to leak for tables that are registered but never grouped.
func (t *Table) startIdleGC() {
	if t.opts.GCIdleInterval <= 0 || t.idleStop != nil {
		return
	}
	t.idleStop = make(chan struct{})
	go t.idleGCLoop()
}

// idleGCLoop wakes every GCIdleInterval and runs one FULL sweep when the
// table has been quiet — at least one commit happened since the last
// reclamation, and the newest commit is older than the interval. The
// single-flight guard shared with the threshold sweeper keeps it from
// stacking onto a leader-driven slice; the unreclaimed-commit check keeps
// a permanently idle table from rescanning forever.
func (t *Table) idleGCLoop() {
	tick := time.NewTicker(t.opts.GCIdleInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.idleStop:
			return
		case now := <-tick.C:
			last := t.lastCommitNanos.Load()
			if last == 0 || t.commitsSinceGC.Load() == 0 {
				continue
			}
			if now.UnixNano()-last < int64(t.opts.GCIdleInterval) {
				continue
			}
			if !t.gcActive.CompareAndSwap(false, true) {
				continue
			}
			t.commitsSinceGC.Store(0)
			t.sweep(0, tableShards)
			t.gcActive.Store(false)
		}
	}
}

// StopIdleGC terminates the idle sweeper goroutine started for a table
// with GCIdleInterval set. Idempotent; a no-op for tables without the
// option. Call it when tearing down a long-lived topology.
func (t *Table) StopIdleGC() {
	if t.idleStop == nil {
		return
	}
	t.idleStopOnce.Do(func() { close(t.idleStop) })
}

// GCTableStats reports explicit sweep activity (Table.GCStats).
type GCTableStats struct {
	// Runs counts completed sweeps: incremental threshold-driven slices
	// and manual GC calls (Install-time lazy reclamation is not
	// included).
	Runs uint64
	// ReclaimedSlots is the total version slots those sweeps reclaimed.
	ReclaimedSlots uint64
	// SweptShards is the total shards those sweeps visited;
	// SweptShards/Runs is the per-sweep shard count (a full manual GC
	// counts all shards, an incremental slice tableShards/gcSweepSlices).
	SweptShards uint64
}

// GCStats reports explicit sweep activity — threshold-driven incremental
// sweeps and manual GC calls: completed sweeps, the version slots they
// reclaimed, and the shards they visited.
func (t *Table) GCStats() GCTableStats {
	return GCTableStats{
		Runs:           t.gcRuns.Load(),
		ReclaimedSlots: t.gcReclaimed.Load(),
		SweptShards:    t.gcShards.Load(),
	}
}

// ResidentVersions counts the currently occupied version slots across all
// keys of the table — the live-version footprint the sweeper bounds.
// O(keys); a diagnostic, not a hot-path call.
func (t *Table) ResidentVersions() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, o := range sh.m {
			n += o.LiveVersions()
		}
		sh.mu.RUnlock()
	}
	return n
}

// readMetaCTS reads the persisted LastCTS watermark, 0 when absent.
func (t *Table) readMetaCTS() (Timestamp, error) {
	raw, found, err := t.store.Get(t.metaKey())
	if err != nil || !found {
		return 0, err
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("txn: state %q: malformed lastcts", t.id)
	}
	var ts Timestamp
	for i := 0; i < 8; i++ {
		ts |= Timestamp(raw[i]) << (8 * i)
	}
	return ts, nil
}

func encodeTS(ts Timestamp) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(ts >> (8 * i))
	}
	return out
}

// loadCommitted scans the table's rows in the base store and seeds the
// in-memory version store with one committed version per key at cts.
func (t *Table) loadCommitted(cts Timestamp) error {
	prefix := t.rowKey("")
	end := append(append([]byte(nil), prefix...), 0xff)
	return t.store.Scan(prefix, end, func(k, v []byte) bool {
		key := string(k[len(prefix):])
		t.object(key, true).InstallRecovered(cts, v)
		return true
	})
}

// SnapshotScan iterates all keys visible at snapshot rts in unspecified
// order, calling fn until it returns false. It is the building block of
// ad-hoc full-table queries (FROM on a table).
func (t *Table) SnapshotScan(rts Timestamp, fn func(key string, value []byte) bool) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		type kv struct {
			k string
			o *mvcc.Object
		}
		pairs := make([]kv, 0, len(sh.m))
		for k, o := range sh.m {
			pairs = append(pairs, kv{k, o})
		}
		sh.mu.RUnlock()
		for _, p := range pairs {
			if v, ok := p.o.Read(rts); ok {
				if !fn(p.k, v) {
					return
				}
			}
		}
	}
}
