package txn

// This file implements the transaction-layer half of the partitioned
// change feed (lane-aware TO_STREAM). The plain Group.Watch hook delivers
// every commit to every listener on the committing goroutine, so all
// downstream consumers of a table's change feed funnel through whatever
// single goroutine drains that one listener — the last sequential stage
// of an otherwise shared-nothing pipeline. WatchPartitioned removes it:
// the committed write set of a table is fanned out by key hash into P
// per-partition event channels, each drained by an independent consumer,
// with commit boundaries preserved on every partition so the stream layer
// can re-serialize them through its lane barrier.
//
// The feed also participates in garbage collection: it reads rows at
// HISTORICAL commit snapshots, so a version a lagging partition still
// needs must not be reclaimed. Each feed therefore pins its oldest
// undelivered commit timestamp into the context's GC horizon
// (Context.OldestActiveVersion): the pin is taken on the committing
// thread — under the group's commit latch, before any sweep for that
// commit can run — and released as consumers acknowledge delivery
// (PartitionedFeed.Ack).

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultFeedBuf is the default per-feed commit buffer: how many commits
// the partitioned feed queues before the committing thread blocks
// (backpressure — a deliberate choice over silently dropping committed
// changes, matching the sequential TO_STREAM feed).
const DefaultFeedBuf = 4096

// FeedEvent is one committed transaction's changes to a table, restricted
// to the keys of one partition.
//
// Keys holds the partition's written keys (deletes included) in write-set
// order — first-write order within the transaction — so per-key update
// order is preserved end to end. Keys may be empty: every partition
// receives an event for every commit that touched the table, including
// commits whose writes all hashed elsewhere, because the consumers'
// merge barrier needs an aligned commit sequence on every partition. The
// slice is private to the receiving partition and may be retained.
type FeedEvent struct {
	// CTS is the commit timestamp of the transaction.
	CTS Timestamp
	// Keys is this partition's share of the written keys, in write-set
	// order; empty when the commit wrote only other partitions' keys.
	Keys []string
}

// DefaultKeyHash is the default routing hash shared by the keyed
// parallel constructs — stream.Parallelize's lane router and
// WatchPartitioned's feed fan-out both default to it — so a feed
// partitioned with the default function against an ingest region
// parallelized with its default function agrees lane-for-lane on key
// placement when the counts match. FNV-1a of the key; the empty key
// hashes to 0 (lane/partition 0), matching the lane router's routing of
// keyless tuples.
func DefaultKeyHash(key string) uint64 {
	if len(key) == 0 {
		return 0
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// feedPin tracks a partitioned feed's contribution to the GC horizon:
// the oldest commit timestamp some partition has not finished consuming.
// Commits enter in commit order (on the committing thread) and each must
// be acknowledged once per partition; the pin advances as the slowest
// partition acknowledges.
type feedPin struct {
	mu sync.Mutex
	// pending holds the enqueued, not-yet-fully-acknowledged commit
	// timestamps in ascending order; pending[0] is the pinned horizon.
	pending []Timestamp
	// acked[i] counts partition i's acknowledged events; popped counts
	// commits fully acknowledged by every partition and removed from
	// pending. min(acked) - popped is the head's remaining partitions.
	acked  []uint64
	popped uint64
	// oldest mirrors pending[0] (0 = nothing pinned) for the lock-free
	// horizon scan.
	oldest atomic.Uint64
}

// add pins cts (called on the committing thread, in commit order).
func (p *feedPin) add(cts Timestamp) {
	p.mu.Lock()
	p.pending = append(p.pending, cts)
	if len(p.pending) == 1 {
		p.oldest.Store(cts)
	}
	p.mu.Unlock()
}

// dropLast unpins the most recently added commit — the committing
// thread lost the race with stop and the commit will never be
// delivered. The watcher is single-flight (serialized by the group's
// commit latch) and an undelivered commit can never be acknowledged, so
// the tail entry is always the caller's.
func (p *feedPin) dropLast() {
	p.mu.Lock()
	p.pending = p.pending[:len(p.pending)-1]
	if len(p.pending) == 0 {
		p.oldest.Store(0)
	}
	p.mu.Unlock()
}

// ack acknowledges partition part's oldest unacknowledged commit and
// advances the pin past commits every partition has acknowledged.
func (p *feedPin) ack(part int) {
	p.mu.Lock()
	p.acked[part]++
	min := p.acked[0]
	for _, a := range p.acked[1:] {
		if a < min {
			min = a
		}
	}
	for p.popped < min && len(p.pending) > 0 {
		p.pending = p.pending[1:]
		p.popped++
	}
	if len(p.pending) == 0 {
		p.oldest.Store(0)
	} else {
		p.oldest.Store(p.pending[0])
	}
	p.mu.Unlock()
}

// rawEvent is the commit-latch side's enqueue unit: the commit timestamp
// and the SHARED write-set order key slice (routers must not modify it).
type rawEvent struct {
	cts  Timestamp
	keys []string
}

// PartitionedFeed is the handle of a partitioned change feed registered
// with Table.WatchPartitioned: the per-partition event channels, the stop
// control, and the delivery acknowledgements that advance the feed's GC
// pin.
type PartitionedFeed struct {
	feeds     []<-chan FeedEvent
	stop      func()
	pin       *feedPin
	coalesced bool
}

// Partitions returns the per-partition event channels (do not modify the
// slice). Channel i carries the committed changes whose keys hash to
// partition i, in commit order, aligned across partitions.
func (f *PartitionedFeed) Partitions() []<-chan FeedEvent { return f.feeds }

// Ack acknowledges that partition part's consumer has fully processed its
// OLDEST unacknowledged event — including any Table.ReadAt calls against
// that commit's snapshot. Call it once per received event, after use; the
// feed's GC pin advances past a commit once every partition has
// acknowledged it. A consumer that stops acknowledging pins the horizon
// (deliberately: that is the lagging feed the pin protects). On a
// coalescing feed (FeedOptions.Coalesce) Ack is a no-op — the feed holds
// no pin.
func (f *PartitionedFeed) Ack(part int) {
	if f.coalesced {
		return
	}
	f.pin.ack(part)
}

// PinnedCTS reports the oldest commit timestamp the feed currently pins
// into the GC horizon (0 when nothing is pinned; always 0 for a
// coalescing feed).
func (f *PartitionedFeed) PinnedCTS() Timestamp { return f.pin.oldest.Load() }

// Coalesced reports whether the feed runs in changelog mode
// (FeedOptions.Coalesce).
func (f *PartitionedFeed) Coalesced() bool { return f.coalesced }

// Stop shuts the feed down: commits after Stop are dropped, commits
// already queued are still delivered (drain), and all partition channels
// are closed once the queue is empty. Stop is idempotent. Queued commits
// stay pinned until acknowledged, so the drain still reads correct
// historical snapshots.
func (f *PartitionedFeed) Stop() { f.stop() }

// WatchPartitioned registers a partitioned change feed on the table: it
// returns a handle carrying parts event channels, one per partition, each
// delivering the table's committed changes whose keys hash to that
// partition (keyFn, nil selecting FNV-1a of the key), in commit order.
//
// Contract:
//
//   - Every commit that wrote at least one key of this table produces
//     exactly one FeedEvent on EVERY partition channel, in the same
//     order; partitions the commit did not touch receive the event with
//     empty Keys. Consumers can therefore treat the event sequence as an
//     aligned commit log and re-serialize boundaries across partitions
//     (stream.FromTablePartitioned runs them through its lane barrier).
//   - A key always hashes to the same partition, so per-key update order
//     is preserved within its partition channel.
//   - The fan-out runs on a dedicated router goroutine, off the group's
//     commit latch: the committing thread only enqueues (commit
//     timestamp, shared key slice) into a buffer of buf commits
//     (DefaultFeedBuf when buf <= 0) and blocks only when the feed falls
//     that far behind — the same backpressure discipline as Group.Watch
//     based feeds.
//   - Every undelivered commit is pinned into the context's GC horizon
//     (the pin is taken under the commit latch, before any sweep for that
//     commit can run), so historical snapshots the feed still needs are
//     never reclaimed. Consumers MUST call Ack once per received event;
//     the pin advances with the slowest partition's acknowledgements.
//
// The feed registration itself cannot be removed from the group (watcher
// registrations are permanent, as with Watch); a stopped feed's watcher
// reduces to a channel-closed check, and a stopped, drained and fully
// acknowledged feed pins nothing.
func (t *Table) WatchPartitioned(parts, buf int, keyFn func(string) uint64) (*PartitionedFeed, error) {
	return t.WatchPartitionedOpts(parts, FeedOptions{Buf: buf, KeyFn: keyFn})
}

// FeedOptions configures WatchPartitionedOpts beyond the partition count.
type FeedOptions struct {
	// Buf is the commit buffer between the committing thread and the
	// router, and the capacity of each partition channel (DefaultFeedBuf
	// when <= 0).
	Buf int
	// KeyFn routes keys to partitions (nil selects DefaultKeyHash).
	KeyFn func(string) uint64
	// Coalesce opts the feed into CHANGELOG mode, trading the exact
	// per-commit log for a GC horizon that a stalled consumer cannot pin:
	//
	//   - The feed registers no GC pin and Ack is a no-op. Versions behind
	//     a lagging partition become reclaimable immediately, so the
	//     table's residency stays bounded no matter how long a consumer
	//     stalls — the fix for the stalled-consumer horizon leak.
	//   - When a partition's channel is full, newer commits are folded
	//     into one pending bucket per partition: per-key NEWEST-WINS. The
	//     bucket carries the newest folded commit's CTS and each written
	//     key once (first-write order of its first appearance); memory is
	//     bounded by the partition's distinct-key count, not the stall
	//     length. Consumers read current values via Table.ReadAt at the
	//     event's CTS — the latest committed version of a key is never
	//     reclaimed, so those reads are always safe.
	//   - Partitions a commit did not touch receive NO event (empty-Keys
	//     alignment events are dropped), so the per-partition sequences
	//     are not commit-aligned. A coalescing feed is a state-tracking
	//     tap, NOT a source for barrier re-serialization — do not use it
	//     where FromTablePartitioned's aligned contract is required.
	Coalesce bool
}

// WatchPartitionedOpts is WatchPartitioned with full options; see the
// WatchPartitioned contract and FeedOptions for the coalescing variant.
func (t *Table) WatchPartitionedOpts(parts int, opts FeedOptions) (*PartitionedFeed, error) {
	if parts < 1 {
		return nil, fmt.Errorf("txn: WatchPartitioned needs parts >= 1, got %d", parts)
	}
	g := t.group
	if g == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownState, t.id)
	}
	keyFn := opts.KeyFn
	if keyFn == nil {
		keyFn = DefaultKeyHash
	}
	buf := opts.Buf
	if buf <= 0 {
		buf = DefaultFeedBuf
	}

	// A coalescing feed deliberately holds no pin: its consumers read only
	// at the NEWEST folded CTS per key, and the latest committed version
	// survives every sweep. The zero-valued pin keeps PinnedCTS at 0.
	pin := &feedPin{acked: make([]uint64, parts)}
	if !opts.Coalesce {
		t.ctx.addFeedPin(pin)
	}

	in := make(chan rawEvent, buf)
	stopCh := make(chan struct{})
	var (
		stopOnce sync.Once
		stopMu   sync.Mutex
		stopped  bool
		// sending tracks watchers between registration and enqueue (or
		// stop-abandon). Registration happens under stopMu with stopped
		// still false, so every Add strictly precedes stop's flip and
		// thus the router's Wait — the WaitGroup is race-free, and the
		// router's final drain runs only once no send can still be in
		// flight.
		sending sync.WaitGroup
	)
	stop := func() {
		stopOnce.Do(func() {
			stopMu.Lock()
			stopped = true
			stopMu.Unlock()
			close(stopCh)
		})
	}

	// The commit-latch side: one plain watcher (serialized by the group's
	// commit latch) that pins, enqueues and returns. Pinning precedes the
	// enqueue so no sweep can run between the commit becoming visible and
	// its snapshot being protected. The pin and the in-flight
	// registration are atomic with respect to stop (stopMu, held only for
	// the non-blocking part); the send itself blocks on backpressure but
	// stays interruptible by stop — an interrupted send unpins, so every
	// pinned commit is either delivered (the router waits out in-flight
	// senders before its final drain) or unpinned, never stranded.
	g.Watch(func(cts Timestamp, writes map[StateID][]string) {
		keys, ok := writes[t.id]
		if !ok {
			return
		}
		stopMu.Lock()
		if stopped {
			stopMu.Unlock()
			return
		}
		sending.Add(1)
		if !opts.Coalesce {
			pin.add(cts)
		}
		stopMu.Unlock()
		defer sending.Done()
		select {
		case <-stopCh:
			// Stop raced in while we were blocked (or about to enqueue
			// with both cases ready): if the event went undelivered it
			// must not stay pinned.
			if !opts.Coalesce {
				pin.dropLast()
			}
		case in <- rawEvent{cts: cts, keys: keys}:
		}
	})

	chans := make([]chan FeedEvent, parts)
	feeds := make([]<-chan FeedEvent, parts)
	for i := range chans {
		chans[i] = make(chan FeedEvent, buf)
		feeds[i] = chans[i]
	}

	if opts.Coalesce {
		go coalesceRouter(chans, in, stopCh, &sending, parts, keyFn)
		return &PartitionedFeed{feeds: feeds, stop: stop, pin: pin, coalesced: true}, nil
	}

	// The router: splits each commit's write-set order into per-partition
	// key slices and delivers the event to every partition. Delivery is
	// blocking — a slow partition backpressures the router and, once the
	// in buffer fills, the committing thread — and strictly in commit
	// order, so all partitions observe the same aligned event sequence.
	deliver := func(ev rawEvent) {
		// Every partition gets a PRIVATE key slice — also at parts == 1,
		// where handing the shared write-set order slice through would
		// break FeedEvent's may-retain/may-modify contract for any other
		// watcher (a sequential ToStream, a second feed) holding the same
		// slice.
		buckets := make([][]string, parts)
		if parts == 1 {
			buckets[0] = append(make([]string, 0, len(ev.keys)), ev.keys...)
		} else {
			for _, k := range ev.keys {
				p := int(keyFn(k) % uint64(parts))
				buckets[p] = append(buckets[p], k)
			}
		}
		for i := range chans {
			chans[i] <- FeedEvent{CTS: ev.cts, Keys: buckets[i]}
		}
	}
	go func() {
		defer func() {
			for _, c := range chans {
				close(c)
			}
		}()
		for {
			select {
			case <-stopCh:
				// Drain commits already queued so a consumer that stops
				// the feed after its writers finished still sees every
				// committed change on every partition. First wait out any
				// watcher still between registration and enqueue (its send
				// is interruptible — it sees stopCh too and unpins on
				// abandon), THEN conclude on an empty buffer; otherwise an
				// enqueue racing the stop could land just after the final
				// emptiness check and sit pinned but undeliverable
				// forever.
				settled := make(chan struct{})
				go func() {
					sending.Wait()
					close(settled)
				}()
				for {
					select {
					case ev := <-in:
						deliver(ev)
					case <-settled:
						for {
							select {
							case ev := <-in:
								deliver(ev)
							default:
								return
							}
						}
					}
				}
			case ev := <-in:
				deliver(ev)
			}
		}
	}()
	return &PartitionedFeed{feeds: feeds, stop: stop, pin: pin}, nil
}

// coalesceBucket is one partition's folded backlog in changelog mode: the
// newest folded commit's timestamp and every key written since the last
// delivered event, each once, in order of first appearance.
type coalesceBucket struct {
	cts  Timestamp
	keys []string
	seen map[string]struct{}
}

// coalesceRouter is the changelog-mode router (FeedOptions.Coalesce): it
// NEVER blocks on a consumer. An event for a partition whose channel has
// room is delivered directly; when the channel is full the partition's
// backlog folds into one per-key newest-wins bucket, flushed
// opportunistically as soon as the consumer frees a slot. Partitions a
// commit did not touch get no event. On stop it drains the commit buffer
// (waiting out in-flight committing threads first, like the aligned
// router), delivers any pending buckets with a final blocking send so a
// consumer draining to channel close always observes the final state, and
// closes the channels.
func coalesceRouter(chans []chan FeedEvent, in chan rawEvent, stopCh chan struct{}, sending *sync.WaitGroup, parts int, keyFn func(string) uint64) {
	pending := make([]*coalesceBucket, parts)
	defer func() {
		for i, b := range pending {
			if b != nil {
				chans[i] <- FeedEvent{CTS: b.cts, Keys: b.keys}
			}
		}
		for _, c := range chans {
			close(c)
		}
	}()
	handle := func(ev rawEvent) {
		// Split the shared write-set order slice into private per-partition
		// buckets (same privacy contract as the aligned router), dropping
		// untouched partitions.
		buckets := make([][]string, parts)
		if parts == 1 {
			buckets[0] = append(make([]string, 0, len(ev.keys)), ev.keys...)
		} else {
			for _, k := range ev.keys {
				p := int(keyFn(k) % uint64(parts))
				buckets[p] = append(buckets[p], k)
			}
		}
		for i, keys := range buckets {
			if len(keys) == 0 {
				continue
			}
			if pending[i] == nil {
				// Fast path: consumer keeping up, deliver the commit as-is.
				select {
				case chans[i] <- FeedEvent{CTS: ev.cts, Keys: keys}:
					continue
				default:
					pending[i] = &coalesceBucket{seen: make(map[string]struct{})}
				}
			}
			b := pending[i]
			b.cts = ev.cts
			for _, k := range keys {
				if _, dup := b.seen[k]; !dup {
					b.seen[k] = struct{}{}
					b.keys = append(b.keys, k)
				}
			}
		}
		// Opportunistic flush: hand any folded backlog to consumers that
		// freed up, so buckets exist only across actual stalls.
		for i, b := range pending {
			if b == nil {
				continue
			}
			select {
			case chans[i] <- FeedEvent{CTS: b.cts, Keys: b.keys}:
				pending[i] = nil
			default:
			}
		}
	}
	for {
		select {
		case <-stopCh:
			settled := make(chan struct{})
			go func() {
				sending.Wait()
				close(settled)
			}()
			for {
				select {
				case ev := <-in:
					handle(ev)
				case <-settled:
					for {
						select {
						case ev := <-in:
							handle(ev)
						default:
							return
						}
					}
				}
			}
		case ev := <-in:
			handle(ev)
		}
	}
}
