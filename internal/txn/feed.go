package txn

// This file implements the transaction-layer half of the partitioned
// change feed (lane-aware TO_STREAM). The plain Group.Watch hook delivers
// every commit to every listener on the committing goroutine, so all
// downstream consumers of a table's change feed funnel through whatever
// single goroutine drains that one listener — the last sequential stage
// of an otherwise shared-nothing pipeline. WatchPartitioned removes it:
// the committed write set of a table is fanned out by key hash into P
// per-partition event channels, each drained by an independent consumer,
// with commit boundaries preserved on every partition so the stream layer
// can re-serialize them through its lane barrier.

import (
	"fmt"
	"sync"
)

// DefaultFeedBuf is the default per-feed commit buffer: how many commits
// the partitioned feed queues before the committing thread blocks
// (backpressure — a deliberate choice over silently dropping committed
// changes, matching the sequential TO_STREAM feed).
const DefaultFeedBuf = 4096

// FeedEvent is one committed transaction's changes to a table, restricted
// to the keys of one partition.
//
// Keys holds the partition's written keys (deletes included) in write-set
// order — first-write order within the transaction — so per-key update
// order is preserved end to end. Keys may be empty: every partition
// receives an event for every commit that touched the table, including
// commits whose writes all hashed elsewhere, because the consumers'
// merge barrier needs an aligned commit sequence on every partition. The
// slice is private to the receiving partition and may be retained.
type FeedEvent struct {
	// CTS is the commit timestamp of the transaction.
	CTS Timestamp
	// Keys is this partition's share of the written keys, in write-set
	// order; empty when the commit wrote only other partitions' keys.
	Keys []string
}

// DefaultKeyHash is the default routing hash shared by the keyed
// parallel constructs — stream.Parallelize's lane router and
// WatchPartitioned's feed fan-out both default to it — so a feed
// partitioned with the default function against an ingest region
// parallelized with its default function agrees lane-for-lane on key
// placement when the counts match. FNV-1a of the key; the empty key
// hashes to 0 (lane/partition 0), matching the lane router's routing of
// keyless tuples.
func DefaultKeyHash(key string) uint64 {
	if len(key) == 0 {
		return 0
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// WatchPartitioned registers a partitioned change feed on the table: it
// returns parts event channels, one per partition, each carrying the
// table's committed changes whose keys hash to that partition (keyFn, nil
// selecting FNV-1a of the key), in commit order.
//
// Contract:
//
//   - Every commit that wrote at least one key of this table produces
//     exactly one FeedEvent on EVERY partition channel, in the same
//     order; partitions the commit did not touch receive the event with
//     empty Keys. Consumers can therefore treat the event sequence as an
//     aligned commit log and re-serialize boundaries across partitions
//     (stream.FromTablePartitioned runs them through its lane barrier).
//   - A key always hashes to the same partition, so per-key update order
//     is preserved within its partition channel.
//   - The fan-out runs on a dedicated router goroutine, off the group's
//     commit latch: the committing thread only enqueues (commit
//     timestamp, shared key slice) into a buffer of buf commits
//     (DefaultFeedBuf when buf <= 0) and blocks only when the feed falls
//     that far behind — the same backpressure discipline as Group.Watch
//     based feeds.
//
// stop shuts the feed down: commits after stop are dropped, commits
// already queued are still delivered (drain), and all partition channels
// are closed once the queue is empty. stop is idempotent. The feed
// registration itself cannot be removed from the group (watcher
// registrations are permanent, as with Watch); a stopped feed's watcher
// reduces to a channel-closed check.
func (t *Table) WatchPartitioned(parts, buf int, keyFn func(string) uint64) (feeds []<-chan FeedEvent, stop func(), err error) {
	if parts < 1 {
		return nil, nil, fmt.Errorf("txn: WatchPartitioned needs parts >= 1, got %d", parts)
	}
	g := t.group
	if g == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownState, t.id)
	}
	if keyFn == nil {
		keyFn = DefaultKeyHash
	}
	if buf <= 0 {
		buf = DefaultFeedBuf
	}

	type rawEvent struct {
		cts  Timestamp
		keys []string // the shared write-set order slice; do not modify
	}
	in := make(chan rawEvent, buf)
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	stop = func() { stopOnce.Do(func() { close(stopCh) }) }

	// The commit-latch side: one plain watcher that enqueues and returns.
	g.Watch(func(cts Timestamp, writes map[StateID][]string) {
		keys, ok := writes[t.id]
		if !ok {
			return
		}
		// Check stop first on its own: a select over a closed stopCh AND a
		// ready buffer picks randomly, which would let commits issued
		// after stop returned sneak into the drain nondeterministically.
		select {
		case <-stopCh:
			return
		default:
		}
		select {
		case <-stopCh:
		case in <- rawEvent{cts: cts, keys: keys}:
		}
	})

	chans := make([]chan FeedEvent, parts)
	feeds = make([]<-chan FeedEvent, parts)
	for i := range chans {
		chans[i] = make(chan FeedEvent, buf)
		feeds[i] = chans[i]
	}

	// The router: splits each commit's write-set order into per-partition
	// key slices and delivers the event to every partition. Delivery is
	// blocking — a slow partition backpressures the router and, once the
	// in buffer fills, the committing thread — and strictly in commit
	// order, so all partitions observe the same aligned event sequence.
	deliver := func(ev rawEvent) {
		// Every partition gets a PRIVATE key slice — also at parts == 1,
		// where handing the shared write-set order slice through would
		// break FeedEvent's may-retain/may-modify contract for any other
		// watcher (a sequential ToStream, a second feed) holding the same
		// slice.
		buckets := make([][]string, parts)
		if parts == 1 {
			buckets[0] = append(make([]string, 0, len(ev.keys)), ev.keys...)
		} else {
			for _, k := range ev.keys {
				p := int(keyFn(k) % uint64(parts))
				buckets[p] = append(buckets[p], k)
			}
		}
		for i := range chans {
			chans[i] <- FeedEvent{CTS: ev.cts, Keys: buckets[i]}
		}
	}
	go func() {
		defer func() {
			for _, c := range chans {
				close(c)
			}
		}()
		for {
			select {
			case <-stopCh:
				// Drain commits already queued so a consumer that stops
				// the feed after its writers finished still sees every
				// committed change on every partition.
				for {
					select {
					case ev := <-in:
						deliver(ev)
					default:
						return
					}
				}
			case ev := <-in:
				deliver(ev)
			}
		}
	}()
	return feeds, stop, nil
}
