package txn

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"sistream/internal/kv"
	"sistream/internal/metrics"
)

// maxActiveTxns bounds the active-transaction table. The paper manages
// transaction slots with 64-bit CAS bit vectors; we keep that design and
// use several words.
const maxActiveTxns = 1024

// registryShards is the fixed arity of the state/group registry. Lookups
// (Table, group) are on the transaction hot path — every snapshot pin of a
// multi-group transaction resolves groups by ID — so the registry is
// spread over independently latched shards keyed by FNV-1a of the
// identifier. Must be a power of two.
const registryShards = 64

// registryShard is one latch-striped slice of the registry. States and
// groups live in the shard their ID hashes to; creation takes the shard's
// write latch, lookups only its read latch, so lookups of unrelated IDs
// never serialize.
type registryShard struct {
	mu     sync.RWMutex
	states map[StateID]*Table
	groups map[GroupID]*Group
}

// registryIndex hashes an identifier to its registry shard (FNV-1a).
func registryIndex(id string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h & (registryShards - 1))
}

// Context is the global state context of the paper's Figure 3: the
// registry of states and topology groups, the table of active
// transactions, and the global atomic timestamp counter. Slot management
// is latch-free (CAS on bit-vector words); the registry is sharded so
// Begin/lookup/Register scale with cores instead of funneling through one
// context-wide mutex.
type Context struct {
	counter atomic.Uint64 // global logical clock: txn IDs and commit timestamps

	// shards hold the state/group registry, striped by ID hash.
	shards [registryShards]registryShard

	// setupMu serializes group creation only: CreateGroup validates and
	// claims the member tables' group pointers, which spans registry
	// shards. Setup is off the transaction hot path, so one mutex is fine;
	// lookups never take it.
	setupMu sync.Mutex

	// Active transaction table: a fixed slot array managed by CAS bit
	// vectors, scanned to derive OldestActiveVersion for GC.
	slotWords [maxActiveTxns / 64]atomic.Uint64
	slots     [maxActiveTxns]atomic.Pointer[Txn]

	// feedPins are the partitioned change feeds' GC-horizon contributors
	// (see feed.go): a copy-on-write slice so the horizon scan reads it
	// without locking. Registration is append-only — a stopped, drained
	// feed's pin holds nothing and costs one atomic load per scan.
	feedPins atomic.Pointer[[]*feedPin]

	// recent is the BOCC history of committed write sets (see bocc.go).
	recent recentCommits
}

// NewContext creates an empty state context.
func NewContext() *Context {
	c := &Context{}
	for i := range c.shards {
		c.shards[i].states = make(map[StateID]*Table)
		c.shards[i].groups = make(map[GroupID]*Group)
	}
	return c
}

// next returns the next logical timestamp.
func (c *Context) next() Timestamp { return c.counter.Add(1) }

// Now returns the current value of the logical clock without advancing it.
func (c *Context) Now() Timestamp { return c.counter.Load() }

// advanceTo raises the logical clock to at least ts (used by recovery so
// new transactions sort after recovered commits).
func (c *Context) advanceTo(ts Timestamp) {
	for {
		cur := c.counter.Load()
		if cur >= ts || c.counter.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// register allocates a slot for t in the active-transaction table.
func (c *Context) register(t *Txn) error {
	for w := range c.slotWords {
		for {
			word := c.slotWords[w].Load()
			free := ^word
			if free == 0 {
				break // word full, try next
			}
			bit := bits.TrailingZeros64(free)
			if c.slotWords[w].CompareAndSwap(word, word|1<<uint(bit)) {
				slot := w*64 + bit
				t.slot = slot
				c.slots[slot].Store(t)
				return nil
			}
		}
	}
	return ErrTooManyTxns
}

// unregister frees t's slot.
func (c *Context) unregister(t *Txn) {
	slot := t.slot
	c.slots[slot].Store(nil)
	w, bit := slot/64, uint(slot%64)
	for {
		word := c.slotWords[w].Load()
		if c.slotWords[w].CompareAndSwap(word, word&^(1<<bit)) {
			return
		}
	}
}

// OldestActiveVersion returns the garbage-collection horizon: the minimum
// snapshot any active transaction — or any partitioned change feed with
// undelivered commits (see feed.go) — may still read. Versions whose
// deletion timestamp is at or below it are invisible to everyone and
// reclaimable. With no active readers and no feed backlog the horizon is
// the current clock.
func (c *Context) OldestActiveVersion() Timestamp {
	oldest := c.counter.Load()
	for w := range c.slotWords {
		word := c.slotWords[w].Load()
		for ; word != 0; word &= word - 1 {
			slot := w*64 + bits.TrailingZeros64(word)
			t := c.slots[slot].Load()
			if t == nil {
				continue // slot being released concurrently
			}
			if p := t.pinnedOldest.Load(); p != 0 && p < oldest {
				oldest = p
			}
		}
	}
	if pins := c.feedPins.Load(); pins != nil {
		for _, fp := range *pins {
			if o := fp.oldest.Load(); o != 0 && o < oldest {
				oldest = o
			}
		}
	}
	return oldest
}

// addFeedPin registers a partitioned feed's GC-horizon contributor
// (copy-on-write under setupMu; the scan side is lock-free).
func (c *Context) addFeedPin(p *feedPin) {
	c.setupMu.Lock()
	defer c.setupMu.Unlock()
	var next []*feedPin
	if cur := c.feedPins.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, p)
	c.feedPins.Store(&next)
}

// ActiveCount returns the number of registered transactions (diagnostic).
func (c *Context) ActiveCount() int {
	n := 0
	for w := range c.slotWords {
		n += bits.OnesCount64(c.slotWords[w].Load())
	}
	return n
}

// group resolves a group by ID through its registry shard.
func (c *Context) group(id GroupID) (*Group, bool) {
	sh := &c.shards[registryIndex(string(id))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g, ok := sh.groups[id]
	return g, ok
}

// Table returns the registered table named id.
func (c *Context) Table(id StateID) (*Table, bool) {
	sh := &c.shards[registryIndex(string(id))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.states[id]
	return t, ok
}

// Group is a topology group: the states written together by one
// continuous query. LastCTS is the commit timestamp of the group's most
// recent globally committed transaction — the single atomically published
// word that makes a whole multi-state commit visible.
type Group struct {
	id     GroupID
	ctx    *Context
	tables []*Table
	byID   map[StateID]bool

	lastCTS atomic.Uint64

	// failure, when non-nil, is the group's sticky fail-stop record: a
	// durability or install error poisoned the group and every further
	// commit fails fast with the wrapped error (see failstop.go). Reads
	// keep serving. Set once via CAS; never cleared.
	failure atomic.Pointer[groupFailure]

	// Group-commit pipeline. The paper's short commit-time critical
	// section serialized whole commits; here concurrent committers instead
	// enqueue their validated transactions on pending. The first committer
	// to find no leader active claims leadership and commits one drained
	// batch: it admits each transaction in arrival order against a batch
	// overlay, assigns a contiguous commit-timestamp range, persists ONE
	// coalesced batch per base store (one fsync amortized over the whole
	// batch), installs all versions, and publishes LastCTS once. Followers
	// park on their request's ready channel and are woken with the
	// recorded verdict — or with the leadership baton, when the retiring
	// leader leaves pending requests behind (one-batch tenures keep any
	// single committer from serving the queue indefinitely). commitMu is
	// the exclusivity latch: a leader holds it for its tenure, and
	// multi-group transactions take the commitMu of every involved group
	// in canonical order instead of queueing (see installCommit). qmu
	// guards pending, leaderActive and the queue handoff only and is
	// never held across I/O.
	commitMu     sync.Mutex
	qmu          sync.Mutex
	pending      []*commitReq
	leaderActive bool
	wake         chan struct{} // nudges a leader collecting its next batch
	batchTarget  int           // previous batch size; leader-owned under commitMu

	// sbCache holds the leader's per-store durability-batch scratch,
	// reused across tenures; leader-owned under commitMu (see
	// storeScratch).
	sbCache map[kv.Store]*storeBatch

	// Pipeline counters (diagnostics and bench reporting): transactions
	// globally committed through this group and the number of leader
	// batches that carried them. txns/batches is the achieved group-commit
	// fan-in.
	commitTxns    atomic.Uint64
	commitBatches atomic.Uint64

	// Commit-profile instrumentation (CommitProfile): per-batch latency of
	// the durability phase (the store Apply — the fsync when SyncCommits is
	// set) and of the in-memory admission+install work around it, plus an
	// EWMA of achieved batch sizes. Recording is a handful of atomic adds
	// per BATCH (not per transaction), cheap enough to leave always on;
	// the adaptive spine controller (stream.AutoTune) reads it to decide
	// whether growing the commit window still buys fsync amortization.
	syncHist    metrics.Histogram
	installHist metrics.Histogram
	batchEWMA   metrics.EWMA

	// watchers are commit listeners (TO_STREAM trigger policy
	// "per transaction commit"); they run synchronously right after
	// LastCTS is published, still under the commit latch, so they must
	// be fast and must not call back into the protocol.
	watcherMu sync.RWMutex
	watchers  []CommitWatcher
}

// CommitStats reports the number of transactions globally committed
// through the group and the number of group-commit batches that carried
// them; txns/batches is the achieved commit fan-in (1.0 = no batching).
func (g *Group) CommitStats() (txns, batches uint64) {
	return g.commitTxns.Load(), g.commitBatches.Load()
}

// CommitProfile is a point-in-time digest of the group-commit pipeline's
// observed behavior (Group.CommitProfile), the signal set the adaptive
// spine controller feeds on. All latencies are per BATCH, in nanoseconds.
type CommitProfile struct {
	// Txns / Batches mirror CommitStats; Txns/Batches is the achieved
	// cross-transaction commit fan-in.
	Txns, Batches uint64
	// BatchSizeEWMA is the exponentially weighted average of recent batch
	// sizes — unlike the lifetime ratio above, it tracks the CURRENT
	// batching regime.
	BatchSizeEWMA float64
	// Sync summarizes the durability phase per batch: the coalesced store
	// Apply, which is the fsync when the table opts into SyncCommits.
	Sync metrics.Summary
	// Install summarizes the non-durability commit work per batch:
	// admission, version install and visibility publish.
	Install metrics.Summary
}

// CommitProfile snapshots the group's commit-pipeline instrumentation:
// lifetime fan-in counters, the recent batch-size EWMA, and per-batch
// durability (fsync) and install latency summaries.
func (g *Group) CommitProfile() CommitProfile {
	return CommitProfile{
		Txns:          g.commitTxns.Load(),
		Batches:       g.commitBatches.Load(),
		BatchSizeEWMA: g.batchEWMA.Value(),
		Sync:          g.syncHist.Snapshot(),
		Install:       g.installHist.Snapshot(),
	}
}

// CommitWatcher observes global commits of a group: the commit timestamp
// and, per state, the keys written (deletes included). The slices are
// shared; watchers must not modify them.
type CommitWatcher func(cts Timestamp, writes map[StateID][]string)

// Watch registers a commit listener. Listeners run on the committing
// goroutine under the group's commit latch — the hook for TO_STREAM's
// per-commit trigger policy (Section 3, "trigger policy ... to rely on
// transaction commits").
func (g *Group) Watch(w CommitWatcher) {
	g.watcherMu.Lock()
	defer g.watcherMu.Unlock()
	g.watchers = append(g.watchers, w)
}

// notify invokes all watchers, reporting whether any ran (and may thus
// retain the shared key slices).
func (g *Group) notify(cts Timestamp, writes map[StateID][]string) bool {
	g.watcherMu.RLock()
	ws := g.watchers
	g.watcherMu.RUnlock()
	for _, w := range ws {
		w(cts, writes)
	}
	return len(ws) > 0
}

// ID returns the group identifier.
func (g *Group) ID() GroupID { return g.id }

// LastCTS returns the group's last globally committed timestamp.
func (g *Group) LastCTS() Timestamp { return g.lastCTS.Load() }

// Tables returns the member tables (do not modify).
func (g *Group) Tables() []*Table { return g.tables }

func (g *Group) contains(id StateID) bool { return g.byID[id] }

// CreateGroup registers a topology group over the given tables, wiring
// each table to the group and recovering persistent state: committed
// rows are loaded back into the in-memory version store at the recovered
// LastCTS, exactly reproducing the visibility they had before shutdown.
// A table may belong to only one group (its writing query); additional
// readers access it through the group of the query that owns it.
func (c *Context) CreateGroup(id GroupID, tables ...*Table) (*Group, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("txn: group %q needs at least one table", id)
	}
	// Group creation validates and claims tables across registry shards;
	// setupMu serializes creators while lookups keep flowing through the
	// shard read latches.
	c.setupMu.Lock()
	defer c.setupMu.Unlock()
	sh := &c.shards[registryIndex(string(id))]
	sh.mu.RLock()
	_, dup := sh.groups[id]
	sh.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("txn: group %q already exists", id)
	}
	g := &Group{id: id, ctx: c, byID: make(map[StateID]bool), wake: make(chan struct{}, 1)}
	for _, t := range tables {
		if t.group != nil {
			return nil, fmt.Errorf("txn: table %q already in group %q", t.id, t.group.id)
		}
	}
	for _, t := range tables {
		t.group = g
		g.tables = append(g.tables, t)
		g.byID[t.id] = true
	}
	sh.mu.Lock()
	sh.groups[id] = g
	sh.mu.Unlock()

	// Recovery: LastCTS is persisted in each member's base store; the
	// group's recovered timestamp is the maximum across members (a crash
	// between per-store batches can leave laggards, see Table.metaKey).
	var recovered Timestamp
	for _, t := range tables {
		ts, err := t.readMetaCTS()
		if err != nil {
			return nil, fmt.Errorf("txn: recover group %q: %w", id, err)
		}
		if ts > recovered {
			recovered = ts
		}
	}
	if recovered > 0 {
		g.lastCTS.Store(recovered)
		c.advanceTo(recovered)
		for _, t := range tables {
			if err := t.loadCommitted(recovered); err != nil {
				return nil, fmt.Errorf("txn: load state %q: %w", t.id, err)
			}
		}
	}
	// A grouped table can commit, so this is where its opt-in idle sweeper
	// (TableOptions.GCIdleInterval) comes alive.
	for _, t := range tables {
		t.startIdleGC()
	}
	return g, nil
}

// lockGroups acquires the commit mutexes of all groups in a canonical
// order (by ID) to keep cross-group commits deadlock-free.
func lockGroups(groups []*Group) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	for _, g := range groups {
		g.commitMu.Lock()
	}
}

func unlockGroups(groups []*Group) {
	for i := len(groups) - 1; i >= 0; i-- {
		groups[i].commitMu.Unlock()
	}
}
