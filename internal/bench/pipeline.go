package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"sistream/internal/stream"
	"sistream/internal/txn"
)

// PipelineConfig parameterizes the end-to-end pipeline benchmark: the
// full shared-nothing spine — ingest lanes → table → partitioned change
// feed → downstream parallel region — with the two fusions this layer
// offers toggled independently:
//
//   - Ingest.Window > 1 turns on the fused commit spine (windowed
//     transactions, cross-transaction group-commit batching at the lane
//     barrier).
//   - Fuse wires feed partition i directly into downstream lane i
//     (ParallelRegion.Reparallelize); Fuse=false inserts the explicit
//     Merge → Parallelize seam the fusion removes — an extra merge
//     goroutine, a re-route and a second punctuation barrier.
//
// The downstream region runs a per-lane Map (a small parse/fold standing
// in for consumer work) and a counting sink after its own merge barrier.
type PipelineConfig struct {
	// Ingest is the writing side (protocol, backend, elements, commit
	// interval, lanes, window — see IngestConfig).
	Ingest IngestConfig
	// Partitions is the feed partition count AND the downstream lane
	// count (the matched shape direct wiring needs). Must be >= 1.
	Partitions int
	// Fuse selects direct partition→lane wiring; false routes through
	// the unfused Merge → Parallelize seam.
	Fuse bool
}

// DefaultPipeline returns a quick in-memory configuration: 4 ingest
// lanes with a commit window of 8 over small transactions, a 4-way feed,
// fused wiring.
func DefaultPipeline() PipelineConfig {
	ic := DefaultIngest()
	ic.Lanes = 4
	ic.Window = 8
	ic.CommitEvery = 8
	return PipelineConfig{Ingest: ic, Partitions: 4, Fuse: true}
}

// PipelineResult is the outcome of one pipeline run.
type PipelineResult struct {
	Config  PipelineConfig
	Elapsed time.Duration

	// IngestElems counts tuples written by the ingest side; DownElems
	// counts data elements that reached the downstream region's sink
	// (per commit: one element per distinct written key); DownCommits
	// counts the transactions the downstream barrier re-serialized.
	IngestElems int64
	DownElems   int64
	DownCommits int64

	// ElemsPerSec is the headline metric: downstream elements delivered
	// per second of wall-clock time, measured from ingest start until
	// the feed has drained through the downstream region.
	ElemsPerSec float64

	// CommitTxns / CommitBatches are the group-commit pipeline counters
	// of the ingest group; txns/batches is the achieved cross-transaction
	// commit fan-in (1.0 = every transaction paid its own batch+fsync).
	CommitTxns    uint64
	CommitBatches uint64

	// TunedWindow is the controller's final window for Ingest.Auto runs
	// (0 for static runs); TunedGrows / TunedShrinks its resize counts.
	TunedWindow  int    `json:",omitempty"`
	TunedGrows   uint64 `json:",omitempty"`
	TunedShrinks uint64 `json:",omitempty"`
}

// CommitFanIn returns ingest transactions per group-commit batch.
func (r PipelineResult) CommitFanIn() float64 {
	if r.CommitBatches == 0 {
		return 0
	}
	return float64(r.CommitTxns) / float64(r.CommitBatches)
}

// RunPipeline executes one end-to-end cell: the ingest query writes the
// table (optionally through the fused commit spine) while the partitioned
// feed delivers every committed change into a downstream parallel region
// (fused or re-routed); the clock stops when the downstream region has
// drained every commit.
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) {
	ic := cfg.Ingest
	if err := ic.validate(); err != nil {
		return PipelineResult{}, err
	}
	if cfg.Partitions < 1 {
		return PipelineResult{}, fmt.Errorf("bench: pipeline needs partitions >= 1")
	}

	store, err := OpenStore(ic.Backend, ic.Dir)
	if err != nil {
		return PipelineResult{}, err
	}
	defer store.Close()

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("ingest", store, txn.TableOptions{SyncCommits: ic.Sync})
	if err != nil {
		return PipelineResult{}, err
	}
	group, err := ctx.CreateGroup("ingest", tbl)
	if err != nil {
		return PipelineResult{}, err
	}
	var p txn.Protocol
	switch ic.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}

	// Downstream side: the partitioned feed region, continued fused or
	// re-routed into a region of Partitions lanes, each running a small
	// per-lane fold, closed by its own barrier into a counting sink.
	var (
		downElems   atomic.Int64
		downCommits atomic.Int64
	)
	feedTop := stream.New("pipeline-down")
	region, stopFeed := stream.FromTablePartitioned(feedTop, tbl, cfg.Partitions, nil)
	if cfg.Fuse {
		region = region.Reparallelize("repart", cfg.Partitions, nil)
	} else {
		region = region.Merge("seam").Parallelize(cfg.Partitions, nil)
	}
	region = region.Apply(func(_ int, s *stream.Stream) *stream.Stream {
		return s.Map("fold", func(tp stream.Tuple) stream.Tuple {
			// Stand-in consumer work: fold the value bytes.
			var acc uint64
			for _, b := range tp.Value {
				acc = acc*31 + uint64(b)
			}
			tp.Num = float64(acc % 1024)
			return tp
		})
	})
	region.Merge("downmerge").Sink("count", func(e stream.Element) {
		switch e.Kind {
		case stream.KindData:
			downElems.Add(1)
		case stream.KindCommit:
			downCommits.Add(1)
		}
	})

	// Ingest side: the same query RunIngest drives, spine per Window.
	value := make([]byte, ic.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	top := stream.New("pipeline-ingest")
	src := top.Source("gen", func(emit func(stream.Element)) error {
		for i := 0; i < ic.Elements; i++ {
			emit(stream.DataElement(stream.Tuple{
				Key:   keyString(uint64(i%ic.Keys), ic.KeyBytes),
				Value: value,
				Ts:    int64(i),
			}))
		}
		return nil
	})
	window := ic.Window
	if window < 1 {
		window = 1
	}
	lanes := ic.Lanes
	if lanes < 1 {
		lanes = 1
	}
	var (
		stats *stream.ToTableStats
		tun   *stream.AutoTuner
	)
	if ic.Auto {
		tun = stream.NewAutoTuner(stream.AutoTune{})
		ingRegion := src.Punctuate(ic.CommitEvery).TransactionsTuned(p, tun).Parallelize(lanes, nil)
		stats = ingRegion.ToTable(p, tbl)
		ingRegion.MergeTuned("merge", tun).Discard()
	} else {
		s := src.Punctuate(ic.CommitEvery).TransactionsWindow(p, window)
		ingRegion := s.Parallelize(lanes, nil)
		stats = ingRegion.ToTable(p, tbl)
		if window > 1 {
			ingRegion.MergeBatched("merge", window).Discard()
		} else {
			ingRegion.Merge("merge").Discard()
		}
	}

	start := time.Now()
	feedTop.Start()
	if err := top.Run(); err != nil {
		return PipelineResult{}, err
	}
	stopFeed()
	if err := feedTop.Wait(); err != nil {
		return PipelineResult{}, err
	}
	elapsed := time.Since(start)

	res := PipelineResult{
		Config:      cfg,
		Elapsed:     elapsed,
		IngestElems: stats.Writes.Load(),
		DownElems:   downElems.Load(),
		DownCommits: downCommits.Load(),
	}
	res.CommitTxns, res.CommitBatches = group.CommitStats()
	res.ElemsPerSec = float64(res.DownElems) / elapsed.Seconds()
	if tun != nil {
		ts := tun.Stats()
		res.TunedWindow = ts.Window
		res.TunedGrows = ts.Grows
		res.TunedShrinks = ts.Shrinks
	}
	return res, nil
}

// PrintPipeline renders one pipeline result verbosely.
func PrintPipeline(w io.Writer, r PipelineResult) {
	c := r.Config
	wiring := "fused (partition i → lane i)"
	if !c.Fuse {
		wiring = "unfused (merge → re-route)"
	}
	window := fmt.Sprint(max(c.Ingest.Window, 1))
	if c.Ingest.Auto {
		window = fmt.Sprintf("auto(→%d, +%d/-%d)", r.TunedWindow, r.TunedGrows, r.TunedShrinks)
	}
	fmt.Fprintf(w, "pipeline %s protocol=%s backend=%s elements=%d commit-every=%d lanes=%d window=%s partitions=%d\n",
		wiring, c.Ingest.Protocol, c.Ingest.Backend, c.Ingest.Elements, c.Ingest.CommitEvery,
		max(c.Ingest.Lanes, 1), window, c.Partitions)
	fmt.Fprintf(w, "  end-to-end %12.0f elems/s  (%d changes of %d writes in %v, %d downstream commits)\n",
		r.ElemsPerSec, r.DownElems, r.IngestElems, r.Elapsed.Round(time.Millisecond), r.DownCommits)
	fmt.Fprintf(w, "  group ci   %d txns in %d batches (fan-in %.2f)\n", r.CommitTxns, r.CommitBatches, r.CommitFanIn())
}

// WritePipelineJSON renders a sweep of pipeline results as one indented
// JSON array (the "Pipeline" key of BENCH_ingest.json).
func WritePipelineJSON(w io.Writer, results []PipelineResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
