// Package bench implements the paper's micro-benchmark (Section 5): one
// continuous stream query writing two states of a topology group in
// medium-sized transactions, and N concurrent ad-hoc queries reading from
// both states, with contention controlled by a Zipfian key distribution.
// The harness sweeps contention (theta), reader counts and protocols to
// regenerate Figure 4 and the quantitative claims, plus the ablations
// listed in DESIGN.md.
package bench

import (
	"fmt"
	"time"
)

// Config parameterizes one benchmark cell. The zero value is not valid;
// use Default and override.
type Config struct {
	// Protocol selects the concurrency control: "mvcc", "s2pl" or
	// "bocc".
	Protocol string
	// Backend selects the base table by kv registry spec: "mem", "lsm"
	// (the paper uses a persistent LSM store, RocksDB), or a chained
	// spec such as "cache(256)+lsm".
	Backend string
	// Dir is the default data directory for persistent backend layers
	// whose spec carries no inline path.
	Dir string
	// States is the number of tables in the topology group (paper: 2).
	States int
	// TableSize is the number of preloaded keys per state (paper: 1M).
	TableSize int
	// KeyBytes / ValueBytes shape the records (paper: 4 B / 20 B).
	KeyBytes   int
	ValueBytes int
	// Writers is the number of continuous writer queries (paper: 1).
	Writers int
	// Readers is the number of concurrent ad-hoc queries (paper: 4, 24).
	Readers int
	// TxnOps is the number of operations per transaction (paper: 10,
	// "medium length").
	TxnOps int
	// Theta is the Zipfian contention level (paper: 0 .. 3).
	Theta float64
	// Duration is the measured interval.
	Duration time.Duration
	// Sync makes commits durable before visible (paper: sync = true).
	Sync bool
	// VersionSlots overrides the MVCC version-array size (0 = default);
	// ablation A1.
	VersionSlots int
	// CheckConsistency interleaves a multi-state invariant token into the
	// workload and verifies reader snapshots (claim C3). Slightly reduces
	// raw throughput.
	CheckConsistency bool
	// Seed makes key sequences reproducible.
	Seed int64
}

// Default returns the paper's parameters scaled to a quick local run:
// table size defaults to 100k keys (the paper's 1M is available via
// cmd/sibench -tablesize).
func Default() Config {
	return Config{
		Protocol:   "mvcc",
		Backend:    "lsm",
		States:     2,
		TableSize:  100_000,
		KeyBytes:   4,
		ValueBytes: 20,
		Writers:    1,
		Readers:    4,
		TxnOps:     10,
		Theta:      0,
		Duration:   2 * time.Second,
		Sync:       true,
		Seed:       1,
	}
}

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	switch c.Protocol {
	case "mvcc", "s2pl", "bocc":
	default:
		return fmt.Errorf("bench: unknown protocol %q", c.Protocol)
	}
	if err := validateBackend(c.Backend); err != nil {
		return err
	}
	if c.States < 1 || c.TableSize < 1 || c.TxnOps < 1 || c.Writers < 0 || c.Readers < 0 {
		return fmt.Errorf("bench: non-positive size parameter")
	}
	if c.Writers+c.Readers == 0 {
		return fmt.Errorf("bench: no workers")
	}
	if c.KeyBytes < 1 {
		c.KeyBytes = 4
	}
	if c.ValueBytes < 1 {
		c.ValueBytes = 20
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	return nil
}

// Result is one benchmark cell's outcome.
type Result struct {
	Config Config

	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration

	// ReaderCommits / ReaderAborts count ad-hoc query transactions.
	ReaderCommits int64
	ReaderAborts  int64
	// WriterCommits / WriterAborts count stream batch transactions.
	WriterCommits int64
	WriterAborts  int64

	// TotalTps is committed transactions per second, readers + writers —
	// the paper's Figure 4 y-axis ("Throughput (K tps)").
	TotalTps  float64
	ReaderTps float64
	WriterTps float64

	// ReadP50/P99 and CommitP50/P99 are latency quantiles (ns).
	ReadP50, ReadP99     int64
	CommitP50, CommitP99 int64

	// Violations counts consistency-check failures (must stay 0).
	Violations int64

	// CommitTxns / CommitBatches are the group-commit pipeline counters:
	// transactions globally committed and the leader batches that carried
	// them. Their ratio is the achieved commit fan-in (1.0 = every commit
	// paid its own store batch and fsync; higher = amortization).
	CommitTxns    uint64
	CommitBatches uint64
}

// CommitFanIn returns transactions per group-commit batch (0 when no
// transaction committed).
func (r Result) CommitFanIn() float64 {
	if r.CommitBatches == 0 {
		return 0
	}
	return float64(r.CommitTxns) / float64(r.CommitBatches)
}

// AbortRate returns aborted / started transactions over all workers.
func (r Result) AbortRate() float64 {
	total := r.ReaderCommits + r.ReaderAborts + r.WriterCommits + r.WriterAborts
	if total == 0 {
		return 0
	}
	return float64(r.ReaderAborts+r.WriterAborts) / float64(total)
}
