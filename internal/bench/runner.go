package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sistream/internal/kv"
	"sistream/internal/metrics"
	"sistream/internal/txn"
	"sistream/internal/zipf"
)

// chkKey is the shared invariant token key used by CheckConsistency: the
// writer keeps it identical across all states within each transaction, so
// any committed reader snapshot must observe equal values everywhere.
const chkKey = "\x00chk"

// Run executes one benchmark cell and returns its result.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	// --- base store -----------------------------------------------------
	store, err := OpenStore(cfg.Backend, cfg.Dir)
	if err != nil {
		return Result{}, err
	}
	defer store.Close()

	// --- preload ---------------------------------------------------------
	// Rows are bulk-loaded straight into the base store (no per-row sync)
	// together with the LastCTS watermark; CreateGroup then recovers them
	// into the version store — the same code path a restart uses, and far
	// faster than a million synchronous transactions.
	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	const preloadCTS = 1
	batch := kv.NewBatch(4096)
	for s := 0; s < cfg.States; s++ {
		prefix := fmt.Sprintf("s/state%d/", s)
		for k := 0; k < cfg.TableSize; k++ {
			batch.Put([]byte(prefix+keyString(uint64(k), cfg.KeyBytes)), value)
			if batch.Len() >= 4096 {
				if err := store.Apply(batch, false); err != nil {
					return Result{}, err
				}
				batch.Reset()
			}
		}
		batch.Put([]byte(fmt.Sprintf("m/state%d/lastcts", s)), encodeTS(preloadCTS))
	}
	if err := store.Apply(batch, true); err != nil {
		return Result{}, err
	}

	// --- transactional setup ----------------------------------------------
	ctx := txn.NewContext()
	var group *txn.Group
	tables := make([]*txn.Table, cfg.States)
	for s := 0; s < cfg.States; s++ {
		t, err := ctx.CreateTable(txn.StateID(fmt.Sprintf("state%d", s)), store, txn.TableOptions{
			SyncCommits:  cfg.Sync,
			VersionSlots: cfg.VersionSlots,
		})
		if err != nil {
			return Result{}, err
		}
		tables[s] = t
	}
	g, err := ctx.CreateGroup("bench", tables...)
	if err != nil {
		return Result{}, err
	}
	group = g
	var p txn.Protocol
	switch cfg.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}

	// Seed the consistency token.
	if cfg.CheckConsistency {
		tx, err := p.Begin()
		if err != nil {
			return Result{}, err
		}
		for _, t := range tables {
			if err := p.Write(tx, t, chkKey, encodeU64(0)); err != nil {
				return Result{}, err
			}
		}
		if err := p.Commit(tx); err != nil {
			return Result{}, err
		}
	}

	// --- workers -----------------------------------------------------------
	params := zipf.NewParams(uint64(cfg.TableSize), cfg.Theta)
	var (
		readerCommits, readerAborts atomic.Int64
		writerCommits, writerAborts atomic.Int64
		violations                  atomic.Int64
		readLat, commitLat          metrics.Histogram
		chkSeq                      atomic.Uint64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer(s): the continuous stream query updating all states in
	// TxnOps-operation transactions, keys Zipf-distributed.
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := zipf.New(params, seed)
			val := make([]byte, cfg.ValueBytes)
			copy(val, value)
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := p.Begin()
				if err != nil {
					return
				}
				ok := true
				for i := 0; i < cfg.TxnOps && ok; i++ {
					key := keyString(gen.Next(), cfg.KeyBytes)
					tbl := tables[i%len(tables)]
					if err := p.Write(tx, tbl, key, val); err != nil {
						_ = p.Abort(tx)
						writerAborts.Add(1)
						ok = false
					}
				}
				if !ok {
					continue
				}
				if cfg.CheckConsistency {
					seq := chkSeq.Add(1)
					for _, t := range tables {
						if err := p.Write(tx, t, chkKey, encodeU64(seq)); err != nil {
							_ = p.Abort(tx)
							writerAborts.Add(1)
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
				}
				start := time.Now()
				if err := p.Commit(tx); err != nil {
					writerAborts.Add(1)
					continue
				}
				commitLat.RecordSince(start)
				writerCommits.Add(1)
			}
		}(cfg.Seed + int64(w))
	}

	// Readers: ad-hoc queries doing TxnOps point reads across the states
	// under one transaction.
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := zipf.New(params, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				tx, err := p.BeginReadOnly()
				if err != nil {
					return
				}
				ok := true
				var chkVals [][]byte
				for i := 0; i < cfg.TxnOps && ok; i++ {
					key := keyString(gen.Next(), cfg.KeyBytes)
					tbl := tables[i%len(tables)]
					if _, _, err := p.Read(tx, tbl, key); err != nil {
						_ = p.Abort(tx) // no-op if already dead (wait-die)
						readerAborts.Add(1)
						ok = false
					}
				}
				if ok && cfg.CheckConsistency {
					for _, t := range tables {
						v, _, err := p.Read(tx, t, chkKey)
						if err != nil {
							_ = p.Abort(tx)
							readerAborts.Add(1)
							ok = false
							break
						}
						chkVals = append(chkVals, append([]byte(nil), v...))
					}
				}
				if !ok {
					continue
				}
				if err := p.Commit(tx); err != nil {
					readerAborts.Add(1)
					continue
				}
				// Committed: snapshot must have been consistent.
				for i := 1; i < len(chkVals); i++ {
					if decodeU64(chkVals[i]) != decodeU64(chkVals[0]) {
						violations.Add(1)
					}
				}
				readLat.RecordSince(start)
				readerCommits.Add(1)
			}
		}(cfg.Seed + 1000 + int64(r))
	}

	// --- measure -----------------------------------------------------------
	began := time.Now()
	timer := time.NewTimer(cfg.Duration)
	<-timer.C
	close(stop)
	wg.Wait()
	elapsed := time.Since(began)

	res := Result{
		Config:        cfg,
		Elapsed:       elapsed,
		ReaderCommits: readerCommits.Load(),
		ReaderAborts:  readerAborts.Load(),
		WriterCommits: writerCommits.Load(),
		WriterAborts:  writerAborts.Load(),
		ReadP50:       readLat.Quantile(0.5),
		ReadP99:       readLat.Quantile(0.99),
		CommitP50:     commitLat.Quantile(0.5),
		CommitP99:     commitLat.Quantile(0.99),
		Violations:    violations.Load(),
	}
	res.CommitTxns, res.CommitBatches = group.CommitStats()
	secs := elapsed.Seconds()
	res.ReaderTps = float64(res.ReaderCommits) / secs
	res.WriterTps = float64(res.WriterCommits) / secs
	res.TotalTps = res.ReaderTps + res.WriterTps
	return res, nil
}

// keyString renders rank k as a fixed-width key of n bytes.
func keyString(k uint64, n int) string {
	buf := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	return string(buf)
}

func encodeTS(ts uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, ts)
	return out
}

func encodeU64(v uint64) []byte { return encodeTS(v) }

func decodeU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
