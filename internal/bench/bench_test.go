package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func quickCfg(t *testing.T, proto, backend string) Config {
	t.Helper()
	cfg := Default()
	cfg.Protocol = proto
	cfg.Backend = backend
	cfg.TableSize = 2000
	cfg.Readers = 2
	cfg.Duration = 200 * time.Millisecond
	if backend == "lsm" {
		cfg.Dir = t.TempDir()
	}
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := Default()
	cfg.Protocol = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad protocol accepted")
	}
	cfg = Default()
	cfg.Backend = "lsm"
	cfg.Dir = ""
	if _, err := Run(cfg); err == nil {
		t.Fatal("lsm without dir accepted")
	}
	cfg = Default()
	cfg.Backend = "banana"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad backend accepted")
	}
	cfg = Default()
	cfg.Readers, cfg.Writers = 0, 0
	cfg.Backend = "mem"
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestRunAllProtocolsMem(t *testing.T) {
	for _, proto := range []string{"mvcc", "s2pl", "bocc"} {
		t.Run(proto, func(t *testing.T) {
			res, err := Run(quickCfg(t, proto, "mem"))
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalTps <= 0 {
				t.Fatalf("no throughput: %+v", res)
			}
			if res.ReaderCommits == 0 {
				t.Fatal("no reader commits")
			}
			if res.WriterCommits == 0 {
				t.Fatal("no writer commits")
			}
		})
	}
}

func TestRunLSMBackend(t *testing.T) {
	res, err := Run(quickCfg(t, "mvcc", "lsm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTps <= 0 || res.WriterCommits == 0 {
		t.Fatalf("lsm cell empty: %+v", res)
	}
}

// TestConsistencyCheckerCleanUnderContention is claim C3: even at the
// paper's extreme contention (theta=2.9) no committed reader ever sees a
// torn multi-state snapshot, for any protocol.
func TestConsistencyCheckerCleanUnderContention(t *testing.T) {
	for _, proto := range []string{"mvcc", "s2pl", "bocc"} {
		t.Run(proto, func(t *testing.T) {
			cfg := quickCfg(t, proto, "mem")
			cfg.Theta = 2.9
			cfg.CheckConsistency = true
			cfg.Duration = 300 * time.Millisecond
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violations != 0 {
				t.Fatalf("%d consistency violations", res.Violations)
			}
			if res.ReaderCommits == 0 {
				t.Fatal("checker proved nothing: no committed readers")
			}
		})
	}
}

// TestSIReadersDontAbort: under MVCC/SI with a single writer, ad-hoc
// readers must never abort (the paper's core robustness claim).
func TestSIReadersDontAbort(t *testing.T) {
	cfg := quickCfg(t, "mvcc", "mem")
	cfg.Theta = 2.9 // maximum contention
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReaderAborts != 0 {
		t.Fatalf("SI readers aborted %d times", res.ReaderAborts)
	}
}

// TestRunIngestWindowed: the fused-spine ingest cell must commit every
// transaction, deliver every write, and achieve cross-transaction
// fan-in > 1 on a small-transaction workload (the serialized spine can
// never batch a single query's commits).
func TestRunIngestWindowed(t *testing.T) {
	cfg := DefaultIngest()
	cfg.Elements = 20_000
	cfg.CommitEvery = 5
	cfg.Keys = 1000
	cfg.Lanes = 2
	cfg.Window = 8
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Fatalf("windowed ingest aborted %d transactions", res.Aborts)
	}
	if res.Writes != int64(cfg.Elements) {
		t.Fatalf("writes=%d want %d", res.Writes, cfg.Elements)
	}
	wantCommits := int64((cfg.Elements + cfg.CommitEvery - 1) / cfg.CommitEvery)
	if res.Commits != wantCommits {
		t.Fatalf("commits=%d want %d", res.Commits, wantCommits)
	}
	if res.CommitBatches >= res.CommitTxns {
		t.Fatalf("no cross-transaction batching: %d txns in %d batches", res.CommitTxns, res.CommitBatches)
	}
}

// TestRunPipelineBothWirings: the end-to-end pipeline cell must deliver
// every committed change downstream under both the fused and the
// unfused wiring.
func TestRunPipelineBothWirings(t *testing.T) {
	for _, fused := range []bool{false, true} {
		cfg := DefaultPipeline()
		cfg.Ingest.Elements = 10_000
		cfg.Ingest.Keys = 1000
		cfg.Fuse = fused
		res, err := RunPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.DownElems != res.IngestElems {
			t.Fatalf("fuse=%t: pipeline delivered %d of %d committed writes", fused, res.DownElems, res.IngestElems)
		}
		wantCommits := int64((cfg.Ingest.Elements + cfg.Ingest.CommitEvery - 1) / cfg.Ingest.CommitEvery)
		if res.DownCommits != wantCommits {
			t.Fatalf("fuse=%t: downstream commits=%d want %d", fused, res.DownCommits, wantCommits)
		}
	}
}

func TestKeyString(t *testing.T) {
	if got := keyString(7, 4); got != "0007" {
		t.Fatalf("keyString(7,4) = %q", got)
	}
	if got := keyString(123456, 4); got != "3456" {
		t.Fatalf("keyString overflow = %q", got)
	}
	if len(keyString(0, 10)) != 10 {
		t.Fatal("width broken")
	}
}

func TestSweepAndReports(t *testing.T) {
	base := quickCfg(t, "mvcc", "mem")
	base.Duration = 100 * time.Millisecond
	results, err := Sweep(base, []string{"mvcc", "bocc"}, []float64{0, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("sweep produced %d cells", len(results))
	}
	var fig, csv, one bytes.Buffer
	PrintFigure(&fig, "test panel", results)
	if !strings.Contains(fig.String(), "MVCC Ktps") || !strings.Contains(fig.String(), "BOCC Ktps") {
		t.Fatalf("figure output:\n%s", fig.String())
	}
	PrintCSV(&csv, results)
	if n := strings.Count(csv.String(), "\n"); n != 5 { // header + 4 rows
		t.Fatalf("csv rows = %d", n)
	}
	PrintResult(&one, results[0])
	if !strings.Contains(one.String(), "protocol=mvcc") {
		t.Fatalf("result output:\n%s", one.String())
	}
}

func TestAbortRate(t *testing.T) {
	r := Result{ReaderCommits: 50, ReaderAborts: 25, WriterCommits: 20, WriterAborts: 5}
	if got := r.AbortRate(); got != 0.3 {
		t.Fatalf("abort rate = %g", got)
	}
	if (Result{}).AbortRate() != 0 {
		t.Fatal("empty abort rate should be 0")
	}
}
