package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sistream/internal/stream"
	"sistream/internal/txn"
)

// The mixed benchmark (sibench -mixed): one ingest spine — the exact
// pipeline RunIngest builds — with concurrent analytical readers layered
// on top: full snapshot scans (lane-parallel, txn.Snapshot), point-read
// bursts, and secondary-index lookups, all against the table the spine
// is writing. It measures the read path's wait-free claim in the
// presence of a saturating writer: reader throughput AND the ingest
// throughput it leaves intact.

// mixedBuckets is the index-key domain of the mixed benchmark's
// secondary index: values map to one of 16 buckets.
const mixedBuckets = 16

// mixedBucketNames are the precomputed index keys ("b00".."b15").
var mixedBucketNames = func() [mixedBuckets]string {
	var out [mixedBuckets]string
	for i := range out {
		out[i] = fmt.Sprintf("b%02d", i)
	}
	return out
}()

// mixedExtract derives the benchmark index key: the bucket of the
// value's first byte. Rewrites of a key cycle its bucket, so index
// maintenance exercises the remove+add path, not just inserts.
func mixedExtract(_ string, value []byte) (string, bool) {
	if len(value) == 0 {
		return "", false
	}
	return mixedBucketNames[int(value[0])%mixedBuckets], true
}

// MixedConfig parameterizes one mixed read/write cell.
type MixedConfig struct {
	// Ingest is the write-side configuration (the spine is wired exactly
	// as RunIngest wires it).
	Ingest IngestConfig
	// Index creates a secondary index ("bucket") on the ingest table,
	// maintained transactionally for the whole run. Off, the cell is an
	// ingest-only baseline directly comparable to RunIngest.
	Index bool
	// Scanners / PointReaders / IndexReaders are concurrent reader
	// goroutines running for the duration of the ingest: full snapshot
	// scans, point-read bursts (64 keys per snapshot), and index lookups
	// (IndexReaders requires Index).
	Scanners     int
	PointReaders int
	IndexReaders int
	// ScanLanes parallelizes each scanner's snapshot scan
	// (txn.Snapshot.ParallelScan); 0 or 1 scans sequentially.
	ScanLanes int
}

// MixedResult is the outcome of one mixed cell: the embedded ingest
// metrics plus the reader-side counters.
type MixedResult struct {
	Config MixedConfig
	Ingest IngestResult

	// Scans counts completed snapshot scans; ScannedRows the rows they
	// saw; ScanRowsPerSec the aggregate scan throughput over the run.
	Scans          int64
	ScannedRows    int64
	ScanRowsPerSec float64

	// PointReads / PointHits count snapshot point reads and the ones
	// that found a visible row.
	PointReads int64
	PointHits  int64

	// IndexLookups / IndexRows count reader-side index lookups and the
	// rows they returned; IndexStats are the index's own counters
	// (maintenance puts/deletes included). Zero-valued without Index.
	IndexLookups int64
	IndexRows    int64
	IndexStats   txn.IndexStats

	// Plan is the pipeline's EXPLAIN listing, captured after the run
	// (stream.Explain). Excluded from JSON reports.
	Plan string `json:"-"`
}

// RunMixed executes one mixed read/write cell: the RunIngest pipeline
// with cfg's readers running concurrently against the ingest table.
func RunMixed(cfg MixedConfig) (MixedResult, error) {
	icfg := cfg.Ingest
	if err := icfg.validate(); err != nil {
		return MixedResult{}, err
	}
	if cfg.Scanners < 0 || cfg.PointReaders < 0 || cfg.IndexReaders < 0 {
		return MixedResult{}, fmt.Errorf("bench: negative reader count")
	}
	if cfg.IndexReaders > 0 && !cfg.Index {
		return MixedResult{}, fmt.Errorf("bench: IndexReaders requires Index")
	}

	store, err := OpenStore(icfg.Backend, icfg.Dir)
	if err != nil {
		return MixedResult{}, err
	}
	defer store.Close()

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("ingest", store, txn.TableOptions{SyncCommits: icfg.Sync})
	if err != nil {
		return MixedResult{}, err
	}
	group, err := ctx.CreateGroup("ingest", tbl)
	if err != nil {
		return MixedResult{}, err
	}
	var p txn.Protocol
	switch icfg.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}
	var ix *txn.Index
	if cfg.Index {
		if ix, err = tbl.CreateIndex("bucket", mixedExtract); err != nil {
			return MixedResult{}, err
		}
	}

	// One value per bucket: rewrites of a key cycle through them, so the
	// index sees remove+add churn, not just first-write inserts. The
	// slices are immutable once built (elements share them by reference).
	var values [mixedBuckets][]byte
	for b := range values {
		v := make([]byte, icfg.ValueBytes)
		for i := range v {
			v[i] = byte('a' + i%26)
		}
		v[0] = byte(b)
		values[b] = v
	}

	top := stream.New("mixed")
	src := top.Source("gen", func(emit func(stream.Element)) error {
		for i := 0; i < icfg.Elements; i++ {
			// The bucket term i + i/Keys cycles a key's bucket across its
			// rewrites even when Keys divides the bucket count.
			emit(stream.DataElement(stream.Tuple{
				Key:   keyString(uint64(i%icfg.Keys), icfg.KeyBytes),
				Value: values[(i+i/icfg.Keys)%mixedBuckets],
				Ts:    int64(i),
			}))
		}
		return nil
	})
	window := icfg.Window
	if window < 1 {
		window = 1
	}
	var stats *stream.ToTableStats
	var tun *stream.AutoTuner
	if icfg.Auto {
		tun = stream.NewAutoTuner(stream.AutoTune{})
		lanes := icfg.Lanes
		if lanes < 1 {
			lanes = 1
		}
		region := src.Punctuate(icfg.CommitEvery).TransactionsTuned(p, tun).Parallelize(lanes, nil)
		stats = region.ToTable(p, tbl)
		region.MergeTuned("merge", tun).Discard()
	} else {
		s := src.Punctuate(icfg.CommitEvery).TransactionsWindow(p, window)
		switch {
		case window > 1:
			lanes := icfg.Lanes
			if lanes < 1 {
				lanes = 1
			}
			region := s.Parallelize(lanes, nil)
			stats = region.ToTable(p, tbl)
			region.MergeBatched("merge", window).Discard()
		case icfg.Lanes > 1:
			region := s.Parallelize(icfg.Lanes, nil)
			stats = region.ToTable(p, tbl)
			region.Merge("merge").Discard()
		default:
			s, stats = s.ToTable(p, tbl)
			s.Discard()
		}
	}

	// Readers: run until the ingest finishes, each read under its own
	// pinned snapshot (released promptly so the GC horizon keeps moving).
	// Each reader pauses readerPace between snapshots — the readers model
	// paced analytical clients (dashboards, periodic lookups), and without
	// the pause a small machine would measure raw scheduler time-slicing
	// between spinning readers and the writer instead of read-path
	// interference. The pause is far below any single scan's duration, so
	// reader throughput is still snapshot-bound on multi-core machines.
	var (
		stop                            = make(chan struct{})
		readers                         sync.WaitGroup
		scans, scannedRows              atomic.Int64
		pointReads, pointHits           atomic.Int64
		indexLookups, indexRowsReturned atomic.Int64

		readerErrMu sync.Mutex
		readerErr   error
	)
	failReader := func(err error) {
		readerErrMu.Lock()
		if readerErr == nil {
			readerErr = err
		}
		readerErrMu.Unlock()
	}
	const readerPace = time.Millisecond
	stopped := func() bool {
		select {
		case <-stop:
			return true
		case <-time.After(readerPace):
			return false
		}
	}
	scanLanes := cfg.ScanLanes
	if scanLanes < 1 {
		scanLanes = 1
	}
	for r := 0; r < cfg.Scanners; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stopped() {
				snap, err := ctx.Snapshot(tbl)
				if err != nil {
					failReader(fmt.Errorf("scanner: %w", err))
					return
				}
				var rows atomic.Int64
				_ = snap.ParallelScan(tbl, scanLanes, func(string, []byte) bool {
					rows.Add(1)
					return true
				})
				snap.Release()
				scans.Add(1)
				scannedRows.Add(rows.Load())
			}
		}()
	}
	for r := 0; r < cfg.PointReaders; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			j := seed
			for !stopped() {
				snap, err := ctx.Snapshot(tbl)
				if err != nil {
					failReader(fmt.Errorf("point-reader: %w", err))
					return
				}
				for b := 0; b < 64; b++ {
					j = j*2862933555777941757 + 3037000493 // splmix64-style LCG step
					key := keyString(j%uint64(icfg.Keys), icfg.KeyBytes)
					if _, ok, _ := snap.Get(tbl, key); ok {
						pointHits.Add(1)
					}
					pointReads.Add(1)
				}
				snap.Release()
			}
		}(uint64(r) + 1)
	}
	for r := 0; r < cfg.IndexReaders; r++ {
		readers.Add(1)
		go func(seed int) {
			defer readers.Done()
			b := seed
			for !stopped() {
				snap, err := ctx.Snapshot(tbl)
				if err != nil {
					failReader(fmt.Errorf("index-reader: %w", err))
					return
				}
				n := int64(0)
				_ = snap.Lookup(ix, mixedBucketNames[b%mixedBuckets], func(string, []byte) bool {
					n++
					return true
				})
				snap.Release()
				indexLookups.Add(1)
				indexRowsReturned.Add(n)
				b++
			}
		}(r)
	}

	start := time.Now()
	runErr := top.Run()
	elapsed := time.Since(start)
	close(stop)
	readers.Wait()
	if runErr != nil {
		return MixedResult{}, runErr
	}
	if readerErr != nil {
		return MixedResult{}, readerErr
	}

	res := MixedResult{
		Config: cfg,
		Ingest: IngestResult{
			Config:  icfg,
			Elapsed: elapsed,
			Writes:  stats.Writes.Load(),
			Commits: stats.Commits.Load(),
			Aborts:  stats.Aborts.Load(),
		},
		Scans:        scans.Load(),
		ScannedRows:  scannedRows.Load(),
		PointReads:   pointReads.Load(),
		PointHits:    pointHits.Load(),
		IndexLookups: indexLookups.Load(),
		IndexRows:    indexRowsReturned.Load(),
		Plan:         stream.Explain(top),
	}
	res.Ingest.CommitTxns, res.Ingest.CommitBatches = group.CommitStats()
	res.Ingest.ElemsPerSec = float64(res.Ingest.Writes) / elapsed.Seconds()
	res.Ingest.CacheStats = cacheStatsOf(store)
	if tun != nil {
		ts := tun.Stats()
		res.Ingest.TunedWindow = ts.Window
		res.Ingest.TunedGrows = ts.Grows
		res.Ingest.TunedShrinks = ts.Shrinks
	}
	res.ScanRowsPerSec = float64(res.ScannedRows) / elapsed.Seconds()
	if ix != nil {
		res.IndexStats = ix.Stats()
	}
	return res, nil
}

// PrintMixed renders one mixed result verbosely, the ingest block first,
// then the reader-side counters, then the pipeline's EXPLAIN plan.
func PrintMixed(w io.Writer, r MixedResult) {
	c := r.Config
	fmt.Fprintf(w, "mixed index=%t scanners=%d point-readers=%d index-readers=%d scan-lanes=%d\n",
		c.Index, c.Scanners, c.PointReaders, c.IndexReaders, max(c.ScanLanes, 1))
	PrintIngest(w, r.Ingest)
	fmt.Fprintf(w, "  scan       snapshots=%d rows=%d  %12.0f rows/s\n", r.Scans, r.ScannedRows, r.ScanRowsPerSec)
	fmt.Fprintf(w, "  point      reads=%d hits=%d\n", r.PointReads, r.PointHits)
	if c.Index {
		fmt.Fprintf(w, "  index      lookups=%d rows=%d puts=%d deletes=%d maintained-lookups=%d hits=%d\n",
			r.IndexLookups, r.IndexRows, r.IndexStats.Puts, r.IndexStats.Deletes, r.IndexStats.Lookups, r.IndexStats.Hits)
	}
	if r.Plan != "" {
		fmt.Fprintf(w, "  plan:\n")
		for _, line := range splitLines(r.Plan) {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
}

// splitLines splits s on newlines, dropping a trailing empty line.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// WriteMixedJSON renders a sweep of mixed results as one indented JSON
// array (sibench -mixed -json).
func WriteMixedJSON(w io.Writer, results []MixedResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
