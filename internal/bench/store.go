package bench

import (
	"fmt"

	"sistream/internal/kv"
	_ "sistream/internal/lsm" // registers the "lsm" backend driver
)

// OpenStore resolves a backend spec through the kv adapter registry —
// the one place the harnesses open stores, replacing the per-harness
// mem/lsm switches. dir is the default data directory for persistent
// layers whose spec carries no inline path ("lsm" vs "lsm:<dir>").
// Chained specs work everywhere a backend name does: "cache(256)+lsm",
// "fault+mem", ...
func OpenStore(spec, dir string) (*kv.OpenedStore, error) {
	return kv.Open(spec, kv.OpenOptions{Dir: dir})
}

// validateBackend checks a backend spec against the registry without
// opening it (directory problems surface at OpenStore time).
func validateBackend(spec string) error {
	if _, err := kv.SpecCaps(spec); err != nil {
		return fmt.Errorf("bench: backend %w", err)
	}
	return nil
}

// cacheStatsOf returns the counters of the chain's cache tier, nil when
// the spec has none.
func cacheStatsOf(st *kv.OpenedStore) *kv.CacheStats {
	c := st.CacheLayer()
	if c == nil {
		return nil
	}
	s := c.Stats()
	return &s
}
