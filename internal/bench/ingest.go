package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sistream/internal/kv"
	"sistream/internal/stream"
	"sistream/internal/txn"
)

// IngestConfig parameterizes the ingest benchmark: one continuous query
// pushing Elements tuples through source → punctuate → TO_TABLE with a
// commit every CommitEvery tuples. It isolates the dataflow substrate and
// the write path of the transaction layer — the per-element costs the
// vectorized engine amortizes — from reader concurrency, which the main
// benchmark (Config) covers.
type IngestConfig struct {
	// Protocol selects the concurrency control: "mvcc", "s2pl" or "bocc".
	Protocol string
	// Backend selects the base table by kv registry spec: a backend name
	// ("mem", "lsm") or a chained spec ("cache(256)+lsm", "fault+mem").
	Backend string
	// Dir is the default data directory for persistent backend layers
	// whose spec carries no inline path.
	Dir string
	// Elements is the number of data tuples pushed through the pipeline.
	Elements int
	// CommitEvery is the Punctuate batch size (tuples per transaction).
	CommitEvery int
	// Keys is the number of distinct keys cycled through.
	Keys int
	// KeyBytes / ValueBytes shape the records.
	KeyBytes   int
	ValueBytes int
	// Sync makes commits durable before visible.
	Sync bool
	// Lanes partitions the query into parallel keyed ingest lanes
	// (stream.Parallelize): tuples are hash-routed into Lanes independent
	// operator chains with per-lane TO_TABLE write paths, re-serialized
	// at a transaction-preserving merge barrier. 0 or 1 selects the
	// sequential single-writer spine.
	Lanes int
	// Window enables the fused commit spine: up to Window consecutive
	// transactions of the query run concurrently
	// (stream.TransactionsWindow) and the barrier's commit spine submits
	// lane-complete ones to the group-commit pipeline in cross-transaction
	// batches of up to Window (stream.ParallelRegion.MergeBatched) — one
	// leader tenure, one coalesced store batch + fsync for several small
	// transactions. 0 or 1 selects the serialized spine (one commit per
	// transaction).
	Window int
	// Auto replaces the static Window with the self-tuning controller
	// (stream.AutoTune): the pipeline runs TransactionsTuned + MergeTuned
	// sharing one stream.AutoTuner that sizes the commit window and
	// linger from observed fsync latency. Mutually exclusive with
	// Window > 1.
	Auto bool
}

// DefaultIngest returns a quick single-writer in-memory configuration.
func DefaultIngest() IngestConfig {
	return IngestConfig{
		Protocol:    "mvcc",
		Backend:     "mem",
		Elements:    1_000_000,
		CommitEvery: 100,
		Keys:        100_000,
		KeyBytes:    8,
		ValueBytes:  20,
	}
}

func (c *IngestConfig) validate() error {
	switch c.Protocol {
	case "mvcc", "s2pl", "bocc":
	default:
		return fmt.Errorf("bench: unknown protocol %q", c.Protocol)
	}
	if err := validateBackend(c.Backend); err != nil {
		return err
	}
	if c.Elements < 1 || c.CommitEvery < 1 || c.Keys < 1 {
		return fmt.Errorf("bench: non-positive size parameter")
	}
	if c.Lanes < 0 {
		return fmt.Errorf("bench: negative lane count")
	}
	if c.Window < 0 {
		return fmt.Errorf("bench: negative commit window")
	}
	if c.Auto && c.Window > 1 {
		return fmt.Errorf("bench: Auto and a static Window > 1 are mutually exclusive")
	}
	if c.KeyBytes < 1 {
		c.KeyBytes = 8
	}
	if c.ValueBytes < 1 {
		c.ValueBytes = 20
	}
	return nil
}

// IngestResult is the outcome of one ingest run.
type IngestResult struct {
	Config  IngestConfig
	Elapsed time.Duration

	// Writes is the number of tuple writes applied by TO_TABLE.
	Writes int64
	// Commits / Aborts count the query's transactions.
	Commits int64
	Aborts  int64

	// ElemsPerSec is the headline metric: data elements ingested per
	// second of wall-clock time.
	ElemsPerSec float64

	// CommitTxns / CommitBatches are the group-commit pipeline counters.
	CommitTxns    uint64
	CommitBatches uint64

	// TunedWindow is the window the controller settled on by the end of
	// an Auto run (0 for static runs); TunedGrows / TunedShrinks count
	// its up / down resizes along the way.
	TunedWindow  int    `json:",omitempty"`
	TunedGrows   uint64 `json:",omitempty"`
	TunedShrinks uint64 `json:",omitempty"`

	// CacheStats are the cache tier's counters when the backend spec
	// chains one ("cache(256)+lsm"); nil otherwise.
	CacheStats *kv.CacheStats `json:",omitempty"`
}

// RunIngest executes one ingest cell: a single writer pushing
// cfg.Elements tuples through source → punctuate → TO_TABLE → commit.
func RunIngest(cfg IngestConfig) (IngestResult, error) {
	if err := cfg.validate(); err != nil {
		return IngestResult{}, err
	}

	store, err := OpenStore(cfg.Backend, cfg.Dir)
	if err != nil {
		return IngestResult{}, err
	}
	defer store.Close()

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("ingest", store, txn.TableOptions{SyncCommits: cfg.Sync})
	if err != nil {
		return IngestResult{}, err
	}
	group, err := ctx.CreateGroup("ingest", tbl)
	if err != nil {
		return IngestResult{}, err
	}
	var p txn.Protocol
	switch cfg.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}

	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	top := stream.New("ingest")
	src := top.Source("gen", func(emit func(stream.Element)) error {
		for i := 0; i < cfg.Elements; i++ {
			emit(stream.DataElement(stream.Tuple{
				Key:   keyString(uint64(i%cfg.Keys), cfg.KeyBytes),
				Value: value,
				Ts:    int64(i),
			}))
		}
		return nil
	})
	window := cfg.Window
	if window < 1 {
		window = 1
	}
	var stats *stream.ToTableStats
	var tun *stream.AutoTuner
	if cfg.Auto {
		// Self-tuning spine: the controller sizes the window and linger
		// from the latencies this very run observes.
		tun = stream.NewAutoTuner(stream.AutoTune{})
		lanes := cfg.Lanes
		if lanes < 1 {
			lanes = 1
		}
		region := src.Punctuate(cfg.CommitEvery).TransactionsTuned(p, tun).Parallelize(lanes, nil)
		stats = region.ToTable(p, tbl)
		region.MergeTuned("merge", tun).Discard()
	} else {
		s := src.Punctuate(cfg.CommitEvery).TransactionsWindow(p, window)
		switch {
		case window > 1:
			// The fused commit spine needs the region barrier even at one
			// lane: the spine worker is what batches consecutive decided
			// transactions into one group-commit submission.
			lanes := cfg.Lanes
			if lanes < 1 {
				lanes = 1
			}
			region := s.Parallelize(lanes, nil)
			stats = region.ToTable(p, tbl)
			region.MergeBatched("merge", window).Discard()
		case cfg.Lanes > 1:
			region := s.Parallelize(cfg.Lanes, nil)
			stats = region.ToTable(p, tbl)
			region.Merge("merge").Discard()
		default:
			s, stats = s.ToTable(p, tbl)
			s.Discard()
		}
	}

	start := time.Now()
	if err := top.Run(); err != nil {
		return IngestResult{}, err
	}
	elapsed := time.Since(start)

	res := IngestResult{
		Config:  cfg,
		Elapsed: elapsed,
		Writes:  stats.Writes.Load(),
		Commits: stats.Commits.Load(),
		Aborts:  stats.Aborts.Load(),
	}
	res.CommitTxns, res.CommitBatches = group.CommitStats()
	res.ElemsPerSec = float64(res.Writes) / elapsed.Seconds()
	res.CacheStats = cacheStatsOf(store)
	if tun != nil {
		ts := tun.Stats()
		res.TunedWindow = ts.Window
		res.TunedGrows = ts.Grows
		res.TunedShrinks = ts.Shrinks
	}
	return res, nil
}

// WriteJSON renders the result as indented JSON (BENCH_ingest.json).
func (r IngestResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteIngestJSON renders a sweep of results (sibench -ingest -lanesweep
// -json) as one indented JSON array.
func WriteIngestJSON(w io.Writer, results []IngestResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// PrintIngest renders one ingest result verbosely.
func PrintIngest(w io.Writer, r IngestResult) {
	c := r.Config
	lanes := c.Lanes
	if lanes < 1 {
		lanes = 1
	}
	window := fmt.Sprint(max(c.Window, 1))
	if c.Auto {
		window = fmt.Sprintf("auto(→%d, +%d/-%d)", r.TunedWindow, r.TunedGrows, r.TunedShrinks)
	}
	fmt.Fprintf(w, "ingest protocol=%s backend=%s elements=%d commit-every=%d keys=%d sync=%t lanes=%d window=%s\n",
		c.Protocol, c.Backend, c.Elements, c.CommitEvery, c.Keys, c.Sync, lanes, window)
	fmt.Fprintf(w, "  throughput %12.0f elems/s  (%d writes in %v)\n", r.ElemsPerSec, r.Writes, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  txns       commits=%d aborts=%d\n", r.Commits, r.Aborts)
	fanIn := 0.0
	if r.CommitBatches > 0 {
		fanIn = float64(r.CommitTxns) / float64(r.CommitBatches)
	}
	fmt.Fprintf(w, "  group ci   %d txns in %d batches (fan-in %.2f)\n", r.CommitTxns, r.CommitBatches, fanIn)
	if cs := r.CacheStats; cs != nil {
		fmt.Fprintf(w, "  cache      hits=%d misses=%d evictions=%d dirty-flushed=%d resident=%d\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.DirtyFlushed, cs.Resident)
	}
}
