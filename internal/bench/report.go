package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Sweep runs one cell per (protocol, theta) pair with everything else
// fixed, mirroring one panel of the paper's Figure 4.
func Sweep(base Config, protocols []string, thetas []float64, dirFor func(proto string, theta float64) string) ([]Result, error) {
	var out []Result
	for _, proto := range protocols {
		for _, theta := range thetas {
			cfg := base
			cfg.Protocol = proto
			cfg.Theta = theta
			if cfg.Backend == "lsm" && dirFor != nil {
				cfg.Dir = dirFor(proto, theta)
			}
			r, err := Run(cfg)
			if err != nil {
				return out, fmt.Errorf("bench: %s theta=%g: %w", proto, theta, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintFigure renders a panel like the paper's Figure 4: one row per
// theta, one throughput column (K tps) per protocol.
func PrintFigure(w io.Writer, title string, results []Result) {
	protocols := orderedProtocols(results)
	thetas := orderedThetas(results)
	cell := map[string]map[float64]Result{}
	for _, r := range results {
		if cell[r.Config.Protocol] == nil {
			cell[r.Config.Protocol] = map[float64]Result{}
		}
		cell[r.Config.Protocol][r.Config.Theta] = r
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "theta")
	for _, p := range protocols {
		fmt.Fprintf(w, "%14s", strings.ToUpper(p)+" Ktps")
	}
	fmt.Fprintf(w, "    %s\n", "abort-rate")
	for _, th := range thetas {
		fmt.Fprintf(w, "%-10.2f", th)
		var aborts []string
		for _, p := range protocols {
			r := cell[p][th]
			fmt.Fprintf(w, "%14.1f", r.TotalTps/1000)
			aborts = append(aborts, fmt.Sprintf("%s=%.0f%%", p, r.AbortRate()*100))
		}
		fmt.Fprintf(w, "    %s\n", strings.Join(aborts, " "))
	}
}

// PrintCSV emits machine-readable rows for plotting.
func PrintCSV(w io.Writer, results []Result) {
	fmt.Fprintln(w, "protocol,backend,readers,writers,theta,table_size,txn_ops,sync,duration_s,"+
		"total_tps,reader_tps,writer_tps,reader_commits,reader_aborts,writer_commits,writer_aborts,"+
		"abort_rate,read_p50_ns,read_p99_ns,commit_p50_ns,commit_p99_ns,violations,commit_fan_in")
	for _, r := range results {
		c := r.Config
		fmt.Fprintf(w, "%s,%s,%d,%d,%g,%d,%d,%t,%.2f,%.1f,%.1f,%.1f,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%.2f\n",
			c.Protocol, c.Backend, c.Readers, c.Writers, c.Theta, c.TableSize, c.TxnOps, c.Sync,
			r.Elapsed.Seconds(), r.TotalTps, r.ReaderTps, r.WriterTps,
			r.ReaderCommits, r.ReaderAborts, r.WriterCommits, r.WriterAborts,
			r.AbortRate(), r.ReadP50, r.ReadP99, r.CommitP50, r.CommitP99, r.Violations, r.CommitFanIn())
	}
}

// PrintResult renders one cell verbosely.
func PrintResult(w io.Writer, r Result) {
	c := r.Config
	fmt.Fprintf(w, "protocol=%s backend=%s readers=%d writers=%d theta=%.2f ops=%d sync=%t\n",
		c.Protocol, c.Backend, c.Readers, c.Writers, c.Theta, c.TxnOps, c.Sync)
	fmt.Fprintf(w, "  total      %10.1f tps  (readers %.1f, writers %.1f)\n", r.TotalTps, r.ReaderTps, r.WriterTps)
	fmt.Fprintf(w, "  commits    reader=%d writer=%d\n", r.ReaderCommits, r.WriterCommits)
	fmt.Fprintf(w, "  aborts     reader=%d writer=%d (rate %.2f%%)\n", r.ReaderAborts, r.WriterAborts, r.AbortRate()*100)
	fmt.Fprintf(w, "  read lat   p50=%v p99=%v\n", time.Duration(r.ReadP50), time.Duration(r.ReadP99))
	fmt.Fprintf(w, "  commit lat p50=%v p99=%v\n", time.Duration(r.CommitP50), time.Duration(r.CommitP99))
	fmt.Fprintf(w, "  group ci   %d txns in %d batches (fan-in %.2f)\n", r.CommitTxns, r.CommitBatches, r.CommitFanIn())
	if r.Config.CheckConsistency {
		fmt.Fprintf(w, "  consistency violations: %d\n", r.Violations)
	}
}

func orderedProtocols(results []Result) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Config.Protocol] {
			seen[r.Config.Protocol] = true
			out = append(out, r.Config.Protocol)
		}
	}
	return out
}

func orderedThetas(results []Result) []float64 {
	var out []float64
	seen := map[float64]bool{}
	for _, r := range results {
		if !seen[r.Config.Theta] {
			seen[r.Config.Theta] = true
			out = append(out, r.Config.Theta)
		}
	}
	return out
}
