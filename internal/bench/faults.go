package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sistream/internal/stream"
	"sistream/internal/txn"
)

// FaultsConfig parameterizes the fault-injection smoke run (sibench
// -faults): the ingest pipeline over a kv.Fault-wrapped backend, with a
// sticky sync failure injected at a durability point mid-run. It
// measures how long the topology takes to reach fail-stop — from the
// first injected failure to a fully drained Run() — and verifies the
// acknowledgment invariant: no commit is acked at or after the failure.
type FaultsConfig struct {
	// Ingest is the pipeline shape (protocol, backend, elements, commit
	// interval, lanes, window). Sync is forced on: without synchronous
	// commits there are no durability points to fail.
	Ingest IngestConfig
	// FailAtSync injects a sticky error at the nth durability point
	// (default: halfway through the expected commit count).
	FailAtSync int
}

// FaultsResult is the outcome of one fault-injection run.
type FaultsResult struct {
	Config  FaultsConfig
	Elapsed time.Duration

	// Commits / Aborts as acked by the pipeline: Commits all predate the
	// injected failure, Aborts are the post-failure boundaries drained
	// under fail-stop.
	Commits int64
	Aborts  int64
	// Failure is the topology's surfaced error (wrapping
	// txn.ErrGroupFailed and the injected cause).
	Failure string
	// FailStopLatency is the wall-clock time from the first injected sync
	// failure to the pipeline being fully drained — the time the system
	// takes to stop cleanly once the disk turns bad.
	FailStopLatency time.Duration
	// RecoveredCTS is the watermark a crash+reopen recovers; it must
	// equal LastAckedCTS (no acked commit lost, no unacked one leaked).
	RecoveredCTS, LastAckedCTS uint64
}

// RunFaults executes one fault-injection smoke run. The returned error
// reports harness problems only — the injected failure itself is the
// expected outcome and lands in the result; an unexpected outcome (the
// pipeline succeeding, a commit acked after the failure, recovery
// disagreeing with the acks) is an error too, since the whole point is
// enforcing those invariants.
func RunFaults(cfg FaultsConfig) (FaultsResult, error) {
	icfg := cfg.Ingest
	icfg.Sync = true
	icfg.Auto = false
	if err := icfg.validate(); err != nil {
		return FaultsResult{}, err
	}

	// The fault wrapper chains over whatever backend the config names —
	// any registered spec works, "fault+mem", "fault+cache(256)+lsm", ...
	store, err := OpenStore("fault+"+icfg.Backend, icfg.Dir)
	if err != nil {
		return FaultsResult{}, err
	}
	defer store.Close()
	fault := store.FaultLayer()

	failAt := cfg.FailAtSync
	if failAt <= 0 {
		// Default: roughly halfway through the run's durability points.
		// Under SyncCommits every group-commit batch is one sync, and a
		// batch coalesces up to Window commits, so divide the commit count
		// by the worst-case fan-in to stay within the run.
		failAt = icfg.Elements / icfg.CommitEvery / max(icfg.Window, 1) / 2
		if failAt < 1 {
			failAt = 1
		}
	}
	injected := errors.New("bench: injected sticky sync failure (EIO)")
	fault.FailSyncAt(failAt, injected)

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("ingest", store, txn.TableOptions{SyncCommits: true})
	if err != nil {
		return FaultsResult{}, err
	}
	group, err := ctx.CreateGroup("ingest", tbl)
	if err != nil {
		return FaultsResult{}, err
	}
	var p txn.Protocol
	switch icfg.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}

	value := make([]byte, icfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	top := stream.New("faults")
	src := top.Source("gen", func(emit func(stream.Element)) error {
		for i := 0; i < icfg.Elements; i++ {
			emit(stream.DataElement(stream.Tuple{
				Key:   keyString(uint64(i%icfg.Keys), icfg.KeyBytes),
				Value: value,
				Ts:    int64(i),
			}))
		}
		return nil
	})
	window := max(icfg.Window, 1)
	lanes := max(icfg.Lanes, 1)
	region := src.Punctuate(icfg.CommitEvery).TransactionsWindow(p, window).Parallelize(lanes, nil)
	stats := region.ToTable(p, tbl)
	region.MergeBatched("merge", window).Discard()

	start := time.Now()
	runErr := top.Run()
	elapsed := time.Since(start)
	drained := time.Now()

	res := FaultsResult{
		Config:       cfg,
		Elapsed:      elapsed,
		Commits:      stats.Commits.Load(),
		Aborts:       stats.Aborts.Load(),
		LastAckedCTS: uint64(group.LastCTS()),
	}
	if runErr == nil {
		return res, fmt.Errorf("bench: pipeline succeeded despite injected failure at sync %d", failAt)
	}
	res.Failure = runErr.Error()
	if !errors.Is(runErr, txn.ErrGroupFailed) || !errors.Is(runErr, injected) {
		return res, fmt.Errorf("bench: topology error %v does not wrap ErrGroupFailed and the injected cause", runErr)
	}
	fs := fault.Stats()
	if fs.FirstSyncFailure.IsZero() {
		return res, fmt.Errorf("bench: fault store recorded no sync failure")
	}
	res.FailStopLatency = drained.Sub(fs.FirstSyncFailure)

	// The acknowledgment invariant, checked the hard way: crash the store,
	// reopen, and compare the recovered watermark against the acks.
	re, err := fault.Reopen()
	if err != nil {
		return res, err
	}
	defer re.Close()
	ctx2 := txn.NewContext()
	tbl2, err := ctx2.CreateTable("ingest", re, txn.TableOptions{SyncCommits: true})
	if err != nil {
		return res, err
	}
	group2, err := ctx2.CreateGroup("ingest", tbl2)
	if err != nil {
		return res, err
	}
	res.RecoveredCTS = uint64(group2.LastCTS())
	if res.RecoveredCTS != res.LastAckedCTS {
		return res, fmt.Errorf("bench: recovered watermark %d != last acked commit %d — an ack was lost or leaked",
			res.RecoveredCTS, res.LastAckedCTS)
	}
	if txns, _ := group.CommitStats(); int64(txns) != res.Commits {
		return res, fmt.Errorf("bench: group committed %d txns but pipeline acked %d", txns, res.Commits)
	}
	return res, nil
}

// PrintFaults renders one fault-injection result.
func PrintFaults(w io.Writer, r FaultsResult) {
	c := r.Config.Ingest
	fmt.Fprintf(w, "faults protocol=%s backend=%s elements=%d commit-every=%d lanes=%d window=%d fail-at-sync=%d\n",
		c.Protocol, c.Backend, c.Elements, c.CommitEvery, max(c.Lanes, 1), max(c.Window, 1), r.Config.FailAtSync)
	fmt.Fprintf(w, "  fail-stop  %v from first injected sync failure to full drain\n", r.FailStopLatency.Round(time.Microsecond))
	fmt.Fprintf(w, "  txns       commits=%d (all pre-failure) aborts=%d (drained under fail-stop)\n", r.Commits, r.Aborts)
	fmt.Fprintf(w, "  recovery   watermark %d == last acked commit %d (no ack lost or leaked)\n", r.RecoveredCTS, r.LastAckedCTS)
	fmt.Fprintf(w, "  failure    %s\n", r.Failure)
}
