package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"sistream/internal/stream"
	"sistream/internal/txn"
)

// FeedConfig parameterizes the change-feed benchmark: the ingest pipeline
// of IngestConfig writing a table, with a TO_STREAM change feed attached
// that a downstream consumer drains concurrently. It measures the
// table→stream half of an end-to-end pipeline — the stage the partitioned
// feed parallelizes.
type FeedConfig struct {
	// Ingest is the writing side (protocol, backend, elements, commit
	// interval, lanes — see IngestConfig).
	Ingest IngestConfig
	// Partitions selects the feed shape: 0 runs the sequential ToStream
	// path (single commit watcher — the baseline), >= 1 runs the
	// partitioned feed (FromTablePartitioned) with that many per-partition
	// watchers merged through the lane barrier.
	Partitions int
}

// DefaultFeed returns a quick in-memory configuration: the DefaultIngest
// writer with the sequential feed attached.
func DefaultFeed() FeedConfig {
	return FeedConfig{Ingest: DefaultIngest()}
}

// FeedResult is the outcome of one feed run.
type FeedResult struct {
	Config  FeedConfig
	Elapsed time.Duration

	// IngestElems is the number of tuples written by the ingest side;
	// FeedElems is the number of change elements the feed delivered
	// downstream (per commit: one element per distinct written key).
	IngestElems int64
	FeedElems   int64
	// FeedCommits counts the transactions the feed delivered: COMMIT
	// punctuations on the partitioned path, distinct commit timestamps on
	// the sequential one.
	FeedCommits int64

	// ElemsPerSec is the headline metric: feed elements delivered per
	// second of wall-clock time, measured from ingest start until the
	// feed has drained every commit.
	ElemsPerSec float64
}

// RunFeed executes one feed cell: the ingest query writes the table while
// the configured change feed delivers the committed changes to a counting
// sink; the clock stops when the feed has drained. The ingest and feed
// topologies run concurrently, so the measurement includes the feed's
// ability (or failure) to keep pace with the writer.
func RunFeed(cfg FeedConfig) (FeedResult, error) {
	ic := cfg.Ingest
	if err := ic.validate(); err != nil {
		return FeedResult{}, err
	}
	if cfg.Partitions < 0 {
		return FeedResult{}, fmt.Errorf("bench: negative partition count")
	}

	store, err := OpenStore(ic.Backend, ic.Dir)
	if err != nil {
		return FeedResult{}, err
	}
	defer store.Close()

	ctx := txn.NewContext()
	tbl, err := ctx.CreateTable("ingest", store, txn.TableOptions{SyncCommits: ic.Sync})
	if err != nil {
		return FeedResult{}, err
	}
	if _, err := ctx.CreateGroup("ingest", tbl); err != nil {
		return FeedResult{}, err
	}
	var p txn.Protocol
	switch ic.Protocol {
	case "mvcc":
		p = txn.NewSI(ctx)
	case "s2pl":
		p = txn.NewS2PL(ctx)
	case "bocc":
		p = txn.NewBOCC(ctx)
	}

	// Feed side: attach before the first commit so no change is missed.
	var (
		feedElems   atomic.Int64
		feedCommits atomic.Int64
		lastCTS     int64
	)
	feedTop := stream.New("feed")
	var stopFeed func()
	count := func(e stream.Element) {
		switch e.Kind {
		case stream.KindData:
			feedElems.Add(1)
			// Sequential path: no punctuations, count commits by cts runs.
			if cfg.Partitions == 0 && e.Tuple.Ts != lastCTS {
				lastCTS = e.Tuple.Ts
				feedCommits.Add(1)
			}
		case stream.KindCommit:
			feedCommits.Add(1)
		}
	}
	if cfg.Partitions >= 1 {
		region, stop := stream.FromTablePartitioned(feedTop, tbl, cfg.Partitions, nil)
		stopFeed = stop
		region.Merge("feedmerge").Sink("count", count)
	} else {
		s, stop := stream.ToStream(feedTop, tbl, p)
		stopFeed = stop
		s.Sink("count", count)
	}

	// Ingest side: the same query RunIngest drives.
	value := make([]byte, ic.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	top := stream.New("ingest")
	src := top.Source("gen", func(emit func(stream.Element)) error {
		for i := 0; i < ic.Elements; i++ {
			emit(stream.DataElement(stream.Tuple{
				Key:   keyString(uint64(i%ic.Keys), ic.KeyBytes),
				Value: value,
				Ts:    int64(i),
			}))
		}
		return nil
	})
	s := src.Punctuate(ic.CommitEvery).Transactions(p)
	var stats *stream.ToTableStats
	if ic.Lanes > 1 {
		region := s.Parallelize(ic.Lanes, nil)
		stats = region.ToTable(p, tbl)
		region.Merge("merge").Discard()
	} else {
		s, stats = s.ToTable(p, tbl)
		s.Discard()
	}

	start := time.Now()
	feedTop.Start()
	if err := top.Run(); err != nil {
		return FeedResult{}, err
	}
	stopFeed()
	if err := feedTop.Wait(); err != nil {
		return FeedResult{}, err
	}
	elapsed := time.Since(start)

	res := FeedResult{
		Config:      cfg,
		Elapsed:     elapsed,
		IngestElems: stats.Writes.Load(),
		FeedElems:   feedElems.Load(),
		FeedCommits: feedCommits.Load(),
	}
	res.ElemsPerSec = float64(res.FeedElems) / elapsed.Seconds()
	return res, nil
}

// PrintFeed renders one feed result verbosely.
func PrintFeed(w io.Writer, r FeedResult) {
	c := r.Config
	shape := "sequential (single watcher)"
	if c.Partitions >= 1 {
		shape = fmt.Sprintf("partitioned (%d watchers)", c.Partitions)
	}
	fmt.Fprintf(w, "feed %s protocol=%s backend=%s elements=%d commit-every=%d lanes=%d\n",
		shape, c.Ingest.Protocol, c.Ingest.Backend, c.Ingest.Elements, c.Ingest.CommitEvery, max(c.Ingest.Lanes, 1))
	fmt.Fprintf(w, "  feed throughput %12.0f elems/s  (%d changes of %d writes in %v)\n",
		r.ElemsPerSec, r.FeedElems, r.IngestElems, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  feed commits    %d\n", r.FeedCommits)
}

// WriteFeedJSON renders a sweep of feed results as one indented JSON
// array (the feed half of BENCH_ingest.json).
func WriteFeedJSON(w io.Writer, results []FeedResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
