module sistream

go 1.24
