// Quickstart: one continuous stream query writing a transactional table
// under snapshot isolation, plus an ad-hoc snapshot query — the minimal
// "transactional stream processing" program.
package main

import (
	"fmt"
	"log"
	"sort"

	"sistream"
)

func main() {
	// Backends resolve by spec through the storage adapter registry: a
	// volatile "mem" store keeps the example self-contained; swap the
	// spec for "lsm:<dir>" (persistent) or "cache(256)+lsm:<dir>" (the
	// cache tier chained over it).
	store, err := sistream.OpenStore("mem", sistream.StoreOpenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// State management: one table in one topology group.
	ctx := sistream.NewContext()
	events, err := ctx.CreateTable("events", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base table %q (durable=%t)\n", store.Spec(), store.Capabilities().Durable)
	if _, err := ctx.CreateGroup("pipeline", events); err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx) // the paper's MVCC snapshot-isolation protocol

	// A stream query: source -> filter -> TO_TABLE, with transaction
	// boundaries every 3 tuples (data-centric punctuations).
	top := sistream.NewTopology("quickstart")
	src := top.SliceSource("sensors", []sistream.Tuple{
		{Key: "sensor-a", Value: []byte("10.5")},
		{Key: "sensor-b", Value: []byte("99.9")}, // filtered out below
		{Key: "sensor-c", Value: []byte("12.1")},
		{Key: "sensor-a", Value: []byte("11.0")}, // overwrites sensor-a
		{Key: "sensor-d", Value: []byte("13.7")},
	})
	filtered := src.Filter("drop-outliers", func(t sistream.Tuple) bool {
		return string(t.Value) < "50"
	})
	q, stats := filtered.Punctuate(3).Transactions(p).ToTable(p, events)
	q.Discard()

	if err := top.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream done: %d writes in %d transactions, %d aborts\n",
		stats.Writes.Load(), stats.Commits.Load(), stats.Aborts.Load())

	// Ad-hoc FROM(table): a consistent snapshot of the state.
	rows, err := sistream.TableSnapshot(p, events)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	for _, r := range rows {
		fmt.Printf("  %s = %s\n", r.Key, r.Value)
	}

	// Point reads under one read-only transaction.
	vals, err := sistream.QueryKeys(p, []sistream.TableKey{
		{Table: events, Key: "sensor-a"},
		{Table: events, Key: "sensor-b"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor-a=%s sensor-b(filtered)=%v\n", vals[0], vals[1])
}
