// Ad-hoc analytics under concurrency, on the analytical read path: a
// continuous writer keeps two states of one topology group in lockstep
// (accounts and audit both carry every account's balance) while ad-hoc
// queries run concurrently on pinned snapshots — multi-table point
// reads, lane-parallel scans, and secondary-index lookups. Every query
// sees a consistent cut: the two tables always agree, and an index
// lookup always equals the filtered scan at the same snapshot. The demo
// verifies both invariants live — readers never block and never abort
// under a single writer (the paper's Section 4.2), and the index is
// never ahead of or behind its table.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sistream"
)

// accounts is the key domain: acct00..acct15, each holding the round
// counter, sharded over 4 index buckets by account number.
const (
	numAccounts = 16
	numBuckets  = 4
)

func acctKey(i int) string { return fmt.Sprintf("acct%02d", i) }

// bucketOf indexes accounts by their low two key digits — a pure
// function of the row, re-evaluated on the commit path.
func bucketOf(key string, _ []byte) (string, bool) {
	if len(key) < 6 {
		return "", false
	}
	n := int(key[4]-'0')*10 + int(key[5]-'0')
	return fmt.Sprintf("b%d", n%numBuckets), true
}

func main() {
	roundsFlag := flag.Uint64("rounds", 5000, "writer transactions to run")
	specFlag := flag.String("store", "mem", "backend spec (mem, lsm:<dir>, cache(256)+lsm:<dir>, ...)")
	flag.Parse()
	rounds := *roundsFlag

	store, err := sistream.OpenStore(*specFlag, sistream.StoreOpenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := sistream.NewContext()
	accounts, err := ctx.CreateTable("accounts", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	audit, err := ctx.CreateTable("audit", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.CreateGroup("ledger", accounts, audit); err != nil {
		log.Fatal(err)
	}
	// The secondary index is maintained transactionally in the write
	// path: from here on, every commit updates table and index atomically.
	byBucket, err := accounts.CreateIndex("bucket", bucketOf)
	if err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	// The invariant: for every account, accounts[k] always equals
	// audit[k]. Each writer transaction bumps one account in both tables;
	// a torn snapshot would catch them apart.
	var wg sync.WaitGroup
	var checked, torn, indexDiverged atomic.Int64
	stop := make(chan struct{})

	// Reader 1+2: multi-table snapshot point reads — the pinned cut must
	// keep the pair in lockstep.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := ctx.Snapshot(accounts, audit)
				if err != nil {
					log.Fatal(err)
				}
				k := acctKey(i % numAccounts)
				i++
				a, okA, err1 := snap.Get(accounts, k)
				b, okB, err2 := snap.Get(audit, k)
				snap.Release()
				if err1 != nil || err2 != nil {
					log.Fatal(err1, err2)
				}
				checked.Add(1)
				if okA != okB || u64(a) != u64(b) {
					torn.Add(1)
				}
			}
		}(r)
	}

	// Reader 3: lane-parallel scan + index equivalence — scan accounts at
	// the snapshot with 4 lanes, then check each bucket's index lookup
	// returns exactly the scanned rows of that bucket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := ctx.Snapshot(accounts, audit)
			if err != nil {
				log.Fatal(err)
			}
			var mu sync.Mutex
			scanned := map[string]uint64{}
			if err := snap.ParallelScan(accounts, 4, func(k string, v []byte) bool {
				mu.Lock()
				scanned[k] = u64(v)
				mu.Unlock()
				return true
			}); err != nil {
				log.Fatal(err)
			}
			ok := true
			total := 0
			for b := 0; b < numBuckets; b++ {
				bucket := fmt.Sprintf("b%d", b)
				if err := snap.Lookup(byBucket, bucket, func(k string, v []byte) bool {
					want, seen := scanned[k]
					if bk, _ := bucketOf(k, nil); !seen || bk != bucket || u64(v) != want {
						ok = false
					}
					total++
					return true
				}); err != nil {
					log.Fatal(err)
				}
			}
			snap.Release()
			checked.Add(1)
			if !ok || total != len(scanned) {
				indexDiverged.Add(1)
			}
		}
	}()

	start := time.Now()
	for i := uint64(1); i <= rounds; i++ {
		tx, err := p.Begin()
		if err != nil {
			log.Fatal(err)
		}
		k := acctKey(int(i) % numAccounts)
		if err := p.Write(tx, accounts, k, be(i)); err != nil {
			log.Fatal(err)
		}
		if err := p.Write(tx, audit, k, be(i)); err != nil {
			log.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			log.Fatal(err) // single writer: must never abort under SI
		}
	}
	// Let the ad-hoc queries observe the final state for a moment (on a
	// small machine the writer can finish before a reader ever ran).
	for deadline := time.Now().Add(2 * time.Second); checked.Load() < 50 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := byBucket.Stats()
	fmt.Printf("writer: %d multi-state transactions in %v\n", rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("readers: %d consistent snapshots, %d torn, %d index divergences\n",
		checked.Load(), torn.Load(), indexDiverged.Load())
	fmt.Printf("index: puts=%d deletes=%d lookups=%d hits=%d\n", st.Puts, st.Deletes, st.Lookups, st.Hits)
	if torn.Load() > 0 {
		log.Fatal("BUG: snapshot isolation violated")
	}
	if indexDiverged.Load() > 0 {
		log.Fatal("BUG: index lookup diverged from the snapshot scan")
	}
	fmt.Println("read path held: every snapshot was consistent and every index lookup matched its scan")
}

func be(v uint64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, v)
	return out
}

func u64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
