// Ad-hoc analytics under concurrency: a continuous writer keeps two
// states of one topology group in lockstep while ad-hoc snapshot queries
// run concurrently. Snapshot isolation guarantees every query sees a
// consistent pair — the demo verifies it live and also shows what the
// paper's Section 4.2 promises: readers never block and never abort under
// a single writer.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sistream"
)

func main() {
	roundsFlag := flag.Uint64("rounds", 5000, "writer transactions to run")
	specFlag := flag.String("store", "mem", "backend spec (mem, lsm:<dir>, cache(256)+lsm:<dir>, ...)")
	flag.Parse()
	rounds := *roundsFlag

	store, err := sistream.OpenStore(*specFlag, sistream.StoreOpenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := sistream.NewContext()
	accounts, err := ctx.CreateTable("accounts", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	audit, err := ctx.CreateTable("audit", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.CreateGroup("ledger", accounts, audit); err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	// The invariant: accounts["total"] always equals audit["total"].
	// Each transaction bumps both; a torn read would catch them apart.
	var wg sync.WaitGroup
	var checked, torn, aborted atomic.Int64
	stop := make(chan struct{})

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := p.BeginReadOnly()
				if err != nil {
					log.Fatal(err)
				}
				a, _, err1 := p.Read(tx, accounts, "total")
				b, _, err2 := p.Read(tx, audit, "total")
				if err1 != nil || err2 != nil {
					_ = p.Abort(tx)
					aborted.Add(1)
					continue
				}
				if err := p.Commit(tx); err != nil {
					aborted.Add(1)
					continue
				}
				checked.Add(1)
				if u64(a) != u64(b) {
					torn.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	for i := uint64(1); i <= rounds; i++ {
		tx, err := p.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Write(tx, accounts, "total", be(i)); err != nil {
			log.Fatal(err)
		}
		if err := p.Write(tx, audit, "total", be(i)); err != nil {
			log.Fatal(err)
		}
		if err := p.Commit(tx); err != nil {
			log.Fatal(err) // single writer: must never abort under SI
		}
	}
	close(stop)
	wg.Wait()

	fmt.Printf("writer: %d multi-state transactions in %v\n", rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("readers: %d consistent snapshots, %d torn, %d aborted\n",
		checked.Load(), torn.Load(), aborted.Load())
	if torn.Load() > 0 {
		log.Fatal("BUG: snapshot isolation violated")
	}
	if aborted.Load() > 0 {
		log.Fatal("BUG: SI readers must never abort with a single writer")
	}
	fmt.Println("snapshot isolation held: every ad-hoc query saw a consistent multi-state snapshot")
}

func be(v uint64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, v)
	return out
}

func u64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
