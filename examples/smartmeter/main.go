// Smart metering (the paper's Figure 1, compact version): two continuous
// queries share queryable states through the transactional layer —
// a raw-ingest query and a windowed-aggregate query whose two states
// commit atomically — while TO_STREAM feeds a verification query and an
// ad-hoc report reads a consistent cross-state snapshot.
//
// cmd/smartmeter is the full-size, flag-driven variant of this example.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"sistream"
)

func main() {
	store := sistream.NewMemStore()
	defer store.Close()
	ctx := sistream.NewContext()
	measurements, err := ctx.CreateTable("measurements", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	averages, err := ctx.CreateTable("averages", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.CreateGroup("metering", measurements, averages); err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	top := sistream.NewTopology("smartmeter")

	// Continuous query: meter readings -> raw state + sliding average
	// state, both updated in the SAME transaction per 10-tuple batch.
	const meters, readings = 8, 400
	src := top.Source("meters", func(emit func(sistream.Element)) error {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < readings; i++ {
			m := rng.Intn(meters)
			kw := 2 + rng.Float64()*6
			emit(sistream.DataElement(sistream.Tuple{
				Key:   fmt.Sprintf("meter-%d", m),
				Value: []byte(fmt.Sprintf("%.2f", kw)),
				Num:   kw,
				Ts:    int64(i),
			}))
		}
		return nil
	})
	q := src.Punctuate(10).Transactions(p, measurements, averages)
	q, raw := q.ToTable(p, measurements)
	q = q.SlidingWindow("avg-20", 20, sistream.Avg).FormatValue("%.3f")
	q, agg := q.ToTable(p, averages)
	ingestDone := q.Collect() // closes when the ingest pipeline finishes

	// TO_STREAM: watch committed changes of the averages state and flag
	// meters whose sliding average exceeds a threshold. The sink runs on
	// a single goroutine, so the map needs no locking.
	feed, stopFeed := sistream.ToStream(top, averages, p)
	overloads := map[string]int{}
	feed.Sink("threshold", func(e sistream.Element) {
		if e.Kind == sistream.KindData && e.Tuple.Num > 6.0 {
			overloads[e.Tuple.Key]++
		}
	})

	top.Start()
	<-ingestDone // all batches committed
	stopFeed()   // the feed drains queued commits, then closes
	if err := top.Wait(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ingest: %d raw writes / %d commits; %d aggregate writes / %d commits\n",
		raw.Writes.Load(), raw.Commits.Load(), agg.Writes.Load(), agg.Commits.Load())

	// Ad-hoc report: consistent snapshot across BOTH states.
	rawRows, err := sistream.TableSnapshot(p, measurements)
	if err != nil {
		log.Fatal(err)
	}
	avgRows, err := sistream.TableSnapshot(p, averages)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(avgRows, func(i, j int) bool { return avgRows[i].Key < avgRows[j].Key })
	fmt.Printf("report: %d meters with raw readings, %d with sliding averages\n", len(rawRows), len(avgRows))
	for _, r := range avgRows {
		fmt.Printf("  %-8s avg(last 20) = %s kW\n", r.Key, r.Value)
	}
	fmt.Printf("threshold feed flagged %d meters above 6.0 kW\n", len(overloads))
}
