// Recovery: transactional states persist across restarts. The program
// runs two "incarnations" over the same LSM directory: the first streams
// data into two states with synchronous commits and stops abruptly
// (without any clean shutdown of the transactional layer); the second
// reopens the store, recovers both states and the group's LastCTS
// watermark, verifies consistency, and continues writing.
package main

import (
	"fmt"
	"log"
	"os"

	"sistream"
)

func main() {
	dir, err := os.MkdirTemp("", "recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("incarnation 1: streaming with synchronous commits")
	lastCTS := incarnation1(dir)
	fmt.Printf("  committed watermark (LastCTS) = %d; process 'crashes' now\n\n", lastCTS)

	fmt.Println("incarnation 2: recover and continue")
	incarnation2(dir, lastCTS)
}

func incarnation1(dir string) sistream.Timestamp {
	// The persistent backend by registry spec; the directory rides in the
	// open options ("lsm:<dir>" inline would work too).
	store, err := sistream.OpenStore("lsm", sistream.StoreOpenOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	ctx := sistream.NewContext()
	orders, err := ctx.CreateTable("orders", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		log.Fatal(err)
	}
	totals, err := ctx.CreateTable("totals", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		log.Fatal(err)
	}
	group, err := ctx.CreateGroup("orders-group", orders, totals)
	if err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	top := sistream.NewTopology("ingest")
	var tuples []sistream.Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, sistream.Tuple{
			Key:   fmt.Sprintf("order-%03d", i),
			Value: []byte(fmt.Sprintf("qty=%d", i%7+1)),
		})
	}
	q := top.SliceSource("orders", tuples).Punctuate(10).Transactions(p, orders, totals)
	q, stats := q.ToTable(p, orders)
	q = q.Map("derive-total", func(t sistream.Tuple) sistream.Tuple {
		t.Key = "count"
		t.Value = []byte("1") // toy derived state; real code would aggregate
		return t
	})
	q, _ = q.ToTable(p, totals)
	q.Discard()
	if err := top.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ingested %d orders in %d transactions\n", stats.Writes.Load(), stats.Commits.Load())

	// Simulate a crash: close only the base store (its WAL makes the data
	// durable); the transactional context is simply dropped.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	return group.LastCTS()
}

func incarnation2(dir string, wantCTS sistream.Timestamp) {
	store, err := sistream.OpenStore("lsm", sistream.StoreOpenOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := sistream.NewContext()
	orders, err := ctx.CreateTable("orders", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		log.Fatal(err)
	}
	totals, err := ctx.CreateTable("totals", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		log.Fatal(err)
	}
	group, err := ctx.CreateGroup("orders-group", orders, totals)
	if err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	if group.LastCTS() != wantCTS {
		log.Fatalf("recovered LastCTS %d, want %d", group.LastCTS(), wantCTS)
	}
	rows, err := sistream.TableSnapshot(p, orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered LastCTS=%d and %d order rows\n", group.LastCTS(), len(rows))
	if len(rows) != 100 {
		log.Fatalf("expected 100 recovered rows, got %d", len(rows))
	}

	// New transactions continue past the recovered watermark.
	tx, err := p.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Write(tx, orders, "order-100", []byte("qty=1")); err != nil {
		log.Fatal(err)
	}
	if err := p.Commit(tx); err != nil {
		log.Fatal(err)
	}
	if group.LastCTS() <= wantCTS {
		log.Fatal("clock did not advance past recovery")
	}
	fmt.Printf("  new commit at cts=%d; recovery complete\n", group.LastCTS())
}
