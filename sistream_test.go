package sistream_test

import (
	"fmt"
	"sort"
	"testing"

	"sistream"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// quickstart does: states, groups, a stream query with punctuations, the
// four linking operators, and all three protocols.
func TestFacadeEndToEnd(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func(*sistream.Context) sistream.Protocol
	}{
		{"mvcc", func(c *sistream.Context) sistream.Protocol { return sistream.NewSI(c) }},
		{"s2pl", func(c *sistream.Context) sistream.Protocol { return sistream.NewS2PL(c) }},
		{"bocc", func(c *sistream.Context) sistream.Protocol { return sistream.NewBOCC(c) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			store := sistream.NewMemStore()
			defer store.Close()
			ctx := sistream.NewContext()
			tbl, err := ctx.CreateTable("events", store, sistream.TableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ctx.CreateGroup("g", tbl); err != nil {
				t.Fatal(err)
			}
			p := mk.make(ctx)

			top := sistream.NewTopology("t")
			var tuples []sistream.Tuple
			for i := 0; i < 10; i++ {
				tuples = append(tuples, sistream.Tuple{
					Key:   fmt.Sprintf("k%d", i),
					Value: []byte(fmt.Sprintf("v%d", i)),
				})
			}
			q, stats := top.SliceSource("src", tuples).
				Punctuate(4).
				Transactions(p).
				ToTable(p, tbl)
			q.Discard()
			if err := top.Run(); err != nil {
				t.Fatal(err)
			}
			if stats.Writes.Load() != 10 || stats.Commits.Load() != 3 {
				t.Fatalf("stats: writes=%d commits=%d", stats.Writes.Load(), stats.Commits.Load())
			}
			rows, err := sistream.TableSnapshot(p, tbl)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 10 {
				t.Fatalf("snapshot rows = %d", len(rows))
			}
			vals, err := sistream.QueryKeys(p, []sistream.TableKey{{Table: tbl, Key: "k3"}})
			if err != nil {
				t.Fatal(err)
			}
			if string(vals[0]) != "v3" {
				t.Fatalf("k3 = %q", vals[0])
			}
		})
	}
}

// TestFacadePersistence round-trips states through the LSM store across
// a reopen, via the façade only.
func TestFacadePersistence(t *testing.T) {
	dir := t.TempDir()
	open := func() (sistream.Store, *sistream.Context, *sistream.Table, sistream.Protocol) {
		store, err := sistream.OpenLSM(dir, sistream.LSMOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ctx := sistream.NewContext()
		tbl, err := ctx.CreateTable("state", store, sistream.TableOptions{SyncCommits: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.CreateGroup("g", tbl); err != nil {
			t.Fatal(err)
		}
		return store, ctx, tbl, sistream.NewSI(ctx)
	}

	store, _, tbl, p := open()
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Write(tx, tbl, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, _, tbl2, p2 := open()
	defer store2.Close()
	rows, err := sistream.TableSnapshot(p2, tbl2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("recovered %d rows", len(rows))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	if rows[0].Key != "k0" || rows[4].Key != "k4" {
		t.Fatalf("recovered keys: %v", rows)
	}
}

// TestFacadeErrors: abort classification is visible through the façade.
func TestFacadeErrors(t *testing.T) {
	if !sistream.IsAbort(sistream.ErrConflict) ||
		!sistream.IsAbort(sistream.ErrValidation) ||
		!sistream.IsAbort(sistream.ErrDeadlock) ||
		!sistream.IsAbort(sistream.ErrAborted) {
		t.Fatal("abort variants not recognized")
	}
	if sistream.IsAbort(sistream.ErrFinished) {
		t.Fatal("ErrFinished is not an abort")
	}
}
