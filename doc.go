// Package sistream is a Go reproduction of "Snapshot Isolation for
// Transactional Stream Processing" (Götze & Sattler, EDBT 2019): a
// transactional stream processing library combining continuous queries,
// shared queryable states (tables) with MVCC snapshot isolation, a
// consistency protocol for multi-state transactions, and ad-hoc snapshot
// queries — plus the S2PL and BOCC baselines the paper evaluates against
// and a persistent LSM key-value store as the base table.
//
// # Concurrency architecture
//
// The transactional core is built to keep readers and writers off each
// other's locks at every layer (see DESIGN.md for the full picture):
//
//   - The state registry (Context) is striped over 64 independently
//     latched shards keyed by FNV-1a of the state/group ID, so
//     Begin/lookup/Register scale with cores; the active-transaction
//     table is latch-free (CAS bit vectors).
//   - Commits of one topology group flow through a group-commit
//     pipeline: concurrent committers enqueue validated write sets, a
//     batch leader assigns a contiguous timestamp range, admits each
//     transaction under First-Committer-Wins (against installed versions
//     plus earlier same-batch admissions), persists one coalesced batch
//     per base store — a single fsync amortized over the whole batch —
//     installs all versions and publishes the group's LastCTS once.
//     Transactions spanning groups fall back to taking every involved
//     group's commit latch in canonical order, so cross-group commits
//     stay deadlock-free and atomic.
//   - Per-key version arrays are append-in-place RCU: versions ascend by
//     commit timestamp, a new version is published by one atomic store of
//     the element count and readers scan lock-free — a snapshot read
//     never contends with the commit apply path, however hot the key,
//     and the install fast path allocates nothing but the value.
//   - The dataflow engine is vectorized: edges carry element batches,
//     chains of stateless operators fuse into their consumer's goroutine,
//     and TO_TABLE applies each transaction's tuples through a batched
//     write API (Protocol.WriteBatch) — one snapshot pin and one latch
//     acquisition per batch. See DESIGN.md "Vectorized dataflow".
//   - Queries scale past one core on both sides of a table.
//     Stream.Parallelize splits the ingest spine into keyed lanes with
//     per-lane write segments re-serialized at a transaction-preserving
//     merge barrier; FromTablePartitioned splits the change feed
//     (TO_STREAM) into per-partition commit watchers merged through the
//     same barrier discipline, so an end-to-end pipeline — ingest lanes
//     → table → feed partitions → downstream lanes — is shared-nothing
//     per key from source to sink. See DESIGN.md "Parallel keyed ingest
//     lanes" and "Partitioned change feed".
//   - The commit spine batches ACROSS transactions: TransactionsWindow
//     keeps a bounded window of one query's small transactions in
//     flight on a commit chain (serial-order semantics preserved:
//     chain-internal conflicts are exempt, foreign conflicts still
//     abort), and the lane barrier's commit spine (MergeBatched) submits
//     consecutive decided transactions to the group-commit pipeline as
//     ONE batch — one leader tenure, one fsync, one LastCTS publish for
//     the run. Reparallelize fuses a feed region directly into a
//     downstream parallel region (partition i → lane i) when the
//     partitioning matches. See DESIGN.md "Fused commit spine".
//
// Group.CommitStats reports the pipeline's achieved batching;
// cmd/sibench -scaling sweeps it against writer concurrency.
//
// The façade re-exports the user-facing API of the internal packages:
//
//	sistream.NewContext / CreateTable / CreateGroup  state management
//	sistream.NewSI / NewS2PL / NewBOCC               protocols
//	sistream.NewTopology + Stream operators          dataflow queries
//	sistream.ToStream / FromTablePartitioned         change feeds
//	sistream.OpenLSM / NewMemStore                   base tables
//
// A minimal write-then-query program:
//
//	store := sistream.NewMemStore()
//	ctx := sistream.NewContext()
//	tbl, _ := ctx.CreateTable("events", store, sistream.TableOptions{})
//	ctx.CreateGroup("g", tbl)
//	p := sistream.NewSI(ctx)
//	tx, _ := p.Begin()
//	p.Write(tx, tbl, "k", []byte("v"))
//	p.Commit(tx)
//	rows, _ := sistream.TableSnapshot(p, tbl)
//
// # Where to read more
//
//   - README.md — architecture overview, quickstart, benchmark numbers.
//   - DESIGN.md — the full design: sharded registry, group commit,
//     vectorized dataflow, parallel lanes, partitioned feed, MVCC store.
//   - examples/ — complete runnable programs (quickstart, ad-hoc
//     queries, crash recovery, the smart-meter scenario).
//   - PAPER.md — the source paper's abstract and claims.
package sistream
