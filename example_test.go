package sistream_test

import (
	"fmt"
	"log"
	"sort"

	"sistream"
)

// Example demonstrates the minimal transactional-stream-processing loop:
// a continuous query writing a table under snapshot isolation and an
// ad-hoc snapshot query reading it.
func Example() {
	store := sistream.NewMemStore()
	defer store.Close()
	ctx := sistream.NewContext()
	events, err := ctx.CreateTable("events", store, sistream.TableOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ctx.CreateGroup("pipeline", events); err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	top := sistream.NewTopology("example")
	q, _ := top.SliceSource("src", []sistream.Tuple{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
	}).Punctuate(2).Transactions(p).ToTable(p, events)
	q.Discard()
	if err := top.Run(); err != nil {
		log.Fatal(err)
	}

	rows, err := sistream.TableSnapshot(p, events)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	for _, r := range rows {
		fmt.Printf("%s=%s\n", r.Key, r.Value)
	}
	// Output:
	// a=1
	// b=2
}

// ExampleProtocol_multiState shows the consistency protocol: a
// transaction spanning two states becomes visible atomically.
func ExampleProtocol_multiState() {
	store := sistream.NewMemStore()
	defer store.Close()
	ctx := sistream.NewContext()
	accounts, _ := ctx.CreateTable("accounts", store, sistream.TableOptions{})
	audit, _ := ctx.CreateTable("audit", store, sistream.TableOptions{})
	if _, err := ctx.CreateGroup("ledger", accounts, audit); err != nil {
		log.Fatal(err)
	}
	p := sistream.NewSI(ctx)

	tx, _ := p.Begin()
	p.Write(tx, accounts, "alice", []byte("100"))
	p.Write(tx, audit, "alice", []byte("deposit 100"))
	if err := p.Commit(tx); err != nil {
		log.Fatal(err)
	}

	vals, _ := sistream.QueryKeys(p, []sistream.TableKey{
		{Table: accounts, Key: "alice"},
		{Table: audit, Key: "alice"},
	})
	fmt.Printf("balance=%s audit=%s\n", vals[0], vals[1])
	// Output:
	// balance=100 audit=deposit 100
}

// ExampleNewSI_snapshotStability shows the defining SI property: a
// reader's snapshot is immune to concurrent commits.
func ExampleNewSI_snapshotStability() {
	store := sistream.NewMemStore()
	defer store.Close()
	ctx := sistream.NewContext()
	tbl, _ := ctx.CreateTable("t", store, sistream.TableOptions{})
	ctx.CreateGroup("g", tbl)
	p := sistream.NewSI(ctx)

	w, _ := p.Begin()
	p.Write(w, tbl, "k", []byte("v1"))
	p.Commit(w)

	reader, _ := p.BeginReadOnly()
	v1, _, _ := p.Read(reader, tbl, "k") // pins the snapshot

	w2, _ := p.Begin()
	p.Write(w2, tbl, "k", []byte("v2"))
	p.Commit(w2) // concurrent commit

	v2, _, _ := p.Read(reader, tbl, "k") // still the pinned snapshot
	p.Commit(reader)

	fresh, _ := p.BeginReadOnly()
	v3, _, _ := p.Read(fresh, tbl, "k")
	p.Commit(fresh)

	fmt.Printf("pinned=%s repinned=%s fresh=%s\n", v1, v2, v3)
	// Output:
	// pinned=v1 repinned=v1 fresh=v2
}
