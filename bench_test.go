// Benchmark harness regenerating the paper's evaluation (Section 5).
// One benchmark per experiment id from DESIGN.md:
//
//	BenchmarkFigure4/*        both panels of Figure 4
//	BenchmarkClaimC1/*        BOCC vs MVCC at low contention, 24 readers
//	BenchmarkClaimC2/*        reader-dominated throughput split
//	BenchmarkClaimC3/*        consistency under extreme contention
//	BenchmarkAblation*        design-choice ablations A1–A5
//
// Every benchmark runs a fixed-duration workload cell (not b.N
// iterations) and reports throughput via ReportMetric: Ktps is the
// paper's Figure 4 y-axis, abort_pct the abort rate. Cells are scaled
// down (small table, short duration) so the whole suite completes in
// minutes; cmd/sibench runs paper-scale sweeps.
package sistream_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sistream"
	"sistream/internal/bench"
)

// cell runs one workload cell and reports the paper's metrics.
func cell(b *testing.B, cfg bench.Config) bench.Result {
	b.Helper()
	if cfg.Dir == "" {
		cfg.Dir = b.TempDir() // unused by volatile backend specs
	}
	var last bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TotalTps/1000, "Ktps")
	b.ReportMetric(last.AbortRate()*100, "abort_pct")
	b.ReportMetric(last.WriterTps, "writer_tps")
	if last.Violations > 0 {
		b.Fatalf("consistency violations: %d", last.Violations)
	}
	return last
}

func benchCfg() bench.Config {
	cfg := bench.Default()
	cfg.Backend = "lsm"
	cfg.TableSize = 20_000
	cfg.Duration = 300 * time.Millisecond
	return cfg
}

var (
	figureThetas    = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	figureProtocols = []string{"mvcc", "s2pl", "bocc"}
)

// BenchmarkFigure4 regenerates both panels of Figure 4: throughput vs.
// contention level for 4 and 24 concurrent ad-hoc queries under all three
// protocols, with synchronous persistent writes and 10-op transactions.
func BenchmarkFigure4(b *testing.B) {
	for _, readers := range []int{4, 24} {
		for _, proto := range figureProtocols {
			for _, theta := range figureThetas {
				name := benchName(proto, readers, theta)
				b.Run(name, func(b *testing.B) {
					cfg := benchCfg()
					cfg.Protocol = proto
					cfg.Readers = readers
					cfg.Theta = theta
					cell(b, cfg)
				})
			}
		}
	}
}

func benchName(proto string, readers int, theta float64) string {
	return "readers=" + itoa(readers) + "/" + proto + "/theta=" + ftoa(theta)
}

// BenchmarkClaimC1: BOCC vs MVCC at theta=0 with 24 readers (the paper
// measures BOCC ~5% ahead; the relative ordering is hardware-dependent,
// see EXPERIMENTS.md).
func BenchmarkClaimC1(b *testing.B) {
	for _, proto := range []string{"mvcc", "bocc"} {
		b.Run(proto, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Protocol = proto
			cfg.Readers = 24
			cfg.Theta = 0
			cell(b, cfg)
		})
	}
}

// BenchmarkClaimC2: with synchronous persistence the readers contribute
// almost all throughput ("due to the synchronous writing, the readers
// ... contribute almost exclusively to the total throughput").
func BenchmarkClaimC2(b *testing.B) {
	for _, readers := range []int{4, 24} {
		b.Run("readers="+itoa(readers), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Readers = readers
			res := cell(b, cfg)
			b.ReportMetric(100*res.ReaderTps/res.TotalTps, "reader_share_pct")
		})
	}
}

// BenchmarkClaimC3: ACID maintained under extreme parallelism and
// contention — the online checker verifies every committed reader saw a
// consistent multi-state snapshot (cell fails on any violation).
func BenchmarkClaimC3(b *testing.B) {
	for _, proto := range figureProtocols {
		b.Run(proto, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Protocol = proto
			cfg.Readers = 24
			cfg.Theta = 2.9
			cfg.CheckConsistency = true
			cell(b, cfg)
		})
	}
}

// BenchmarkAblationSlots (A1): initial version-array size vs. GC
// pressure under contention.
func BenchmarkAblationSlots(b *testing.B) {
	for _, slots := range []int{2, 4, 8, 16} {
		b.Run("slots="+itoa(slots), func(b *testing.B) {
			cfg := benchCfg()
			cfg.Theta = 2.0
			cfg.VersionSlots = slots
			cell(b, cfg)
		})
	}
}

// BenchmarkAblationGroupSize (A2): consistency-protocol overhead as the
// topology group grows ("adds almost no overhead in our case").
func BenchmarkAblationGroupSize(b *testing.B) {
	for _, states := range []int{1, 2, 4} {
		b.Run("states="+itoa(states), func(b *testing.B) {
			cfg := benchCfg()
			cfg.States = states
			cell(b, cfg)
		})
	}
}

// BenchmarkAblationSync (A3): synchronous vs. asynchronous base-table
// writes — the knob that makes the writer I/O-bound in the paper's setup.
func BenchmarkAblationSync(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "sync=false"
		if sync {
			name = "sync=true"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Sync = sync
			cell(b, cfg)
		})
	}
}

// BenchmarkAblationBackend (A4): persistent LSM base table vs. the
// in-memory map backend vs. the cache tier chained over the LSM store
// (all resolved by kv-registry spec).
func BenchmarkAblationBackend(b *testing.B) {
	for _, backend := range []string{"lsm", "mem", "cache(256)+lsm"} {
		b.Run(backend, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Backend = backend
			cell(b, cfg)
		})
	}
}

// BenchmarkAblationMultiWriter (A5): First-Committer-Wins abort behavior
// with concurrent writers under rising contention.
func BenchmarkAblationMultiWriter(b *testing.B) {
	for _, writers := range []int{1, 2, 4} {
		for _, theta := range []float64{0, 2.0} {
			b.Run("writers="+itoa(writers)+"/theta="+ftoa(theta), func(b *testing.B) {
				cfg := benchCfg()
				cfg.Writers = writers
				cfg.Theta = theta
				cell(b, cfg)
			})
		}
	}
}

// BenchmarkCommitContended measures the SI commit path under commit-side
// contention: N goroutines each run single-key blind-write transactions
// against one table of one topology group with synchronous durability, so
// every commit funnels through the group's commit pipeline. Per-goroutine
// keys never FCW-conflict; the contended resource is the commit path
// itself (timestamping, the WAL fsync, version install, LastCTS publish).
// ns/op is wall time per committed transaction.
func BenchmarkCommitContended(b *testing.B) {
	for _, workers := range []int{1, 8, 16} {
		b.Run("goroutines="+itoa(workers), func(b *testing.B) {
			store, err := sistream.OpenLSM(b.TempDir(), sistream.LSMOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			ctx := sistream.NewContext()
			tbl, err := ctx.CreateTable("state", store, sistream.TableOptions{SyncCommits: true})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ctx.CreateGroup("g", tbl); err != nil {
				b.Fatal(err)
			}
			p := sistream.NewSI(ctx)
			val := []byte("01234567890123456789")
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					key := fmt.Sprintf("k%d", w)
					for next.Add(1) <= int64(b.N) {
						tx, err := p.Begin()
						if err != nil {
							b.Error(err)
							return
						}
						if err := p.Write(tx, tbl, key, val); err != nil {
							b.Error(err)
							return
						}
						if err := p.Commit(tx); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "commits/s")
			}
			if txns, batches := tbl.Group().CommitStats(); batches > 0 {
				b.ReportMetric(float64(txns)/float64(batches), "txns/batch")
			}
		})
	}
}

// BenchmarkIngest measures the dataflow spine end to end: a single
// writer query pushing b.N data elements through source → punctuate →
// TO_TABLE → commit against an in-memory base table. ns/op is wall time
// per ingested element; elems/s is the headline ingest rate the
// vectorized engine is tuned for (see DESIGN.md "Vectorized dataflow").
func BenchmarkIngest(b *testing.B) {
	cfg := bench.DefaultIngest()
	cfg.Elements = b.N
	cfg.CommitEvery = 100
	cfg.Keys = 100_000
	res, err := bench.RunIngest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Aborts != 0 {
		b.Fatalf("single-writer ingest aborted %d transactions", res.Aborts)
	}
	b.ReportMetric(res.ElemsPerSec, "elems/s")
}

// BenchmarkIngestLanes sweeps the parallel keyed ingest lanes
// (stream.Parallelize): the same single-writer query as BenchmarkIngest,
// hash-partitioned into N lanes with per-lane TO_TABLE write paths and a
// transaction-preserving commit barrier. On a multi-core box the
// per-element work (operator chains, write-set building, value copies)
// runs on N cores; lanes=1 selects the sequential spine (identical to
// BenchmarkIngest), so the lanes=1 vs lanes=N delta is the full cost —
// router, broadcast, barrier — against the parallel gain.
func BenchmarkIngestLanes(b *testing.B) {
	for _, lanes := range []int{1, 2, 4} {
		b.Run("lanes="+itoa(lanes), func(b *testing.B) {
			cfg := bench.DefaultIngest()
			cfg.Elements = b.N
			cfg.CommitEvery = 100
			cfg.Keys = 100_000
			cfg.Lanes = lanes
			res, err := bench.RunIngest(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Aborts != 0 {
				b.Fatalf("single-writer ingest aborted %d transactions", res.Aborts)
			}
			b.ReportMetric(res.ElemsPerSec, "elems/s")
		})
	}
}

// BenchmarkIngestWindow measures the fused commit spine on the
// small-transaction workload it targets: commit-every-10 with 4 keyed
// lanes, windowed transactions and cross-transaction group-commit
// batching at the barrier. window=1 is the serialized spine (every small
// transaction pays its own group-commit batch); window=8 lets the spine
// submit up to 8 consecutive decided transactions as ONE batch — one
// leader tenure, one coalesced store batch per run. txns/batch reports
// the achieved commit fan-in.
func BenchmarkIngestWindow(b *testing.B) {
	for _, window := range []int{1, 8} {
		b.Run("window="+itoa(window), func(b *testing.B) {
			cfg := bench.DefaultIngest()
			cfg.Elements = b.N
			cfg.CommitEvery = 10
			cfg.Keys = 100_000
			cfg.Lanes = 4
			cfg.Window = window
			res, err := bench.RunIngest(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Aborts != 0 {
				b.Fatalf("single-writer ingest aborted %d transactions", res.Aborts)
			}
			b.ReportMetric(res.ElemsPerSec, "elems/s")
			if res.CommitBatches > 0 {
				b.ReportMetric(float64(res.CommitTxns)/float64(res.CommitBatches), "txns/batch")
			}
		})
	}
}

// BenchmarkIngestAuto measures the self-tuning commit spine on the same
// small-transaction workload as BenchmarkIngestWindow: no static window —
// the AutoTune controller sizes the window and linger from the commit
// latencies the run itself observes (starting at 1, probing upward while
// fsync amortization keeps paying). tuned_window reports where the
// controller ended up, txns/batch the achieved commit fan-in.
func BenchmarkIngestAuto(b *testing.B) {
	cfg := bench.DefaultIngest()
	cfg.Elements = b.N
	cfg.CommitEvery = 10
	cfg.Keys = 100_000
	cfg.Lanes = 4
	cfg.Auto = true
	res, err := bench.RunIngest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Aborts != 0 {
		b.Fatalf("single-writer ingest aborted %d transactions", res.Aborts)
	}
	b.ReportMetric(res.ElemsPerSec, "elems/s")
	b.ReportMetric(float64(res.TunedWindow), "tuned_window")
	if res.CommitBatches > 0 {
		b.ReportMetric(float64(res.CommitTxns)/float64(res.CommitBatches), "txns/batch")
	}
}

// BenchmarkPipeline measures the full shared-nothing pipeline end to
// end — ingest lanes → table → partitioned feed → downstream lanes —
// with the commit window fixed at 8 and the partition→lane wiring
// toggled: fused=true wires feed partition i directly into downstream
// lane i (no merge hop, no re-route); fused=false routes through the
// explicit Merge → Parallelize seam the fusion removes. elems/s is
// downstream elements delivered per wall-clock second.
func BenchmarkPipeline(b *testing.B) {
	for _, fused := range []bool{false, true} {
		name := "unfused"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			cfg := bench.DefaultPipeline()
			cfg.Ingest.Elements = b.N
			cfg.Ingest.Keys = 100_000
			cfg.Fuse = fused
			res, err := bench.RunPipeline(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.DownElems != res.IngestElems {
				b.Fatalf("pipeline delivered %d of %d committed writes", res.DownElems, res.IngestElems)
			}
			b.ReportMetric(res.ElemsPerSec, "elems/s")
			b.ReportMetric(res.CommitFanIn(), "txns/batch")
		})
	}
}

// BenchmarkFeedPartitions measures the table→stream change feed
// concurrent with its writer: the BenchmarkIngest query writing the
// table while a feed delivers every committed change downstream, clock
// stopped when the feed has drained. partitions=0 is the sequential
// single-watcher ToStream baseline; partitions=N runs the partitioned
// feed (per-partition commit watchers, barrier-merged). elems/s is feed
// elements delivered per wall-clock second.
func BenchmarkFeedPartitions(b *testing.B) {
	for _, parts := range []int{0, 1, 4} {
		b.Run("partitions="+itoa(parts), func(b *testing.B) {
			cfg := bench.FeedConfig{Ingest: bench.DefaultIngest(), Partitions: parts}
			cfg.Ingest.Elements = b.N
			cfg.Ingest.CommitEvery = 100
			cfg.Ingest.Keys = 100_000
			res, err := bench.RunFeed(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.FeedElems != res.IngestElems {
				b.Fatalf("feed delivered %d of %d committed writes", res.FeedElems, res.IngestElems)
			}
			b.ReportMetric(res.ElemsPerSec, "elems/s")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	whole := int(f)
	frac := int(f*10) % 10
	return itoa(whole) + "." + itoa(frac)
}
