package sistream

// The fail-stop gate: the storage and transaction layers must degrade,
// not crash. A panic in internal/txn or internal/lsm takes down the whole
// process — every lane, every group, every table — where the fail-stop
// design (Group.Err, lsm.ErrDBFailed) wants the failure contained to the
// poisoned group while reads keep serving. This AST gate enforces it
// mechanically: no `panic(` in non-test code under those packages outside
// a short, justified allowlist.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// panicAllowlist names the panic sites that are deliberately kept: a
// refcount underflow in the LSM version tracking is a programming error
// in the caller (an unref without a ref) whose continuation would
// double-free file handles under readers — memory-unsafety territory,
// where crashing IS the containment. Entries are "file base name" →
// maximum allowed panic calls in that file; the cap keeps the allowlist
// from silently absorbing new sites.
var panicAllowlist = map[string]int{
	"version.go": 2, // fileMeta/version refcount underflow guards
}

// TestNoPanicsInFailStopLayers walks every non-test source file of
// internal/txn and internal/lsm and fails on any panic call not covered
// by the allowlist. Replace the panic with group/DB poisoning (see
// failstop.go) — or, if the site truly is a crash-worthy invariant,
// document why and extend the allowlist in the same change.
func TestNoPanicsInFailStopLayers(t *testing.T) {
	var violations []string
	counts := map[string]int{}
	for _, dir := range []string{"internal/txn", "internal/lsm"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, ok := call.Fun.(*ast.Ident)
					if !ok || fn.Name != "panic" {
						return true
					}
					pos := fset.Position(call.Pos())
					base := filepath.Base(pos.Filename)
					counts[base]++
					if counts[base] > panicAllowlist[base] {
						violations = append(violations,
							pos.Filename+":"+strconv.Itoa(pos.Line))
					}
					return true
				})
			}
		}
	}
	if len(violations) > 0 {
		t.Fatalf("panic() in fail-stop layers (poison the group/DB instead, see internal/txn/failstop.go):\n  %s",
			strings.Join(violations, "\n  "))
	}
}
