// Command lsmtool inspects a persistent LSM store directory (the base
// table of transactional states).
//
// Usage:
//
//	lsmtool -dir data stats          # level layout and counters
//	lsmtool -dir data scan           # dump all live key-value pairs
//	lsmtool -dir data scan -prefix s/state1/   # one state's rows
//	lsmtool -dir data get -key s/state1/0001
//	lsmtool -dir data verify         # offline integrity check (no DB open)
//	lsmtool -dir data compact        # force flush + full compaction
//	lsmtool -dir data wal-dump       # decode the write-ahead logs (read-only)
//	lsmtool -dir data wal-dump -skip-corrupt   # salvage: resync past corruption
//	lsmtool -wal data/000007.wal wal-dump      # one specific log file
//	lsmtool -dir data -store 'cache(256)+lsm' scan   # scan through a chained spec
//
// The online commands resolve the store through the kv adapter registry:
// -store takes any registered backend spec with an lsm layer (default
// "lsm", rooted at -dir). stats and compact address the lsm layer of the
// chain; scan and get go through the whole chain.
//
// wal-dump and verify never open the database (recovery would rotate the
// logs and delete orphans); they read the files directly, so they work on
// a directory whose Open fails — verify walks CURRENT, the manifest,
// every SSTable's block checksums and every WAL record, reporting torn
// tails and orphaned tables; wal-dump -skip-corrupt salvages corrupt logs.
package main

import (
	"flag"
	"fmt"
	"os"

	"sistream/internal/kv"
	"sistream/internal/lsm"
)

func main() {
	dir := flag.String("dir", "", "LSM data directory (required unless -wal)")
	spec := flag.String("store", "lsm", "backend spec for the online commands (must chain an lsm layer)")
	key := flag.String("key", "", "key for get")
	prefix := flag.String("prefix", "", "key prefix filter for scan")
	limit := flag.Int("limit", 0, "max rows for scan (0 = all)")
	walFile := flag.String("wal", "", "wal-dump: one specific log file instead of -dir's logs")
	skipCorrupt := flag.Bool("skip-corrupt", false, "wal-dump: salvage mode — skip corrupt records and resynchronize")
	flag.Parse()
	// Accept flags on either side of the command (the stdlib parser stops
	// at the first positional, so `lsmtool -dir data scan -prefix x` and
	// `lsmtool -dir data wal-dump -skip-corrupt` need a second pass over
	// what follows the command).
	cmd := ""
	if args := flag.Args(); len(args) > 0 {
		cmd = args[0]
		flag.CommandLine.Parse(args[1:])
	}
	if cmd == "" || flag.NArg() != 0 || (*dir == "" && !(cmd == "wal-dump" && *walFile != "")) {
		fmt.Fprintln(os.Stderr, "usage: lsmtool -dir <path> [flags] stats|scan|get|verify|compact|wal-dump")
		os.Exit(2)
	}
	if cmd == "wal-dump" {
		// Deliberately DB-less: opening the database replays and rotates
		// the logs, and fails outright on the corruption this command is
		// for.
		walDump(*dir, *walFile, *skipCorrupt)
		return
	}
	if cmd == "verify" {
		// Also DB-less: verification must not mutate the evidence (Open
		// rotates logs, flushes recovered data and deletes orphans).
		rep, err := lsm.VerifyDir(*dir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("manifest:  MANIFEST-%06d\n", rep.ManifestNum)
		fmt.Printf("tables:    %d (%d blocks, %d entries, all checksums ok)\n",
			rep.Tables, rep.Blocks, rep.Entries)
		fmt.Printf("wal:       %d logs, %d records", rep.WALs, rep.WALRecords)
		if rep.WALTornTails > 0 {
			fmt.Printf(", %d torn tails (expected crash shape)", rep.WALTornTails)
		}
		fmt.Println()
		for _, num := range rep.OrphanTables {
			fmt.Printf("orphan:    %06d.sst (unreferenced; recovery will remove it)\n", num)
		}
		fmt.Println("ok")
		return
	}
	store, err := kv.Open(*spec, kv.OpenOptions{Dir: *dir})
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	db, _ := store.FindLayer(func(s kv.Store) bool {
		_, ok := s.(*lsm.DB)
		return ok
	}).(*lsm.DB)

	switch cmd {
	case "stats":
		if db == nil {
			fatal(fmt.Errorf("stats needs an lsm layer in -store %q", *spec))
		}
		st := db.Stats()
		fmt.Printf("flushes:      %d\n", st.Flushes)
		fmt.Printf("compactions:  %d\n", st.Compactions)
		fmt.Printf("memtable:     %d keys, ~%d bytes\n", st.MemKeys, st.MemBytes)
		fmt.Printf("block cache:  %d blocks, %d hits, %d misses\n",
			st.BlockCacheBlocks, st.BlockCacheHits, st.BlockCacheMisses)
		fmt.Printf("wal recovery: %d records replayed, %d torn tails discarded\n",
			st.WALRecordsRecovered, st.WALTornTails)
		var files, size int
		for l := range st.LevelFiles {
			if st.LevelFiles[l] == 0 {
				continue
			}
			fmt.Printf("level %d:      %d files, %d bytes\n", l, st.LevelFiles[l], st.LevelBytes[l])
			files += st.LevelFiles[l]
			size += int(st.LevelBytes[l])
		}
		fmt.Printf("total:        %d files, %d bytes\n", files, size)
	case "scan":
		start, end := scanBounds(*prefix)
		n := 0
		err := store.Scan(start, end, func(k, v []byte) bool {
			fmt.Printf("%q = %q\n", k, v)
			n++
			return *limit == 0 || n < *limit
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d rows\n", n)
	case "get":
		if *key == "" {
			fatal(fmt.Errorf("get needs -key"))
		}
		v, ok, err := store.Get([]byte(*key))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%q\n", v)
	case "compact":
		if db == nil {
			fatal(fmt.Errorf("compact needs an lsm layer in -store %q", *spec))
		}
		if err := db.Compact(); err != nil {
			fatal(err)
		}
		fmt.Println("compacted")
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
}

// walDump decodes one WAL file (or every log of the directory, oldest
// first) without opening the database. Without -skip-corrupt it stops at
// mid-file corruption with a nonzero exit, mirroring recovery; with it,
// corrupt spots are skipped and the salvageable records printed.
func walDump(dir, walFile string, skipCorrupt bool) {
	paths := []string{walFile}
	if walFile == "" {
		var err error
		paths, err = lsm.WALFiles(dir)
		if err != nil {
			fatal(err)
		}
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "no wal files")
			return
		}
	}
	for _, path := range paths {
		fmt.Printf("-- %s\n", path)
		stats, err := lsm.DumpWAL(path, skipCorrupt, func(off int64, ops []lsm.WALEntry) bool {
			for _, op := range ops {
				if op.Delete {
					fmt.Printf("%08d  DEL %q\n", off, op.Key)
				} else {
					fmt.Printf("%08d  PUT %q = %q\n", off, op.Key, op.Value)
				}
			}
			return true
		})
		fmt.Fprintf(os.Stderr, "%s: %d records, %d ops", path, stats.Records, stats.Ops)
		if stats.CorruptRecords > 0 {
			fmt.Fprintf(os.Stderr, ", %d corrupt spots (%d bytes skipped)",
				stats.CorruptRecords, stats.SkippedBytes)
		}
		if stats.TornTail {
			fmt.Fprintf(os.Stderr, ", torn tail discarded")
		}
		fmt.Fprintln(os.Stderr)
		if err != nil {
			fatal(err)
		}
	}
}

func scanBounds(prefix string) (start, end []byte) {
	if prefix == "" {
		return nil, nil
	}
	start = []byte(prefix)
	end = append(append([]byte(nil), start...), 0xff)
	return start, end
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmtool:", err)
	os.Exit(1)
}
