// Command lsmtool inspects a persistent LSM store directory (the base
// table of transactional states).
//
// Usage:
//
//	lsmtool -dir data stats          # level layout and counters
//	lsmtool -dir data scan           # dump all live key-value pairs
//	lsmtool -dir data scan -prefix s/state1/   # one state's rows
//	lsmtool -dir data get -key s/state1/0001
//	lsmtool -dir data verify         # full scan, checks order + readability
//	lsmtool -dir data compact        # force flush + full compaction
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"sistream/internal/lsm"
)

func main() {
	dir := flag.String("dir", "", "LSM data directory (required)")
	key := flag.String("key", "", "key for get")
	prefix := flag.String("prefix", "", "key prefix filter for scan")
	limit := flag.Int("limit", 0, "max rows for scan (0 = all)")
	flag.Parse()
	if *dir == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lsmtool -dir <path> [flags] stats|scan|get|verify|compact")
		os.Exit(2)
	}
	db, err := lsm.Open(*dir, lsm.Options{})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	switch flag.Arg(0) {
	case "stats":
		st := db.Stats()
		fmt.Printf("flushes:      %d\n", st.Flushes)
		fmt.Printf("compactions:  %d\n", st.Compactions)
		fmt.Printf("memtable:     %d keys, ~%d bytes\n", st.MemKeys, st.MemBytes)
		fmt.Printf("block cache:  %d blocks, %d hits, %d misses\n",
			st.BlockCacheBlocks, st.BlockCacheHits, st.BlockCacheMisses)
		var files, size int
		for l := range st.LevelFiles {
			if st.LevelFiles[l] == 0 {
				continue
			}
			fmt.Printf("level %d:      %d files, %d bytes\n", l, st.LevelFiles[l], st.LevelBytes[l])
			files += st.LevelFiles[l]
			size += int(st.LevelBytes[l])
		}
		fmt.Printf("total:        %d files, %d bytes\n", files, size)
	case "scan":
		start, end := scanBounds(*prefix)
		n := 0
		err := db.Scan(start, end, func(k, v []byte) bool {
			fmt.Printf("%q = %q\n", k, v)
			n++
			return *limit == 0 || n < *limit
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d rows\n", n)
	case "get":
		if *key == "" {
			fatal(fmt.Errorf("get needs -key"))
		}
		v, ok, err := db.Get([]byte(*key))
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Printf("%q\n", v)
	case "verify":
		var prev []byte
		n := 0
		err := db.Scan(nil, nil, func(k, _ []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				fatal(fmt.Errorf("order violation: %q then %q", prev, k))
			}
			prev = append(prev[:0], k...)
			n++
			return true
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %d keys, ascending, all readable\n", n)
	case "compact":
		if err := db.Compact(); err != nil {
			fatal(err)
		}
		fmt.Println("compacted")
	default:
		fatal(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

func scanBounds(prefix string) (start, end []byte) {
	if prefix == "" {
		return nil, nil
	}
	start = []byte(prefix)
	end = append(append([]byte(nil), start...), 0xff)
	return start, end
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsmtool:", err)
	os.Exit(1)
}
